"""Bench: parallel recovery scheduler — MTTR gate + safety contracts.

Runs the ``multiburst`` chaos spec (two bursts of three *distinct*
components on one node — the multi-component failure shape from the
dependency-aware-recovery argument) on a 2-node SSM cluster, twice from
the same seed:

* **serial** rig: the hardened pipeline with the §4 one-at-a-time
  recursive scheduler;
* **parallel** rig: the same hardened pipeline with
  ``HardeningPolicy.parallel()`` — independent components microreboot
  concurrently, dependency groups stay serialized.

Gates (safety always, performance when the gate is enabled):

1. determinism — the parallel rig run twice from the same seed yields a
   byte-identical outcome, scheduler group ordering included;
2. zero same-group concurrency — any two overlapping recovery actions on
   one node must both be EJB-level µRBs of targets the node's
   :class:`~repro.core.recovery_graph.RecoveryGraph` declares independent;
3. the parallel arm actually overlaps work (peak within-node recovery
   concurrency ≥ 2) while the serial arm never does;
4. the parallel arm's mean incident *recovery phase* beats the serial
   arm's on the identical fault schedule.

The measured numbers are recorded in ``BENCH_recovery.json``; the
committed baseline doubles as a 10% regression gate on the parallel
arm's recovery phase and failed requests.  ``REPRO_BENCH_GATE=0``
disables the gates; ``REPRO_BENCH_REBASELINE=1`` re-records.
"""

import json
import os
from pathlib import Path

from benchmarks.test_kernel_throughput import _gate_enabled
from repro.experiments.chaos import ChaosClusterRig, _max_overlap
from repro.faults.chaos import ChaosSpec

SEED = 0
MAX_REGRESSION = 0.10

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"


def _run_arm(parallel):
    rig = ChaosClusterRig(
        seed=SEED,
        n_nodes=2,
        # Dense enough traffic that the distinct burst components cross
        # the score threshold within each other's µRB windows — sparse
        # detection, not the scheduler, is the overlap bottleneck below
        # ~100 clients/node.
        clients_per_node=150,
        hardened=True,
        parallel=parallel,
        spec=ChaosSpec.multiburst(),
    )
    outcome = rig.run(tail=40.0)
    return rig, outcome


def _overlapping_pairs(actions):
    """Strictly-overlapping [decided_at, finished_at) action pairs."""
    pairs = []
    for i, a in enumerate(actions):
        for b in actions[i + 1:]:
            if a.decided_at < b.finished_at and b.decided_at < a.finished_at:
                pairs.append((a, b))
    return pairs


def test_parallel_recovery_mttr_and_safety_gates():
    recorded = None
    if (
        BENCH_JSON.exists()
        and os.environ.get("REPRO_BENCH_REBASELINE", "") in ("", "0")
    ):
        recorded = json.loads(BENCH_JSON.read_text(encoding="utf-8"))

    serial_rig, serial = _run_arm(parallel=False)
    parallel_rig, parallel = _run_arm(parallel=True)

    # Gate 1: determinism — same seed, same trace, scheduler included.
    _rerun_rig, rerun = _run_arm(parallel=True)
    assert json.dumps(rerun, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    ), "parallel scheduler must be deterministic for a fixed seed"

    # Gate 2: overlapping actions on one node are only ever independent
    # EJB µRBs — never two members of one dependency group, never a
    # coarse (node-wide) action overlapping anything.
    for rig, arm in ((serial_rig, "serial"), (parallel_rig, "parallel")):
        for rm in rig.rms:
            for a, b in _overlapping_pairs(rm.actions):
                assert a.level == "ejb" and b.level == "ejb", (
                    f"{arm} {rm.server.name}: {a.level} µRB of {a.target} "
                    f"overlapped {b.level} µRB of {b.target} — only "
                    "EJB-level actions may run concurrently"
                )
                assert not rm.recovery_graph.conflicts(
                    set(a.target), set(b.target)
                ), (
                    f"{arm} {rm.server.name}: same-dependency-group "
                    f"recoveries of {a.target} and {b.target} overlapped"
                )

    # Gate 3: the serial scheduler never overlaps; the parallel one does.
    serial_peak = serial["max_concurrent_recoveries"]
    parallel_peak = parallel["max_concurrent_recoveries"]
    assert serial_peak <= 1, (
        f"serial scheduler overlapped recoveries (peak {serial_peak})"
    )

    serial_means = serial["incidents"]["mean_phases"]
    parallel_means = parallel["incidents"]["mean_phases"]
    payload = {
        "spec": "multiburst",
        "seed": SEED,
        "serial": {
            "failed_requests": serial["failed_requests"],
            "recovery_actions": serial["recovery_actions"],
            "availability": serial["availability"],
            "max_concurrent_recoveries": serial_peak,
            "mean_recovery_phase": serial_means.get("recovery"),
            "mean_span": serial["incidents"]["mean_span"],
        },
        "parallel": {
            "failed_requests": parallel["failed_requests"],
            "recovery_actions": parallel["recovery_actions"],
            "availability": parallel["availability"],
            "max_concurrent_recoveries": parallel_peak,
            "mean_recovery_phase": parallel_means.get("recovery"),
            "mean_span": parallel["incidents"]["mean_span"],
        },
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"\nrecovery: {payload}")

    if not _gate_enabled():
        return

    assert parallel_peak >= 2, (
        "parallel scheduler never overlapped independent recoveries "
        f"(peak {parallel_peak}) on a multi-component burst campaign"
    )

    # Gate 4: the scheduler change shrinks the recovery phase itself.
    assert parallel_means["recovery"] < serial_means["recovery"], (
        f"parallel mean recovery phase {parallel_means['recovery']}s did "
        f"not beat serial {serial_means['recovery']}s on the same "
        "fault schedule"
    )

    # Regression gate against the committed baseline.
    if recorded:
        baseline = recorded.get("parallel", {})
        for key in ("failed_requests", "mean_recovery_phase"):
            limit = baseline.get(key, 0) * (1 + MAX_REGRESSION)
            assert payload["parallel"][key] <= limit, (
                f"parallel {key} regressed: {payload['parallel'][key]} vs "
                f"recorded {baseline.get(key)} (+{MAX_REGRESSION:.0%} "
                "allowed); re-record with REPRO_BENCH_REBASELINE=1 if "
                "intentional"
            )
