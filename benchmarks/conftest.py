"""Benchmark harness support.

Each benchmark regenerates one of the paper's tables or figures.  They are
macro-benchmarks — whole fault-injection campaigns, not microseconds — so
every one runs exactly once (``benchmark.pedantic(rounds=1)``); the
measured value is the wall-clock cost of reproducing that experiment.

Rendered tables are written to ``benchmarks/results/`` so the regenerated
rows can be diffed against the paper side by side, and key measured numbers
are attached to the benchmark's ``extra_info``.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_FULL=1`` to use paper-scale parameters (500 clients, full
durations) instead of the laptop-friendly defaults.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale():
    """Whether to run paper-scale parameters."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def campaign_jobs():
    """Worker-process count for campaign-shaped benchmarks.

    ``REPRO_JOBS=N`` fans each experiment's independent trials across N
    processes (``0`` = all cores), same contract as ``repro run --jobs``.
    Defaults to 1: sequential is the reference measurement.
    """
    value = os.environ.get("REPRO_JOBS", "").strip()
    return int(value) if value else 1


@pytest.fixture
def record_result():
    """Write a rendered experiment result for later inspection."""

    def _record(name, result):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(result.render() + "\n", encoding="utf-8")
        return path

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run a macro-benchmark exactly once and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
