"""Bench: the cluster observability plane — passive, cheap, correlated.

Three contracts, recorded in the ``cluster`` section of
``BENCH_observability.json``:

* **passivity + determinism** (smoke scale) — a storm+elastic run with
  the plane enabled must produce a byte-identical arm outcome once the
  ``cluster`` section is popped, the plane's own payload must be
  identical run-to-run, and an in-process run must equal a spawned
  worker's (``jobs=2``) — the plane adds observation, never behaviour;
* **overhead** (standard scale) — enabling the plane on the steady
  1M-session / 128-shard arm must cost < 10% wall clock;
* **storm correlation** (standard scale) — the K=8 storm must come back
  as ONE meta-incident covering all eight struck shards, with the
  elastic migrations attributed to it and the cluster MTTR phases
  summing exactly to its span; the run's request throughput carries the
  standing 10% regression gate against the recorded baseline.

``REPRO_BENCH_GATE=0`` disables the gates; ``REPRO_BENCH_REBASELINE=1``
re-records the baseline.
"""

import time

import pytest

from benchmarks.test_kernel_throughput import _gate_enabled
from benchmarks.test_megascale import MAX_REGRESSION, _rss_mib
from benchmarks.test_observability_overhead import (
    _merge_obs_json,
    _recorded_obs,
)
from repro.experiments.megascale import MegascaleRig
from repro.experiments.storm import StormRig
from repro.faults.chaos import StormSpec
from repro.parallel import TrialSpec, run_campaign

#: Wall-clock cost of the plane on the standard steady arm.
MAX_PLANE_OVERHEAD = 0.10
OVERHEAD_ROUNDS = 2

SMOKE = dict(n_sessions=50_000, n_shards=16, nodes_per_shard=1,
             duration=150.0)
STANDARD = dict(n_sessions=1_000_000, n_shards=128, nodes_per_shard=1,
                duration=240.0)


def _smoke_run(cluster_plane, seed=0):
    rig = StormRig(
        seed=seed, storm=True, elastic=True, storm_spec=StormSpec.smoke(),
        cluster_plane=cluster_plane, **SMOKE,
    )
    return rig.run()


def test_plane_is_passive_and_deterministic_at_smoke_scale():
    """Plane on vs off: same arm outcome.  Same seed: same rollup."""
    with_plane = _smoke_run(True)
    again = _smoke_run(True)
    assert with_plane == again, "same seed must give an identical payload"

    cluster = with_plane.pop("cluster")
    again.pop("cluster")
    without = _smoke_run(False)
    assert "cluster" not in without
    assert with_plane == without, (
        "enabling the cluster plane changed the arm outcome"
    )

    # jobs=2: the spawned-worker path must agree with in-process.
    spec = TrialSpec(
        task="repro.experiments.storm:run_one_arm",
        kwargs={"arm": "storm+elastic", "scale": "smoke",
                "k_shards": 4, "load_skew": 0.0, **SMOKE},
        tag="storm+elastic", seed=0,
    )
    worker = run_campaign([spec], jobs=2)[0].value
    assert worker.pop("arm") == "storm+elastic"
    assert worker.pop("cluster") == cluster
    assert worker == without

    # The plane actually saw the smoke storm.
    assert cluster["summary"]["shards"] >= SMOKE["n_shards"]
    assert cluster["summary"]["probes"] > 0
    assert len(cluster["meta_incidents"]) == 1
    struck = set(without["storm"]["shards"])
    assert set(cluster["meta_incidents"][0]["shards"]) >= struck


def test_plane_overhead_under_budget_at_standard_scale():
    """The plane on the steady 1M/128 arm: < 10% wall clock."""
    times = {"off": [], "on": []}
    for _ in range(OVERHEAD_ROUNDS):
        for config, enabled in (("off", False), ("on", True)):
            rig = MegascaleRig(
                seed=0, fault=False, cluster_plane=enabled, **STANDARD
            )
            started = time.perf_counter()
            outcome = rig.run()
            times[config].append(time.perf_counter() - started)
            assert outcome["failed_requests"] == 0
    best = {config: min(series) for config, series in times.items()}
    overhead = best["on"] / best["off"] - 1

    payload = _recorded_obs("cluster") or {}
    payload["overhead"] = {
        "scenario": "megascale-steady-standard",
        "rounds": OVERHEAD_ROUNDS,
        "plane_off_s": round(best["off"], 2),
        "plane_on_s": round(best["on"], 2),
        "overhead_pct": round(100 * overhead, 2),
    }
    _merge_obs_json("cluster", payload)

    if _gate_enabled():
        assert overhead < MAX_PLANE_OVERHEAD, (
            f"cluster plane costs {100 * overhead:.1f}% wall clock "
            f"(budget {100 * MAX_PLANE_OVERHEAD:.0f}%)"
        )


def test_storm_correlation_standard_scale():
    """K=8 storm → one meta-incident covering all struck shards."""
    rig = StormRig(
        seed=0, storm=True, elastic=True,
        storm_spec=StormSpec.standard(), **STANDARD,
    )
    started = time.perf_counter()
    outcome = rig.run()
    wall = time.perf_counter() - started
    rss = _rss_mib()

    cluster = outcome["cluster"]
    struck = set(outcome["storm"]["shards"])
    assert len(struck) == 8

    # ONE meta-incident, covering every struck shard.
    metas = cluster["meta_incidents"]
    assert len(metas) == 1, (
        f"the K=8 storm must stitch into one meta-incident, got "
        f"{len(metas)}"
    )
    meta = metas[0]
    assert set(meta["shards"]) >= struck, (
        f"meta-incident missed struck shards: "
        f"{sorted(struck - set(meta['shards']))}"
    )
    assert meta["mode"] == "simultaneous"
    assert cluster["unclustered_incidents"] == 0

    # Elasticity attributed: every replacement and its migrations.
    replacements = outcome["reshard"]["replacements"]
    assert len(meta["replacements"]) == len(replacements) > 0
    assert len(meta["migrations"]) > 0

    # Cluster MTTR phases sum exactly to the meta-incident span.
    phases = meta["phases"]
    assert set(phases) == {"detect", "decide", "migrate", "drain"}
    assert all(value >= 0.0 for value in phases.values())
    assert sum(phases.values()) == pytest.approx(meta["span"], abs=1e-4)

    # The rollup plane saw the whole cluster and flagged the sick shards.
    summary = cluster["summary"]
    assert summary["shards"] >= STANDARD["n_shards"]
    assert summary["sessions"] == STANDARD["n_sessions"]
    assert summary["probe_p99"] is not None
    assert len(cluster["capacity_signals"]) > 0
    pressured = set(summary["pressured_shards"])
    assert pressured <= struck, (
        "capacity pressure fired on a shard the storm never struck"
    )

    requests = outcome["good_requests"] + outcome["failed_requests"]
    payload = _recorded_obs("cluster") or {}
    recorded = payload.get("correlation")
    payload["correlation"] = {
        "scenario": "storm-elastic-standard",
        "sessions": STANDARD["n_sessions"],
        "shards": summary["shards"],
        "k_shards": len(struck),
        "meta_incidents": len(metas),
        "meta_shards": len(meta["shards"]),
        "meta_span_s": meta["span"],
        "phases": phases,
        "migrations_attributed": len(meta["migrations"]),
        "capacity_signals": len(cluster["capacity_signals"]),
        "slo_violations": summary["slo_violations"],
        "requests": requests,
        "wall_s": round(wall, 2),
        "rss_mib": round(rss, 1),
        "requests_per_sec": round(requests / wall),
    }
    _merge_obs_json("cluster", payload)

    if not _gate_enabled():
        return
    if recorded and recorded.get("requests_per_sec"):
        floor = recorded["requests_per_sec"] * (1 - MAX_REGRESSION)
        assert payload["correlation"]["requests_per_sec"] >= floor, (
            f"storm+plane throughput regressed more than "
            f"{100 * MAX_REGRESSION:.0f}%: "
            f"{payload['correlation']['requests_per_sec']}/s vs recorded "
            f"{recorded['requests_per_sec']}/s"
        )
