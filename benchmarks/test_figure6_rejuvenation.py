"""Bench: regenerate Figure 6 (microrejuvenation vs whole-JVM rejuvenation)."""

from repro.experiments import figure6

from benchmarks.conftest import campaign_jobs, full_scale, run_once


def test_figure6_rejuvenation(benchmark, record_result):
    result, outcomes = run_once(
        benchmark, figure6.run, full=full_scale(), quick=not full_scale(),
        jobs=campaign_jobs(),
    )
    record_result("figure6_rejuvenation", result)
    print()
    print(result.render())

    jvm = outcomes["jvm-restart"]
    urb = outcomes["microrejuvenation"]
    # Both schemes kept the leak from crashing the service.
    assert jvm["jvm_restarts"] >= 1
    assert urb["microreboots"] >= 1
    # An order of magnitude fewer failed requests (paper: 11,915 vs 1,383).
    assert urb["failed_requests"] < jvm["failed_requests"] / 5
    # "Good Taw never dropped to zero" under microrejuvenation.
    assert urb["zero_good_seconds"] <= 1
    assert jvm["zero_good_seconds"] > 10
    # The service learned who leaks: biggest leakers lead the order.
    assert urb["rejuvenation_order"][0] == "ViewItem"
    # Memory was actually reclaimed below the alarm threshold each round.
    available = [mem for _t, mem in urb["memory_timeline"]]
    assert max(available) > 0.75 * 1024**3
    benchmark.extra_info["failed_requests"] = {
        "jvm-restart": jvm["failed_requests"],
        "microrejuvenation": urb["failed_requests"],
    }
