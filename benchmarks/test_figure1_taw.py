"""Bench: regenerate Figure 1 (Taw under process restart vs microreboot).

The paper's headline: microreboots cut failed requests by 98%, averaging
≈78 failed requests per recovery against ≈3,917 for JVM restarts.
"""

from repro.experiments import figure1

from benchmarks.conftest import campaign_jobs, full_scale, run_once


def test_figure1_taw(benchmark, record_result):
    result, outcomes = run_once(
        benchmark, figure1.run, full=full_scale(), quick=not full_scale(),
        jobs=campaign_jobs(),
    )
    record_result("figure1_taw", result)
    print()
    print(result.render())

    restart = outcomes["process-restart"]
    urb = outcomes["microreboot"]
    # Each injected fault triggered exactly one JVM restart.
    assert restart["recoveries"] == 3
    # Microreboots may spend an extra µRB on a mis-diagnosed target.
    assert 3 <= urb["recoveries"] <= 6
    assert all(a[1] == "ejb" for a in urb["actions"])
    # An order of magnitude fewer failed requests (paper: 98% reduction).
    reduction = 1 - urb["failed_requests"] / restart["failed_requests"]
    assert reduction > 0.90
    # Good Taw never reaches zero under µRB recovery; it does under restarts.
    urb_gaps = sum(
        1 for second in range(0, int(max(urb["good_series"], default=0)))
        if urb["good_series"].get(second, 0) == 0
    )
    restart_gaps = sum(
        1 for second in range(0, int(max(restart["good_series"], default=0)))
        if restart["good_series"].get(second, 0) == 0
    )
    assert restart_gaps > 30  # three ~19 s outages
    assert urb_gaps < restart_gaps / 3
    benchmark.extra_info["failed_per_recovery"] = {
        "process-restart": round(restart["failed_per_recovery"], 1),
        "microreboot": round(urb["failed_per_recovery"], 1),
    }
