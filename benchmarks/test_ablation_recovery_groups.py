"""Ablation: microrebooting without recovery-group expansion.

DESIGN.md calls out group expansion as a load-bearing design choice (§3.2).
This ablation runs the Figure 1 fault (corrupted metadata inside the
EntityGroup) twice: with the proper coordinator, and with one that recycles
only the single diagnosed component.  Without expansion, the peers' cross-
container references go stale and the "recovery" makes things worse until
a full group recycle happens.
"""

from repro.core.microreboot import MicrorebootCoordinator
from repro.experiments.common import ExperimentResult, SingleNodeRig
from repro.faults.corruption import CorruptionMode

from benchmarks.conftest import run_once


def run_variant(honor_groups, seed=0, n_clients=150):
    rig = SingleNodeRig(seed=seed, n_clients=n_clients,
                        with_recovery_manager=False)
    rig.system.coordinator = MicrorebootCoordinator(
        rig.system.server, "ebid", honor_groups=honor_groups
    )
    rig.start(warmup=60.0)
    rig.injector.corrupt_tx_method_map("Item", "record_bid", CorruptionMode.WRONG)
    rig.run_for(10.0)
    before = rig.metrics.failed_requests
    # The (correctly diagnosed) recovery: microreboot Item.
    rig.kernel.run_until_triggered(
        rig.kernel.process(rig.system.coordinator.microreboot(["Item"]))
    )
    rig.run_for(120.0)
    return {
        "honor_groups": honor_groups,
        "failed_after_recovery": rig.metrics.failed_requests - before,
        "cured": rig.failures_in_last(30.0) <= 1,
    }


def run_ablation():
    result = ExperimentResult(
        name="Ablation: recovery-group expansion",
        paper_reference="§3.2 design choice (DESIGN.md §4.3)",
        headers=("group expansion", "failed reqs after recovery", "cured"),
    )
    outcomes = {}
    for honor in (True, False):
        outcome = run_variant(honor)
        outcomes[honor] = outcome
        result.rows.append(
            (
                "yes (paper design)" if honor else "no (ablated)",
                outcome["failed_after_recovery"],
                "yes" if outcome["cured"] else "NO",
            )
        )
    return result, outcomes


def test_ablation_recovery_groups(benchmark, record_result):
    result, outcomes = run_once(benchmark, run_ablation)
    record_result("ablation_recovery_groups", result)
    print()
    print(result.render())

    assert outcomes[True]["cured"]
    assert not outcomes[False]["cured"]  # stale peers keep failing
    assert (
        outcomes[False]["failed_after_recovery"]
        > 5 * max(outcomes[True]["failed_after_recovery"], 1)
    )
    benchmark.extra_info["failed_after_recovery"] = {
        "with_groups": outcomes[True]["failed_after_recovery"],
        "ablated": outcomes[False]["failed_after_recovery"],
    }
