"""Bench: regenerate Table 5 (fault-free throughput and latency)."""

import pytest

from repro.experiments import table5

from benchmarks.conftest import full_scale, run_once


def test_table5_performance(benchmark, record_result):
    result, measured = run_once(benchmark, table5.run, full=full_scale())
    record_result("table5_performance", result)
    print()
    print(result.render())

    # Throughput ≈72 req/s at 500 clients, within noise across configs.
    throughputs = [tp for tp, _lat in measured.values()]
    assert min(throughputs) == pytest.approx(72, rel=0.06)
    spread = (max(throughputs) - min(throughputs)) / max(throughputs)
    assert spread < 0.04  # the µRB modifications cost nothing measurable

    fasts_lat = measured[("JBossµRB", "fasts")][1]
    ssm_lat = measured[("JBossµRB", "ssm")][1]
    assert fasts_lat * 1000 == pytest.approx(15.0, abs=6.0)
    # SSM's marshalling + network round trip raises latency substantially
    # (paper: +70-90%), but stays far below human perception (~100 ms).
    assert 1.45 <= ssm_lat / fasts_lat <= 2.1
    assert ssm_lat < 0.1
    benchmark.extra_info["latency_ms"] = {
        f"{variant}/{store}": round(lat * 1000, 2)
        for (variant, store), (_tp, lat) in measured.items()
    }
