"""Bench: multi-shard fault storms + elastic resharding, gated.

Three contracts ride ``BENCH_scale.json``:

* **standard scale** (the acceptance configuration) — ``repro run storm``
  at K=8 simultaneous shard faults on 128 shards / 1M sessions must keep
  cluster availability ≥ 0.999 with the healthy-shard median at 1.0, and
  the elastic arm must migrate sessions with zero loss (population
  conservation) while strictly beating the static arm on failed
  requests — all inside wall/RSS budgets;
* **determinism** — same seed ⇒ same outcome payload including the storm
  schedule and the reshard/migration plans, run to run and jobs=1 vs
  jobs=2 (checked at smoke scale);
* **throughput** — the smoke run carries the standing 10% regression
  gate against the recorded baseline.

``REPRO_BENCH_GATE=0`` disables the gates; ``REPRO_BENCH_REBASELINE=1``
re-records the baseline.
"""

import time

from benchmarks.test_kernel_throughput import _gate_enabled
from benchmarks.test_megascale import (
    MAX_REGRESSION,
    _merge_scale_json,
    _recorded,
    _rss_mib,
    _total_requests,
)
from repro.experiments import storm

#: Budgets for the three-arm standard run (measured ≈160 s / ≈80 MiB on a
#: 1-core sandbox; generous multiples so only complexity regressions trip).
STANDARD_WALL_BUDGET_S = 480.0
STANDARD_RSS_BUDGET_MIB = 768.0
#: The acceptance gates (ISSUE 9): cluster availability under the storm,
#: and the untouched shards' median.
MIN_STORM_AVAILABILITY = 0.999
HEALTHY_MEDIAN = 1.0


def test_storm_standard_scale_acceptance():
    """K=8 storm at 1M sessions: containment + elastic-beats-static."""
    started = time.perf_counter()
    _result, outcomes = storm.run(seed=0, scale="standard", jobs=1)
    wall = time.perf_counter() - started
    rss = _rss_mib()

    static, elastic = outcomes["storm"], outcomes["storm+elastic"]
    for arm, o in outcomes.items():
        assert o["sessions"] == 1_000_000, arm
        assert o["population"] == o["sessions"], (
            f"{arm}: session population not conserved"
        )
    assert outcomes["steady"]["failed_requests"] == 0

    # Containment under the storm (static capacity).
    assert static["availability"] >= MIN_STORM_AVAILABILITY
    assert static["storm"]["healthy_median"] == HEALTHY_MEDIAN
    assert len(static["storm"]["shards"]) == 8
    assert static["recovery_actions"] > 0

    # The elastic arm: zero-loss migration, strictly fewer failures.
    assert elastic["availability"] >= MIN_STORM_AVAILABILITY
    assert elastic["storm"]["healthy_median"] == HEALTHY_MEDIAN
    reshard = elastic["reshard"]
    assert reshard["sessions_migrated"] > 0
    assert reshard["in_transit_at_end"] == 0
    assert len(reshard["replacements"]) > 0
    assert elastic["failed_requests"] < static["failed_requests"], (
        "scale-out during the storm must beat static capacity"
    )

    requests = _total_requests(outcomes)
    payload = {
        "sessions": static["sessions"],
        "shards": static["shards"],
        "k_shards": len(static["storm"]["shards"]),
        "arms": len(outcomes),
        "requests": requests,
        "requests_per_sec": round(requests / wall),
        "wall_s": round(wall, 1),
        "wall_budget_s": STANDARD_WALL_BUDGET_S,
        "peak_rss_mib": round(rss, 1),
        "rss_budget_mib": STANDARD_RSS_BUDGET_MIB,
        "availability_storm": static["availability"],
        "availability_elastic": elastic["availability"],
        "failed_requests_storm": static["failed_requests"],
        "failed_requests_elastic": elastic["failed_requests"],
        "healthy_median_storm": static["storm"]["healthy_median"],
        "sessions_migrated": reshard["sessions_migrated"],
        "replacements": len(reshard["replacements"]),
    }
    _merge_scale_json("storm", payload)
    print(f"\nstorm standard: {payload}")

    if _gate_enabled():
        assert wall <= STANDARD_WALL_BUDGET_S, (
            f"storm standard took {wall:.1f}s "
            f"(budget {STANDARD_WALL_BUDGET_S:.0f}s)"
        )
        assert rss <= STANDARD_RSS_BUDGET_MIB, (
            f"storm standard peaked at {rss:.0f} MiB "
            f"(budget {STANDARD_RSS_BUDGET_MIB:.0f} MiB)"
        )


def test_storm_smoke_determinism_and_regression():
    """Schedules, plans and payloads: same seed ⇒ same bytes; jobs agree."""
    recorded = _recorded("storm_smoke")

    started = time.perf_counter()
    result_a, outcomes_a = storm.run(seed=0, scale="smoke", jobs=1)
    wall = time.perf_counter() - started
    result_b, outcomes_b = storm.run(seed=0, scale="smoke", jobs=1)
    _result_p, outcomes_p = storm.run(seed=0, scale="smoke", jobs=2)

    assert outcomes_a == outcomes_b, "same seed must give the same payload"
    assert outcomes_a == outcomes_p, "jobs=1 and jobs=2 must agree exactly"
    assert result_a.rows == result_b.rows
    assert result_a.notes[:-1] == result_b.notes[:-1]

    # The payload equality above already covers these; spelled out so a
    # failure names the drifting artifact directly.
    assert (
        outcomes_a["storm"]["storm"]["schedule"]
        == outcomes_p["storm"]["storm"]["schedule"]
    )
    assert (
        outcomes_a["storm+elastic"]["reshard"]["plans"]
        == outcomes_p["storm+elastic"]["reshard"]["plans"]
    )
    # The smoke storm still clears the acceptance bars.
    assert outcomes_a["storm"]["availability"] >= MIN_STORM_AVAILABILITY
    assert (
        outcomes_a["storm+elastic"]["failed_requests"]
        < outcomes_a["storm"]["failed_requests"]
    )

    requests = _total_requests(outcomes_a)
    throughput = round(requests / wall)
    payload = {
        "sessions": outcomes_a["steady"]["sessions"],
        "shards": outcomes_a["steady"]["shards"],
        "requests": requests,
        "requests_per_sec": throughput,
        "wall_s": round(wall, 2),
        "availability_storm": outcomes_a["storm"]["availability"],
        "availability_elastic": outcomes_a["storm+elastic"]["availability"],
        "sessions_migrated": (
            outcomes_a["storm+elastic"]["reshard"]["sessions_migrated"]
        ),
    }
    _merge_scale_json("storm_smoke", payload)
    print(f"\nstorm smoke: {payload}")

    if _gate_enabled() and recorded and recorded.get("requests_per_sec"):
        floor = (1 - MAX_REGRESSION) * recorded["requests_per_sec"]
        assert throughput >= floor, (
            f"storm smoke throughput regressed: {throughput} requests/sec "
            f"vs recorded {recorded['requests_per_sec']} "
            f"(>{100 * MAX_REGRESSION:.0f}% drop)"
        )
