"""Bench: raw kernel hot-loop throughput, new kernel vs the pre-PR one.

Two pure-kernel workloads (no eBid, no telemetry) exercise the paths every
campaign spends its wall-clock in:

* ``timeouts`` — the dominant plain-delay case: many processes sleeping on
  ``kernel.timeout`` in a drain-the-queue ``run()``;
* ``queue`` — event succeed/fail wake-ups through a FIFO mailbox,
  the synchronization shape of request handling.

Each workload runs against the live ``repro.sim`` AND against
``benchmarks/legacy_sim.py`` (a frozen copy of the seed kernel) in the
same interpreter.  Comparing the two inside one run makes the speedup gate
machine-independent — both sides always see the same hardware — so the
≥25% improvement contract survives CI runner roulette.

A second, recorded-baseline gate guards against *future* regressions: when
the committed ``BENCH_kernel.json`` was measured on comparable hardware
(its legacy number within 25% of this run's), current events/sec must not
drop more than 10% below the recorded figure.  ``REPRO_BENCH_GATE=0``
disables both gates; ``REPRO_BENCH_REBASELINE=1`` re-records.
"""

import json
import os
import time
from pathlib import Path

from benchmarks import legacy_sim
from repro.sim.kernel import Kernel
from repro.sim.resources import Queue

ROUNDS = 5
TIMEOUT_PROCS, TIMEOUT_ROUNDS = 200, 500
QUEUE_PAIRS, QUEUE_ROUNDS = 50, 400

#: The tentpole contract: ≥25% more events/sec than the pre-PR kernel.
MIN_IMPROVEMENT = 0.25
#: Recorded-baseline regression gate: fail if we drop >10% below it.
MAX_REGRESSION = 0.10
#: The recorded baseline only binds when it came from comparable hardware.
MACHINE_TOLERANCE = 0.25

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _gate_enabled():
    return os.environ.get("REPRO_BENCH_GATE", "1") not in ("", "0")


def bench_timeouts(kernel_factory):
    """(elapsed seconds, events processed) for the plain-delay workload."""
    kernel = kernel_factory()

    def proc(i):
        delay = 0.5 + (i % 7) * 0.25
        for _ in range(TIMEOUT_ROUNDS):
            yield kernel.timeout(delay)

    for i in range(TIMEOUT_PROCS):
        kernel.process(proc(i))
    started = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - started
    # start event + timeouts + completion event, per process
    return elapsed, TIMEOUT_PROCS * (TIMEOUT_ROUNDS + 2)


def bench_queue(kernel_factory, queue_factory):
    """(elapsed, events) for the succeed/wake mailbox workload."""
    kernel = kernel_factory()

    def producer(mailbox):
        for n in range(QUEUE_ROUNDS):
            mailbox.put(n)
            yield kernel.timeout(1.0)

    def consumer(mailbox):
        for _ in range(QUEUE_ROUNDS):
            yield mailbox.get()

    for _ in range(QUEUE_PAIRS):
        mailbox = queue_factory(kernel)
        kernel.process(producer(mailbox))
        kernel.process(consumer(mailbox))
    started = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - started
    # per pair: 2 starts + timeouts + gets + 2 completions
    return elapsed, QUEUE_PAIRS * (2 * QUEUE_ROUNDS + 4)


def measure(kernel_factory, queue_factory):
    """Best-of-ROUNDS events/sec per workload, plus the aggregate."""
    best = {}
    for name, runner in (
        ("timeouts", lambda: bench_timeouts(kernel_factory)),
        ("queue", lambda: bench_queue(kernel_factory, queue_factory)),
    ):
        samples = [runner() for _ in range(ROUNDS)]
        elapsed, events = min(samples)  # least-noise round
        best[name] = {"elapsed_s": elapsed, "events": events}
    total_events = sum(w["events"] for w in best.values())
    total_s = sum(w["elapsed_s"] for w in best.values())
    return {
        "workloads": {
            name: round(w["events"] / w["elapsed_s"])
            for name, w in best.items()
        },
        "events_per_sec": round(total_events / total_s),
    }


def _merge_bench_json(section, payload):
    report = {}
    if BENCH_JSON.exists():
        report = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    report[section] = payload
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_kernel_throughput_vs_pre_pr_kernel():
    recorded = None
    if BENCH_JSON.exists() and os.environ.get("REPRO_BENCH_REBASELINE", "") in ("", "0"):
        recorded = json.loads(BENCH_JSON.read_text(encoding="utf-8")).get("kernel")

    current = measure(Kernel, Queue)
    legacy = measure(legacy_sim.Kernel, legacy_sim.Queue)
    improvement = current["events_per_sec"] / legacy["events_per_sec"] - 1

    payload = {
        "rounds": ROUNDS,
        "workloads": {
            name: {
                "events_per_sec": current["workloads"][name],
                "legacy_events_per_sec": legacy["workloads"][name],
            }
            for name in current["workloads"]
        },
        "events_per_sec": current["events_per_sec"],
        "legacy_events_per_sec": legacy["events_per_sec"],
        "improvement_pct": round(100 * improvement, 1),
    }
    _merge_bench_json("kernel", payload)
    print("\n" + json.dumps(payload, indent=2))

    if not _gate_enabled():
        return

    assert improvement >= MIN_IMPROVEMENT, (
        f"kernel is only {100 * improvement:.1f}% faster than the pre-PR "
        f"implementation (contract: ≥{100 * MIN_IMPROVEMENT:.0f}%)"
    )

    if recorded and "legacy_events_per_sec" in recorded:
        machine_drift = abs(
            legacy["events_per_sec"] / recorded["legacy_events_per_sec"] - 1
        )
        if machine_drift <= MACHINE_TOLERANCE:
            floor = (1 - MAX_REGRESSION) * recorded["events_per_sec"]
            assert current["events_per_sec"] >= floor, (
                f"kernel throughput regressed: {current['events_per_sec']} "
                f"events/sec vs recorded baseline "
                f"{recorded['events_per_sec']} (>10% drop)"
            )
