"""Bench: wall-clock cost of the telemetry layer on the Figure 1 scenario.

Three configurations of the same scaled-down Figure 1 microreboot run are
timed:

* ``plain`` — tracing and spans disabled (the default).  Instrumentation
  publishes unconditionally and the bus/collector no-op, so no events
  exist afterwards; this run pins the *disabled-mode* overhead budget.
* ``spans`` — the causal span layer enabled (per-request call trees
  feeding a PathAnalyzer), TraceBus still off.
* ``traced`` — the TraceBus enabled, spans off.

Wall-clock comparisons are noisy, so each configuration is timed several
times interleaved and the best (least-noise) time per configuration is
compared.  The measured numbers are written to ``BENCH_telemetry.json`` at
the repository root so the perf trajectory is tracked across PRs.
"""

import json
import time
from pathlib import Path

from repro.experiments.figure1 import run_one_policy
from repro.telemetry import set_default_spans, set_default_tracing
from repro.telemetry.trace import begin_capture, end_capture

ROUNDS = 5
N_CLIENTS = 60
FAULT_TIMES = (60.0, 120.0, 180.0)
DURATION = 240.0
MAX_OVERHEAD = 0.10
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def timed_run(traced=False, spans=False):
    previous_trace = set_default_tracing(traced)
    previous_spans = set_default_spans(spans)
    scope = begin_capture()
    started = time.perf_counter()
    try:
        run_one_policy("microreboot", 0, N_CLIENTS, FAULT_TIMES, DURATION)
    finally:
        elapsed = time.perf_counter() - started
        set_default_tracing(previous_trace)
        set_default_spans(previous_spans)
        end_capture(scope)
    return elapsed, sum(bus.published for bus in scope)


def test_telemetry_overhead_under_budget():
    timed_run()  # warm up imports, JIT-less but caches still matter
    times = {"plain": [], "spans": [], "traced": []}
    events = {"plain": 0, "spans": 0, "traced": 0}
    for _ in range(ROUNDS):
        for config, kwargs in (
            ("plain", {}),
            ("spans", {"spans": True}),
            ("traced", {"traced": True}),
        ):
            elapsed, published = timed_run(**kwargs)
            times[config].append(elapsed)
            events[config] += published

    # Disabled telemetry records nothing at all; enabled records plenty.
    assert events["plain"] == 0
    assert events["traced"] > 0

    best = {config: min(series) for config, series in times.items()}
    trace_overhead = best["traced"] / best["plain"] - 1
    span_overhead = best["spans"] / best["plain"] - 1
    events_per_sec = events["traced"] / ROUNDS / best["traced"]

    report = {
        "scenario": "figure1-microreboot",
        "n_clients": N_CLIENTS,
        "sim_duration_s": DURATION,
        "rounds": ROUNDS,
        "plain_s": round(best["plain"], 4),
        "traced_s": round(best["traced"], 4),
        "spans_s": round(best["spans"], 4),
        "trace_overhead_pct": round(100 * trace_overhead, 2),
        "span_overhead_pct": round(100 * span_overhead, 2),
        "events_per_run": events["traced"] // ROUNDS,
        "events_per_sec": round(events_per_sec),
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n",
                          encoding="utf-8")
    print("\n" + json.dumps(report, indent=2))

    assert trace_overhead < MAX_OVERHEAD, (
        f"tracing added {100 * trace_overhead:.1f}% wall-clock overhead "
        f"(budget {100 * MAX_OVERHEAD:.0f}%)"
    )
    # The span layer does strictly more bookkeeping per request than the
    # bus (object per component call), so its enabled budget is looser —
    # what must stay tight is the *disabled* path, covered by "plain"
    # being the baseline every overhead above is measured against.
    assert span_overhead < 2 * MAX_OVERHEAD, (
        f"spans added {100 * span_overhead:.1f}% wall-clock overhead "
        f"(budget {100 * 2 * MAX_OVERHEAD:.0f}%)"
    )
