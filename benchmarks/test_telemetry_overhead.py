"""Bench: wall-clock cost of the telemetry layer on the Figure 1 scenario.

Two claims are measured, both on a scaled-down Figure 1 microreboot run:

* tracing *disabled* (the default) is free — the instrumentation publishes
  unconditionally and the bus no-ops, so no events exist afterwards;
* tracing *enabled* adds less than 10% wall-clock overhead, so `--trace`
  is cheap enough to leave on for any experiment run.

Wall-clock comparisons are noisy, so each configuration is timed several
times interleaved and the best (least-noise) time per configuration is
compared.
"""

import time

from repro.experiments.figure1 import run_one_policy
from repro.telemetry import set_default_tracing
from repro.telemetry.trace import begin_capture, end_capture

ROUNDS = 5
N_CLIENTS = 60
FAULT_TIMES = (60.0, 120.0, 180.0)
DURATION = 240.0
MAX_OVERHEAD = 0.10


def timed_run(traced):
    previous = set_default_tracing(traced)
    scope = begin_capture()
    started = time.perf_counter()
    try:
        run_one_policy("microreboot", 0, N_CLIENTS, FAULT_TIMES, DURATION)
    finally:
        elapsed = time.perf_counter() - started
        set_default_tracing(previous)
        end_capture(scope)
    return elapsed, sum(bus.published for bus in scope)


def test_tracing_overhead_under_ten_percent():
    timed_run(False)  # warm up imports, JIT-less but caches still matter
    plain_times, traced_times = [], []
    traced_events = plain_events = 0
    for _ in range(ROUNDS):
        elapsed, events = timed_run(False)
        plain_times.append(elapsed)
        plain_events += events
        elapsed, events = timed_run(True)
        traced_times.append(elapsed)
        traced_events += events

    # Disabled tracing records nothing at all; enabled records plenty.
    assert plain_events == 0
    assert traced_events > 0

    best_plain = min(plain_times)
    best_traced = min(traced_times)
    overhead = best_traced / best_plain - 1
    print(
        f"\nplain {best_plain:.3f}s, traced {best_traced:.3f}s "
        f"({traced_events // ROUNDS} events/run, "
        f"overhead {100 * overhead:+.1f}%)"
    )
    assert overhead < MAX_OVERHEAD, (
        f"tracing added {100 * overhead:.1f}% wall-clock overhead "
        f"(budget {100 * MAX_OVERHEAD:.0f}%)"
    )
