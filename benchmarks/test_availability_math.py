"""Bench: the §5.3/§6.1 six-nines availability arithmetic."""

from repro.experiments import availability

from benchmarks.conftest import run_once


def test_availability_math(benchmark, record_result):
    result, details = run_once(benchmark, availability.run)
    record_result("availability_math", result)
    print()
    print(result.render())

    allowed = {row[0]: row[2] for row in result.rows}
    # The paper's arithmetic: 23 / 329 / 683 recoveries per year.
    assert allowed["JVM restart + failover"] == 23
    assert abs(allowed["microreboot + failover"] - 329) <= 1
    assert allowed["microreboot, no failover"] == 683
    # Six nines with µRBs means failing almost twice a day (§6.1).
    assert allowed["microreboot, no failover"] / 365 > 1.8
    benchmark.extra_info["allowed_per_year"] = allowed
