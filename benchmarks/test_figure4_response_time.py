"""Bench: regenerate Figure 4 (response time during failover at 2× load)."""

from repro.experiments import figure4

from benchmarks.conftest import full_scale, run_once


def test_figure4_response_time(benchmark, record_result):
    if full_scale():
        kwargs = dict(full=True)
    else:
        kwargs = dict(cluster_sizes=(2, 4), clients_per_node=1000,
                      stabilize=150.0, observe=360.0)
    result, outcomes = run_once(benchmark, figure4.run, **kwargs)
    record_result("figure4_response_time", result)
    print()
    print(result.render())

    by_key = {(o["n_nodes"], o["recovery"]): o for o in outcomes}
    sizes = sorted({o["n_nodes"] for o in outcomes})
    smallest = sizes[0]
    restart = by_key[(smallest, "process-restart")]
    urb = by_key[(smallest, "microreboot")]
    # The JVM restart saturates the survivors: multi-second spike.
    assert restart["peak_response_time"] > 2.0
    # Microreboots preserve the cluster's load dynamics (§5.3).
    assert urb["peak_response_time"] < 1.0
    assert urb["peak_response_time"] < restart["peak_response_time"] / 5
    # Larger clusters absorb the failover more gracefully.
    if len(sizes) > 1:
        assert (
            by_key[(sizes[-1], "process-restart")]["peak_response_time"]
            < restart["peak_response_time"]
        )
    benchmark.extra_info["peaks"] = {
        f"{n}/{r}": round(o["peak_response_time"], 2)
        for (n, r), o in by_key.items()
    }
