"""Bench: Table 2 campaign wall-clock, sequential vs ``jobs=4``.

The 26-row fault matrix is the repo's longest campaign and the tentpole's
target workload: every row is an independent trial, so fanning them across
worker processes should cut wall-clock near-linearly while producing
byte-identical rendered output (the determinism contract).

Writes the measured wall-clocks into the ``campaign`` section of
``BENCH_kernel.json``.  The ≥3× speedup gate only binds when the machine
actually has ≥4 usable cores — a 1-core sandbox cannot demonstrate
parallel speedup, and pretending otherwise would just make the gate noise.
``REPRO_BENCH_GATE=0`` disables the gate.
"""

import time

from benchmarks.conftest import full_scale
from benchmarks.test_kernel_throughput import _gate_enabled, _merge_bench_json
from repro.experiments import table2
from repro.parallel import available_jobs, campaign_summary, run_campaign
from repro.parallel.campaign import TrialSpec

JOBS = 4
MIN_SPEEDUP = 3.0


def _timed_run(jobs, n_clients):
    started = time.perf_counter()
    result, outcomes = table2.run(seed=0, n_clients=n_clients, jobs=jobs)
    return time.perf_counter() - started, result.render(), outcomes


def test_table2_campaign_parallel_speedup():
    n_clients = 150 if full_scale() else 60
    cores = available_jobs()

    sequential_s, sequential_text, _ = _timed_run(1, n_clients)
    parallel_s, parallel_text, _ = _timed_run(JOBS, n_clients)

    assert parallel_text == sequential_text, (
        "campaign output must be byte-identical between jobs=1 and jobs=4"
    )

    # Cheap probe for how many workers the pool actually used (1 when the
    # platform lacks spawn support and the campaign fell back in-process).
    specs = [
        TrialSpec(
            task="repro.experiments.table2:run_scenario_index",
            kwargs={"index": index, "n_clients": 30},
            tag=f"bench/{index}",
            seed=0,
        )
        for index in range(len(table2._scenarios()))
    ]
    summary = campaign_summary(run_campaign(specs, jobs=JOBS))

    speedup = sequential_s / parallel_s if parallel_s else 0.0
    payload = {
        "experiment": "table2",
        "trials": summary["trials"],
        "n_clients": n_clients,
        "cores": cores,
        "jobs": JOBS,
        "workers_used": summary["workers"],
        "sequential_s": round(sequential_s, 2),
        "parallel_s": round(parallel_s, 2),
        "speedup": round(speedup, 2),
    }
    _merge_bench_json("campaign", payload)
    print(f"\ncampaign: {payload}")

    if _gate_enabled() and cores >= JOBS:
        assert speedup >= MIN_SPEEDUP, (
            f"table2 campaign at --jobs {JOBS} is only {speedup:.2f}x faster "
            f"than sequential on a {cores}-core machine "
            f"(contract: ≥{MIN_SPEEDUP:.0f}x)"
        )
