"""Bench: regenerate Figure 2 (functional disruption by group)."""

from repro.ebid.descriptors import FUNCTIONAL_GROUPS
from repro.experiments import figure2

from benchmarks.conftest import campaign_jobs, full_scale, run_once


def test_figure2_functional_disruption(benchmark, record_result):
    result, _outcomes = run_once(
        benchmark, figure2.run, full=full_scale(), jobs=campaign_jobs()
    )
    record_result("figure2_functional_disruption", result)
    print()
    print(result.render())

    gaps = {row[0]: (row[1], row[2]) for row in result.rows}
    # JVM restart: every functional group gaps for at least the restart.
    for group in FUNCTIONAL_GROUPS:
        assert gaps[group][0] >= 15.0, group
    # µRB: only the group containing the faulty component gaps at all.
    assert gaps["User Account"][1] > 0
    for group in ("Browse/View", "Search", "Bid/Buy/Sell"):
        assert gaps[group][1] == 0.0, group
    benchmark.extra_info["gaps"] = gaps
