"""Bench: regenerate Table 2 (fault → worst-case recovery level)."""

from repro.experiments import table2

from benchmarks.conftest import campaign_jobs, full_scale, run_once

#: Rows whose measured outcome is expected to differ from the paper's label
#: (documented divergences — see EXPERIMENTS.md).
KNOWN_DIVERGENCES = {
    "Corrupt session bean attrs: wrong",  # cache churn self-heals the WAR
    "Corrupt data inside FastS: wrong",  # our sweep prevents the paper's ≈
}


def test_table2_fault_matrix(benchmark, record_result):
    result, outcomes = run_once(
        benchmark, table2.run, full=full_scale(), jobs=campaign_jobs()
    )
    record_result("table2_fault_matrix", result)
    print()
    print(result.render())

    assert all(o["resuscitated"] for o in outcomes), [
        o["label"] for o in outcomes if not o["resuscitated"]
    ]
    mismatches = []
    for (label, paper, measured, _res, _rep), outcome in zip(
        result.rows, outcomes
    ):
        expected = paper.replace(" ≈", "")
        got = measured.replace(" ≈", "")
        normalized = {
            "unnecessary": "none needed",
            "none (checksum discard)": "none needed",
            "WAR (paper: WAR )": "WAR",
        }.get(expected, expected)
        if got != normalized and label not in KNOWN_DIVERGENCES:
            mismatches.append((label, paper, measured))
    assert not mismatches, mismatches
    benchmark.extra_info["rows"] = len(result.rows)
