"""Bench: regenerate Figure 5 (cheap recovery relaxes failure detection)."""

from repro.experiments import figure5

from benchmarks.conftest import campaign_jobs, full_scale, run_once


def test_figure5_lax_detection(benchmark, record_result):
    result, outcomes = run_once(
        benchmark, figure5.run, full=full_scale(), quick=not full_scale(),
        jobs=campaign_jobs(),
    )
    record_result("figure5_lax_detection", result)
    print()
    print(result.render())

    left = outcomes["left"]
    t_dets = sorted(left["microreboot"])
    # With immediate detection, µRBs are an order of magnitude cheaper.
    assert left["microreboot"][0.0] < left["process-restart"][0.0] / 10
    # Failed requests grow with detection delay for both schemes.
    assert left["microreboot"][t_dets[-1]] > left["microreboot"][0.0]
    assert left["process-restart"][t_dets[-1]] > left["process-restart"][0.0]
    # The detection headroom: µRB + tens of seconds of Tdet still beats
    # restarts with Tdet=0 (paper: ≈53.5 s of headroom).
    assert outcomes["crossover"] is not None and outcomes["crossover"] >= 20.0
    # False-positive tolerance in the high nineties (paper: ≈98%).
    assert outcomes["tolerable_fp"] > 0.9
    benchmark.extra_info["crossover_seconds"] = outcomes["crossover"]
    benchmark.extra_info["tolerable_fp"] = round(outcomes["tolerable_fp"], 4)
