"""Bench: cost of the observability layer on the chaos-campaign scenario.

Two configurations of the same smoke-sized chaos run are timed:

* ``traced`` — the TraceBus enabled but nothing subscribed: every event is
  published and ring-buffered, none is stitched.  This is the baseline the
  observability layer's cost is measured against.
* ``observed`` — the same run with the :class:`IncidentTracker` and
  :class:`SloEngine` attached (the ``repro run chaos`` default).

Both configurations publish the *same* event stream (the tracker and the
SLO engine are passive subscribers; they schedule nothing), so the honest
cost metric is event throughput: events/second through the bus must not
drop more than 10% when observability is attached.  Because the metric is
a ratio of two interleaved runs on the same machine, it is stable across
hosts in a way raw wall-clock is not.

The measured numbers are recorded in the ``overhead`` section of
``BENCH_observability.json`` (the ``cluster`` section belongs to
``benchmarks/test_cluster_observability.py``).  ``REPRO_BENCH_GATE=0``
disables the gate; ``REPRO_BENCH_REBASELINE=1`` re-records baselines.
"""

import json
import os
import time
from pathlib import Path

from benchmarks.test_kernel_throughput import _gate_enabled
from repro.experiments.chaos import ChaosClusterRig
from repro.faults.chaos import ChaosSpec

ROUNDS = 3
SEED = 0
N_NODES = 2
CLIENTS_PER_NODE = 20
TAIL = 40.0
#: Events/sec with observability attached must stay within 10% of the
#: publish-only throughput.
MAX_OVERHEAD = 0.10

BENCH_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_observability.json"
)


def _load_obs_json():
    if not BENCH_JSON.exists():
        return {}
    data = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    # Pre-PR-10 files carried the overhead payload at the top level.
    if "overhead" not in data and "cluster" not in data:
        data = {"overhead": data}
    return data


def _merge_obs_json(section, payload):
    report = _load_obs_json()
    report[section] = payload
    BENCH_JSON.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return report


def _recorded_obs(section):
    if os.environ.get("REPRO_BENCH_REBASELINE", "") not in ("", "0"):
        return None
    return _load_obs_json().get(section)


def timed_run(observability):
    rig = ChaosClusterRig(
        seed=SEED,
        n_nodes=N_NODES,
        clients_per_node=CLIENTS_PER_NODE,
        hardened=True,
        spec=ChaosSpec.smoke(),
        observability=observability,
    )
    if not observability:
        # The baseline pays for publishing the identical event stream,
        # just with no subscribers stitching it.
        rig.kernel.trace.enabled = True
    started = time.perf_counter()
    outcome = rig.run(tail=TAIL)
    elapsed = time.perf_counter() - started
    return elapsed, rig.kernel.trace.published, outcome


def test_observability_overhead_under_budget():
    timed_run(False)  # warm-up: imports and allocator caches
    times = {"traced": [], "observed": []}
    events = {"traced": 0, "observed": 0}
    outcomes = {}
    for _ in range(ROUNDS):
        for config, enabled in (("traced", False), ("observed", True)):
            elapsed, published, outcome = timed_run(enabled)
            times[config].append(elapsed)
            events[config] += published
            outcomes[config] = outcome

    # Passivity: attaching the tracker + SLO engine must not change what
    # the simulation *does* — same requests, same recoveries, same event
    # stream — only what it reports.
    for key in ("good_requests", "failed_requests", "recovery_actions"):
        assert outcomes["observed"][key] == outcomes["traced"][key], (
            f"observability perturbed the run: {key} differs "
            f"({outcomes['observed'][key]} vs {outcomes['traced'][key]})"
        )
    assert events["observed"] >= events["traced"]  # only adds slo.violated

    # And it must actually observe something on a chaos run.
    assert outcomes["observed"]["incidents"]["count"] > 0
    assert outcomes["observed"]["slo"]["windows"] > 0

    best = {config: min(series) for config, series in times.items()}
    per_run = {config: events[config] / ROUNDS for config in events}
    events_per_sec = {
        config: per_run[config] / best[config] for config in best
    }
    overhead = events_per_sec["traced"] / events_per_sec["observed"] - 1

    report = {
        "scenario": "chaos-smoke-hardened",
        "n_nodes": N_NODES,
        "clients_per_node": CLIENTS_PER_NODE,
        "rounds": ROUNDS,
        "traced_s": round(best["traced"], 4),
        "observed_s": round(best["observed"], 4),
        "events_per_run": int(per_run["observed"]),
        "traced_events_per_sec": round(events_per_sec["traced"]),
        "observed_events_per_sec": round(events_per_sec["observed"]),
        "overhead_pct": round(100 * overhead, 2),
        "incidents": outcomes["observed"]["incidents"]["count"],
        "slo_windows": outcomes["observed"]["slo"]["windows"],
        "slo_violations": outcomes["observed"]["slo"]["violations"],
    }
    _merge_obs_json("overhead", report)
    print("\n" + json.dumps(report, indent=2))

    if not _gate_enabled():
        return

    assert overhead < MAX_OVERHEAD, (
        f"observability dropped event throughput by {100 * overhead:.1f}% "
        f"(budget {100 * MAX_OVERHEAD:.0f}%): "
        f"{events_per_sec['observed']:.0f}/s observed vs "
        f"{events_per_sec['traced']:.0f}/s publish-only"
    )
