"""Bench: regenerate Table 4 (>8 s requests during failover at 2× load)."""

from repro.experiments import table4

from benchmarks.conftest import full_scale, run_once


def test_table4_slow_requests(benchmark, record_result):
    if full_scale():
        kwargs = dict(full=True)
    else:
        kwargs = dict(
            cluster_sizes=(2, 4), clients_per_node=1000,
            stabilize=150.0, observe=360.0,
        )
    result, outcomes = run_once(benchmark, table4.run, **kwargs)
    record_result("table4_slow_requests", result)
    print()
    print(result.render())

    by_key = {(o["n_nodes"], o["recovery"]): o["over_8s"] for o in outcomes}
    sizes = sorted({o["n_nodes"] for o in outcomes})
    # Microreboots never push response times past the 8 s threshold.
    for n in sizes:
        assert by_key[(n, "microreboot")] <= 1, n
    # Process restarts overload the survivors; worst at the smallest cluster.
    assert by_key[(sizes[0], "process-restart")] > 10
    for smaller, larger in zip(sizes, sizes[1:]):
        assert (
            by_key[(larger, "process-restart")]
            <= by_key[(smaller, "process-restart")]
        )
    benchmark.extra_info["over_8s"] = {str(k): v for k, v in by_key.items()}
