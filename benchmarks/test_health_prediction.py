"""Bench: health prediction — passivity, lead time, proactive gate.

Runs the quick-sized prediction campaign (reactive / shadow / proactive
arms on an identical leak-heavy fault schedule) twice — ``--jobs 1`` and
``--jobs 2`` must render byte-identical tables — and gates the
predictive stack's whole value proposition:

* **passivity** — the shadow arm (full prediction stack, policy never
  acts) must produce exactly the reactive arm's workload outcome: the
  observability layer observes without perturbing;
* **lead time** — the shadow arm's alerts must precede the incidents
  they predict (positive median lead);
* **proactive wins** — the acting arm must beat reactive with strictly
  fewer failed requests AND strictly fewer coarse (WAR-and-above)
  restarts: prediction turns OOM outages into cheap preemptive µRBs;
* **overhead** — the prediction stack (estimators, health registry,
  alert engine, heap monitors) must cost < 10% wall time versus the
  bare reactive rig (best-of-N timing to shave scheduler noise).

The measured numbers are recorded in ``BENCH_health.json``; the
committed baseline doubles as a 10% regression gate on the proactive
arm.  ``REPRO_BENCH_GATE=0`` disables the gates;
``REPRO_BENCH_REBASELINE=1`` re-records the baseline.
"""

import json
import os
import time
from pathlib import Path

from benchmarks.test_kernel_throughput import _gate_enabled
from repro.experiments import health_prediction
from repro.experiments.health_prediction import coarse_actions, run_one_arm

SEED = 0
#: Regression tolerance against the committed baseline.
MAX_REGRESSION = 0.10
#: Observability overhead ceiling: shadow arm vs reactive arm wall time.
MAX_OVERHEAD = 0.10
#: Timing repetitions (minimum taken) for the overhead measurement.
TIMING_REPS = 3

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_health.json"

#: The quick campaign's arm parameters, duplicated for the timed runs.
ARM_KWARGS = dict(
    seed=SEED, n_nodes=2, clients_per_node=20,
    leak_bytes=36 * 1024 * 1024, duration=300.0, tail=40.0,
)


def _quick(jobs):
    result, outcomes = health_prediction.run(seed=SEED, quick=True, jobs=jobs)
    return result.render(), outcomes


def _measure_overhead():
    """Shadow-vs-reactive wall-time fraction, noise-hardened.

    The two arms are interleaved (A B A B ...) so a background load
    spike hits both measurements, and each arm's *minimum* is used —
    the minimum is the run least disturbed by the scheduler, which is
    the quantity the overhead ceiling is actually about.
    """
    walls = {"reactive": [], "shadow": []}
    for _ in range(TIMING_REPS):
        for arm in walls:
            started = time.perf_counter()
            run_one_arm(arm, **ARM_KWARGS)
            walls[arm].append(time.perf_counter() - started)
    reactive, shadow = min(walls["reactive"]), min(walls["shadow"])
    return (shadow - reactive) / reactive


def test_health_prediction_determinism_and_gates():
    recorded = None
    if (
        BENCH_JSON.exists()
        and os.environ.get("REPRO_BENCH_REBASELINE", "") in ("", "0")
    ):
        recorded = json.loads(BENCH_JSON.read_text(encoding="utf-8"))

    sequential_text, outcomes = _quick(jobs=1)
    parallel_text, _ = _quick(jobs=2)

    assert parallel_text == sequential_text, (
        "prediction campaign output must be byte-identical between "
        "--jobs 1 and --jobs 2"
    )

    reactive = outcomes["reactive"]
    shadow = outcomes["shadow"]
    proactive = outcomes["proactive"]

    overhead = _measure_overhead()

    payload = {
        "spec": "quick",
        "seed": SEED,
        "reactive": {
            "failed_requests": reactive["failed_requests"],
            "recovery_actions": reactive["recovery_actions"],
            "coarse_actions": coarse_actions(reactive),
            "availability": reactive["availability"],
        },
        "shadow": {
            "alerts_fired": shadow["alerts_fired"],
            "median_alert_lead_s": shadow["median_alert_lead"],
            "warned_incidents": len(shadow["alert_lead_times"] or []),
        },
        "proactive": {
            "failed_requests": proactive["failed_requests"],
            "recovery_actions": proactive["recovery_actions"],
            "coarse_actions": coarse_actions(proactive),
            "preemptive_actions": proactive["preemptive_actions"],
            "availability": proactive["availability"],
        },
        "overhead_fraction": round(overhead, 4),
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"\nhealth-prediction: {payload}")

    if not _gate_enabled():
        return

    # Passivity: the shadow arm's workload outcome is the reactive arm's.
    for key in ("good_requests", "failed_requests", "recovery_actions",
                "availability", "actions_by_level"):
        assert shadow[key] == reactive[key], (
            f"shadow arm perturbed the run it watched: {key} is "
            f"{shadow[key]} vs reactive {reactive[key]}"
        )

    # Lead time: alerts genuinely precede the incidents they predict.
    assert shadow["alerts_fired"] > 0, "shadow arm fired no alerts"
    assert shadow["median_alert_lead"] is not None and (
        shadow["median_alert_lead"] > 0
    ), (
        f"median alert lead must be positive, got "
        f"{shadow['median_alert_lead']}"
    )

    # The headline: prediction must win on both axes, strictly.
    assert proactive["failed_requests"] < reactive["failed_requests"], (
        f"proactive arm failed {proactive['failed_requests']} requests, "
        f"reactive {reactive['failed_requests']} — prediction must "
        "strictly reduce failures"
    )
    assert coarse_actions(proactive) < coarse_actions(reactive), (
        f"proactive arm ran {coarse_actions(proactive)} coarse restarts, "
        f"reactive {coarse_actions(reactive)} — prediction must strictly "
        "reduce WAR-and-above restarts"
    )
    assert proactive["preemptive_actions"] > 0, (
        "proactive arm dispatched no preemptive µRBs — the win above "
        "would be an accident, not prediction"
    )

    # Overhead: watching must stay cheap.
    assert overhead < MAX_OVERHEAD, (
        f"prediction stack costs {overhead:.1%} wall time over the bare "
        f"reactive rig (limit {MAX_OVERHEAD:.0%})"
    )

    # Regression gate against the committed baseline.
    if recorded:
        baseline = recorded.get("proactive", {})
        for key in ("failed_requests", "coarse_actions"):
            limit = baseline.get(key, 0) * (1 + MAX_REGRESSION)
            assert payload["proactive"][key] <= limit, (
                f"proactive {key} regressed: {payload['proactive'][key]} vs "
                f"recorded {baseline.get(key)} (+{MAX_REGRESSION:.0%} "
                "allowed); re-record with REPRO_BENCH_REBASELINE=1 if "
                "intentional"
            )
