"""Frozen copy of the PRE-optimization simulation kernel (perf reference).

This is the seed repository's ``repro.sim`` hot path, verbatim except for
being self-contained (no TraceBus, no condition events — the throughput
workloads do not touch either).  ``test_kernel_throughput`` runs the same
workload against this module and against the live ``repro.sim`` in the
same interpreter, which makes the measured speedup machine-independent:
whatever box runs the benchmark, both sides see the same hardware.

Do not optimize this file.  It exists to stay slow.
"""

import heapq
import inspect
from collections import deque
from itertools import count


class SimulationError(Exception):
    pass


_PENDING = object()


class Event:
    def __init__(self, kernel):
        self.kernel = kernel
        self.callbacks = []
        self.defused = False
        self.abandoned = False
        self._value = _PENDING
        self._ok = None

    @property
    def triggered(self):
        return self._value is not _PENDING

    @property
    def processed(self):
        return self.callbacks is None

    def succeed(self, value=None):
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.kernel._schedule(self, 0.0)
        return self

    def fail(self, exception):
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.kernel._schedule(self, 0.0)
        return self


class Timeout(Event):
    def __init__(self, kernel, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(kernel)
        self.delay = delay
        self._ok = True
        self._value = value
        kernel._schedule(self, delay)


class Process(Event):
    def __init__(self, kernel, generator, name=None):
        if not inspect.isgenerator(generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(kernel)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on = None
        start = Event(kernel)
        start.callbacks.append(self._resume)
        start.succeed()

    def _resume(self, trigger):
        if self.triggered:
            return
        if (
            self._waiting_on is not None
            and trigger is not self._waiting_on
            and self._waiting_on.callbacks is not None
        ):
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on.abandoned = True
        self._waiting_on = None

        event = trigger
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event.defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.defused = False
                self.fail(exc)
                return
            if target.callbacks is None:
                event = target
                continue
            target.callbacks.append(self._resume)
            self._waiting_on = target
            return


class Queue:
    """Minimal copy of repro.sim.resources.Queue against legacy events."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._items = deque()
        self._getters = deque()

    def put(self, item):
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered or getter.abandoned:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self):
        event = Event(self.kernel)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Kernel:
    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._sequence = count()
        self.unhandled_failures = []

    @property
    def now(self):
        return self._now

    def event(self):
        return Event(self)

    def timeout(self, delay, value=None):
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        return Process(self, generator, name=name)

    def _schedule(self, event, delay):
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), event))

    def step(self):
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event.defused:
            self.unhandled_failures.append(event)

    def run(self, until=None):
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) but the clock is already at {self._now}"
            )
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = until
