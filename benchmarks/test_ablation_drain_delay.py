"""Ablation: the pre-µRB drain delay (§6.2's 200 ms rebind delay).

Sweeps the delay between binding the sentinel and destroying the component.
Longer drains let more in-flight requests complete (fewer killed threads)
at the cost of a longer total recovery — the tradeoff the paper notes it
"did not analyze".  So we analyze it.
"""

from repro.core.retry import RetryPolicy
from repro.experiments.common import ExperimentResult, SingleNodeRig

from benchmarks.conftest import run_once

DELAYS = (0.0, 0.05, 0.2, 0.5)


def run_sweep(seed=0, n_clients=150, trials=8):
    result = ExperimentResult(
        name="Ablation: pre-µRB drain delay",
        paper_reference="§6.2 (the 200 ms sentinel-rebind delay)",
        headers=("drain delay (ms)", "in-flight lost/µRB",
                 "total recovery (ms)"),
    )
    outcomes = {}
    for delay in DELAYS:
        policy = RetryPolicy(enabled=True, drain_delay=delay)
        rig = SingleNodeRig(
            seed=seed, n_clients=n_clients, retry_policy=policy,
            with_recovery_manager=False,
        )
        rig.start(warmup=30.0)
        coordinator = rig.system.coordinator
        killed = 0
        durations = []
        for trial in range(trials):
            rig.run_for(10.0)
            # An arrival burst puts requests *inside* the component when
            # the µRB begins — the in-flight requests a drain delay saves.
            # ViewBidHistory dwells ~10 ms in its bean (several entity
            # calls), so at +8 ms the burst is mid-flight.
            from repro.appserver.http import HttpRequest

            burst = [
                rig.system.server.handle_request(
                    HttpRequest(url="/ebid/ViewBidHistory",
                                operation="ViewBidHistory",
                                params={"item_id": 1 + trial * 5 + i})
                )
                for i in range(5)
            ]
            # Step the clock until the burst is demonstrably *inside*
            # the component, then start the µRB.
            container = rig.system.server.containers["ViewBidHistory"]
            deadline = rig.kernel.now + 1.0
            while not container.active_invocations and rig.kernel.peek() < deadline:
                rig.kernel.step()
            event = rig.kernel.run_until_triggered(
                rig.kernel.process(coordinator.microreboot(["ViewBidHistory"]))
            )
            durations.append(event.duration)
            rig.run_for(2.0)
            # Lost = killed mid-flight (connection reset).  Requests that
            # had not yet entered the component get 503+Retry-After and are
            # transparently retried by real clients, so they don't count.
            killed += sum(
                1 for response_event in burst
                if getattr(response_event.value, "network_error", False)
            )
        outcomes[delay] = {
            "killed_per_urb": killed / trials,
            "recovery_ms": 1000 * sum(durations) / len(durations),
        }
        result.rows.append(
            (
                round(delay * 1000),
                round(killed / trials, 2),
                round(1000 * sum(durations) / len(durations)),
            )
        )
    return result, outcomes


def test_ablation_drain_delay(benchmark, record_result):
    result, outcomes = run_once(benchmark, run_sweep)
    record_result("ablation_drain_delay", result)
    print()
    print(result.render())

    # Killed-in-flight counts must not increase with the drain delay, and a
    # generous drain should eliminate them.
    kills = [outcomes[d]["killed_per_urb"] for d in DELAYS]
    assert kills == sorted(kills, reverse=True)
    assert kills[0] > 0  # without a drain, in-flight requests die
    assert outcomes[0.5]["killed_per_urb"] == 0
    # Recovery time grows by exactly the configured drain.
    assert (
        outcomes[0.5]["recovery_ms"]
        >= outcomes[0.0]["recovery_ms"] + 450
    )
    benchmark.extra_info["sweep"] = {
        str(d): outcomes[d]["killed_per_urb"] for d in DELAYS
    }
