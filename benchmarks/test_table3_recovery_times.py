"""Bench: regenerate Table 3 (recovery times under load)."""

import pytest

from repro.experiments import table3

from benchmarks.conftest import full_scale, run_once


def test_table3_recovery_times(benchmark, record_result):
    result, rows = run_once(
        benchmark, table3.run, full=full_scale(), quick=not full_scale()
    )
    record_result("table3_recovery_times", result)
    print()
    print(result.render())

    # Every component's measured µRB within 20% of the paper's figure.
    for name, (paper_total, _crash, _reinit) in table3.PAPER_TABLE3.items():
        if name not in rows:
            continue
        measured_ms = rows[name][0] * 1000
        assert measured_ms == pytest.approx(paper_total, rel=0.20), name

    # The headline ordering: EJB µRB ≪ WAR < app restart ≪ JVM restart.
    jvm = rows["JVM/JBoss process restart"][0]
    app = rows["Entire eBid application"][0]
    war = rows["WAR (Web component)"][0]
    group = rows["EntityGroup"][0]
    assert group < war < app < jvm
    assert jvm / group > 20  # order-of-magnitude gap
    benchmark.extra_info["jvm_restart_ms"] = round(jvm * 1000)
