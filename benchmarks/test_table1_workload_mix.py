"""Bench: regenerate Table 1 (the client workload mix)."""

from repro.ebid.descriptors import OperationCategory
from repro.experiments import table1

from benchmarks.conftest import full_scale, run_once


def test_table1_workload_mix(benchmark, record_result):
    result = run_once(benchmark, table1.run, full=full_scale())
    record_result("table1_workload_mix", result)
    print()
    print(result.render())

    measured = {row[0]: row[2] for row in result.rows}
    paper = {cat.value: pct for cat, pct in table1.PAPER_MIX.items()}
    for category, paper_pct in paper.items():
        assert abs(measured[category] - paper_pct) <= 2.5, category
    benchmark.extra_info["measured_mix"] = measured
