"""Bench: regenerate Figure 3 (failover under normal load, 2-8 nodes)."""

from repro.experiments import figure3

from benchmarks.conftest import full_scale, run_once


def test_figure3_failover(benchmark, record_result):
    if full_scale():
        kwargs = dict(full=True)
    else:
        kwargs = dict(cluster_sizes=(2, 4, 6, 8), clients_per_node=150,
                      duration=600.0)
    result, outcomes = run_once(benchmark, figure3.run, **kwargs)
    record_result("figure3_failover", result)
    print()
    print(result.render())

    by_key = {(o["n_nodes"], o["recovery"]): o for o in outcomes}
    sizes = sorted({o["n_nodes"] for o in outcomes})
    for n in sizes:
        restart = by_key[(n, "process-restart")]
        urb = by_key[(n, "microreboot")]
        # µRB failover always beats restart failover, at every cluster size.
        assert urb["failed_requests"] < restart["failed_requests"] / 3, n
        # Restart failures track the failed-over session count; µRB
        # failures track the (much smaller) in-flight request count.
        assert restart["sessions_failed_over"] > 5 * urb["sessions_failed_over"], n

    # The µRB failure count stays roughly flat as the cluster grows.
    urb_counts = [by_key[(n, "microreboot")]["failed_requests"] for n in sizes]
    assert max(urb_counts) - min(urb_counts) <= max(20, 3 * min(urb_counts) + 10)

    # The *relative* benefit shrinks with cluster size (right graph).
    rel = {
        n: by_key[(n, "process-restart")]["failed_requests"]
        / max(by_key[(n, "process-restart")]["total_requests"], 1)
        for n in sizes
    }
    assert rel[sizes[0]] > rel[sizes[-1]]
    benchmark.extra_info["failed_requests"] = {
        f"{n}/{r}": by_key[(n, r)]["failed_requests"]
        for n, r in by_key
    }
