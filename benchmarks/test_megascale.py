"""Bench: the megascale scenario — 1M cohort sessions on a sharded cluster.

Three contracts gate the tentpole, all recorded in ``BENCH_scale.json``:

* **standard scale** — ``repro run megascale`` at its default scale
  (1,000,000 sessions, 128 shards) must finish both arms within a bounded
  wall-clock and driver-process memory budget.  The budgets are generous
  multiples of the measured numbers, so they catch complexity regressions
  (anything per-session where per-cohort was intended), not machine noise;
* **determinism** — the same seed must produce the same outcome payload,
  run to run and ``jobs=1`` vs ``jobs=2`` (checked at smoke scale); the
  smoke throughput also carries a 10% regression gate against the recorded
  baseline for CI;
* **small-N equivalence** — the cohort engine must match the per-client
  engine's goodput rate and action mix within the documented tolerances
  (the same contract tests/workload/test_cohort.py enforces; recorded
  here so the measured error rides the benchmark artifact).

``REPRO_BENCH_GATE=0`` disables the gates; ``REPRO_BENCH_REBASELINE=1``
re-records the baseline.
"""

import json
import os
import resource
import time
from collections import Counter
from pathlib import Path

from benchmarks.test_kernel_throughput import _gate_enabled, _merge_bench_json
from repro.ebid.schema import DatasetConfig
from repro.experiments import megascale
from repro.experiments.common import SingleNodeRig
from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry
from repro.workload.cohort import CohortEngine

BENCH_SCALE_JSON = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

#: Standard-scale budgets (measured ≈70 s / ≈130 MiB on a 1-core sandbox).
STANDARD_WALL_BUDGET_S = 240.0
STANDARD_RSS_BUDGET_MIB = 768.0
#: Smoke throughput may not drop >10% below the recorded baseline.
MAX_REGRESSION = 0.10
#: Equivalence tolerances, same numbers tests/workload/test_cohort.py gates.
GAW_RELATIVE_TOLERANCE = 0.05
ACTION_MIX_ABSOLUTE_TOLERANCE = 0.02


def _merge_scale_json(section, payload):
    report = {}
    if BENCH_SCALE_JSON.exists():
        report = json.loads(BENCH_SCALE_JSON.read_text(encoding="utf-8"))
    report[section] = payload
    BENCH_SCALE_JSON.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    return report


def _recorded(section):
    if not BENCH_SCALE_JSON.exists():
        return None
    if os.environ.get("REPRO_BENCH_REBASELINE", "") not in ("", "0"):
        return None
    return json.loads(BENCH_SCALE_JSON.read_text(encoding="utf-8")).get(section)


def _rss_mib():
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def _total_requests(outcomes):
    return sum(
        o["good_requests"] + o["failed_requests"] for o in outcomes.values()
    )


def test_megascale_standard_scale_within_budgets():
    """Both arms at 1M sessions finish inside wall-clock + memory budgets."""
    started = time.perf_counter()
    _result, outcomes = megascale.run(seed=0, scale="standard", jobs=1)
    wall = time.perf_counter() - started
    rss = _rss_mib()

    for arm, o in outcomes.items():
        assert o["sessions"] >= 1_000_000, arm
        assert o["population"] == o["sessions"], (
            f"{arm}: session population not conserved"
        )
        assert o["availability"] is not None and o["availability"] > 0.99
    # The fault arm actually exercised the recovery + failover machinery.
    faulted = outcomes["shardfault"]
    assert faulted["recovery_actions"] > 0
    assert faulted["worst_shard"]["shard"] == faulted["fault_shard"]

    requests = _total_requests(outcomes)
    payload = {
        "sessions": outcomes["steady"]["sessions"],
        "shards": outcomes["steady"]["shards"],
        "nodes": outcomes["steady"]["nodes"],
        "arms": len(outcomes),
        "requests": requests,
        "requests_per_sec": round(requests / wall),
        "wall_s": round(wall, 1),
        "wall_budget_s": STANDARD_WALL_BUDGET_S,
        "peak_rss_mib": round(rss, 1),
        "rss_budget_mib": STANDARD_RSS_BUDGET_MIB,
        "availability_steady": outcomes["steady"]["availability"],
        "availability_shardfault": faulted["availability"],
        "worst_shard_availability": faulted["worst_shard"]["availability"],
    }
    _merge_scale_json("standard", payload)
    print(f"\nmegascale standard: {payload}")

    if _gate_enabled():
        assert wall <= STANDARD_WALL_BUDGET_S, (
            f"megascale standard took {wall:.1f}s "
            f"(budget {STANDARD_WALL_BUDGET_S:.0f}s)"
        )
        assert rss <= STANDARD_RSS_BUDGET_MIB, (
            f"megascale standard peaked at {rss:.0f} MiB "
            f"(budget {STANDARD_RSS_BUDGET_MIB:.0f} MiB)"
        )


def test_megascale_smoke_determinism_and_regression():
    """Same seed ⇒ same payload; jobs=1 ≡ jobs=2; throughput regression."""
    recorded = _recorded("smoke")

    started = time.perf_counter()
    result_a, outcomes_a = megascale.run(seed=0, scale="smoke", jobs=1)
    wall = time.perf_counter() - started
    result_b, outcomes_b = megascale.run(seed=0, scale="smoke", jobs=1)
    _result_p, outcomes_p = megascale.run(seed=0, scale="smoke", jobs=2)

    assert outcomes_a == outcomes_b, "same seed must give the same payload"
    assert outcomes_a == outcomes_p, "jobs=1 and jobs=2 must agree exactly"
    # Rendered output is deterministic too, bar the final wall/RSS note.
    assert result_a.rows == result_b.rows
    assert result_a.notes[:-1] == result_b.notes[:-1]

    requests = _total_requests(outcomes_a)
    throughput = round(requests / wall)
    payload = {
        "sessions": outcomes_a["steady"]["sessions"],
        "shards": outcomes_a["steady"]["shards"],
        "requests": requests,
        "requests_per_sec": throughput,
        "wall_s": round(wall, 2),
        "availability_steady": outcomes_a["steady"]["availability"],
        "availability_shardfault": outcomes_a["shardfault"]["availability"],
    }
    _merge_scale_json("smoke", payload)
    print(f"\nmegascale smoke: {payload}")

    if _gate_enabled() and recorded and recorded.get("requests_per_sec"):
        floor = (1 - MAX_REGRESSION) * recorded["requests_per_sec"]
        assert throughput >= floor, (
            f"megascale smoke throughput regressed: {throughput} "
            f"requests/sec vs recorded {recorded['requests_per_sec']} "
            f"(>{100 * MAX_REGRESSION:.0f}% drop)"
        )


def test_small_n_equivalence_contract():
    """Cohort ↔ per-client equivalence, recorded into BENCH_scale.json."""
    n, duration = 150, 400.0
    rig = SingleNodeRig(
        seed=3,
        n_clients=n,
        dataset=DatasetConfig.tiny(),
        with_recovery_manager=False,
    )
    rig.start()
    rig.run_for(duration)
    pc = rig.metrics
    pc_gaw = pc.good_requests / duration
    mix = Counter(action.name for action in pc.actions)
    pc_mix = {name: c / sum(mix.values()) for name, c in mix.items()}
    mean_rt = pc.mean_response_time()

    kernel = Kernel()
    engine = CohortEngine(
        kernel, RngRegistry(3), lambda shard, op: (0.0, mean_rt), n, ["s0"]
    )
    engine.start(duration)
    kernel.run(until=duration)
    cohort_gaw = engine.metrics.good_requests / duration
    cohort_mix = engine.action_mix()

    gaw_diff = abs(cohort_gaw - pc_gaw) / pc_gaw
    mix_diff = max(
        abs(pc_mix.get(a, 0.0) - cohort_mix.get(a, 0.0))
        for a in set(pc_mix) | set(cohort_mix)
    )
    payload = {
        "n_clients": n,
        "duration_s": duration,
        "per_client_gaw_per_sec": round(pc_gaw, 3),
        "cohort_gaw_per_sec": round(cohort_gaw, 3),
        "gaw_relative_diff": round(gaw_diff, 4),
        "gaw_tolerance": GAW_RELATIVE_TOLERANCE,
        "max_action_mix_diff": round(mix_diff, 4),
        "action_mix_tolerance": ACTION_MIX_ABSOLUTE_TOLERANCE,
    }
    _merge_scale_json("equivalence", payload)
    print(f"\nmegascale equivalence: {payload}")

    assert gaw_diff < GAW_RELATIVE_TOLERANCE
    assert mix_diff < ACTION_MIX_ABSOLUTE_TOLERANCE
