"""Bench: chaos campaign — determinism contract + hardened-pipeline gate.

Runs the smoke-sized chaos campaign (2 nodes, fixed seed) twice:

* once with ``--jobs 1`` and once with ``--jobs 2`` — the rendered
  experiment table must be byte-identical, the determinism contract that
  lets chaos results be compared across machines and worker counts;
* the same run's outcomes feed the headline gate: the hardened pipeline
  must beat the seed pipeline on the same fault schedule with *strictly*
  fewer failed client requests AND strictly fewer recovery actions.

The measured numbers are recorded in ``BENCH_chaos.json``.  A committed
baseline doubles as a regression gate: the hardened arm's failures and
recovery-action count must not creep more than 10% above the recorded
figures.  ``REPRO_BENCH_GATE=0`` disables the gates;
``REPRO_BENCH_REBASELINE=1`` re-records the baseline.
"""

import json
import os
from pathlib import Path

from benchmarks.test_kernel_throughput import _gate_enabled
from repro.experiments import chaos

SEED = 0
#: Regression tolerance against the committed baseline.
MAX_REGRESSION = 0.10

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def _quick(jobs):
    result, outcomes = chaos.run(seed=SEED, quick=True, jobs=jobs)
    return result.render(), outcomes


def test_chaos_campaign_determinism_and_hardening_gate():
    recorded = None
    if (
        BENCH_JSON.exists()
        and os.environ.get("REPRO_BENCH_REBASELINE", "") in ("", "0")
    ):
        recorded = json.loads(BENCH_JSON.read_text(encoding="utf-8"))

    sequential_text, outcomes = _quick(jobs=1)
    parallel_text, _ = _quick(jobs=2)

    assert parallel_text == sequential_text, (
        "chaos campaign output must be byte-identical between "
        "--jobs 1 and --jobs 2"
    )

    # Observability contract: every recovery action the campaign executed
    # is attributed to exactly one incident, and each incident's phase
    # decomposition (detection/diagnosis/recovery/residual) sums to its
    # wall-clock span (tolerance covers the 6-decimal export rounding).
    for arm, outcome in outcomes.items():
        incidents = outcome["incidents"]
        assert incidents["actions_attributed"] == outcome["recovery_actions"], (
            f"{arm}: {outcome['recovery_actions']} recovery actions ran but "
            f"{incidents['actions_attributed']} were attributed to incidents"
        )
        for record in outcome["incident_records"]:
            drift = abs(sum(record["phases"].values()) - record["span"])
            assert drift < 1e-4, (
                f"{arm} incident #{record['id']} ({record['key']}): phases "
                f"sum to {sum(record['phases'].values())}, span is "
                f"{record['span']}"
            )

    seed_arm, hardened = outcomes["seed"], outcomes["hardened"]
    payload = {
        "spec": "smoke",
        "seed": SEED,
        "chaos_events": seed_arm["chaos_events"],
        "seed_pipeline": {
            "failed_requests": seed_arm["failed_requests"],
            "recovery_actions": seed_arm["recovery_actions"],
            "availability": seed_arm["availability"],
        },
        "hardened_pipeline": {
            "failed_requests": hardened["failed_requests"],
            "recovery_actions": hardened["recovery_actions"],
            "availability": hardened["availability"],
            "deferred": hardened["deferred"],
            "quarantines": hardened["quarantines"],
        },
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"\nchaos: {payload}")

    if not _gate_enabled():
        return

    # Headline gate: same fault schedule, strictly better on both axes.
    assert hardened["failed_requests"] < seed_arm["failed_requests"], (
        f"hardened pipeline failed {hardened['failed_requests']} requests, "
        f"seed pipeline {seed_arm['failed_requests']} — hardening must "
        "strictly reduce failures"
    )
    assert hardened["recovery_actions"] < seed_arm["recovery_actions"], (
        f"hardened pipeline ran {hardened['recovery_actions']} recoveries, "
        f"seed pipeline {seed_arm['recovery_actions']} — hardening must "
        "strictly reduce recovery work"
    )

    # Regression gate against the committed baseline.
    if recorded:
        baseline = recorded.get("hardened_pipeline", {})
        for key in ("failed_requests", "recovery_actions"):
            limit = baseline.get(key, 0) * (1 + MAX_REGRESSION)
            assert hardened[key] <= limit, (
                f"hardened {key} regressed: {hardened[key]} vs recorded "
                f"{baseline.get(key)} (+{MAX_REGRESSION:.0%} allowed); "
                "re-record with REPRO_BENCH_REBASELINE=1 if intentional"
            )
