"""Bench: regenerate Table 6 (masking µRBs with HTTP/1.1 Retry-After)."""

from repro.experiments import table6

from benchmarks.conftest import full_scale, run_once


def test_table6_retry_masking(benchmark, record_result):
    result, measured = run_once(
        benchmark, table6.run, full=full_scale(), quick=not full_scale()
    )
    record_result("table6_retry_masking", result)
    print()
    print(result.render())

    for component, (no_retry, retry, delay_retry) in measured.items():
        # The paper's ordering: retry masks failures, the drain delay more.
        assert no_retry >= retry >= delay_retry, component
        assert delay_retry <= 0.5, component
    # Without masking, every µRB visibly fails some requests somewhere.
    assert sum(row[0] for row in measured.values()) > 0
    benchmark.extra_info["measured"] = {
        k: list(v) for k, v in measured.items()
    }
