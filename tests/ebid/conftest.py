"""Shared fixtures for eBid tests."""

import pytest

from repro.appserver.http import HttpRequest
from repro.ebid.app import build_ebid_system
from repro.ebid.schema import DatasetConfig


@pytest.fixture
def ebid():
    """A booted single-node eBid system with a tiny dataset."""
    return build_ebid_system(dataset=DatasetConfig.tiny(), seed=7)


def issue(system, url, params=None, cookie=None, idempotent=True):
    """Issue one request and run until its response."""
    request = HttpRequest(
        url=url,
        operation=url.rsplit("/", 1)[-1],
        params=params or {},
        cookie=cookie,
        idempotent=idempotent,
    )
    event = system.server.handle_request(request)
    return system.kernel.run_until_triggered(event)


def login(system, user_id=1):
    """Log a user in; returns the session cookie."""
    response = issue(
        system,
        "/ebid/Authenticate",
        {"user_id": user_id, "password": f"pw{user_id}"},
    )
    assert response.payload.get("cookie"), response.body
    return response.payload["cookie"]
