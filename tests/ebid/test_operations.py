"""End-to-end tests of every eBid user operation through the HTTP path."""

import pytest

from repro.appserver.http import HttpStatus
from repro.ebid.descriptors import OPERATIONS
from tests.ebid.conftest import issue, login


class TestStaticOperations:
    @pytest.mark.parametrize(
        "operation",
        ["HomePage", "Browse", "Help", "LoginForm", "RegisterUserForm",
         "SellItemForm"],
    )
    def test_static_pages_serve(self, ebid, operation):
        response = issue(ebid, f"/ebid/{operation}")
        assert response.status == HttpStatus.OK
        assert "static page" in response.body


class TestSessionLifecycle:
    def test_login_issues_cookie(self, ebid):
        response = issue(
            ebid, "/ebid/Authenticate", {"user_id": 3, "password": "pw3"}
        )
        assert response.status == HttpStatus.OK
        assert response.payload["user_id"] == 3
        assert ebid.session_store.read(response.payload["cookie"]) is not None

    def test_login_with_bad_password_fails(self, ebid):
        response = issue(
            ebid, "/ebid/Authenticate", {"user_id": 3, "password": "nope"}
        )
        assert response.status == HttpStatus.INTERNAL_SERVER_ERROR

    def test_logout_deletes_session(self, ebid):
        cookie = login(ebid)
        response = issue(ebid, "/ebid/Logout", cookie=cookie)
        assert response.payload["logged_out"] == 1
        assert ebid.session_store.read(cookie) is None

    def test_register_creates_user_and_session(self, ebid):
        response = issue(
            ebid,
            "/ebid/RegisterNewUser",
            {"nickname": "fresh", "password": "x", "region_id": 1},
        )
        assert response.status == HttpStatus.OK
        user_id = response.payload["user_id"]
        assert ebid.database.read("users", user_id)["nickname"] == "fresh"
        assert ebid.session_store.read(response.payload["cookie"]) is not None

    def test_protected_op_without_login_prompts(self, ebid):
        response = issue(ebid, "/ebid/AboutMe")
        assert response.status == HttpStatus.OK
        assert response.payload["login_required"]


class TestBrowseAndSearch:
    def test_browse_categories(self, ebid):
        response = issue(ebid, "/ebid/BrowseCategories")
        assert len(response.payload["categories"]) == ebid.dataset.categories

    def test_browse_regions(self, ebid):
        response = issue(ebid, "/ebid/BrowseRegions")
        assert len(response.payload["regions"]) == ebid.dataset.regions

    def test_view_item(self, ebid):
        response = issue(ebid, "/ebid/ViewItem", {"item_id": 5})
        assert response.payload["item_id"] == 5
        assert response.payload["price"] > 0

    def test_view_missing_item_is_error(self, ebid):
        response = issue(ebid, "/ebid/ViewItem", {"item_id": 99999})
        assert response.status == HttpStatus.INTERNAL_SERVER_ERROR

    def test_view_item_is_cached_in_war(self, ebid):
        issue(ebid, "/ebid/ViewItem", {"item_id": 5})
        war = ebid.server.containers["EbidWAR"].instances[0]
        assert war.cache_get(("item", 5)) is not None

    def test_view_past_auctions_uses_old_items(self, ebid):
        response = issue(ebid, "/ebid/ViewPastAuctions")
        assert len(response.payload["old_item_ids"]) > 0

    def test_view_user_info(self, ebid):
        response = issue(ebid, "/ebid/ViewUserInfo", {"user_id": 2})
        assert response.payload["nickname"] == "user2"

    def test_view_bid_history(self, ebid):
        response = issue(ebid, "/ebid/ViewBidHistory", {"item_id": 3})
        assert response.payload["item_id"] == 3
        assert isinstance(response.payload["bid_ids"], list)

    def test_search_by_category(self, ebid):
        response = issue(
            ebid, "/ebid/SearchItemsByCategory", {"category_id": 1}
        )
        assert response.status == HttpStatus.OK
        for item_id in response.payload["item_ids"]:
            assert ebid.database.read("items", item_id)["category_id"] == 1

    def test_search_by_region(self, ebid):
        response = issue(ebid, "/ebid/SearchItemsByRegion", {"region_id": 2})
        assert response.status == HttpStatus.OK

    def test_about_me_summarizes_activity(self, ebid):
        cookie = login(ebid, user_id=1)
        response = issue(ebid, "/ebid/AboutMe", cookie=cookie)
        assert response.payload["nickname"] == "user1"
        assert "bid_count" in response.payload


class TestBidBuySellFlows:
    def _place_bid(self, ebid, cookie, item_id, increment=5):
        prepare = issue(ebid, "/ebid/MakeBid", {"item_id": item_id}, cookie)
        assert prepare.status == HttpStatus.OK
        amount = prepare.payload["current_bid"] + increment
        return issue(ebid, "/ebid/CommitBid", {"amount": amount}, cookie), amount

    def test_full_bid_flow_updates_database(self, ebid):
        cookie = login(ebid)
        before = ebid.database.read("items", 7)
        commit, amount = self._place_bid(ebid, cookie, 7)
        assert commit.payload["accepted"]
        after = ebid.database.read("items", 7)
        assert after["max_bid"] == amount
        assert after["nb_of_bids"] == before["nb_of_bids"] + 1
        assert ebid.database.read("bids", commit.payload["bid_id"]) is not None

    def test_lowball_bid_rejected(self, ebid):
        cookie = login(ebid)
        commit, _amount = self._place_bid(ebid, cookie, 7, increment=0)
        assert commit.status == HttpStatus.OK
        assert not commit.payload["accepted"]
        assert "rejected" in commit.body

    def test_commit_bid_without_selection_fails(self, ebid):
        cookie = login(ebid)
        response = issue(ebid, "/ebid/CommitBid", {"amount": 10}, cookie)
        assert response.status == HttpStatus.INTERNAL_SERVER_ERROR
        assert "session state missing" in response.body

    def test_bid_commit_invalidates_item_cache(self, ebid):
        cookie = login(ebid)
        issue(ebid, "/ebid/ViewItem", {"item_id": 7})
        war = ebid.server.containers["EbidWAR"].instances[0]
        assert war.cache_get(("item", 7)) is not None
        self._place_bid(ebid, cookie, 7)
        assert war.cache_get(("item", 7)) is None

    def test_buy_now_flow(self, ebid):
        cookie = login(ebid)
        prepare = issue(ebid, "/ebid/DoBuyNow", {"item_id": 4}, cookie)
        assert prepare.payload["buy_now_price"] > 0
        commit = issue(ebid, "/ebid/CommitBuyNow", {}, cookie)
        assert commit.payload["buy_id"] is not None
        buy = ebid.database.read("buys", commit.payload["buy_id"])
        assert buy["buyer_id"] == 1 and buy["item_id"] == 4

    def test_buy_now_depletes_quantity(self, ebid):
        cookie = login(ebid)
        before = ebid.database.read("items", 4)["quantity"]
        issue(ebid, "/ebid/DoBuyNow", {"item_id": 4}, cookie)
        issue(ebid, "/ebid/CommitBuyNow", {}, cookie)
        assert ebid.database.read("items", 4)["quantity"] == before - 1

    def test_sold_out_item_is_polite_response(self, ebid):
        cookie = login(ebid)
        item_id = 4
        quantity = ebid.database.read("items", item_id)["quantity"]
        for _ in range(quantity + 1):
            issue(ebid, "/ebid/DoBuyNow", {"item_id": item_id}, cookie)
            commit = issue(ebid, "/ebid/CommitBuyNow", {}, cookie)
        assert commit.status == HttpStatus.OK
        assert commit.payload.get("sold_out")

    def test_register_new_item(self, ebid):
        cookie = login(ebid, user_id=2)
        response = issue(
            ebid,
            "/ebid/RegisterNewItem",
            {"name": "rare vase", "category_id": 2, "region_id": 1,
             "initial_price": 50},
            cookie,
        )
        item = ebid.database.read("items", response.payload["item_id"])
        assert item["seller_id"] == 2
        assert item["max_bid"] == 50

    def test_feedback_flow_updates_rating(self, ebid):
        cookie = login(ebid, user_id=1)
        before = ebid.database.read("users", 2)["rating"]
        issue(ebid, "/ebid/LeaveUserFeedback", {"to_user_id": 2}, cookie)
        response = issue(
            ebid, "/ebid/CommitUserFeedback",
            {"rating": 1, "comment": "great"}, cookie,
        )
        assert response.payload["to_user_id"] == 2
        assert ebid.database.read("users", 2)["rating"] == before + 1


class TestOperationMetadata:
    def test_twenty_five_operations(self):
        assert len(OPERATIONS) == 25

    def test_commit_operations_not_idempotent(self):
        for name in ("CommitBid", "CommitBuyNow", "RegisterNewItem",
                     "CommitUserFeedback", "RegisterNewUser"):
            _category, idempotent, _group = OPERATIONS[name]
            assert not idempotent, name

    def test_reads_are_idempotent(self):
        for name in ("ViewItem", "BrowseCategories", "SearchItemsByCategory",
                     "AboutMe", "HomePage"):
            _category, idempotent, _group = OPERATIONS[name]
            assert idempotent, name
