"""Unit tests for the eBid schema and dataset generator."""

import random

import pytest

from repro.ebid.schema import (
    DatasetConfig,
    KEYED_TABLES,
    TABLES,
    create_schema,
    populate_dataset,
)
from repro.sim import Kernel
from repro.stores.database import Database


def make_db(config=None):
    database = Database(Kernel())
    create_schema(database)
    populate_dataset(database, random.Random(0), config or DatasetConfig.tiny())
    return database


def test_all_tables_created():
    database = Database(Kernel())
    create_schema(database)
    assert set(database.tables) == set(TABLES)


def test_row_counts_match_config():
    config = DatasetConfig.tiny()
    database = make_db(config)
    assert database.count("users") == config.users
    assert database.count("items") == config.items
    assert database.count("bids") == config.bids
    assert database.count("old_items") == config.old_items
    assert database.count("feedback") == config.feedback


def test_scaled_config_preserves_paper_ratios():
    full = DatasetConfig.scaled(100)
    assert full.users == 10_000
    assert full.items == 132_000
    assert full.bids == 1_500_000


def test_default_is_one_percent_of_paper():
    config = DatasetConfig()
    assert config.items / config.users == pytest.approx(13.2)
    assert config.bids / config.items == pytest.approx(11.36, rel=0.01)


def test_items_reference_valid_sellers_and_categories(ebid=None):
    config = DatasetConfig.tiny()
    database = make_db(config)
    for item in database.tables["items"].rows.values():
        assert 1 <= item["seller_id"] <= config.users
        assert 1 <= item["category_id"] <= config.categories
        assert 1 <= item["region_id"] <= config.regions


def test_item_aggregates_consistent_with_bids():
    database = make_db()
    for pk, item in database.tables["items"].rows.items():
        bids = database.select("bids", item_id=pk)
        assert item["nb_of_bids"] == len(bids)
        if bids:
            assert item["max_bid"] == max(b["amount"] for b in bids)
        else:
            assert item["max_bid"] == item["initial_price"]


def test_bid_amounts_strictly_increase_per_item():
    database = make_db()
    per_item = {}
    for pk in sorted(database.tables["bids"].rows):
        bid = database.tables["bids"].rows[pk]
        amounts = per_item.setdefault(bid["item_id"], [])
        if amounts:
            assert bid["amount"] > amounts[-1]
        amounts.append(bid["amount"])


def test_sequences_seeded_above_existing_keys():
    database = make_db()
    for row in database.tables["id_sequences"].rows.values():
        assert row["next_value"] == database.max_pk(row["relation"]) + 1
    assert {r["relation"] for r in database.tables["id_sequences"].rows.values()} == set(
        KEYED_TABLES
    )


def test_same_seed_same_dataset():
    first = make_db()
    second = make_db()
    assert first.snapshot("items") == second.snapshot("items")
    assert first.snapshot("bids") == second.snapshot("bids")


def test_oversized_config_rejected():
    database = Database(Kernel())
    create_schema(database)
    with pytest.raises(ValueError):
        populate_dataset(
            database, random.Random(0), DatasetConfig(categories=999)
        )
