"""Tests for the database integrity audit and manual repair."""

import random

from repro.ebid.audit import audit_database, manual_repair
from repro.ebid.schema import DatasetConfig, create_schema, populate_dataset
from repro.sim import Kernel
from repro.stores.database import Database


def make_db():
    database = Database(Kernel())
    create_schema(database)
    populate_dataset(database, random.Random(3), DatasetConfig.tiny())
    return database


def snapshots(database):
    return {name: database.snapshot(name) for name in database.tables}


def test_fresh_dataset_is_clean():
    assert audit_database(make_db()) == []


def test_detects_out_of_range_keys():
    database = make_db()
    database.insert("feedback", {"id": 50_000, "from_user_id": 1,
                                 "to_user_id": 2, "rating": 1, "comment": "x"})
    violations = audit_database(database)
    assert any("high-water" in v for v in violations)


def test_detects_negative_keys():
    database = make_db()
    database.tables["bids"].put_row(-5, {"id": -5, "item_id": 1,
                                         "user_id": 1, "amount": 1,
                                         "quantity": 1})
    assert any("non-positive" in v for v in audit_database(database))


def test_detects_aggregate_mismatch():
    database = make_db()
    database._corrupt_row("items", 3, "nb_of_bids", 999)
    assert any("nb_of_bids" in v for v in audit_database(database))


def test_detects_max_bid_mismatch():
    database = make_db()
    item = database.read("items", 5)
    database._corrupt_row("items", 5, "max_bid", item["max_bid"] + 12345)
    assert any("max_bid" in v for v in audit_database(database))


def test_detects_duplicate_bid_amounts():
    database = make_db()
    bid = database.read("bids", 1)
    clone = dict(bid)
    clone["id"] = database.max_pk("bids")  # below high-water mark
    database.tables["bids"].put_row(clone["id"], clone)
    assert any("duplicate amount" in v for v in audit_database(database))


def test_detects_type_corruption():
    database = make_db()
    database._corrupt_row("items", 2, "max_bid", "garbage")
    assert any("max_bid" in v for v in audit_database(database))


def test_repair_fixes_out_of_range_rows():
    database = make_db()
    reference = snapshots(database)
    database.insert("feedback", {"id": 50_000, "from_user_id": 1,
                                 "to_user_id": 2, "rating": 1, "comment": "x"})
    touched = manual_repair(database, reference)
    assert touched >= 1
    assert audit_database(database) == []
    assert database.read("feedback", 50_000) is None


def test_repair_restores_corrupted_fields_and_aggregates():
    database = make_db()
    reference = snapshots(database)
    database._corrupt_row("items", 2, "max_bid", "garbage")
    database._corrupt_row("items", 3, "nb_of_bids", 999)
    manual_repair(database, reference)
    assert audit_database(database) == []


def test_repair_preserves_legit_new_rows():
    database = make_db()
    reference = snapshots(database)
    # A legitimate new bid, within the allocated range, after the snapshot.
    seq = [r for r in database.tables["id_sequences"].rows.values()
           if r["relation"] == "bids"][0]
    new_id = seq["next_value"]
    database.update("id_sequences", seq["id"], {"next_value": new_id + 1})
    item = database.read("items", 1)
    database.insert("bids", {"id": new_id, "item_id": 1, "user_id": 1,
                             "amount": item["max_bid"] + 7, "quantity": 1})
    database.update("items", 1, {"max_bid": item["max_bid"] + 7,
                                 "nb_of_bids": item["nb_of_bids"] + 1})
    manual_repair(database, reference)
    assert database.read("bids", new_id) is not None
    assert audit_database(database) == []
