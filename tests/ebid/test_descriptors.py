"""Tests for eBid's deployment descriptors and metadata maps."""

import pytest

from repro.appserver.descriptors import ComponentKind
from repro.core.recovery_groups import compute_recovery_groups
from repro.ebid.descriptors import (
    ENTITY_GROUP,
    FUNCTIONAL_GROUPS,
    OPERATIONS,
    URL_PATH_MAP,
    ebid_descriptors,
    operation_url,
)


def test_component_inventory_matches_paper():
    """9 entity beans + 17 stateless session beans + the WAR (§3.3)."""
    descriptors = ebid_descriptors()
    by_kind = {}
    for descriptor in descriptors:
        by_kind.setdefault(descriptor.kind, []).append(descriptor.name)
    assert len(by_kind[ComponentKind.ENTITY]) == 9
    assert len(by_kind[ComponentKind.STATELESS_SESSION]) == 17
    assert by_kind[ComponentKind.WEB] == ["EbidWAR"]


def test_entity_group_is_the_papers():
    groups = compute_recovery_groups(ebid_descriptors())
    assert groups["Item"] == ENTITY_GROUP
    assert ENTITY_GROUP == {"Category", "Region", "User", "Item", "Bid"}


def test_non_group_components_are_singletons():
    groups = compute_recovery_groups(ebid_descriptors())
    for name in ("IdentityManager", "OldItem", "UserFeedback", "BuyNow",
                 "ViewItem", "EbidWAR"):
        assert groups[name] == frozenset({name}), name


def test_entity_group_times_match_table3():
    """Group crash 36 ms, group reinit 789 ms (Table 3's EntityGroup row)."""
    descriptors = {d.name: d for d in ebid_descriptors()}
    crash = sum(descriptors[n].crash_time for n in ENTITY_GROUP)
    reinit = sum(descriptors[n].reinit_time for n in ENTITY_GROUP)
    assert crash == pytest.approx(0.036)
    assert reinit == pytest.approx(0.789)


def test_individual_urb_times_in_paper_range():
    """Table 3: individual EJB µRBs range 411-601 ms."""
    for descriptor in ebid_descriptors():
        if descriptor.kind is ComponentKind.WEB:
            continue
        if descriptor.name in ENTITY_GROUP:
            continue
        assert 0.411 <= descriptor.microreboot_time <= 0.601, descriptor.name


def test_war_times_match_table3():
    war = next(d for d in ebid_descriptors() if d.name == "EbidWAR")
    assert war.crash_time == pytest.approx(0.071)
    assert war.reinit_time == pytest.approx(0.957)


def test_every_operation_has_a_url_path():
    for operation in OPERATIONS:
        url = operation_url(operation)
        assert url in URL_PATH_MAP, url


def test_url_paths_reference_real_components():
    names = {d.name for d in ebid_descriptors()}
    for url, path in URL_PATH_MAP.items():
        assert path[0] == "EbidWAR", url
        for component in path:
            assert component in names, (url, component)


def test_functional_groups_cover_all_operations():
    for name, (_category, _idempotent, group) in OPERATIONS.items():
        assert group in FUNCTIONAL_GROUPS, name


def test_identity_manager_is_single_instance():
    descriptor = next(d for d in ebid_descriptors() if d.name == "IdentityManager")
    assert descriptor.pool_size == 1
