"""Tests for the ASCII figure renderers."""

from repro.experiments.plotting import (
    ascii_bars,
    ascii_gap_chart,
    ascii_timeseries,
)


class TestTimeseries:
    def test_empty_series(self):
        assert "no data" in ascii_timeseries({}, label="x ")

    def test_flat_series_renders_full_rows(self):
        chart = ascii_timeseries({i: 5.0 for i in range(50)}, width=40, height=4)
        lines = chart.splitlines()
        assert len(lines) == 6  # header + 4 rows + axis
        assert "▮" in lines[1]

    def test_dip_shows_as_gap_in_top_rows(self):
        series = {i: (0.0 if 40 <= i < 60 else 100.0) for i in range(100)}
        chart = ascii_timeseries(series, width=50, height=8)
        top_row = chart.splitlines()[1]
        assert " " in top_row.strip("▮") or top_row.count("▮") < 50

    def test_header_reports_ranges(self):
        chart = ascii_timeseries({0: 1.0, 10: 9.0}, label="taw")
        assert "taw" in chart
        assert "x: 0..10" in chart

    def test_single_point(self):
        chart = ascii_timeseries({5.0: 42.0}, width=10, height=3)
        assert "▮" in chart


class TestGapChart:
    def test_gaps_blank_out_cells(self):
        chart = ascii_gap_chart(
            {"Search": [(10, 20)], "Browse": []}, window=(0, 100), width=50
        )
        search_line = next(l for l in chart.splitlines() if "Search" in l)
        browse_line = next(l for l in chart.splitlines() if "Browse" in l)
        assert " " in search_line.split("|")[1]
        assert " " not in browse_line.split("|")[1]

    def test_axis_labels(self):
        chart = ascii_gap_chart({"G": []}, window=(100, 200))
        assert "t=100s" in chart and "t=200s" in chart


class TestBars:
    def test_empty(self):
        assert "no data" in ascii_bars({})

    def test_proportional_lengths(self):
        chart = ascii_bars({"big": 100, "small": 10}, width=50)
        big = next(l for l in chart.splitlines() if "big" in l)
        small = next(l for l in chart.splitlines() if "small" in l)
        assert big.count("▮") > 4 * small.count("▮")

    def test_zero_value_has_no_bar(self):
        chart = ascii_bars({"zero": 0, "one": 1})
        zero_line = next(l for l in chart.splitlines() if "zero" in l)
        assert "▮" not in zero_line
