"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiment


def test_every_experiment_registered():
    expected = {f"table{i}" for i in range(1, 7)} | {
        f"figure{i}" for i in range(1, 7)
    } | {"availability", "pathdiag", "chaos", "prediction", "megascale",
         "storm"}
    assert set(EXPERIMENTS) == expected


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_availability(capsys):
    assert main(["run", "availability"]) == 0
    out = capsys.readouterr().out
    assert "683" in out
    assert "regenerated in" in out


def test_run_writes_output_file(tmp_path, capsys):
    assert main(["run", "availability", "--out-dir", str(tmp_path)]) == 0
    written = tmp_path / "availability.txt"
    assert written.exists()
    assert "six-nines" in written.read_text()


def test_run_experiment_handles_signatures():
    result = run_experiment("availability")
    assert result.rows


def test_unknown_experiment_exits_nonzero_with_one_line_error(capsys):
    # Same error contract as the trace/paths subcommands: exit code 2 and a
    # single "error: ..." line on stderr, never a traceback or usage dump.
    # The message points at the scenario listing (`repro run --list`).
    assert main(["run", "nope"]) == 2
    captured = capsys.readouterr()
    assert captured.err == (
        "error: unknown experiment: nope (see 'repro run --list')\n"
    )
    assert captured.out == ""


def test_run_list_enumerates_scenarios(capsys):
    assert main(["run", "--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_without_experiment_points_at_list(capsys):
    assert main(["run"]) == 2
    captured = capsys.readouterr()
    assert captured.err == (
        "error: missing experiment name (see 'repro run --list')\n"
    )
    assert captured.out == ""


def test_run_experiment_raises_on_unknown_name():
    with pytest.raises(ValueError, match="unknown experiment: 'nope'"):
        run_experiment("nope")


def test_parser_flags():
    args = build_parser().parse_args(
        ["run", "figure1", "--quick", "--seed", "9"]
    )
    assert args.quick and args.seed == 9 and not args.full
    assert args.jobs == 1


def test_parser_jobs_flag():
    args = build_parser().parse_args(["run", "table2", "--jobs", "4"])
    assert args.jobs == 4


def test_trace_forces_sequential_run(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    assert main(["run", "availability", "--jobs", "4",
                 "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "--trace forces --jobs 1" in out
    assert trace.exists()
