"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiment


def test_every_experiment_registered():
    expected = {f"table{i}" for i in range(1, 7)} | {
        f"figure{i}" for i in range(1, 7)
    } | {"availability", "pathdiag"}
    assert set(EXPERIMENTS) == expected


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_run_availability(capsys):
    assert main(["run", "availability"]) == 0
    out = capsys.readouterr().out
    assert "683" in out
    assert "regenerated in" in out


def test_run_writes_output_file(tmp_path, capsys):
    assert main(["run", "availability", "--out-dir", str(tmp_path)]) == 0
    written = tmp_path / "availability.txt"
    assert written.exists()
    assert "six-nines" in written.read_text()


def test_run_experiment_handles_signatures():
    result = run_experiment("availability")
    assert result.rows


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "nope"])


def test_parser_flags():
    args = build_parser().parse_args(
        ["run", "figure1", "--quick", "--seed", "9"]
    )
    assert args.quick and args.seed == 9 and not args.full
