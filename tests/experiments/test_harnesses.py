"""Smoke tests for the experiment harnesses (scaled-down parameters).

The full qualitative assertions live in benchmarks/; these tests verify the
harness plumbing — result structure, rendering, and the core directional
claims — at sizes that keep the unit-test suite fast.
"""

import pytest

from repro.experiments import availability, figure5, table1
from repro.experiments.common import ExperimentResult, SingleNodeRig


class TestExperimentResult:
    def test_render_contains_rows_and_notes(self):
        result = ExperimentResult(
            name="X", paper_reference="Table 9",
            headers=("a", "b"), rows=[(1, 2), (3, 4)],
            notes=["hello"],
        )
        text = result.render()
        assert "Table 9" in text
        assert "hello" in text
        assert "3" in text

    def test_render_mentions_series(self):
        result = ExperimentResult(name="X", paper_reference="F",
                                  series={"s": {1: 2}})
        assert "series s" in result.render()


class TestSingleNodeRig:
    def test_rig_serves_load_without_failures(self):
        rig = SingleNodeRig(n_clients=30, with_recovery_manager=False)
        rig.start()
        rig.run_for(120.0)
        assert rig.metrics.failed_requests == 0
        assert rig.metrics.good_requests > 100

    def test_failures_in_last_window(self):
        rig = SingleNodeRig(n_clients=30, with_recovery_manager=False)
        rig.start()
        rig.run_for(60.0)
        rig.injector.inject_transient_exception("BrowseCategories")
        rig.run_for(60.0)
        assert rig.failures_in_last(60.0) > 0

    def test_shadow_tracks_main(self):
        rig = SingleNodeRig(
            n_clients=20, with_recovery_manager=False,
            with_comparison_detector=True,
        )
        rig.start()
        rig.run_for(90.0)
        # No faults: the comparison detector never fires.
        assert rig.metrics.failed_requests == 0

    def test_resync_shadow_copies_tables(self):
        rig = SingleNodeRig(
            n_clients=5, with_recovery_manager=False,
            with_comparison_detector=True,
        )
        rig.system.database.insert("items", {
            "id": 99_999, "name": "only-on-main", "seller_id": 1,
            "category_id": 1, "region_id": 1, "initial_price": 1,
            "max_bid": 1, "nb_of_bids": 0, "quantity": 1,
            "buy_now_price": 2,
        })
        rig.resync_shadow()
        assert rig.shadow.database.read("items", 99_999) is not None


class TestTable1Harness:
    def test_mix_lands_near_paper(self):
        result = table1.run(n_clients=80, duration=600.0)
        measured = {row[0]: row[2] for row in result.rows}
        for category, paper_pct in (
            ("read-only DB access", 32),
            ("session state init/delete", 23),
        ):
            assert abs(measured[category] - paper_pct) < 4.0


class TestAvailabilityHarness:
    def test_paper_arithmetic(self):
        result, details = availability.run()
        allowed = {row[0]: row[2] for row in result.rows}
        assert allowed["JVM restart + failover"] == 23
        assert allowed["microreboot, no failover"] == 683

    def test_measured_inputs_flow_through(self):
        result, details = availability.run(
            measured_failed_per_recovery={"custom scheme": 533}
        )
        assert result.rows[0][0] == "custom scheme"
        budget = details["custom scheme"]["failure_budget"]
        assert result.rows[0][2] == int(budget / 533)


class TestFigure5Analytics:
    def test_false_positive_series_shapes(self):
        restart, urb, tolerable = figure5.false_positive_series(3917, 78)
        assert restart[0] == 3917
        assert urb[0] == 78
        assert urb[10] == 11 * 78
        # The paper's 98%: 49 useless µRBs still beat one restart.
        assert tolerable == pytest.approx(0.98, abs=0.005)

    def test_detection_crossover(self):
        restart = {0.0: 1000, 10.0: 1200}
        urb = {0.0: 10, 10.0: 300, 20.0: 900, 40.0: 1500}
        crossover, budget = figure5.detection_crossover(restart, urb)
        assert budget == 1000
        assert crossover == 20.0
