"""A minimal application for platform-level tests.

Keeps the appserver/core/stores tests independent of the full eBid
application: two group-coupled entity beans, a standalone entity bean, a
stateless session bean, and a tiny WAR.
"""

from types import SimpleNamespace

from repro.appserver import (
    ApplicationServer,
    DeploymentDescriptor,
    EntityBean,
    StatelessSessionBean,
    WebComponent,
)
from repro.appserver.descriptors import ComponentKind, TxAttribute
from repro.appserver.http import HttpRequest, HttpResponse, HttpStatus
from repro.appserver.timing import TimingModel
from repro.core import MicrorebootCoordinator, RetryPolicy
from repro.sim import Kernel, RngRegistry
from repro.stores import Database, FastS


class AccountBean(EntityBean):
    """Entity bean: one row per account, group-coupled with LedgerBean."""

    def balance(self, ctx, account_id):
        row = yield from self.ejb_load(ctx, account_id)
        if row is None:
            raise self.app_error(f"no account {account_id}")
        return row["balance"]

    def adjust(self, ctx, account_id, delta):
        row = yield from self.ejb_load(ctx, account_id)
        if row is None:
            raise self.app_error(f"no account {account_id}")
        yield from self.ejb_store(ctx, account_id, balance=row["balance"] + delta)


class LedgerBean(EntityBean):
    """Entity bean: append-only transfer log, group-coupled with Account."""

    def record(self, ctx, entry_id, account_id, delta):
        yield from self.ejb_create(
            ctx, {"id": entry_id, "account_id": account_id, "delta": delta}
        )

    def entries_for(self, ctx, account_id):
        rows = yield from self.ejb_find(ctx, account_id=account_id)
        return rows


class AuditBean(EntityBean):
    """Entity bean outside any recovery group."""

    def note(self, ctx, note_id, text):
        yield from self.ejb_create(ctx, {"id": note_id, "text": text})


class TransferBean(StatelessSessionBean):
    """Stateless session bean: a two-write transactional operation."""

    def __init__(self):
        super().__init__()
        self.fee = 0  # instance attribute, corruptible by fault injection

    def transfer(self, ctx, entry_id, account_id, delta):
        if self.fee is None:
            raise self.app_error("fee attribute is null")
        yield from ctx.consume(0.001)
        yield from ctx.call("Account", "adjust", account_id, delta - self.fee)
        yield from ctx.call("Ledger", "record", entry_id, account_id, delta)
        return delta - self.fee


class GreeterBean(StatelessSessionBean):
    """Stateless session bean with no persistence."""

    def greet(self, ctx, who):
        yield from ctx.consume(0.01)
        return f"hello {who}"


class ToyWar(WebComponent):
    def on_start(self):
        self.register_servlet("/toy/greet", self.greet_servlet)
        self.register_servlet("/toy/transfer", self.transfer_servlet)
        self.register_servlet("/toy/balance", self.balance_servlet)

    def greet_servlet(self, ctx, request):
        text = yield from ctx.call("Greeter", "greet", request.params.get("who", "world"))
        return HttpResponse(HttpStatus.OK, body=text, payload={"text": text})

    def transfer_servlet(self, ctx, request):
        amount = yield from ctx.call(
            "Transfer",
            "transfer",
            request.params["entry_id"],
            request.params["account_id"],
            request.params["delta"],
        )
        return HttpResponse(HttpStatus.OK, body=f"moved {amount}", payload={"amount": amount})

    def balance_servlet(self, ctx, request):
        balance = yield from ctx.call("Account", "balance", request.params["account_id"])
        return HttpResponse(HttpStatus.OK, body=f"balance {balance}", payload={"balance": balance})


def toy_descriptors():
    """Deployment descriptors; small recovery times keep tests quick."""
    return [
        DeploymentDescriptor(
            name="Account",
            kind=ComponentKind.ENTITY,
            factory=AccountBean,
            table="accounts",
            group_references=("Ledger",),
            crash_time=0.005,
            reinit_time=0.100,
            tx_methods={"adjust": TxAttribute.SUPPORTS},
        ),
        DeploymentDescriptor(
            name="Ledger",
            kind=ComponentKind.ENTITY,
            factory=LedgerBean,
            table="ledger",
            crash_time=0.005,
            reinit_time=0.120,
            tx_methods={"record": TxAttribute.SUPPORTS},
        ),
        DeploymentDescriptor(
            name="Audit",
            kind=ComponentKind.ENTITY,
            factory=AuditBean,
            table="audit",
            crash_time=0.005,
            reinit_time=0.080,
        ),
        DeploymentDescriptor(
            name="Transfer",
            kind=ComponentKind.STATELESS_SESSION,
            factory=TransferBean,
            references=("Account", "Ledger"),
            crash_time=0.004,
            reinit_time=0.150,
            tx_methods={"transfer": TxAttribute.REQUIRED},
        ),
        DeploymentDescriptor(
            name="Greeter",
            kind=ComponentKind.STATELESS_SESSION,
            factory=GreeterBean,
            crash_time=0.004,
            reinit_time=0.090,
        ),
        DeploymentDescriptor(
            name="ToyWAR",
            kind=ComponentKind.WEB,
            factory=ToyWar,
            crash_time=0.010,
            reinit_time=0.300,
            pool_size=1,
        ),
    ]


URL_PATH_MAP = {
    "/toy/greet": ("ToyWAR", "Greeter"),
    "/toy/transfer": ("ToyWAR", "Transfer", "Account", "Ledger"),
    "/toy/balance": ("ToyWAR", "Account"),
}


def build_toy_system(seed=0, retry_policy=None, jitter=0.0):
    """A booted single-node toy system, clock at 0 after a warm boot."""
    kernel = Kernel()
    rng = RngRegistry(seed)
    timing = TimingModel(jitter=jitter)
    server = ApplicationServer(kernel, rng.stream("server"), timing=timing)
    database = Database(kernel)
    for table in ("accounts", "ledger", "audit"):
        database.create_table(table)
    database.insert("accounts", {"id": 1, "balance": 100})
    database.insert("accounts", {"id": 2, "balance": 50})
    server.database = database
    server.session_store = FastS()
    server.deploy("toy", toy_descriptors())
    kernel.run_until_triggered(kernel.process(server.boot(cold=False)))
    coordinator = MicrorebootCoordinator(
        server, "toy", retry_policy=retry_policy or RetryPolicy.disabled()
    )
    return SimpleNamespace(
        kernel=kernel,
        rng=rng,
        server=server,
        database=database,
        coordinator=coordinator,
    )


def issue(system, url, params=None, idempotent=True):
    """Issue one request and run the simulation until its response."""
    request = HttpRequest(url=url, operation=url.rsplit("/", 1)[-1], params=params or {}, idempotent=idempotent)
    event = system.server.handle_request(request)
    return system.kernel.run_until_triggered(event)
