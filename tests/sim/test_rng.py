"""Unit tests for deterministic named RNG streams."""

from repro.sim import RngRegistry
from repro.sim.rng import derive_seed


def test_same_name_same_stream_object():
    registry = RngRegistry(7)
    assert registry.stream("clients") is registry.stream("clients")


def test_streams_are_deterministic_across_registries():
    first = RngRegistry(42).stream("faults")
    second = RngRegistry(42).stream("faults")
    assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]


def test_different_names_give_independent_streams():
    registry = RngRegistry(42)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_give_different_streams():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_derive_seed_is_stable():
    assert derive_seed(0, "name") == derive_seed(0, "name")
    assert derive_seed(0, "name") != derive_seed(0, "other")


def test_exponential_respects_maximum():
    registry = RngRegistry(0)
    draws = [registry.exponential("think", mean=7.0, maximum=70.0) for _ in range(2000)]
    assert all(0.0 <= d <= 70.0 for d in draws)


def test_exponential_mean_roughly_correct():
    registry = RngRegistry(123)
    draws = [registry.exponential("think", mean=7.0) for _ in range(20000)]
    mean = sum(draws) / len(draws)
    assert 6.5 < mean < 7.5
