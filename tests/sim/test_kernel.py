"""Unit tests for the simulation kernel: clock, events, ordering."""

import pytest

from repro.sim import Event, Kernel, SimulationError


def test_clock_starts_at_zero():
    assert Kernel().now == 0.0


def test_timeout_advances_clock():
    kernel = Kernel()
    seen = []

    def proc():
        yield kernel.timeout(2.5)
        seen.append(kernel.now)

    kernel.process(proc())
    kernel.run()
    assert seen == [2.5]


def test_timeout_carries_value():
    kernel = Kernel()
    got = []

    def proc():
        value = yield kernel.timeout(1.0, value="payload")
        got.append(value)

    kernel.process(proc())
    kernel.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.timeout(-1.0)


def test_run_until_stops_clock_exactly():
    kernel = Kernel()

    def proc():
        while True:
            yield kernel.timeout(10.0)

    kernel.process(proc())
    kernel.run(until=25.0)
    assert kernel.now == 25.0


def test_run_until_does_not_process_later_events():
    kernel = Kernel()
    fired = []

    def proc():
        yield kernel.timeout(30.0)
        fired.append(kernel.now)

    kernel.process(proc())
    kernel.run(until=25.0)
    assert fired == []
    kernel.run(until=35.0)
    assert fired == [30.0]


def test_run_backwards_rejected():
    kernel = Kernel()
    kernel.run(until=10.0)
    with pytest.raises(SimulationError):
        kernel.run(until=5.0)


def test_same_time_events_fifo_order():
    kernel = Kernel()
    order = []

    def proc(tag):
        yield kernel.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        kernel.process(proc(tag))
    kernel.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_resumes_waiter():
    kernel = Kernel()
    event = kernel.event()
    got = []

    def waiter():
        value = yield event
        got.append(value)

    def trigger():
        yield kernel.timeout(5.0)
        event.succeed(42)

    kernel.process(waiter())
    kernel.process(trigger())
    kernel.run()
    assert got == [42]


def test_event_fail_raises_in_waiter():
    kernel = Kernel()
    event = kernel.event()
    caught = []

    def waiter():
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    def trigger():
        yield kernel.timeout(1.0)
        event.fail(ValueError("boom"))

    kernel.process(waiter())
    kernel.process(trigger())
    kernel.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    kernel = Kernel()
    event = kernel.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError("late"))


def test_event_fail_requires_exception():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.event().fail("not an exception")


def test_value_before_trigger_rejected():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        _ = kernel.event().value


def test_unhandled_failed_event_is_collected():
    kernel = Kernel()
    kernel.event().fail(RuntimeError("orphan"))
    kernel.run()
    assert len(kernel.unhandled_failures) == 1


def test_handled_failed_event_not_collected():
    kernel = Kernel()
    event = kernel.event()

    def waiter():
        try:
            yield event
        except RuntimeError:
            pass

    kernel.process(waiter())
    event.fail(RuntimeError("handled"))
    kernel.run()
    assert kernel.unhandled_failures == []


def test_peek_reports_next_event_time():
    kernel = Kernel()
    assert kernel.peek() == float("inf")
    kernel.timeout(3.0)
    assert kernel.peek() == 3.0


def test_step_on_empty_queue_rejected():
    with pytest.raises(SimulationError):
        Kernel().step()


def test_run_until_triggered_returns_value():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(2.0)
        return "done"

    process = kernel.process(proc())
    assert kernel.run_until_triggered(process) == "done"
    assert kernel.now == 2.0


def test_run_until_triggered_raises_process_error():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(1.0)
        raise KeyError("inside")

    process = kernel.process(proc())
    with pytest.raises(KeyError):
        kernel.run_until_triggered(process)


def test_run_until_triggered_respects_limit():
    kernel = Kernel()
    event = kernel.event()

    def late():
        yield kernel.timeout(100.0)
        event.succeed()

    kernel.process(late())
    with pytest.raises(SimulationError):
        kernel.run_until_triggered(event, limit=10.0)


def test_any_of_triggers_on_first():
    kernel = Kernel()
    results = []

    def proc():
        first = kernel.timeout(1.0, value="fast")
        second = kernel.timeout(5.0, value="slow")
        outcome = yield kernel.any_of([first, second])
        results.append((kernel.now, list(outcome.values())))

    kernel.process(proc())
    kernel.run()
    assert results == [(1.0, ["fast"])]


def test_all_of_waits_for_every_event():
    kernel = Kernel()
    results = []

    def proc():
        events = [kernel.timeout(t, value=t) for t in (1.0, 3.0, 2.0)]
        outcome = yield kernel.all_of(events)
        results.append((kernel.now, sorted(outcome.values())))

    kernel.process(proc())
    kernel.run()
    assert results == [(3.0, [1.0, 2.0, 3.0])]


def test_any_of_with_already_processed_event():
    kernel = Kernel()
    done = kernel.timeout(0.0, value="early")
    kernel.run(until=0.5)
    results = []

    def proc():
        outcome = yield kernel.any_of([done, kernel.timeout(9.0)])
        results.append(list(outcome.values()))

    kernel.process(proc())
    kernel.run(until=1.0)
    assert results == [["early"]]


def test_all_of_empty_list_triggers_immediately():
    kernel = Kernel()
    results = []

    def proc():
        outcome = yield kernel.all_of([])
        results.append(outcome)

    kernel.process(proc())
    kernel.run()
    assert results == [{}]


def test_any_of_propagates_failure():
    kernel = Kernel()
    event = kernel.event()
    caught = []

    def proc():
        try:
            yield kernel.any_of([event, kernel.timeout(10.0)])
        except RuntimeError as exc:
            caught.append(str(exc))

    kernel.process(proc())
    event.fail(RuntimeError("sub-event failed"))
    kernel.run()
    assert caught == ["sub-event failed"]


def test_condition_rejects_foreign_kernel_events():
    kernel_a, kernel_b = Kernel(), Kernel()
    foreign = Event(kernel_b)
    with pytest.raises(SimulationError):
        kernel_a.any_of([foreign, kernel_a.event()])
