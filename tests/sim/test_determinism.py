"""The kernel contracts the parallel campaign runner rests on.

``repro.parallel`` promises byte-identical output between ``jobs=1`` and
``jobs=N``.  That promise reduces to kernel-level determinism: FIFO order
for same-timestamp events, an inclusive ``run_until_triggered`` limit, and
identical seeds producing identical traces in whatever process runs them.
These tests pin each contract down so hot-path rewrites cannot silently
bend them.
"""

import pytest

from repro.parallel.demo import simulate_trial
from repro.sim.errors import SimulationError
from repro.sim.kernel import Kernel


# --- same-timestamp FIFO ordering -------------------------------------------

def test_same_timestamp_events_fire_in_scheduling_order():
    kernel = Kernel()
    order = []
    for label in "abcdef":
        event = kernel.event()
        event.callbacks.append(lambda _e, label=label: order.append(label))
        event.succeed()
    kernel.run()
    assert order == list("abcdef")


def test_same_deadline_timeouts_fire_in_creation_order():
    kernel = Kernel()
    order = []

    def sleeper(tag):
        yield kernel.timeout(5.0)
        order.append(tag)

    for tag in range(10):
        kernel.process(sleeper(tag))
    kernel.run()
    assert order == list(range(10))


def test_fifo_survives_interleaved_immediate_and_delayed_events():
    kernel = Kernel()
    order = []

    def now_then_later(tag):
        yield kernel.timeout(0.0)
        order.append(("now", tag))
        yield kernel.timeout(1.0)
        order.append(("later", tag))

    for tag in range(4):
        kernel.process(now_then_later(tag))
    kernel.run()
    assert order == [("now", t) for t in range(4)] + \
        [("later", t) for t in range(4)]


def test_step_and_run_agree_on_ordering():
    def build():
        kernel = Kernel()
        seen = []

        def proc(tag):
            yield kernel.timeout(1.0)
            seen.append((tag, kernel.now))
            yield kernel.timeout(1.0)
            seen.append((tag, kernel.now))

        for tag in range(5):
            kernel.process(proc(tag))
        return kernel, seen

    kernel_a, seen_a = build()
    kernel_a.run()
    kernel_b, seen_b = build()
    while kernel_b._queue:
        kernel_b.step()
    assert seen_a == seen_b
    assert kernel_a.events_processed == kernel_b.events_processed


# --- run_until_triggered limit boundary -------------------------------------

def test_run_until_triggered_at_exactly_the_limit_triggers():
    # The completion event lands at exactly t == limit; the boundary is
    # inclusive, so it still triggers.
    kernel = Kernel()

    def sleeper():
        yield kernel.timeout(10.0)
        return "on-time"

    proc = kernel.process(sleeper())
    assert kernel.run_until_triggered(proc, limit=10.0) == "on-time"
    assert kernel.now == 10.0


def test_run_until_triggered_just_past_the_limit_raises():
    kernel = Kernel()

    def sleeper():
        yield kernel.timeout(10.0 + 1e-9)

    proc = kernel.process(sleeper())
    with pytest.raises(SimulationError, match="did not trigger"):
        kernel.run_until_triggered(proc, limit=10.0)
    assert not proc.triggered  # the pending process was left untouched


def test_run_until_triggered_drained_queue_raises():
    kernel = Kernel()
    event = kernel.event()  # never succeeds, nothing else scheduled
    with pytest.raises(SimulationError, match="queue drained"):
        kernel.run_until_triggered(event)


# --- identical seed => identical trace ---------------------------------------

def test_identical_seeds_reproduce_the_event_log_exactly():
    runs = [simulate_trial(seed=42, clients=5, requests=8) for _ in range(3)]
    assert runs[0] == runs[1] == runs[2]
    assert runs[0]["events_processed"] > 0


def test_different_seeds_diverge():
    digests = {
        simulate_trial(seed=seed, clients=5, requests=8)["log_digest"]
        for seed in range(5)
    }
    assert len(digests) == 5


def test_jobs1_vs_jobsN_trace_identical():
    # The cross-process version of the contract: the same spec list run
    # sequentially and on a spawn pool yields identical digests.
    from repro.parallel import TrialSpec, run_campaign

    specs = [
        TrialSpec(task="repro.parallel.demo:simulate_trial",
                  kwargs={"clients": 3, "requests": 5}, tag=f"t{i}", seed=i)
        for i in range(4)
    ]
    sequential = [r.value["log_digest"] for r in run_campaign(specs, jobs=1)]
    pooled = [r.value["log_digest"] for r in run_campaign(specs, jobs=2)]
    assert pooled == sequential


# --- bookkeeping: events_processed and bounded unhandled failures ------------

def test_events_processed_counts_every_step():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(1.0)
        yield kernel.timeout(1.0)

    kernel.process(proc())
    kernel.run()
    # start event + two timeouts + process completion event
    assert kernel.events_processed == 4


def test_unhandled_failures_retention_is_bounded():
    kernel = Kernel()
    n = kernel.UNHANDLED_RETENTION + 50
    for i in range(n):
        kernel.event().fail(RuntimeError(f"boom-{i}"))
    kernel.run()
    assert kernel.unhandled_failure_count == n
    assert len(kernel.unhandled_failures) == kernel.UNHANDLED_RETENTION
    # The *earliest* failures are the ones kept for debugging.
    first = kernel.unhandled_failures[0]._value
    assert str(first) == "boom-0"


def test_handled_failures_do_not_count_as_unhandled():
    kernel = Kernel()

    def handler():
        try:
            yield kernel.event().fail(RuntimeError("caught"))
        except RuntimeError:
            pass

    kernel.process(handler())
    kernel.run()
    assert kernel.unhandled_failure_count == 0
    assert kernel.unhandled_failures == []
