"""Unit tests for queues, semaphores, and owner-tracked locks."""

import pytest

from repro.sim import Interrupt, Kernel, Lock, Queue, Semaphore, SimulationError


class TestQueue:
    def test_put_then_get(self):
        kernel = Kernel()
        queue = Queue(kernel)
        queue.put("x")
        got = []

        def getter():
            item = yield queue.get()
            got.append(item)

        kernel.process(getter())
        kernel.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        kernel = Kernel()
        queue = Queue(kernel)
        got = []

        def getter():
            item = yield queue.get()
            got.append((kernel.now, item))

        def putter():
            yield kernel.timeout(3.0)
            queue.put("late")

        kernel.process(getter())
        kernel.process(putter())
        kernel.run()
        assert got == [(3.0, "late")]

    def test_fifo_item_order(self):
        kernel = Kernel()
        queue = Queue(kernel)
        for item in (1, 2, 3):
            queue.put(item)
        got = []

        def getter():
            for _ in range(3):
                item = yield queue.get()
                got.append(item)

        kernel.process(getter())
        kernel.run()
        assert got == [1, 2, 3]

    def test_fifo_getter_order(self):
        kernel = Kernel()
        queue = Queue(kernel)
        got = []

        def getter(tag):
            item = yield queue.get()
            got.append((tag, item))

        kernel.process(getter("first"))
        kernel.process(getter("second"))

        def putter():
            yield kernel.timeout(1.0)
            queue.put("a")
            queue.put("b")

        kernel.process(putter())
        kernel.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_put_skips_interrupted_getter(self):
        kernel = Kernel()
        queue = Queue(kernel)
        got = []

        def victim():
            try:
                yield queue.get()
            except Interrupt:
                pass

        def survivor():
            item = yield queue.get()
            got.append(item)

        victim_proc = kernel.process(victim())
        kernel.process(survivor())

        def driver():
            yield kernel.timeout(1.0)
            victim_proc.interrupt()
            yield kernel.timeout(1.0)
            queue.put("item")

        kernel.process(driver())
        kernel.run()
        assert got == ["item"]

    def test_len_and_drain(self):
        kernel = Kernel()
        queue = Queue(kernel)
        queue.put(1)
        queue.put(2)
        assert len(queue) == 2
        assert queue.drain() == [1, 2]
        assert len(queue) == 0


class TestSemaphore:
    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Semaphore(Kernel(), 0)

    def test_acquire_within_capacity_is_immediate(self):
        kernel = Kernel()
        sem = Semaphore(kernel, 2)
        times = []

        def worker():
            yield sem.acquire()
            times.append(kernel.now)

        kernel.process(worker())
        kernel.process(worker())
        kernel.run()
        assert times == [0.0, 0.0]
        assert sem.available == 0

    def test_acquire_blocks_at_capacity(self):
        kernel = Kernel()
        sem = Semaphore(kernel, 1)
        times = []

        def holder():
            yield sem.acquire()
            yield kernel.timeout(5.0)
            sem.release()

        def waiter():
            yield sem.acquire()
            times.append(kernel.now)
            sem.release()

        kernel.process(holder())
        kernel.process(waiter())
        kernel.run()
        assert times == [5.0]

    def test_release_without_holder_rejected(self):
        with pytest.raises(SimulationError):
            Semaphore(Kernel(), 1).release()

    def test_release_skips_interrupted_waiter(self):
        kernel = Kernel()
        sem = Semaphore(kernel, 1)
        order = []

        def holder():
            yield sem.acquire()
            yield kernel.timeout(10.0)
            sem.release()

        def victim():
            try:
                yield sem.acquire()
                order.append("victim got slot")
            except Interrupt:
                order.append("victim interrupted")

        def patient():
            yield sem.acquire()
            order.append("patient got slot")

        kernel.process(holder())
        victim_proc = kernel.process(victim())
        kernel.process(patient())

        def killer():
            yield kernel.timeout(1.0)
            victim_proc.interrupt()

        kernel.process(killer())
        kernel.run()
        assert order == ["victim interrupted", "patient got slot"]


class TestLock:
    def test_acquire_release_cycle(self):
        kernel = Kernel()
        lock = Lock(kernel, name="row-1")
        order = []

        def worker(tag, hold):
            yield lock.acquire(tag)
            order.append(("in", tag, kernel.now))
            yield kernel.timeout(hold)
            lock.release(tag)
            order.append(("out", tag, kernel.now))

        kernel.process(worker("a", 2.0))
        kernel.process(worker("b", 1.0))
        kernel.run()
        assert order == [
            ("in", "a", 0.0),
            ("out", "a", 2.0),
            ("in", "b", 2.0),
            ("out", "b", 3.0),
        ]

    def test_owner_required(self):
        with pytest.raises(SimulationError):
            Lock(Kernel()).acquire(None)

    def test_release_by_non_owner_rejected(self):
        kernel = Kernel()
        lock = Lock(kernel)

        def proc():
            yield lock.acquire("me")
            lock.release("someone else")

        process = kernel.process(proc())
        kernel.run()
        assert isinstance(process.value, SimulationError)

    def test_force_release_owner(self):
        kernel = Kernel()
        lock = Lock(kernel)
        got = []

        def holder():
            yield lock.acquire("dead-thread")
            yield kernel.timeout(1000.0)

        def waiter():
            yield lock.acquire("live-thread")
            got.append(kernel.now)

        kernel.process(holder())
        kernel.process(waiter())

        def reaper():
            yield kernel.timeout(2.0)
            assert lock.force_release_owner("dead-thread")

        kernel.process(reaper())
        kernel.run(until=10.0)
        assert got == [2.0]

    def test_force_release_wrong_owner_returns_false(self):
        kernel = Kernel()
        lock = Lock(kernel)

        def proc():
            yield lock.acquire("holder")

        kernel.process(proc())
        kernel.run()
        assert not lock.force_release_owner("other")
        assert lock.owner == "holder"

    def test_force_release_drops_waits(self):
        kernel = Kernel()
        lock = Lock(kernel)

        def holder():
            yield lock.acquire("a")
            yield kernel.timeout(100.0)
            lock.release("a")

        def doomed_waiter():
            yield lock.acquire("b")

        kernel.process(holder())
        kernel.process(doomed_waiter())
        kernel.run(until=1.0)
        assert lock.waiting_owners() == ["b"]
        lock.force_release_owner("b")
        assert lock.waiting_owners() == []

    def test_classic_deadlock_forms(self):
        """Two threads acquiring two locks in opposite order deadlock."""
        kernel = Kernel()
        lock_a, lock_b = Lock(kernel, "A"), Lock(kernel, "B")
        progress = []

        def thread_one():
            yield lock_a.acquire("t1")
            yield kernel.timeout(1.0)
            yield lock_b.acquire("t1")
            progress.append("t1 done")

        def thread_two():
            yield lock_b.acquire("t2")
            yield kernel.timeout(1.0)
            yield lock_a.acquire("t2")
            progress.append("t2 done")

        kernel.process(thread_one())
        kernel.process(thread_two())
        kernel.run(until=100.0)
        assert progress == []  # neither thread made it through
        assert lock_a.owner == "t1" and lock_b.owner == "t2"
        assert lock_a.waiting_owners() == ["t2"]
        assert lock_b.waiting_owners() == ["t1"]
