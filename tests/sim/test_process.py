"""Unit tests for processes: lifecycle, interrupts, nesting."""

import pytest

from repro.sim import Interrupt, Kernel, SimulationError


def test_process_return_value():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(1.0)
        return "result"

    process = kernel.process(proc())
    kernel.run()
    assert process.triggered
    assert process.value == "result"


def test_process_requires_generator():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.process(lambda: None)


def test_process_name_defaults_to_generator_name():
    kernel = Kernel()

    def shepherd():
        yield kernel.timeout(0.0)

    assert kernel.process(shepherd()).name == "shepherd"


def test_waiting_on_a_process_gets_its_return_value():
    kernel = Kernel()
    results = []

    def child():
        yield kernel.timeout(2.0)
        return 99

    def parent():
        value = yield kernel.process(child())
        results.append((kernel.now, value))

    kernel.process(parent())
    kernel.run()
    assert results == [(2.0, 99)]


def test_process_exception_propagates_to_waiter():
    kernel = Kernel()
    caught = []

    def child():
        yield kernel.timeout(1.0)
        raise RuntimeError("child died")

    def parent():
        try:
            yield kernel.process(child())
        except RuntimeError as exc:
            caught.append(str(exc))

    kernel.process(parent())
    kernel.run()
    assert caught == ["child died"]


def test_interrupt_raises_in_process():
    kernel = Kernel()
    seen = []

    def victim():
        try:
            yield kernel.timeout(100.0)
        except Interrupt as interrupt:
            seen.append((kernel.now, interrupt.cause))

    process = kernel.process(victim())

    def killer():
        yield kernel.timeout(5.0)
        process.interrupt(cause="microreboot")

    kernel.process(killer())
    kernel.run()
    assert seen == [(5.0, "microreboot")]


def test_interrupt_detaches_from_waited_event():
    kernel = Kernel()
    event = kernel.event()
    resumed = []

    def victim():
        try:
            yield event
        except Interrupt:
            yield kernel.timeout(50.0)
            resumed.append("slept past trigger")

    process = kernel.process(victim())

    def driver():
        yield kernel.timeout(1.0)
        process.interrupt()
        yield kernel.timeout(1.0)
        event.succeed("late value")  # must NOT resume the victim early

    kernel.process(driver())
    kernel.run()
    assert resumed == ["slept past trigger"]
    assert kernel.now >= 51.0


def test_interrupt_finished_process_is_noop():
    kernel = Kernel()

    def quick():
        yield kernel.timeout(1.0)
        return "ok"

    process = kernel.process(quick())
    kernel.run()
    process.interrupt()  # should not raise
    kernel.run()
    assert process.value == "ok"


def test_uncaught_interrupt_kills_process():
    kernel = Kernel()

    def victim():
        yield kernel.timeout(100.0)

    process = kernel.process(victim())

    def killer():
        yield kernel.timeout(1.0)
        process.interrupt(cause="kill -9")

    kernel.process(killer())
    kernel.run()
    assert process.triggered
    assert process.ok is False
    assert isinstance(process.value, Interrupt)


def test_interrupt_before_first_step():
    kernel = Kernel()
    seen = []

    def victim():
        try:
            yield kernel.timeout(10.0)
        except Interrupt:
            seen.append("interrupted")

    process = kernel.process(victim())
    process.interrupt()
    kernel.run()
    # The start event fires first, then the interrupt lands at the first yield.
    assert seen == ["interrupted"]


def test_double_interrupt_same_instant():
    kernel = Kernel()
    hits = []

    def victim():
        try:
            yield kernel.timeout(100.0)
        except Interrupt:
            hits.append("first")
            try:
                yield kernel.timeout(100.0)
            except Interrupt:
                hits.append("second")

    process = kernel.process(victim())

    def killer():
        yield kernel.timeout(1.0)
        process.interrupt()
        process.interrupt()

    kernel.process(killer())
    kernel.run()
    assert hits == ["first", "second"]


def test_yielding_non_event_fails_process():
    kernel = Kernel()

    def bad():
        yield "not an event"

    process = kernel.process(bad())
    kernel.run()
    assert process.ok is False
    assert isinstance(process.value, SimulationError)


def test_is_alive_tracks_lifecycle():
    kernel = Kernel()

    def proc():
        yield kernel.timeout(5.0)

    process = kernel.process(proc())
    assert process.is_alive
    kernel.run()
    assert not process.is_alive


def test_immediate_return_process():
    kernel = Kernel()

    def instant():
        return "no waiting"
        yield  # pragma: no cover - makes this a generator

    process = kernel.process(instant())
    kernel.run()
    assert process.value == "no waiting"


def test_many_nested_processes():
    kernel = Kernel()

    def leaf(depth):
        yield kernel.timeout(1.0)
        return depth

    def node(depth):
        if depth == 0:
            result = yield kernel.process(leaf(depth))
            return result
        result = yield kernel.process(node(depth - 1))
        return result + 1

    process = kernel.process(node(20))
    kernel.run()
    assert process.value == 20
    assert kernel.now == 1.0
