"""Property-based tests on the simulation kernel and core structures."""

from hypothesis import given, settings, strategies as st

from repro.appserver.memory import HeapModel
from repro.sim import Kernel
from repro.stores.leases import LeaseTable


@settings(max_examples=100, deadline=None)
@given(delays=st.lists(st.floats(min_value=0, max_value=1000), max_size=40))
def test_events_fire_in_nondecreasing_time_order(delays):
    kernel = Kernel()
    fired = []

    def waiter(delay):
        yield kernel.timeout(delay)
        fired.append(kernel.now)

    for delay in delays:
        kernel.process(waiter(delay))
    kernel.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=100, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0, max_value=100), min_size=1, max_size=20
    ),
    split=st.floats(min_value=0, max_value=100),
)
def test_run_until_is_equivalent_to_one_run(delays, split):
    """Splitting a run at an arbitrary time must not change the outcome."""

    def build():
        kernel = Kernel()
        fired = []

        def waiter(delay):
            yield kernel.timeout(delay)
            fired.append(round(kernel.now, 9))

        for delay in delays:
            kernel.process(waiter(delay))
        return kernel, fired

    one_kernel, one_fired = build()
    one_kernel.run(until=200.0)

    two_kernel, two_fired = build()
    two_kernel.run(until=split)
    two_kernel.run(until=200.0)

    assert one_fired == two_fired


@settings(max_examples=100, deadline=None)
@given(
    grants=st.lists(
        st.tuples(st.integers(0, 5), st.floats(min_value=0.1, max_value=50)),
        max_size=30,
    ),
    check_at=st.floats(min_value=0, max_value=100),
)
def test_lease_liveness_matches_grant_arithmetic(grants, check_at):
    kernel = Kernel()
    table = LeaseTable(kernel, default_ttl=10.0)
    expiry = {}
    for key, ttl in grants:
        table.grant(key, ttl)
        expiry[key] = kernel.now + ttl
    kernel.run(until=check_at)
    for key, when in expiry.items():
        assert table.is_live(key) == (when > check_at)


leak_ops = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c", "<server>"]),
              st.integers(0, 10_000)),
    max_size=40,
)


@settings(max_examples=150, deadline=None)
@given(ops=leak_ops, release=st.sampled_from(["a", "b", "c"]))
def test_heap_accounting_is_conserved(ops, release):
    heap = HeapModel(capacity=10**9, baseline=10**6)
    from repro.appserver.errors import OutOfMemoryError_

    expected = {}
    for owner, nbytes in ops:
        try:
            heap.leak(owner, nbytes)
        except OutOfMemoryError_:
            pass
        expected[owner] = expected.get(owner, 0) + nbytes
    assert heap.leaked_total == sum(expected.values())
    assert heap.available == heap.capacity - heap.baseline - heap.leaked_total

    freed = heap.release_owner(release)
    assert freed == expected.get(release, 0)
    assert heap.leaked_total == sum(expected.values()) - freed
    assert heap.release_all() == sum(
        v for k, v in expected.items() if k != release
    )
    assert heap.available == heap.capacity - heap.baseline
