"""Property-based tests: consistent-hash ring invariants under churn.

Elastic resharding leans on three ring properties that must hold for
*every* shard set, key set, and churn order — not just the configurations
the scenario tests happen to exercise:

* add-then-remove is a perfect round trip (byte-identical ring state);
* churn moves only the departing/arriving shard's keys, never a key
  between two uninvolved shards;
* the failover preference order of the survivors is stable across churn
  (cross-shard failover never reshuffles because an unrelated shard came
  or went).
"""

from hypothesis import given, settings, strategies as st

from repro.cluster.sharding import ShardRing

#: Small vnode count keeps each example cheap; the properties are
#: vnode-count independent.
VNODES = 8

shard_counts = st.integers(min_value=1, max_value=10)
keys = st.lists(
    st.one_of(st.integers(min_value=0, max_value=10**9), st.text(max_size=8)),
    min_size=1,
    max_size=60,
    unique=True,
)


def _ring(n):
    return ShardRing([f"shard{i:03d}" for i in range(n)], vnodes=VNODES)


@settings(max_examples=150, deadline=None)
@given(n=shard_counts, sample=keys)
def test_add_then_remove_is_byte_identical(n, sample):
    ring = _ring(n)
    points_before = list(ring._points)
    placement_before = {key: ring.shard_for(key) for key in sample}
    measures_before = ring.arc_measures()

    ring.add_shard("joiner")
    ring.remove_shard("joiner")

    assert ring._points == points_before  # byte-identical ring state
    assert ring.arc_measures() == measures_before
    assert {key: ring.shard_for(key) for key in sample} == placement_before


@settings(max_examples=150, deadline=None)
@given(n=shard_counts, sample=keys)
def test_sequential_churn_moves_only_involved_keys(n, sample):
    ring = _ring(n)
    before = {key: ring.shard_for(key) for key in sample}

    ring.add_shard("joiner")
    after_add = {key: ring.shard_for(key) for key in sample}
    for key in sample:
        # A key either stayed put or moved *to* the joiner.
        assert after_add[key] in (before[key], "joiner")

    victim = f"shard{(n - 1):03d}"
    ring.remove_shard(victim)
    after_remove = {key: ring.shard_for(key) for key in sample}
    for key in sample:
        if after_add[key] == victim:
            assert after_remove[key] != victim  # rehomed somewhere live
        else:
            assert after_remove[key] == after_add[key]  # untouched


@settings(max_examples=150, deadline=None)
@given(n=st.integers(min_value=2, max_value=10), sample=keys)
def test_preference_of_survivors_is_stable_across_churn(n, sample):
    ring = _ring(n)
    before = {key: ring.preference(key) for key in sample}

    ring.add_shard("joiner")
    with_joiner = {key: ring.preference(key) for key in sample}
    for key in sample:
        # Dropping the joiner from the new order recovers the old order:
        # the survivors' relative failover ranking never reshuffles.
        assert [s for s in with_joiner[key] if s != "joiner"] == before[key]

    ring.remove_shard("joiner")
    victim = f"shard{(n - 1):03d}"
    ring.remove_shard(victim)
    after = {key: ring.preference(key) for key in sample}
    for key in sample:
        assert after[key] == [s for s in before[key] if s != victim]
