"""Property-based tests: recovery-group closure invariants."""

from hypothesis import given, settings, strategies as st

from repro.appserver.component import StatelessSessionBean
from repro.appserver.descriptors import ComponentKind, DeploymentDescriptor
from repro.core.recovery_groups import compute_recovery_groups


@st.composite
def descriptor_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    names = [f"C{i}" for i in range(n)]
    descriptors = []
    for name in names:
        refs = draw(
            st.lists(st.sampled_from(names), max_size=3, unique=True)
        )
        refs = tuple(r for r in refs if r != name)
        descriptors.append(
            DeploymentDescriptor(
                name=name,
                kind=ComponentKind.STATELESS_SESSION,
                factory=StatelessSessionBean,
                group_references=refs,
            )
        )
    return descriptors


@settings(max_examples=200, deadline=None)
@given(descriptors=descriptor_graphs())
def test_groups_partition_the_components(descriptors):
    groups = compute_recovery_groups(descriptors)
    names = {d.name for d in descriptors}
    assert set(groups) == names  # total
    # Reflexive: everyone is in their own group.
    for name, group in groups.items():
        assert name in group
    # Groups are equal-or-disjoint (a partition).
    distinct = {frozenset(g) for g in groups.values()}
    seen = set()
    for group in distinct:
        assert not (seen & group)
        seen |= group
    assert seen == names


@settings(max_examples=200, deadline=None)
@given(descriptors=descriptor_graphs())
def test_groups_are_closed_under_references(descriptors):
    """No reference edge may cross a group boundary (§3.2's guarantee)."""
    groups = compute_recovery_groups(descriptors)
    for descriptor in descriptors:
        for ref in descriptor.group_references:
            assert groups[descriptor.name] == groups[ref]


@settings(max_examples=200, deadline=None)
@given(descriptors=descriptor_graphs())
def test_groups_symmetric_and_deterministic(descriptors):
    groups = compute_recovery_groups(descriptors)
    again = compute_recovery_groups(list(reversed(descriptors)))
    for name in groups:
        assert groups[name] == again[name]
        for member in groups[name]:
            assert groups[member] == groups[name]
