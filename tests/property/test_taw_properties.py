"""Property-based tests: Taw accounting invariants."""

from hypothesis import given, settings, strategies as st

from repro.workload.metrics import ActionRecord, OperationRecord, TawAccounting


@st.composite
def action_batches(draw):
    n_actions = draw(st.integers(min_value=0, max_value=25))
    actions = []
    clock = 0.0
    for i in range(n_actions):
        n_ops = draw(st.integers(min_value=1, max_value=5))
        action = ActionRecord(name=f"A{i}", client_id=i, started_at=clock)
        for _ in range(n_ops):
            issued = clock
            clock += draw(st.floats(min_value=0.01, max_value=5.0))
            record = OperationRecord(
                operation="Op",
                url="/x",
                issued_at=issued,
                completed_at=clock,
                ok=draw(st.booleans()),
                response_time=clock - issued,
                functional_group="G",
            )
            action.operations.append(record)
        actions.append(action)
    return actions


@settings(max_examples=150, deadline=None)
@given(actions=action_batches())
def test_every_operation_is_counted_exactly_once(actions):
    metrics = TawAccounting()
    for action in actions:
        metrics.record_action(action)
    total_ops = sum(len(a.operations) for a in actions)
    assert metrics.total_requests == total_ops
    series_total = sum(metrics.good_taw_series().values()) + sum(
        metrics.bad_taw_series().values()
    )
    assert series_total == total_ops


@settings(max_examples=150, deadline=None)
@given(actions=action_batches())
def test_atomicity_any_failure_poisons_the_action(actions):
    metrics = TawAccounting()
    for action in actions:
        metrics.record_action(action)
    expected_good = sum(
        len(a.operations) for a in actions if all(o.ok for o in a.operations)
    )
    assert metrics.good_requests == expected_good
    assert metrics.good_actions + metrics.failed_actions == len(actions)


@settings(max_examples=150, deadline=None)
@given(actions=action_batches())
def test_windows_tile_the_series(actions):
    metrics = TawAccounting()
    for action in actions:
        metrics.record_action(action)
    completed = [
        op.completed_at for a in actions for op in a.operations
    ]
    horizon = int(max(completed, default=0)) + 20
    good = bad = 0
    for start in range(0, horizon + 10, 10):
        g, b = metrics.requests_in_window(start, start + 10)
        good += g
        bad += b
    assert good == metrics.good_requests
    assert bad == metrics.failed_requests


@settings(max_examples=150, deadline=None)
@given(actions=action_batches())
def test_group_unavailability_spans_are_disjoint_and_ordered(actions):
    metrics = TawAccounting()
    for action in actions:
        metrics.record_action(action)
    spans = metrics.group_unavailability("G")
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 < s2  # disjoint, sorted
    for start, end in spans:
        assert end > start
