"""Property-based tests: the database's transactional invariants.

Random interleavings of inserts/updates/deletes across several concurrent
transactions, with arbitrary commit/rollback/crash decisions, must always
leave the database equal to "replay only the committed operations".
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Kernel
from repro.stores.database import Database, DatabaseError, DuplicateKeyError

pks = st.integers(min_value=1, max_value=12)
values = st.integers(min_value=0, max_value=100)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(1, 3), pks, values),
        st.tuples(st.just("update"), st.integers(1, 3), pks, values),
        st.tuples(st.just("delete"), st.integers(1, 3), pks, values),
    ),
    max_size=30,
)
outcomes = st.tuples(st.booleans(), st.booleans(), st.booleans())


def apply_ops(database, ops, use_tx):
    """Apply ops; returns the per-tx op log of operations that succeeded."""
    applied = {1: [], 2: [], 3: []}
    for op, tx, pk, value in ops:
        tx_id = tx if use_tx else None
        try:
            if op == "insert":
                database.insert("t", {"id": pk, "v": value}, tx_id=tx_id)
            elif op == "update":
                database.update("t", pk, {"v": value}, tx_id=tx_id)
            else:
                database.delete("t", pk, tx_id=tx_id)
        except (DuplicateKeyError, DatabaseError):
            continue
        applied[tx].append((op, pk, value))
    return applied


@settings(max_examples=120, deadline=None)
@given(ops=operations, commit=outcomes)
def test_rollback_equals_never_happened(ops, commit):
    """Rolled-back transactions leave no trace; committed ones all land.

    Each transaction works on its own disjoint row range (as row locking
    would enforce in the real platform — our container-managed persistence
    never lets two live transactions write the same row), so the reference
    outcome is simply "replay exactly the committed transactions".
    """
    database = Database(Kernel())
    database.create_table("t")
    # Partition the key space per transaction: tx N owns [N*100, N*100+12).
    ops = [(op, tx, tx * 100 + pk, value) for op, tx, pk, value in ops]
    apply_ops_disjoint = [
        (op, tx, pk, value) for op, tx, pk, value in ops
    ]
    applied = apply_ops(database, apply_ops_disjoint, use_tx=True)
    for tx_id, committed in zip((1, 2, 3), commit):
        if committed:
            database.commit_transaction(tx_id)
        else:
            database.rollback_transaction(tx_id)

    # Replay only the committed transactions' successful ops on a fresh db.
    reference = Database(Kernel())
    reference.create_table("t")
    committed_txs = {t for t, c in zip((1, 2, 3), commit) if c}
    for tx in sorted(committed_txs):
        for op, pk, value in applied[tx]:
            if op == "insert":
                reference.insert("t", {"id": pk, "v": value})
            elif op == "update":
                reference.update("t", pk, {"v": value})
            else:
                reference.delete("t", pk)

    assert database.snapshot("t") == reference.snapshot("t")


@settings(max_examples=100, deadline=None)
@given(ops=operations)
def test_crash_recovery_rolls_back_everything_in_flight(ops):
    kernel = Kernel()
    database = Database(kernel, recovery_time=0.1)
    database.create_table("t")
    database.insert("t", {"id": 99, "v": 1})  # pre-existing committed row
    snapshot = database.snapshot("t")
    apply_ops(database, ops, use_tx=True)  # never committed
    database.crash()
    kernel.run_until_triggered(kernel.process(database.recover()))
    assert database.snapshot("t") == snapshot
    assert database.in_flight_transactions == 0


@settings(max_examples=100, deadline=None)
@given(ops=operations)
def test_auto_commit_is_durable_through_crash(ops):
    kernel = Kernel()
    database = Database(kernel, recovery_time=0.1)
    database.create_table("t")
    apply_ops(database, ops, use_tx=False)
    before = database.snapshot("t")
    database.crash()
    kernel.run_until_triggered(kernel.process(database.recover()))
    assert database.snapshot("t") == before


@settings(max_examples=100, deadline=None)
@given(ops=operations)
def test_indexes_always_agree_with_scans(ops):
    """Hash-index lookups must equal a brute-force scan at every point."""
    database = Database(Kernel())
    database.create_table("t")
    database.tables["t"].ensure_index("v")  # build the index up front
    apply_ops(database, ops, use_tx=False)
    for value in range(0, 101):
        indexed = {row["id"] for row in database.select("t", v=value)}
        scanned = {
            pk for pk, row in database.tables["t"].rows.items()
            if row.get("v") == value
        }
        assert indexed == scanned
