"""Tests for the load balancer's hardening surface: link faults, degraded
marks, session rerouting, and the latency-only shed rule."""

from repro.appserver.http import HttpRequest, HttpStatus
from repro.cluster import FailoverMode, build_cluster
from repro.core.hardening import HardeningPolicy
from repro.core.retry import RetryPolicy
from repro.ebid.schema import DatasetConfig
from repro.sim import RngRegistry


def make_cluster(n=2, hardened=True, **kwargs):
    hardening = (
        HardeningPolicy.hardened() if hardened
        else HardeningPolicy.disabled()
    )
    return build_cluster(
        n, dataset=DatasetConfig.tiny(), seed=5, session_store="ssm",
        retry_policy=RetryPolicy.retry_only(), hardening=hardening,
        **kwargs,
    )


def issue(cluster, url, params=None, cookie=None):
    request = HttpRequest(
        url=url, operation=url.rsplit("/", 1)[-1], params=params or {},
        cookie=cookie,
    )
    return cluster.kernel.run_until_triggered(
        cluster.load_balancer.handle_request(request)
    )


def login(cluster, user_id=1):
    response = issue(
        cluster, "/ebid/Authenticate",
        {"user_id": user_id, "password": f"pw{user_id}"},
    )
    return response.payload["cookie"]


# ----------------------------------------------------------------------
# Link faults
# ----------------------------------------------------------------------
def test_link_fault_delays_forwards():
    cluster = make_cluster(n=1, hardened=False)
    balancer = cluster.load_balancer
    node = cluster.nodes[0]
    before = cluster.kernel.now
    issue(cluster, "/ebid/BrowseCategories")
    baseline = cluster.kernel.now - before

    balancer.inject_link_fault(node, delay=2.0)
    before = cluster.kernel.now
    issue(cluster, "/ebid/BrowseCategories")
    assert cluster.kernel.now - before >= baseline + 2.0

    balancer.clear_link_fault(node)
    before = cluster.kernel.now
    issue(cluster, "/ebid/BrowseCategories")
    assert cluster.kernel.now - before < 2.0


def test_link_fault_drops_forwards():
    cluster = make_cluster(n=1, hardened=False)
    balancer = cluster.load_balancer
    rng = RngRegistry(root_seed=11).stream("drops")
    balancer.inject_link_fault(cluster.nodes[0], drop_rate=1.0, rng=rng)
    try:
        issue(cluster, "/ebid/BrowseCategories")
        raised = False
    except Exception:
        raised = True
    assert raised
    assert int(balancer.metrics.counter("lb.link.dropped").value) == 1


# ----------------------------------------------------------------------
# Degraded marks and session rerouting
# ----------------------------------------------------------------------
def test_note_degraded_marks_and_expires():
    cluster = make_cluster()
    balancer = cluster.load_balancer
    node = cluster.nodes[0]
    balancer.note_degraded(node, "recovery-deferred-backoff", ttl=25.0)
    assert node.name in balancer.degraded_nodes()

    def advance():
        yield cluster.kernel.timeout(26.0)

    cluster.kernel.run_until_triggered(cluster.kernel.process(advance()))
    assert node.name not in balancer.degraded_nodes()


def test_note_degraded_is_inert_without_hardening():
    cluster = make_cluster(hardened=False)
    balancer = cluster.load_balancer
    balancer.note_degraded(cluster.nodes[0], "whatever")
    assert balancer.degraded_nodes() == set()


def test_degraded_session_requests_reroute():
    cluster = make_cluster()
    balancer = cluster.load_balancer
    cookie = login(cluster)
    home = balancer.node_for_session(cookie)
    balancer.note_degraded(home, "recovery-deferred-backoff")

    response = issue(cluster, "/ebid/BrowseCategories", cookie=cookie)
    # Session state lives in the SSM: the request is served fine by a
    # healthy node instead of queueing behind the degraded one.
    assert response.status == HttpStatus.OK
    assert cookie in balancer.sessions_failed_over


def test_cookieless_requests_avoid_degraded_nodes():
    cluster = make_cluster()
    balancer = cluster.load_balancer
    degraded = cluster.nodes[0]
    balancer.note_degraded(degraded, "recovery-deferred-backoff")
    for user_id in range(1, 5):
        cookie = login(cluster, user_id=user_id)
        assert balancer.node_for_session(cookie) is not degraded


# ----------------------------------------------------------------------
# The latency-only shed rule
# ----------------------------------------------------------------------
def test_all_nodes_latency_degraded_sheds_fast():
    cluster = make_cluster()
    balancer = cluster.load_balancer
    for node in cluster.nodes:
        balancer._mark_degraded(node.name, "latency")
    response = issue(cluster, "/ebid/BrowseCategories")
    assert response.status == HttpStatus.SERVICE_UNAVAILABLE
    assert response.retry_after == balancer.hardening.shed_retry_after
    assert balancer.requests_shed == 1


def test_mixed_degradation_routes_best_effort():
    cluster = make_cluster()
    balancer = cluster.load_balancer
    balancer._mark_degraded(cluster.nodes[0].name, "latency")
    balancer._mark_degraded(
        cluster.nodes[1].name, "recovery-deferred-backoff"
    )
    # Not a cluster-wide slowdown: refusing service would be strictly
    # worse than trying a node, so the request is served, not shed.
    response = issue(cluster, "/ebid/BrowseCategories")
    assert response.status == HttpStatus.OK
    assert balancer.requests_shed == 0


# ----------------------------------------------------------------------
# MICRO failover eligibility
# ----------------------------------------------------------------------
def test_micro_recovering_node_serves_non_touching_requests():
    cluster = make_cluster()
    balancer = cluster.load_balancer
    micro, other = cluster.nodes
    balancer.begin_failover(
        micro, mode=FailoverMode.MICRO, components={"ViewItem"}
    )
    balancer.begin_failover(other, mode=FailoverMode.FULL)
    # Only the MICRO node is available — and it may serve requests whose
    # path avoids the recovering component.
    response = issue(cluster, "/ebid/BrowseCategories")
    assert response.status == HttpStatus.OK
