"""Cluster failover semantics of the two session stores (§5.3).

With node-local FastS, failing a session over to another node loses its
state (the other node's FastS has never heard of it); with the external
SSM, any node can pick the session up — at the marshalling cost Table 5
quantifies.
"""

import pytest

from repro.appserver.http import HttpRequest, HttpStatus
from repro.cluster import FailoverMode, build_cluster
from repro.ebid.schema import DatasetConfig


def issue(cluster, url, params=None, cookie=None):
    request = HttpRequest(
        url=url, operation=url.rsplit("/", 1)[-1], params=params or {},
        cookie=cookie,
    )
    return cluster.kernel.run_until_triggered(
        cluster.load_balancer.handle_request(request)
    )


def establish_session(cluster, user_id=1):
    response = issue(
        cluster, "/ebid/Authenticate",
        {"user_id": user_id, "password": f"pw{user_id}"},
    )
    cookie = response.payload["cookie"]
    # Stash some conversational state (the selected bid item).
    issue(cluster, "/ebid/MakeBid", {"item_id": 3}, cookie=cookie)
    return cookie


def home_node(cluster, cookie):
    return cluster.load_balancer._affinity[cookie]


class TestFastSFailover:
    def test_failed_over_session_is_lost(self):
        cluster = build_cluster(3, dataset=DatasetConfig.tiny(),
                                session_store="fasts")
        cookie = establish_session(cluster)
        bad = home_node(cluster, cookie)
        cluster.load_balancer.begin_failover(bad, FailoverMode.FULL)
        response = issue(cluster, "/ebid/CommitBid", {"amount": 999},
                         cookie=cookie)
        # The good node has no session for this cookie: login prompt.
        assert response.payload.get("login_required")


class TestSSMFailover:
    def test_failed_over_session_survives(self):
        cluster = build_cluster(3, dataset=DatasetConfig.tiny(),
                                session_store="ssm")
        cookie = establish_session(cluster)
        bad = home_node(cluster, cookie)
        cluster.load_balancer.begin_failover(bad, FailoverMode.FULL)
        # The good node reads the session (and the selected item) from SSM.
        prepare = issue(cluster, "/ebid/MakeBid", {"item_id": 3},
                        cookie=cookie)
        assert prepare.status == HttpStatus.OK
        commit = issue(
            cluster, "/ebid/CommitBid",
            {"amount": prepare.payload["current_bid"] + 5}, cookie=cookie,
        )
        assert commit.payload.get("accepted") is True

    def test_session_survives_even_jvm_restart_of_home_node(self):
        cluster = build_cluster(2, dataset=DatasetConfig.tiny(),
                                session_store="ssm")
        cookie = establish_session(cluster)
        bad = home_node(cluster, cookie)
        cluster.kernel.run_until_triggered(
            cluster.kernel.process(bad.restart_jvm())
        )
        response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
        assert response.payload.get("nickname") == "user1"

    def test_all_nodes_share_one_ssm(self):
        cluster = build_cluster(3, dataset=DatasetConfig.tiny(),
                                session_store="ssm")
        assert cluster.ssm is not None
        stores = {id(node.system.session_store) for node in cluster.nodes}
        assert stores == {id(cluster.ssm)}
