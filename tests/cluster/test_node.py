"""Tests for the node abstraction (OS + JVM recovery actions)."""

import pytest

from repro.appserver.server import ServerState
from repro.cluster.node import Node
from repro.ebid.app import build_ebid_system
from repro.ebid.schema import DatasetConfig


@pytest.fixture
def node():
    system = build_ebid_system(dataset=DatasetConfig.tiny(), seed=1)
    return Node(system)


def run(node, generator):
    return node.kernel.run_until_triggered(node.kernel.process(generator))


def test_jvm_restart_takes_paper_time(node):
    start = node.kernel.now
    run(node, node.restart_jvm())
    assert node.kernel.now - start == pytest.approx(19.08, rel=0.01)
    assert node.server.state is ServerState.RUNNING
    assert node.jvm_restarts == 1


def test_jvm_restart_terminates_node_db_sessions(node):
    """§7: the OS tears down TCP, the DB ends the sessions immediately."""
    database = node.system.database
    from repro.appserver.component import InvocationContext

    ctx = InvocationContext(node.server)
    session = database.open_session(owner=ctx)

    def locker():
        yield session.lock_row("items", 1)

    run(node, locker())
    assert database.row_lock_holder("items", 1) is session
    run(node, node.restart_jvm())
    assert database.row_lock_holder("items", 1) is None


def test_os_reboot_clears_os_leak_and_takes_longer(node):
    node.leak_os_memory(node.os_memory)
    assert node.server.accept_fault is not None
    start = node.kernel.now
    run(node, node.reboot_os())
    # OS reboot (65 s) plus the cold JVM boot (19 s).
    assert node.kernel.now - start == pytest.approx(65 + 19.08, rel=0.02)
    assert node.os_leaked == 0
    assert node.server.accept_fault is None
    assert node.os_reboots == 1


def test_jvm_restart_does_not_cure_os_pressure(node):
    node.leak_os_memory(node.os_memory)
    run(node, node.restart_jvm())
    assert node.server.accept_fault is not None  # reinstated post-boot
