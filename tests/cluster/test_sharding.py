"""Tests for consistent-hash sharding and replicated SSM brick groups."""

import pytest

from repro.cluster.sharding import BrickGroup, ShardRing, stable_hash
from repro.sim.kernel import Kernel
from repro.stores.sessions import SessionData


# ----------------------------------------------------------------------
# ShardRing
# ----------------------------------------------------------------------
def test_stable_hash_is_process_independent():
    # SHA-256, not hash(): these exact values must hold in every
    # interpreter or the jobs=1 ≡ jobs=N placement contract breaks.
    assert stable_hash("shard000#0") == stable_hash(b"shard000#0")
    assert stable_hash(12345) == stable_hash("12345")
    assert stable_hash("a") != stable_hash("b")


def test_placement_is_deterministic_across_instances():
    shards = [f"shard{i:03d}" for i in range(16)]
    a, b = ShardRing(shards), ShardRing(list(reversed(shards)))
    for key in range(500):
        assert a.shard_for(key) == b.shard_for(key)


def test_placement_is_reasonably_balanced():
    shards = [f"shard{i:03d}" for i in range(16)]
    counts = ShardRing(shards).counts(range(4000))
    mean = 4000 / 16
    assert sum(counts.values()) == 4000
    for shard, count in counts.items():
        assert mean * 0.4 < count < mean * 2.0, (shard, count)


def test_adding_a_shard_only_steals_keys():
    # The defining consistent-hashing property: a new shard takes ~1/n of
    # the keyspace and *no* key moves between pre-existing shards.
    ring = ShardRing([f"shard{i:03d}" for i in range(16)])
    before = {key: ring.shard_for(key) for key in range(4000)}
    ring.add_shard("shard016")
    moved = 0
    for key, owner in before.items():
        now = ring.shard_for(key)
        if now != owner:
            assert now == "shard016"
            moved += 1
    assert 0 < moved < 4000 * 3 / 17


def test_removing_a_shard_only_moves_its_keys():
    ring = ShardRing([f"shard{i:03d}" for i in range(16)])
    before = {key: ring.shard_for(key) for key in range(4000)}
    ring.remove_shard("shard003")
    for key, owner in before.items():
        if owner == "shard003":
            assert ring.shard_for(key) != "shard003"
        else:
            assert ring.shard_for(key) == owner


def test_preference_starts_at_owner_and_is_distinct():
    ring = ShardRing([f"shard{i:03d}" for i in range(8)])
    for key in ("alice", "bob", 42):
        prefs = ring.preference(key)
        assert prefs[0] == ring.shard_for(key)
        assert len(prefs) == len(set(prefs)) == 8
        assert ring.preference(key, limit=3) == prefs[:3]


def test_arc_measures_sum_to_one_and_diff_is_minimal():
    ring = ShardRing([f"shard{i:03d}" for i in range(16)])
    before = ring.arc_measures()
    assert set(before) == set(ring.shards)
    assert abs(sum(before.values()) - 1.0) < 1e-12
    assert all(measure > 0 for measure in before.values())
    # Adding a shard: it owns exactly what the incumbents lost, and no
    # incumbent *gains* — the measure-space twin of "only steals keys".
    ring.add_shard("shard016")
    after = ring.arc_measures()
    assert abs(sum(after.values()) - 1.0) < 1e-12
    for shard in before:
        assert after[shard] <= before[shard] + 1e-12
    lost = sum(before[s] - after[s] for s in before)
    assert abs(after["shard016"] - lost) < 1e-12


def test_arc_measures_empty_ring():
    assert ShardRing().arc_measures() == {}


def test_ring_error_contracts():
    with pytest.raises(ValueError):
        ShardRing(vnodes=0)
    ring = ShardRing(["a"])
    with pytest.raises(ValueError):
        ring.add_shard("a")
    with pytest.raises(KeyError):
        ring.remove_shard("missing")
    empty = ShardRing()
    with pytest.raises(ValueError):
        empty.shard_for("key")
    with pytest.raises(ValueError):
        empty.preference("key")


# ----------------------------------------------------------------------
# BrickGroup
# ----------------------------------------------------------------------
def _group(n_bricks=2):
    return BrickGroup(Kernel(), n_bricks=n_bricks, name="g")


def _session(session_id, user_id):
    return SessionData(session_id, user_id)


def test_writes_replicate_to_every_live_brick():
    group = _group()
    group.write("s1", _session("s1", user_id=7))
    for brick in group.bricks:
        assert brick.read("s1").user_id == 7
    assert len(group) == 1
    assert group.session_ids() == ["s1"]


def test_single_brick_crash_keeps_sessions_available():
    group = _group()
    group.write("s1", _session("s1", user_id=7))
    group.crash_brick(0)
    assert not group.crashed
    assert group.read("s1").user_id == 7
    group.crash_brick(1)
    assert group.crashed


def test_read_falls_through_a_live_miss():
    # A brick that was down during the write rejoins *empty*; a read must
    # not stop at its miss.
    group = _group()
    group.crash_brick(0)
    group.write("s1", _session("s1", user_id=7))
    group.restart_brick(0)
    assert not group.bricks[0].crashed
    assert group.bricks[0].read("s1") is None
    assert group.read("s1").user_id == 7


def test_crashed_brick_drops_writes_until_rewritten():
    group = _group()
    group.crash_brick(1)
    group.write("s1", _session("s1", user_id=1))
    group.restart_brick(1)
    assert group.bricks[1].read("s1") is None
    # The next write (a lease renewal, in SSM terms) resyncs the rejoiner.
    group.write("s1", _session("s1", user_id=2))
    assert group.bricks[1].read("s1").user_id == 2


def test_restarted_brick_never_serves_stale_objects():
    # Regression: a brick that crashed, missed writes, and restarted used
    # to rejoin with its pre-crash contents — and, being brick 0, served
    # the *stale* object on the next read.  Crash-only semantics: restart
    # wipes, the miss falls through to a live replica, and the next
    # write-all-live backfills the rejoiner.
    group = _group()
    group.write("s1", _session("s1", user_id=1))
    group.crash_brick(0)
    group.write("s1", _session("s1", user_id=2))
    group.restart_brick(0)
    assert group.bricks[0].read("s1") is None  # wiped, not stale
    assert group.read("s1").user_id == 2
    group.write("s1", _session("s1", user_id=3))
    assert group.bricks[0].read("s1").user_id == 3  # backfilled


def test_delete_removes_everywhere():
    group = _group()
    group.write("s1", _session("s1", user_id=1))
    group.delete("s1")
    assert group.read("s1") is None
    assert len(group) == 0


def test_group_survives_microreboots_and_jvm_exits():
    group = _group()
    assert group.survives_microreboot and group.survives_jvm_restart
    group.write("s1", _session("s1", user_id=1))
    group.notify_jvm_exit(server=None)
    assert group.read("s1").user_id == 1


def test_access_time_fans_out_to_bricks():
    group = _group()
    group.access_time = 0.004
    assert group.access_time == 0.004
    assert all(brick.access_time == 0.004 for brick in group.bricks)


def test_group_requires_at_least_one_brick():
    with pytest.raises(ValueError):
        _group(n_bricks=0)
