"""Tests for live elastic resharding: coordinator, policy, LB cutover."""

import pytest

from repro.cluster.cluster import build_sharded_cluster
from repro.cluster.elasticity import (
    ElasticPolicy,
    ReshardCoordinator,
    apportion,
)
from repro.ebid.schema import DatasetConfig
from repro.stores.sessions import SessionData
from repro.workload.cohort import CohortEngine


def _setup(n_shards=6, n_sessions=1200, seed=0, outcome=None):
    cluster = build_sharded_cluster(
        n_shards, seed=seed, dataset=DatasetConfig.tiny()
    )
    engine = CohortEngine(
        cluster.kernel,
        cluster.rng,
        outcome or (lambda shard, op: (0.0, 0.05)),
        n_sessions,
        cluster.shard_names,
        ring=cluster.ring,
    )
    coordinator = ReshardCoordinator(cluster, engine, migration_window=1.0)
    return cluster, engine, coordinator


# ----------------------------------------------------------------------
# apportion
# ----------------------------------------------------------------------
def test_apportion_splits_exactly_and_deterministically():
    weights = [0.4, 0.0, 0.35, 0.25]
    for total in (0, 1, 7, 100, 1201):
        split = apportion(weights, total)
        assert sum(split) == max(0, total)
        assert split[1] == 0  # zero weight gets nothing
        assert split == apportion(weights, total)
    assert apportion([0.0, 0.0], 10) == [0, 0]
    assert apportion([], 10) == []
    big = apportion([2.0, 1.0, 1.0], 4000)
    assert big == [2000, 1000, 1000]


# ----------------------------------------------------------------------
# ReshardCoordinator
# ----------------------------------------------------------------------
def test_add_shard_steals_minimal_delta_with_zero_loss():
    cluster, engine, coordinator = _setup()
    name = coordinator.add_shard()
    assert name == "shard006"  # serial continues after the boot set
    assert name in cluster.ring.shards
    assert name in cluster.shard_names
    assert cluster.shard_of_node[f"{name}-n1"] == name
    # Nodes registered with the balancer before the ring cut over.
    assert any(
        node.name == f"{name}-n1" for node in cluster.load_balancer.nodes
    )
    # Copy-then-cutover: the stolen sessions are in flight, all counted.
    assert engine.in_transit() > 0
    assert engine.population() == 1200

    engine.start(5.0)
    cluster.kernel.run(until=5.0)
    assert engine.in_transit() == 0
    assert engine.population() == 1200
    assert engine.shard_sessions[name] > 0

    (plan,) = coordinator.plans
    assert plan["op"] == "add" and plan["shard"] == name
    assert plan["sessions"] == sum(plan["sources"].values()) > 0
    # Minimal delta: every donor gave sessions in proportion to the arc
    # measure the ring took from it — nobody else moved anything.
    assert set(plan["sources"]) <= set(engine.shards) - {name}


def test_remove_shard_moves_store_sessions_and_forgets_the_shard():
    cluster, engine, coordinator = _setup()
    ring = cluster.ring
    victim = "shard002"
    # A concrete SSM session homed on the victim shard.
    sid = next(
        f"user{i}" for i in range(10_000)
        if ring.shard_for(f"user{i}") == victim
    )
    cluster.shard_groups[victim].write(sid, SessionData(sid, user_id=9))

    engine.start(10.0)
    plan = coordinator.remove_shard(victim)

    assert victim not in ring.shards
    assert victim not in cluster.shard_names
    assert victim not in cluster.shard_groups
    assert all(not node.name.startswith(victim) for node in cluster.nodes)
    # Incident attribution survives the departure...
    assert cluster.shard_of_node[f"{victim}-n1"] == victim
    # ...but the balancer forgot the shard completely.
    lb = cluster.load_balancer
    assert all(lb.shard_of(node) != victim for node in lb.nodes)
    # The stored session followed the ring to its new home, readably.
    new_home = ring.shard_for(sid)
    assert cluster.shard_groups[new_home].read(sid).user_id == 9
    assert plan["store_sessions"] == 1
    assert plan["sessions"] == sum(plan["targets"].values()) > 0

    cluster.kernel.run(until=10.0)
    assert engine.population() == 1200
    assert victim not in engine.shards


def test_cross_shard_failover_never_selects_departed_shard():
    cluster, engine, coordinator = _setup()
    lb = cluster.load_balancer
    victim = "shard001"
    # Prime the per-shard cursors and ring-successor caches so stale
    # state would linger if removal didn't prune it.
    for shard in cluster.shard_names:
        lb._ring_successor_shards(shard)
        lb._node_in_shard(shard)
    coordinator.remove_shard(victim)
    assert lb._node_in_shard(victim) is None
    for shard in cluster.shard_names:
        assert victim not in lb._ring_successor_shards(shard)
    assert victim not in lb._shard_cursor
    assert f"{victim}-n1" not in lb._degraded_until
    assert f"{victim}-n1" not in lb._node_shard


def test_add_then_remove_round_trip_restores_placement():
    cluster, engine, coordinator = _setup()
    ring = cluster.ring
    before = {key: ring.shard_for(key) for key in range(1200)}
    engine.start(20.0)
    name = coordinator.add_shard()
    cluster.kernel.run(until=5.0)
    coordinator.remove_shard(name)
    assert {key: ring.shard_for(key) for key in before} == before
    cluster.kernel.run(until=20.0)
    assert engine.population() == 1200
    assert set(engine.shards) == set(cluster.shard_names)
    assert [p["op"] for p in coordinator.plans] == ["add", "remove"]


def test_coordinator_error_contracts():
    cluster, engine, coordinator = _setup(n_shards=2)
    with pytest.raises(ValueError):
        coordinator.add_shard("shard000")  # already on the ring
    with pytest.raises(KeyError):
        coordinator.remove_shard("missing")
    coordinator.remove_shard("shard000")
    cluster.kernel.run(until=5.0)
    with pytest.raises(ValueError):
        coordinator.remove_shard("shard001")  # never strand the cluster


# ----------------------------------------------------------------------
# ElasticPolicy
# ----------------------------------------------------------------------
class StubProbeModel:
    """Minimal probe-model surface: one shard persistently sick."""

    def __init__(self, shards, sick):
        self.shards = list(shards)
        self.sick = sick

    def add_shard(self, shard):
        self.shards.append(shard)

    def remove_shard(self, shard):
        self.shards.remove(shard)

    def shard_fail_rate(self, shard):
        return 1.0 if shard == self.sick else 0.0


def test_policy_replaces_persistently_sick_shard_once():
    cluster, engine, coordinator = _setup()
    sick = "shard003"
    probes = StubProbeModel(cluster.shard_names, sick)
    coordinator.probe_model = probes
    policy = ElasticPolicy(
        cluster.kernel, coordinator, probes, confirm=2, check_interval=1.0
    )
    engine.start(30.0)
    policy.start(30.0)
    cluster.kernel.run(until=30.0)

    assert len(policy.replacements) == 1
    replacement = policy.replacements[0]
    assert replacement["replaced"] == sick
    assert replacement["with"] == "shard006"
    assert sick not in cluster.ring.shards
    assert "shard006" in cluster.ring.shards
    # Confirmation streak: no replacement before two sick checks.
    assert replacement["at"] >= 2 * policy.check_interval
    assert engine.population() == 1200
    assert [p["op"] for p in coordinator.plans] == ["add", "remove"]


def test_policy_respects_replacement_budget():
    cluster, engine, coordinator = _setup()

    class EverythingSick(StubProbeModel):
        def shard_fail_rate(self, shard):
            return 1.0

    probes = EverythingSick(cluster.shard_names, sick=None)
    coordinator.probe_model = probes
    policy = ElasticPolicy(
        cluster.kernel, coordinator, probes,
        confirm=1, check_interval=1.0, cooldown=0.0, max_replacements=3,
    )
    engine.start(30.0)
    policy.start(30.0)
    cluster.kernel.run(until=30.0)
    assert len(policy.replacements) == 3
    assert engine.population() == 1200
