"""Tests for the load balancer: affinity, failover, microfailover."""

import pytest

from repro.appserver.http import HttpRequest, HttpStatus
from repro.cluster import FailoverMode, build_cluster
from repro.ebid.schema import DatasetConfig


@pytest.fixture
def cluster():
    return build_cluster(3, dataset=DatasetConfig.tiny(), seed=2)


def issue(cluster, url, params=None, cookie=None):
    request = HttpRequest(
        url=url, operation=url.rsplit("/", 1)[-1], params=params or {},
        cookie=cookie,
    )
    event = cluster.load_balancer.handle_request(request)
    return cluster.kernel.run_until_triggered(event)


def login(cluster, user_id):
    response = issue(
        cluster, "/ebid/Authenticate",
        {"user_id": user_id, "password": f"pw{user_id}"},
    )
    return response.payload["cookie"]


def served_by(cluster, cookie):
    """Which node's FastS holds this cookie's session."""
    return [
        node.name
        for node in cluster.nodes
        if cluster.kernel and node.system.session_store.read(cookie)
    ]


def test_logins_spread_over_nodes(cluster):
    cookies = [login(cluster, uid) for uid in range(1, 7)]
    homes = {served_by(cluster, c)[0] for c in cookies}
    assert len(homes) == 3  # every node got some logins


def test_session_affinity_sticks(cluster):
    cookie = login(cluster, 1)
    home = served_by(cluster, cookie)[0]
    for _ in range(4):
        response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
        assert response.payload.get("nickname") == "user1"
    # Still exactly one copy of the session, on the home node.
    assert served_by(cluster, cookie) == [home]


def test_full_failover_redirects_affine_requests(cluster):
    cookie = login(cluster, 1)
    home_name = served_by(cluster, cookie)[0]
    bad = cluster.find_node(home_name)
    cluster.load_balancer.begin_failover(bad, FailoverMode.FULL)
    response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
    # With FastS the session is node-local: the good node cannot find it.
    assert response.payload.get("login_required")
    assert cookie in cluster.load_balancer.sessions_failed_over
    assert cluster.load_balancer.requests_failed_over == 1


def test_end_failover_restores_affinity(cluster):
    cookie = login(cluster, 1)
    bad = cluster.find_node(served_by(cluster, cookie)[0])
    cluster.load_balancer.begin_failover(bad, FailoverMode.FULL)
    issue(cluster, "/ebid/AboutMe", cookie=cookie)
    cluster.load_balancer.end_failover(bad)
    response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
    assert response.payload.get("nickname") == "user1"  # home node again


def test_failover_none_keeps_routing_to_bad_node(cluster):
    cookie = login(cluster, 1)
    bad = cluster.find_node(served_by(cluster, cookie)[0])
    cluster.load_balancer.begin_failover(bad, FailoverMode.NONE)
    response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
    assert response.payload.get("nickname") == "user1"
    assert cluster.load_balancer.requests_failed_over == 0


def test_microfailover_redirects_only_touching_requests(cluster):
    cookie = login(cluster, 1)
    bad = cluster.find_node(served_by(cluster, cookie)[0])
    cluster.load_balancer.begin_failover(
        bad, FailoverMode.MICRO, components=("ViewItem",)
    )
    # AboutMe does not touch ViewItem: stays on the recovering node.
    response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
    assert response.payload.get("nickname") == "user1"
    # ViewItem-path requests are redirected.
    before = cluster.load_balancer.requests_failed_over
    issue(cluster, "/ebid/ViewItem", params={"item_id": 1}, cookie=cookie)
    assert cluster.load_balancer.requests_failed_over == before + 1


def test_new_logins_avoid_recovering_nodes(cluster):
    bad = cluster.nodes[0]
    cluster.load_balancer.begin_failover(bad, FailoverMode.FULL)
    cookies = [login(cluster, uid) for uid in range(1, 7)]
    for cookie in cookies:
        assert served_by(cluster, cookie)[0] != bad.name


def test_nodes_share_one_database(cluster):
    cookie = login(cluster, 1)
    response = issue(
        cluster, "/ebid/RegisterNewItem",
        {"name": "shared", "category_id": 1, "region_id": 1,
         "initial_price": 10},
        cookie,
    )
    item_id = response.payload["item_id"]
    # Any node sees the row (single shared persistence tier).
    view = issue(cluster, "/ebid/ViewItem", {"item_id": item_id})
    assert view.status == HttpStatus.OK


def test_cluster_ids_never_collide(cluster):
    """The high-low key blocks keep concurrent nodes collision-free."""
    cookies = [login(cluster, uid) for uid in range(1, 10)]
    item_ids = []
    for i, cookie in enumerate(cookies):
        response = issue(
            cluster, "/ebid/RegisterNewItem",
            {"name": f"w{i}", "category_id": 1, "region_id": 1,
             "initial_price": 5},
            cookie,
        )
        assert response.status == HttpStatus.OK
        item_ids.append(response.payload["item_id"])
    assert len(set(item_ids)) == len(item_ids)
