"""Tests for the load balancer: affinity, failover, microfailover."""

from types import SimpleNamespace

import pytest

from repro.appserver.http import HttpRequest, HttpStatus
from repro.cluster import FailoverMode, LoadBalancer, build_cluster
from repro.ebid.schema import DatasetConfig
from repro.sim import Kernel


@pytest.fixture
def cluster():
    return build_cluster(3, dataset=DatasetConfig.tiny(), seed=2)


def issue(cluster, url, params=None, cookie=None):
    request = HttpRequest(
        url=url, operation=url.rsplit("/", 1)[-1], params=params or {},
        cookie=cookie,
    )
    event = cluster.load_balancer.handle_request(request)
    return cluster.kernel.run_until_triggered(event)


def login(cluster, user_id):
    response = issue(
        cluster, "/ebid/Authenticate",
        {"user_id": user_id, "password": f"pw{user_id}"},
    )
    return response.payload["cookie"]


def served_by(cluster, cookie):
    """Which node's FastS holds this cookie's session."""
    return [
        node.name
        for node in cluster.nodes
        if cluster.kernel and node.system.session_store.read(cookie)
    ]


def test_logins_spread_over_nodes(cluster):
    cookies = [login(cluster, uid) for uid in range(1, 7)]
    homes = {served_by(cluster, c)[0] for c in cookies}
    assert len(homes) == 3  # every node got some logins


def test_session_affinity_sticks(cluster):
    cookie = login(cluster, 1)
    home = served_by(cluster, cookie)[0]
    for _ in range(4):
        response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
        assert response.payload.get("nickname") == "user1"
    # Still exactly one copy of the session, on the home node.
    assert served_by(cluster, cookie) == [home]


def test_full_failover_redirects_affine_requests(cluster):
    cookie = login(cluster, 1)
    home_name = served_by(cluster, cookie)[0]
    bad = cluster.find_node(home_name)
    cluster.load_balancer.begin_failover(bad, FailoverMode.FULL)
    response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
    # With FastS the session is node-local: the good node cannot find it.
    assert response.payload.get("login_required")
    assert cookie in cluster.load_balancer.sessions_failed_over
    assert cluster.load_balancer.requests_failed_over == 1


def test_end_failover_restores_affinity(cluster):
    cookie = login(cluster, 1)
    bad = cluster.find_node(served_by(cluster, cookie)[0])
    cluster.load_balancer.begin_failover(bad, FailoverMode.FULL)
    issue(cluster, "/ebid/AboutMe", cookie=cookie)
    cluster.load_balancer.end_failover(bad)
    response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
    assert response.payload.get("nickname") == "user1"  # home node again


def test_failover_none_keeps_routing_to_bad_node(cluster):
    cookie = login(cluster, 1)
    bad = cluster.find_node(served_by(cluster, cookie)[0])
    cluster.load_balancer.begin_failover(bad, FailoverMode.NONE)
    response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
    assert response.payload.get("nickname") == "user1"
    assert cluster.load_balancer.requests_failed_over == 0


def test_microfailover_redirects_only_touching_requests(cluster):
    cookie = login(cluster, 1)
    bad = cluster.find_node(served_by(cluster, cookie)[0])
    cluster.load_balancer.begin_failover(
        bad, FailoverMode.MICRO, components=("ViewItem",)
    )
    # AboutMe does not touch ViewItem: stays on the recovering node.
    response = issue(cluster, "/ebid/AboutMe", cookie=cookie)
    assert response.payload.get("nickname") == "user1"
    # ViewItem-path requests are redirected.
    before = cluster.load_balancer.requests_failed_over
    issue(cluster, "/ebid/ViewItem", params={"item_id": 1}, cookie=cookie)
    assert cluster.load_balancer.requests_failed_over == before + 1


def test_new_logins_avoid_recovering_nodes(cluster):
    bad = cluster.nodes[0]
    cluster.load_balancer.begin_failover(bad, FailoverMode.FULL)
    cookies = [login(cluster, uid) for uid in range(1, 7)]
    for cookie in cookies:
        assert served_by(cluster, cookie)[0] != bad.name


def test_nodes_share_one_database(cluster):
    cookie = login(cluster, 1)
    response = issue(
        cluster, "/ebid/RegisterNewItem",
        {"name": "shared", "category_id": 1, "region_id": 1,
         "initial_price": 10},
        cookie,
    )
    item_id = response.payload["item_id"]
    # Any node sees the row (single shared persistence tier).
    view = issue(cluster, "/ebid/ViewItem", {"item_id": item_id})
    assert view.status == HttpStatus.OK


class FailingServer:
    """A backend whose response event fails instead of succeeding."""

    def __init__(self, kernel, exc):
        self.kernel = kernel
        self.exc = exc

    def handle_request(self, request):
        event = self.kernel.event()

        def die():
            yield self.kernel.timeout(0.01)
            event.fail(self.exc)

        self.kernel.process(die())
        return event


def test_forward_failure_fails_client_visible_event():
    """A dying backend must fail `done`, not leave the client hanging."""
    kernel = Kernel()
    node = SimpleNamespace(
        name="n0", server=FailingServer(kernel, RuntimeError("backend died"))
    )
    lb = LoadBalancer(kernel, [node])
    request = HttpRequest(url="/ebid/ViewItem", operation="ViewItem")

    done = lb.handle_request(request)
    with pytest.raises(RuntimeError, match="backend died"):
        kernel.run_until_triggered(done)
    assert lb.forward_failures == 1
    assert not kernel.unhandled_failures


def test_forward_failure_reaches_waiting_process():
    """A process yielding the routed event sees the failure raised into it."""
    kernel = Kernel()
    node = SimpleNamespace(
        name="n0", server=FailingServer(kernel, RuntimeError("backend died"))
    )
    lb = LoadBalancer(kernel, [node])
    outcomes = []

    def client():
        try:
            yield lb.handle_request(HttpRequest(url="/x", operation="x"))
        except RuntimeError as exc:
            outcomes.append(str(exc))

    kernel.process(client())
    kernel.run(until=1.0)
    assert outcomes == ["backend died"]


def ring_nodes(n=3):
    return [SimpleNamespace(name=f"n{i}") for i in range(n)]


def test_round_robin_spreads_evenly():
    lb = LoadBalancer(Kernel(), ring_nodes())
    picks = [lb._next_good_node().name for _ in range(30)]
    assert all(picks.count(name) == 10 for name in ("n0", "n1", "n2"))


def test_round_robin_spread_during_failover():
    nodes = ring_nodes()
    lb = LoadBalancer(Kernel(), nodes)
    lb.begin_failover(nodes[1], FailoverMode.FULL)
    picks = [lb._next_good_node().name for _ in range(10)]
    assert picks.count("n0") == picks.count("n2") == 5
    assert "n1" not in picks


def test_round_robin_rotation_survives_failover_churn():
    """The cursor walks a stable ring: a failover window must not reseat
    the rotation (the old `% len(candidates)` restarted it whenever the
    candidate list changed length, skewing the spread)."""
    nodes = ring_nodes()
    lb = LoadBalancer(Kernel(), nodes)
    assert [lb._next_good_node().name for _ in range(4)] == [
        "n0", "n1", "n2", "n0",
    ]
    lb.begin_failover(nodes[1], FailoverMode.FULL)
    # Rotation continues from where it left off, skipping n1 in place.
    assert [lb._next_good_node().name for _ in range(3)] == ["n2", "n0", "n2"]
    lb.end_failover(nodes[1])
    # Rejoining picks the rotation back up rather than restarting it.
    assert [lb._next_good_node().name for _ in range(3)] == ["n0", "n1", "n2"]


def test_cluster_ids_never_collide(cluster):
    """The high-low key blocks keep concurrent nodes collision-free."""
    cookies = [login(cluster, uid) for uid in range(1, 10)]
    item_ids = []
    for i, cookie in enumerate(cookies):
        response = issue(
            cluster, "/ebid/RegisterNewItem",
            {"name": f"w{i}", "category_id": 1, "region_id": 1,
             "initial_price": 5},
            cookie,
        )
        assert response.status == HttpStatus.OK
        item_ids.append(response.payload["item_id"])
    assert len(set(item_ids)) == len(item_ids)
