"""Cluster observability plane: shard rollups, correlation, capacity."""

import pytest

from repro.observability import (
    ClusterIncidentCorrelator,
    Incident,
    ShardMetricsAggregator,
    shard_of_incident,
    shard_of_name,
    shard_windows_from_records,
    shards_from_timeline,
    timeline_shards,
)
from repro.telemetry import TraceBus, read_timeline, write_timeline


class Clock:
    """Duck-typed kernel: just enough for TraceBus timestamps."""

    def __init__(self):
        self.now = 0.0


class FakeEngine:
    """The three engine views the aggregator reads, nothing else."""

    def __init__(self, good, bad, sessions):
        self.shard_good_series = good
        self.shard_bad_series = bad
        self.shard_sessions = sessions


def make_engine():
    """Two shards over 120 s: shard001 clean, shard002 sick in 30–60 s."""
    good = {
        "shard001": {s: 100 for s in range(120)},
        "shard002": {s: 50 for s in range(120)},
    }
    bad = {"shard002": {s: 30 for s in range(30, 60)}}
    sessions = {"shard001": 1000, "shard002": 500}
    return FakeEngine(good, bad, sessions)


# ----------------------------------------------------------------------
# Shard attribution
# ----------------------------------------------------------------------

def test_shard_of_name_matches_cluster_resources_only():
    assert shard_of_name("shard003-n1") == "shard003"
    assert shard_of_name("shard003-ssm-b2") == "shard003"
    assert shard_of_name("shard003") == "shard003"
    assert shard_of_name("node1") is None
    assert shard_of_name("shardX-n1") is None
    assert shard_of_name("") is None
    assert shard_of_name(None) is None


def test_shard_of_incident_prefers_cluster_map_then_name_then_key():
    by_server = Incident(id=1, key="SSM", server="shard002-n1")
    assert shard_of_incident(by_server) == "shard002"
    # The cluster map is authoritative (it remembers departed nodes).
    assert shard_of_incident(
        by_server, shard_of_node={"shard002-n1": "shard009"}
    ) == "shard009"
    by_key = Incident(id=2, key="link:shard004-n1", server=None)
    assert shard_of_incident(by_key) == "shard004"
    flat = Incident(id=3, key="Item", server="node1")
    assert shard_of_incident(flat) is None


# ----------------------------------------------------------------------
# Aggregator: bus intake
# ----------------------------------------------------------------------

def test_aggregator_folds_bus_events_into_rollups():
    clock = Clock()
    bus = TraceBus(kernel=clock, enabled=True, label="run")
    plane = ShardMetricsAggregator(bus=bus)
    clock.now = 10.0
    bus.publish("storm.begin", shards=["shard001", "shard002"], events=8,
                horizon=60.0)
    bus.publish("storm.event", shard="shard001", kind="deadlock")
    bus.publish("storm.event", shard="shard001", kind="deadlock")
    bus.publish("lb.failover.begin", node="shard001-n1")
    bus.publish("lb.link.fault", node="shard002-n1")
    bus.publish("ssm.crash", store="shard002-ssm-b0")
    clock.now = 30.0
    bus.publish("cohort.migrate", source="shard001", target="shard002",
                sessions=40)
    bus.publish("cohort.migrate.arrived", target="shard002", sessions=40)
    bus.publish("reshard.migrate", source="shard001", target="shard002",
                sessions=40, window=2.0)
    bus.publish("reshard.policy", replaced="shard001")
    clock.now = 70.0
    bus.publish("storm.end")

    rows = {row["shard"]: row for row in plane.rows()}
    assert rows["shard001"]["storm_events"] == 2
    assert rows["shard001"]["storm_kinds"] == ["deadlock"]
    assert rows["shard001"]["failovers"] == 1
    assert rows["shard001"]["migrated_out"] == 40
    assert rows["shard002"]["link_faults"] == 1
    assert rows["shard002"]["brick_crashes"] == 1
    assert rows["shard002"]["migrated_in"] == 40
    assert plane.storm == {"at": 10.0, "shards": ["shard001", "shard002"],
                           "events": 8, "horizon": 60.0, "ended_at": 70.0}
    assert plane.migrations == [{"at": 30.0, "source": "shard001",
                                 "target": "shard002", "sessions": 40,
                                 "window": 2.0}]
    assert plane.replacement_checks == 1


# ----------------------------------------------------------------------
# Aggregator: capacity signal engine
# ----------------------------------------------------------------------

def test_capacity_pressure_and_relief_hysteresis():
    plane = ShardMetricsAggregator()
    t = 0.0
    for _ in range(10):  # sustained probe failures: stress climbs
        plane.observe_probe(t, "shard001", "probe", False, 0.01)
        t += 1.0
    assert [s["signal"] for s in plane.capacity_signals] == ["pressure"]
    pressure = plane.capacity_signals[0]
    assert pressure["shard"] == "shard001"
    assert pressure["ewma"] >= plane.pressure_high
    assert plane.headroom("shard001") == 0.0
    for _ in range(30):  # recovery: EWMA must fall through the low band
        plane.observe_probe(t, "shard001", "probe", True, 0.01)
        t += 1.0
    signals = [s["signal"] for s in plane.capacity_signals]
    assert signals == ["pressure", "relief"]
    relief = plane.capacity_signals[1]
    assert relief["ewma"] <= plane.pressure_low
    assert 0.0 < plane.headroom("shard001") <= 1.0
    rows = {row["shard"]: row for row in plane.rows()}
    assert rows["shard001"]["pressured"] is False
    assert rows["shard001"]["peak_score"] >= plane.pressure_high


def test_capacity_signal_requires_sustained_evidence():
    plane = ShardMetricsAggregator()
    # One failed probe in a sea of good ones: the EWMA never clears the
    # high band, so the plane stays silent.
    for k in range(30):
        plane.observe_probe(float(k), "shard001", "probe", k != 5, 0.01)
    assert plane.capacity_signals == []


def test_hysteresis_bands_must_be_ordered():
    with pytest.raises(ValueError):
        ShardMetricsAggregator(pressure_high=1.0, pressure_low=1.2)


# ----------------------------------------------------------------------
# Aggregator: collection, SLO judging, reduction
# ----------------------------------------------------------------------

def test_collect_folds_series_and_judges_shard_slo():
    plane = ShardMetricsAggregator()
    plane.bind_engine(make_engine())
    plane.collect(duration=120.0)
    rows = {row["shard"]: row for row in plane.rows()}

    clean = rows["shard001"]
    assert clean["good"] == 12_000 and clean["bad"] == 0
    assert clean["availability"] == 1.0
    assert clean["gaw_per_second"] == 100.0
    assert clean["series"] == [[0, 3000, 0], [30, 3000, 0],
                               [60, 3000, 0], [90, 3000, 0]]
    assert clean["slo"]["violations"] == 0

    sick = rows["shard002"]
    assert sick["bad"] == 900
    assert sick["slo"]["windows"] == 4
    assert sick["slo"]["violations"] == 1  # the 30–60 s window
    assert sick["slo"]["min_availability"] == pytest.approx(
        1500 / 2400, abs=1e-6
    )

    summary = plane.cluster_summary()
    assert summary["shards"] == 2
    assert summary["good"] == 12_000 + 6_000
    assert summary["bad"] == 900
    assert summary["slo_violations"] == 1
    assert summary["sessions"] == 1500


def test_probe_quantiles_merge_exactly_into_cluster_summary():
    plane = ShardMetricsAggregator()
    reference = ShardMetricsAggregator()
    for k in range(200):
        shard = "shard001" if k % 2 else "shard002"
        latency = 0.001 * (k + 1)
        plane.observe_probe(float(k), shard, "probe", True, latency)
        reference.observe_probe(float(k), "shard001", "probe", True, latency)
    merged = plane.cluster_summary()
    single = reference.cluster_summary()
    assert merged["probe_p50"] == single["probe_p50"]
    assert merged["probe_p99"] == single["probe_p99"]


def test_rollups_are_deterministic():
    def build():
        plane = ShardMetricsAggregator()
        plane.bind_engine(make_engine())
        for k in range(50):
            plane.observe_probe(float(k), "shard002", "probe", k % 3 == 0,
                                0.002 * (k % 7 + 1))
        plane.collect(duration=120.0)
        return plane

    a, b = build(), build()
    assert a.rows() == b.rows()
    assert a.capacity_signals == b.capacity_signals
    assert a.cluster_summary() == b.cluster_summary()


# ----------------------------------------------------------------------
# Correlator: meta-incidents
# ----------------------------------------------------------------------

def make_incident(iid, shard, opened, closed, first_report=None,
                  actions=()):
    incident = Incident(
        id=iid, key=f"deadlock:{shard}-n1", server=f"{shard}-n1",
        opened_at=opened, closed_at=closed, first_report_at=first_report,
        last_activity=closed,
    )
    incident.actions = [dict(a) for a in actions]
    return incident


def test_correlator_stitches_concurrent_shards_into_one_meta():
    incidents = [
        make_incident(1, "shard001", 20.0, 45.0, first_report=22.0),
        make_incident(2, "shard002", 21.0, 50.0, first_report=23.0),
        make_incident(3, "shard001", 40.0, 60.0),  # pulse chain bridges
    ]
    correlator = ClusterIncidentCorrelator(window=60.0, k_min=2)
    metas = correlator.correlate(incidents)
    assert len(metas) == 1 and correlator.unclustered == 0
    meta = metas[0]
    assert meta.shards == ["shard001", "shard002"]
    assert meta.mode() == "simultaneous"  # onsets 20 and 21: spread 1 s
    assert meta.opened_at == 20.0 and meta.end == 60.0
    assert meta.span == 40.0


def test_correlator_detects_waves_and_orders_onsets():
    incidents = [
        make_incident(1, "shard005", 100.0, 130.0),
        make_incident(2, "shard002", 80.0, 110.0),
        make_incident(3, "shard009", 120.0, 150.0),
    ]
    meta = ClusterIncidentCorrelator().correlate(incidents)[0]
    assert meta.mode() == "wave"  # onset spread 40 s > 5 s
    assert meta.onset_order == ["shard002", "shard005", "shard009"]
    assert meta.onset_spread == 40.0


def test_correlator_splits_distant_clusters_and_counts_leftovers():
    incidents = [
        make_incident(1, "shard001", 10.0, 20.0),
        make_incident(2, "shard002", 15.0, 25.0),
        # Opens 200 s after the first cluster's end: its own cluster,
        # single-shard, below k_min — unclustered.
        make_incident(3, "shard003", 225.0, 240.0),
    ]
    correlator = ClusterIncidentCorrelator(window=60.0, k_min=2)
    metas = correlator.correlate(incidents)
    assert len(metas) == 1
    assert metas[0].shards == ["shard001", "shard002"]
    assert correlator.unclustered == 1


def test_correlator_ignores_unattributable_incidents():
    flat = Incident(id=1, key="Item", server="node1", opened_at=5.0,
                    closed_at=9.0)
    correlator = ClusterIncidentCorrelator()
    assert correlator.correlate([flat]) == []
    assert correlator.unclustered == 0  # never attributed, never counted


def test_correlator_absorbs_struck_but_silent_shards():
    # A brick-crash shard never opens a tracked incident; the storm
    # schedule is the evidence it belongs to the same meta-incident.
    incidents = [
        make_incident(1, "shard001", 60.0, 90.0),
        make_incident(2, "shard002", 61.0, 95.0),
    ]
    storm = {"at": 60.0, "shards": ["shard001", "shard002", "shard003",
                                    "shard004"], "ended_at": 180.0}
    meta = ClusterIncidentCorrelator().correlate(
        incidents, storm=storm
    )[0]
    assert meta.shards == ["shard001", "shard002", "shard003", "shard004"]
    assert meta.absorbed == ["shard003", "shard004"]
    # Absorbed shards carry no observed onset: the simultaneous/wave
    # classification and the span stay grounded in incident evidence.
    assert sorted(meta.onsets) == ["shard001", "shard002"]
    assert meta.mode() == "simultaneous"
    assert meta.opened_at == 60.0
    assert meta.to_dict()["absorbed"] == ["shard003", "shard004"]
    # A storm far outside the cluster's span is never absorbed.
    late = ClusterIncidentCorrelator().correlate(
        incidents, storm={"at": 500.0, "shards": ["shard009"],
                          "ended_at": 600.0}
    )[0]
    assert late.shards == ["shard001", "shard002"]


def test_meta_incident_attributes_elasticity_actions_in_span():
    incidents = [
        make_incident(1, "shard001", 20.0, 60.0),
        make_incident(2, "shard002", 22.0, 55.0),
    ]
    replacements = [
        {"at": 40.0, "replaced": "shard001", "with": "shard128"},
        {"at": 500.0, "replaced": "shard001", "with": "shard129"},  # late
        {"at": 41.0, "replaced": "shard099", "with": "shard130"},  # foreign
    ]
    migrations = [
        {"at": 42.0, "source": "shard001", "target": "shard128",
         "sessions": 500, "window": 2.0},
        {"at": 43.0, "source": "shard050", "target": "shard051",
         "sessions": 10, "window": 2.0},  # neither endpoint struck
    ]
    meta = ClusterIncidentCorrelator().correlate(
        incidents, replacements=replacements, migrations=migrations
    )[0]
    assert [r["at"] for r in meta.replacements] == [40.0]
    assert [m["at"] for m in meta.migrations] == [42.0]
    as_dict = meta.to_dict()
    assert as_dict["replacements"][0]["with"] == "shard128"


def test_meta_incident_phases_sum_exactly_to_span():
    actions = [{"level": "node", "target": ("shard001-n1",), "ok": True,
                "error": None, "decided_at": 26.0, "finished_at": 31.0}]
    incidents = [
        make_incident(1, "shard001", 20.0, 70.0, first_report=24.0,
                      actions=actions),
        make_incident(2, "shard002", 21.0, 65.0, first_report=23.0),
    ]
    migrations = [{"at": 35.0, "source": "shard001", "target": "shard128",
                   "sessions": 500, "window": 10.0}]
    meta = ClusterIncidentCorrelator().correlate(
        incidents, migrations=migrations
    )[0]
    phases = meta.phases()
    assert set(phases) == {"detect", "decide", "migrate", "drain"}
    assert all(value >= 0.0 for value in phases.values())
    assert sum(phases.values()) == pytest.approx(meta.span)
    assert phases["detect"] == 3.0   # onset 20 → first report 23
    assert phases["decide"] == 3.0   # → first decision 26
    assert phases["migrate"] == 19.0  # → migration window end 45
    assert phases["drain"] == 25.0   # → last incident close 70


def test_meta_incident_phases_clamp_out_of_order_evidence():
    # A report stamped before the fault must never produce a negative
    # detect phase — same clamping contract as Incident.phases().
    incidents = [
        make_incident(1, "shard001", 20.0, 40.0, first_report=18.0),
        make_incident(2, "shard002", 24.0, 44.0),
    ]
    meta = ClusterIncidentCorrelator().correlate(incidents)[0]
    phases = meta.phases()
    assert phases["detect"] == 0.0
    assert all(value >= 0.0 for value in phases.values())
    assert sum(phases.values()) == pytest.approx(meta.span)


# ----------------------------------------------------------------------
# Offline surfaces: timeline round-trip
# ----------------------------------------------------------------------

def test_shards_from_timeline_round_trips_the_live_view(tmp_path):
    clock = Clock()
    bus = TraceBus(kernel=clock, enabled=True, label="run")
    plane = ShardMetricsAggregator(bus=bus)
    plane.bind_engine(make_engine())
    for k in range(40):
        clock.now = float(k)
        plane.observe_probe(clock.now, "shard002", "probe", k % 2 == 0,
                            0.005)
    clock.now = 120.0
    plane.collect(duration=120.0)

    path = tmp_path / "timeline.jsonl"
    write_timeline(path, [bus])
    view = shards_from_timeline(read_timeline(path))

    live = {row["shard"]: row for row in plane.rows()}
    replayed = {row["shard"]: row for row in view["shards"]}
    assert sorted(replayed) == sorted(live) == ["shard001", "shard002"]
    for shard, row in replayed.items():
        for key in ("sessions", "good", "bad", "availability",
                    "probe_p50", "probe_p99", "capacity_score",
                    "pressured", "migrated_in", "migrated_out"):
            assert row[key] == live[shard][key], (shard, key)
        slo = live[shard]["slo"]
        assert row["slo_windows"] == slo["windows"]
        assert row["slo_violations"] == slo["violations"]
    # Four judged windows per shard, rebuilt bounded series included.
    assert len(replayed["shard002"]["windows"]) == 4
    assert view["capacity_signals"] == plane.capacity_signals
    assert view["storm"] is None


def test_shard_windows_from_records_rejudges_availability(tmp_path):
    records = [
        {"t": 120.0, "kind": "shard.window", "shard": "shard002",
         "start": 0.0, "end": 30.0, "good": 1500, "bad": 0},
        {"t": 120.0, "kind": "shard.window", "shard": "shard002",
         "start": 30.0, "end": 60.0, "good": 1500, "bad": 900},
        {"t": 120.0, "kind": "shard.window", "shard": "shard001",
         "start": 0.0, "end": 30.0, "good": 3000, "bad": 0},
    ]
    windows = shard_windows_from_records(records, "shard002")
    assert len(windows) == 2
    assert windows[0].violated is False
    assert windows[1].violated is True
    assert "availability" in windows[1].reasons[0]


def test_timeline_shards_lists_every_shard_mentioned():
    records = [
        {"t": 1.0, "kind": "shard.rollup", "shard": "shard002"},
        {"t": 2.0, "kind": "reshard.migrate", "source": "shard001",
         "target": "shard128"},
        {"t": 3.0, "kind": "lb.failover.begin", "node": "shard004-n1"},
        {"t": 4.0, "kind": "rm.report", "server": "node1"},  # flat: ignored
    ]
    assert timeline_shards(records) == [
        "shard001", "shard002", "shard004", "shard128"
    ]
