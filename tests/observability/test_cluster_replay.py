"""Replay-vs-live equivalence over a storm timeline.

A recorded storm timeline pushed through :func:`health_from_timeline`
must rebuild the same predictive view the live rig computed: same
stitched incidents, same MTTR phase decompositions, and — for every
component the replay can see — the same health score.  This is the
contract that makes ``repro health`` on a captured megascale/storm
timeline trustworthy.
"""

import pytest

from repro.experiments.megascale import URL_PATH_MAP
from repro.experiments.storm import StormRig
from repro.faults.chaos import StormSpec
from repro.observability import health_from_timeline
from repro.observability.health import HEALTH_KINDS
from repro.observability.incidents import TRACKED_KINDS
from repro.telemetry import capture_to_jsonl, read_timeline

REPLAYED_KINDS = TRACKED_KINDS + HEALTH_KINDS + (
    "detector.report", "rm.report",
)


def _replayed(kind):
    return any(
        kind == pattern or (
            pattern.endswith("*") and kind.startswith(pattern[:-1])
        )
        for pattern in REPLAYED_KINDS
    )


@pytest.fixture(scope="module")
def storm_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("replay") / "storm.jsonl"
    with capture_to_jsonl(path):
        rig = StormRig(
            seed=11, n_sessions=2000, n_shards=4, duration=90.0,
            storm=True, storm_spec=StormSpec.smoke(),
        )
        rig.run()
    return rig, read_timeline(path)


def test_replayed_incidents_match_live(storm_run):
    rig, records = storm_run
    live = rig.incident_tracker.incidents
    _rows, _alerts, replayed = health_from_timeline(
        records, url_path_map=URL_PATH_MAP
    )
    assert len(replayed) == len(live) > 0
    for mine, theirs in zip(replayed, live):
        assert mine.key == theirs.key
        assert mine.server == theirs.server
        assert mine.opened_at == theirs.opened_at
        assert mine.phases() == theirs.phases()


def test_replayed_health_scores_match_live(storm_run):
    rig, records = storm_run
    # The replay snapshots at the last replayed-kind timestamp; score the
    # live registry at the same instant (scores decay with time).
    end = max(r["t"] for r in records if _replayed(r["kind"]))
    rows, _alerts, _incidents = health_from_timeline(
        records, url_path_map=URL_PATH_MAP
    )
    assert rows, "replay produced no health rows"
    live = {
        (row["server"], row["component"]): row
        for row in rig.health_registry.snapshot(end)
    }
    seen = 0
    for row in rows:
        key = (row["server"], row["component"])
        if key not in live:  # live pre-registers every healthy component
            continue
        seen += 1
        assert row["score"] == live[key]["score"], key
        for signal in ("hazard", "burn", "flap", "heap"):
            assert row[signal] == live[key][signal], (key, signal)
    assert seen > 0
    # The storm left a mark: at least one struck-shard component is
    # scored below perfect in both views.
    degraded = [row for row in rows if row["score"] < 100.0]
    assert degraded
    assert all(str(row["server"]).startswith("shard") for row in degraded)
