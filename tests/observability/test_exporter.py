"""Exposition: Prometheus text rendering, JSONL export, timeline replay."""

import json

import pytest

from repro.observability.exporter import (
    incidents_from_timeline,
    registry_from_observability,
    render_prometheus,
    write_incidents,
)
from repro.observability.incidents import IncidentTracker
from repro.observability.slo import SloPolicy, compute_windows
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import TraceBus
from repro.telemetry.export import write_timeline

URL_PATH_MAP = {"/ebid/ViewItem": ("EbidWAR", "ViewItem", "Item")}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def test_render_prometheus_counters_gauges_and_families_exactly():
    registry = MetricsRegistry()
    registry.counter("taw.requests.good").inc(42)
    registry.gauge("slo.max_burn").set(1.25)
    family = registry.family("incidents.by_closed_by")
    family.inc("recovered", 3)
    family.inc("failover")
    assert render_prometheus(registry) == (
        "# TYPE repro_incidents_by_closed_by counter\n"
        'repro_incidents_by_closed_by{key="failover"} 1\n'
        'repro_incidents_by_closed_by{key="recovered"} 3\n'
        "# TYPE repro_slo_max_burn gauge\n"
        "repro_slo_max_burn 1.25\n"
        "# TYPE repro_taw_requests_good counter\n"
        "repro_taw_requests_good 42\n"
    )


def test_render_prometheus_histogram_as_summary():
    registry = MetricsRegistry()
    hist = registry.histogram("taw.response_time")
    for value in (0.1, 0.2, 0.3, 4.0):
        hist.observe(value)
    text = render_prometheus(registry)
    assert "# TYPE repro_taw_response_time summary" in text
    assert 'repro_taw_response_time{quantile="0.5"}' in text
    assert 'repro_taw_response_time{quantile="0.99"}' in text
    assert "repro_taw_response_time_count 4" in text
    assert "repro_taw_response_time_sum" in text


def test_render_prometheus_is_deterministic_and_escapes_labels():
    registry = MetricsRegistry()
    registry.family("f").inc('we"ird\nlabel')
    first = render_prometheus(registry)
    assert first == render_prometheus(registry)
    assert '\\"' in first and "\\n" in first


def test_render_prometheus_empty_registry_is_empty_string():
    assert render_prometheus(MetricsRegistry()) == ""


def test_registry_from_observability_folds_both_sources():
    tracker = IncidentTracker(url_path_map=URL_PATH_MAP)
    tracker.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                         "server": "node1"})
    tracker.feed(2.0, "rm.action.end", {"level": "ejb", "target": ("Item",),
                                        "ok": True, "duration": 1.0,
                                        "server": "node1"})
    incidents = tracker.finalize()
    windows = compute_windows(
        {0: 9}, {0: 1}, [], 10.0,
        policy=SloPolicy(window=10.0, availability_target=0.99),
    )
    registry = registry_from_observability(incidents, windows)
    assert registry.counter("incidents.count").value == 1
    assert registry.family("incidents.by_trigger").get("fault") == 1
    assert registry.family("incidents.by_closed_by").get("recovered") == 1
    assert registry.counter("slo.windows").value == 1
    assert registry.counter("slo.violations").value == 1
    assert registry.gauge("slo.max_burn").value == pytest.approx(10.0)
    # Phase seconds sum to the incident spans.
    phase_total = sum(
        registry.family("incidents.phase_seconds").as_dict().values()
    )
    assert phase_total == pytest.approx(sum(i.span for i in incidents))


# ----------------------------------------------------------------------
# JSONL export
# ----------------------------------------------------------------------

def test_write_incidents_jsonl_round_trip(tmp_path):
    tracker = IncidentTracker(url_path_map=URL_PATH_MAP)
    tracker.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                         "server": "node1"})
    tracker.feed(2.0, "rm.action.end", {"level": "ejb", "target": ("Item",),
                                        "ok": True, "duration": 1.0,
                                        "server": "node1"})
    incidents = tracker.finalize()
    path = tmp_path / "incidents.jsonl"
    assert write_incidents(path, incidents) == 1
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["key"] == "Item"
    assert record["closed_by"] == "recovered"


# ----------------------------------------------------------------------
# Timeline replay
# ----------------------------------------------------------------------

def test_incidents_from_timeline_matches_live_stitching(tmp_path):
    bus = TraceBus(enabled=True, label="run")
    live = IncidentTracker(bus=bus, url_path_map=URL_PATH_MAP)
    bus.publish("fault.injected", target="Item", fault="x", server="node1")
    bus.publish("rm.report", url="/ebid/ViewItem", server="node1")
    bus.publish("rm.decision", level="ejb", target=("Item",), server="node1")
    bus.publish("rm.action.end", level="ejb", target=("Item",), ok=True,
                duration=1.0, server="node1")
    bus.publish("request.end", operation="ViewItem", ok=True, duration=0.1)
    path = tmp_path / "timeline.jsonl"
    write_timeline(path, [bus])
    with open(path, encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh]

    replayed = incidents_from_timeline(records, url_path_map=URL_PATH_MAP)
    live_incidents = live.finalize()
    assert [i.to_dict() for i in replayed] == [
        i.to_dict() for i in live_incidents
    ]


def test_incidents_from_timeline_keeps_buses_apart():
    """One bus's recovery must not close or join another bus's incident."""
    records = [
        {"t": 0.0, "seq": 0, "bus": "a", "kind": "fault.injected",
         "target": "Item", "fault": "x", "server": "node1"},
        {"t": 0.0, "seq": 0, "bus": "b", "kind": "fault.injected",
         "target": "Item", "fault": "x", "server": "node1"},
        {"t": 2.0, "seq": 1, "bus": "a", "kind": "rm.action.end",
         "level": "ejb", "target": ["Item"], "ok": True, "duration": 1.0,
         "server": "node1"},
    ]
    incidents = incidents_from_timeline(records, url_path_map=URL_PATH_MAP)
    assert len(incidents) == 2
    assert [i.id for i in incidents] == [1, 2]  # renumbered across buses
    by_closed = sorted(i.closed_by for i in incidents)
    assert by_closed == ["quiesced", "recovered"]


def test_incidents_from_timeline_ignores_untracked_kinds():
    records = [
        {"t": 0.0, "seq": 0, "bus": "a", "kind": "request.end", "ok": True},
        {"t": 1.0, "seq": 1, "bus": "a", "kind": "span", "component": "X"},
    ]
    assert incidents_from_timeline(records) == []


def test_render_prometheus_escapes_every_family_label_path():
    """Regression: label values with backslashes, quotes, and newlines
    must escape identically through counter AND gauge families — a raw
    newline in a label value corrupts the whole exposition."""
    from repro.telemetry.metrics import GaugeFamily  # noqa: F401

    hostile = 'C:\\shard\n"one"'
    registry = MetricsRegistry()
    registry.family("by_key", label="shard").inc(hostile, 2)
    registry.gauge_family("load", label="shard").set(hostile, 1.5)
    text = render_prometheus(registry)
    escaped = 'C:\\\\shard\\n\\"one\\"'
    assert f'repro_by_key{{shard="{escaped}"}} 2' in text
    assert f'repro_load{{shard="{escaped}"}} 1.5' in text
    # The only literal newlines are the line separators themselves.
    assert all(
        line.startswith(("# TYPE", "repro_")) for line in text.splitlines()
    )


def test_render_prometheus_gauge_family_uses_label_name():
    registry = MetricsRegistry()
    registry.gauge_family("shard.availability", label="shard").set(
        "shard001", 0.9995
    )
    text = render_prometheus(registry)
    assert "# TYPE repro_shard_availability gauge" in text
    assert 'repro_shard_availability{shard="shard001"} 0.9995' in text


def test_registry_from_cluster_folds_rollup_rows():
    from repro.observability.exporter import registry_from_cluster

    rows = [
        {"shard": "shard001", "availability": 1.0, "sessions": 1000,
         "gaw_per_second": 100.0, "probe_p50": 0.002, "probe_p99": 0.009,
         "capacity_score": 1.01, "headroom": 0.37, "pressured": False,
         "probes": 120, "probe_failures": 0, "failovers": 0,
         "storm_events": 0, "migrated_in": 0, "migrated_out": 0,
         "slo": {"windows": 4, "violations": 0}},
        {"shard": "shard002", "availability": 0.97, "sessions": 500,
         "capacity_score": 1.9, "headroom": 0.0, "pressured": True,
         "probes": 120, "probe_failures": 17, "failovers": 2,
         "storm_events": 5, "migrated_in": 0, "migrated_out": 500,
         "slo_violations": 1},  # replayed rows carry the flat key
    ]
    summary = {"availability": 0.998, "shards": 2, "probe_p99": 0.01,
               "pressured_shards": ["shard002"], "slo_violations": 1}
    signals = [{"t": 40.0, "shard": "shard002", "signal": "pressure"}]
    text = render_prometheus(
        registry_from_cluster(rows, summary=summary, signals=signals)
    )
    assert 'repro_shard_availability{shard="shard001"} 1' in text
    assert 'repro_shard_availability{shard="shard002"} 0.97' in text
    assert 'repro_shard_pressured{shard="shard002"} 1' in text
    assert 'repro_shard_probe_failures{shard="shard002"} 17' in text
    # Both the nested live shape and the flat replayed shape count.
    assert 'repro_shard_slo_violations{shard="shard002"} 1' in text
    assert "repro_cluster_availability 0.998" in text
    assert "repro_cluster_pressured_shards 1" in text
    assert 'repro_cluster_capacity_signals{signal="pressure"} 1' in text
