"""Component health: heap trend prediction and blended 0-100 scores."""

import pytest

from repro.observability.estimators import EstimatorHub
from repro.observability.health import (
    HEAP_RESET_FRACTION,
    ComponentHealthRegistry,
    HeapTrendTracker,
)
from repro.telemetry.trace import TraceBus

MB = 1024 * 1024
CAPACITY = 1024 * MB

URL_PATH_MAP = {
    "/ebid/ViewItem": ("EbidWAR", "ViewItem", "Item"),
}


# ----------------------------------------------------------------------
# HeapTrendTracker
# ----------------------------------------------------------------------

def drain(tracker, start=900 * MB, rate=3 * MB, samples=6, t0=0.0, dt=5.0):
    for i in range(samples):
        tracker.observe(t0 + i * dt, start - i * dt * rate, CAPACITY)
    return t0 + (samples - 1) * dt


def test_trend_needs_two_samples():
    tracker = HeapTrendTracker()
    assert tracker.slope() is None
    tracker.observe(0.0, 900 * MB, CAPACITY)
    assert tracker.slope() is None
    assert tracker.time_to_alarm(0.0) is None


def test_linear_drain_extrapolates_to_alarm():
    tracker = HeapTrendTracker(alarm_fraction=0.10)
    last = drain(tracker, start=900 * MB, rate=3 * MB)
    assert tracker.slope() == pytest.approx(-3 * MB, rel=1e-6)
    # From ~825 MB down to the ~102 MB alarm floor at 3 MB/s.
    expected = (825 * MB - 0.10 * CAPACITY) / (3 * MB)
    assert tracker.time_to_alarm(last) == pytest.approx(expected, rel=1e-6)


def test_flat_heap_predicts_no_alarm():
    tracker = HeapTrendTracker()
    for i in range(5):
        tracker.observe(i * 5.0, 900 * MB, CAPACITY)
    assert tracker.time_to_alarm(25.0) is None


def test_already_below_alarm_is_zero():
    tracker = HeapTrendTracker(alarm_fraction=0.10)
    drain(tracker, start=110 * MB, rate=3 * MB, samples=3)
    assert tracker.time_to_alarm(10.0) == 0.0


def test_reclaim_jump_resets_the_trend():
    """A µRB's reclaim would poison a least-squares fit spanning it."""
    tracker = HeapTrendTracker()
    drain(tracker, start=400 * MB, rate=3 * MB, samples=6)
    assert tracker.slope() < 0
    # The reclaim: available jumps by far more than HEAP_RESET_FRACTION.
    jump = 400 * MB + 2 * HEAP_RESET_FRACTION * CAPACITY
    tracker.observe(30.0, jump, CAPACITY)
    assert tracker.slope() is None  # ring cleared; trend restarts
    assert len(tracker.samples) == 1


# ----------------------------------------------------------------------
# ComponentHealthRegistry
# ----------------------------------------------------------------------

def make_registry(**kwargs):
    return ComponentHealthRegistry(**kwargs)


def test_registered_components_start_at_full_health():
    registry = make_registry()
    registry.register("node1", ("Item", "Bid"))
    assert registry.keys() == [("node1", "Bid"), ("node1", "Item")]
    assert registry.score("Item", server="node1") == 100.0


def test_heap_drain_lowers_every_component_on_the_server():
    registry = make_registry()
    registry.register("node1", ("Item",))
    registry.register("node2", ("Item",))
    for i in range(6):
        registry.feed(i * 5.0, "heap.sample",
                      {"server": "node1", "available": (900 - i * 40) * MB,
                       "capacity": CAPACITY})
    sick = registry.score("Item", server="node1")
    healthy = registry.score("Item", server="node2")
    assert sick < healthy == 100.0
    assert registry.heap_time_to_alarm("node1") is not None
    assert registry.heap_time_to_alarm("node2") is None


def test_quarantine_saturates_the_flap_signal():
    registry = make_registry()
    registry.register("node1", ("Item",))
    registry.feed(100.0, "rm.quarantine.begin",
                  {"server": "node1", "component": "Item", "until": 160.0})
    assert registry.health("Item", server="node1")["signals"]["flap"] == 1.0
    registry.feed(160.0, "rm.quarantine.end",
                  {"server": "node1", "component": "Item"})
    signal = registry.health("Item", server="node1", now=160.0)
    assert signal["signals"]["flap"] < 1.0


def test_coarse_backoff_keys_are_not_component_flap_evidence():
    registry = make_registry()
    registry.register("node1", ("Item",))
    registry.feed(50.0, "rm.backoff.set",
                  {"server": "node1", "target": "node", "level": "jvm",
                   "until": 90.0, "repeats": 2})
    # "node" is a rung key, not a component: no phantom ("node1", "node").
    assert registry.keys() == [("node1", "Item")]


def test_slo_burn_penalizes_cluster_wide():
    registry = make_registry()
    registry.register("node1", ("Item",))
    registry.feed(100.0, "slo.violated", {"burn": 8.0})
    burned = registry.score("Item", server="node1")
    assert burned < 100.0
    # The penalty decays as the violation recedes.
    later = registry.score("Item", server="node1", now=160.0)
    assert later > burned


def test_score_stays_bounded_under_every_penalty():
    registry = make_registry()
    registry.register("node1", ("Item",))
    registry.feed(10.0, "slo.violated", {"burn": None})  # saturates burn
    registry.feed(10.0, "rm.quarantine.begin",
                  {"server": "node1", "component": "Item", "until": 1e9})
    for i in range(4):
        registry.feed(10.0 + i, "heap.sample",
                      {"server": "node1", "available": 10 * MB,
                       "capacity": CAPACITY})
    score = registry.score("Item", server="node1")
    assert 0.0 <= score <= 100.0


def test_bus_subscription_feeds_the_registry():
    bus = TraceBus(enabled=True)
    registry = make_registry(bus=bus)
    bus.publish("heap.sample", server="node1", available=500 * MB,
                capacity=CAPACITY)
    assert registry.events_seen == 1
    registry.detach()
    bus.publish("heap.sample", server="node1", available=400 * MB,
                capacity=CAPACITY)
    assert registry.events_seen == 1


def test_snapshot_includes_hub_mttf():
    hub = EstimatorHub(url_path_map=URL_PATH_MAP)
    registry = make_registry(hub=hub)
    registry.register("node1", ("Item",))
    est = hub._estimator(("node1", "Item"))
    est.record_failure(100.0)
    est.record_failure(160.0)
    rows = registry.snapshot(now=200.0)
    row = next(r for r in rows if r["component"] == "Item")
    assert row["mttf"] == pytest.approx(60.0)
    assert 0.0 <= row["score"] <= 100.0
