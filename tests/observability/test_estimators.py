"""Streaming MTTF/hazard estimators: warm-up, intervals, determinism."""

import pytest

from repro.observability.estimators import (
    WARMUP,
    Ewma,
    EstimatorHub,
    FailureRateEstimator,
    MovingAverage,
)
from repro.observability.incidents import IncidentTracker
from repro.telemetry.trace import TraceBus

URL_PATH_MAP = {
    "/ebid/ViewItem": ("EbidWAR", "ViewItem", "Item"),
    "/ebid/CommitBid": ("EbidWAR", "CommitBid", "Bid", "Item"),
}


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------

def test_moving_average_windows_and_evicts():
    ma = MovingAverage(window=3)
    assert ma.value is WARMUP
    ma.observe(10.0)
    assert ma.value == pytest.approx(10.0)
    ma.observe(20.0)
    ma.observe(30.0)
    assert ma.value == pytest.approx(20.0)
    ma.observe(40.0)  # evicts the 10
    assert ma.value == pytest.approx(30.0)


def test_moving_average_rejects_empty_window():
    with pytest.raises(ValueError, match="window"):
        MovingAverage(window=0)


def test_ewma_warm_up_then_smooths():
    ewma = Ewma(alpha=0.5)
    assert ewma.value is WARMUP
    ewma.observe(100.0)
    assert ewma.value == pytest.approx(100.0)  # first sample seeds
    ewma.observe(0.0)
    assert ewma.value == pytest.approx(50.0)


def test_ewma_rejects_bad_alpha():
    with pytest.raises(ValueError, match="alpha"):
        Ewma(alpha=0.0)
    with pytest.raises(ValueError, match="alpha"):
        Ewma(alpha=1.5)


# ----------------------------------------------------------------------
# FailureRateEstimator
# ----------------------------------------------------------------------

def test_single_failure_yields_no_interval():
    est = FailureRateEstimator()
    est.record_failure(100.0)
    # One failure defines no inter-failure interval: everything stays at
    # the warm-up sentinel rather than a fake zero-or-infinite rate.
    assert est.failures == 1
    assert est.mttf() is WARMUP
    assert est.failure_rate() is WARMUP
    assert est.hazard(now=200.0) is WARMUP


def test_two_failures_define_mttf_and_rate():
    est = FailureRateEstimator()
    est.record_failure(100.0)
    est.record_failure(160.0)
    assert est.mttf() == pytest.approx(60.0)
    assert est.failure_rate() == pytest.approx(1.0 / 60.0)


def test_hazard_decays_past_the_mttf():
    est = FailureRateEstimator()
    est.record_failure(0.0)
    est.record_failure(60.0)
    fresh = est.hazard(now=90.0)  # within one MTTF of the last failure
    stale = est.hazard(now=600.0)  # long quiet stretch
    assert fresh > stale > 0.0


def test_estimator_state_is_plain_data():
    est = FailureRateEstimator()
    est.record_failure(10.0)
    est.record_failure(30.0)
    state = est.state()
    assert state["failures"] == 2
    assert state["mttf"] == pytest.approx(20.0)


# ----------------------------------------------------------------------
# EstimatorHub
# ----------------------------------------------------------------------

def make_hub(**kwargs):
    kwargs.setdefault("url_path_map", URL_PATH_MAP)
    return EstimatorHub(**kwargs)


def test_empty_incident_stream_has_empty_state():
    hub = make_hub()
    assert hub.keys() == []
    assert hub.failure_keys() == []
    assert hub.state() == {}
    assert hub.mttf("Item", server="node1") is WARMUP


def test_incident_closures_feed_per_component_estimators():
    tracker = IncidentTracker(url_path_map=URL_PATH_MAP)
    hub = make_hub(tracker=tracker)
    for opened in (100.0, 200.0, 300.0):
        tracker.feed(opened, "fault.injected",
                     {"target": "Item", "fault": "x", "server": "node1"})
        tracker.feed(opened + 2.0, "rm.action.end",
                     {"level": "ejb", "target": ("Item",), "ok": True,
                      "duration": 1.0, "server": "node1"})
    tracker.finalize(400.0)
    assert hub.incidents_seen == 3
    # Failures are stamped at incident *open* times: intervals of 100 s.
    assert hub.mttf("Item", server="node1") == pytest.approx(100.0)
    assert hub.failure_rate("Item", server="node1") == pytest.approx(0.01)


def test_report_feed_tracks_rate_but_not_failure_keys():
    hub = make_hub()
    hub.feed_report(10.0, "/ebid/ViewItem", server="node1")
    hub.feed_report(12.0, "/ebid/ViewItem", server="node1")
    assert hub.report_rate("ViewItem", server="node1") == pytest.approx(0.5)
    assert ("node1", "ViewItem") in hub.keys()
    # No incident-attributed failures yet: failure_keys stays empty.
    assert hub.failure_keys() == []


def test_bus_subscription_and_detach():
    bus = TraceBus(enabled=True)
    hub = make_hub(bus=bus)
    bus.publish("rm.report", url="/ebid/ViewItem", server="node1")
    assert hub.reports_seen == 1
    hub.detach()
    bus.publish("rm.report", url="/ebid/ViewItem", server="node1")
    assert hub.reports_seen == 1


def test_same_stream_yields_identical_state():
    """Determinism: two hubs fed the same history agree exactly."""
    def feed(hub):
        tracker = IncidentTracker(url_path_map=URL_PATH_MAP)
        tracker.close_listeners.append(hub.on_incident_closed)
        for opened in (50.0, 125.0, 280.0, 333.0):
            tracker.feed(opened, "fault.injected",
                         {"target": "Bid", "fault": "x", "server": "node2"})
            tracker.feed(opened + 1.0, "rm.action.end",
                         {"level": "ejb", "target": ("Bid",), "ok": True,
                          "duration": 1.0, "server": "node2"})
        tracker.finalize(400.0)
        hub.feed_report(60.0, "/ebid/CommitBid", server="node2")
        hub.feed_report(65.0, "/ebid/CommitBid", server="node2")
        return hub.state()

    assert feed(make_hub()) == feed(make_hub())
