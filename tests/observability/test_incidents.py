"""Incident stitching: lifecycle, attribution, and the phase invariant."""

import pytest

from repro.observability.incidents import (
    DEFAULT_QUIET_PERIOD,
    Incident,
    IncidentTracker,
    aggregate_incidents,
    path_for_url,
)
from repro.telemetry.trace import TraceBus

URL_PATH_MAP = {
    "/ebid/ViewItem": ("EbidWAR", "ViewItem", "Item"),
    "/ebid/CommitBid": ("EbidWAR", "CommitBid", "Bid", "Item"),
    "/ebid/RegisterNewUser": ("EbidWAR", "RegisterNewUser", "User"),
}


def tracker(**kwargs):
    kwargs.setdefault("url_path_map", URL_PATH_MAP)
    return IncidentTracker(**kwargs)


def assert_phases_sum_to_span(incident):
    assert sum(incident.phases().values()) == pytest.approx(incident.span)


# ----------------------------------------------------------------------
# Basic lifecycle
# ----------------------------------------------------------------------

def test_fault_report_recovery_becomes_one_incident():
    tr = tracker()
    tr.feed(100.0, "fault.injected", {"target": "Item", "fault": "corrupt-tx",
                                      "server": "node1"})
    tr.feed(103.0, "detector.report", {"url": "/ebid/ViewItem",
                                       "reported": True})
    tr.feed(103.0, "rm.report", {"url": "/ebid/ViewItem", "server": "node1"})
    tr.feed(104.0, "rm.decision", {"level": "ejb", "target": ("Item",),
                                   "server": "node1"})
    tr.feed(106.0, "rm.action.end", {"level": "ejb", "target": ("Item",),
                                     "ok": True, "duration": 2.0,
                                     "server": "node1"})
    incidents = tr.finalize()
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.key == "Item"
    assert incident.server == "node1"
    assert incident.reports == 1
    assert len(incident.actions) == 1
    assert incident.closed_by == "recovered"
    phases = incident.phases()
    assert phases["detection"] == pytest.approx(3.0)
    assert phases["diagnosis"] == pytest.approx(1.0)
    assert phases["recovery"] == pytest.approx(2.0)
    assert_phases_sum_to_span(incident)


def test_quiet_period_closes_and_separates_incidents():
    tr = tracker(quiet_period=30.0)
    tr.feed(10.0, "fault.injected", {"target": "Item", "fault": "x"})
    # Well past the quiet period: the first incident closes, a second opens.
    tr.feed(100.0, "fault.injected", {"target": "Item", "fault": "x"})
    incidents = tr.finalize()
    assert len(incidents) == 2
    assert incidents[0].closed_at == 10.0
    assert incidents[0].closed_by == "quiesced"


def test_pending_decision_pins_the_incident_open():
    """A slow recovery (e.g. an OS reboot) cannot outlive its incident."""
    tr = tracker(quiet_period=30.0)
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(1.0, "rm.decision", {"level": "os", "target": ("Item",),
                                 "server": "node1"})
    # 90 quiet seconds, but the decision is still pending: stays open.
    tr.feed(91.0, "rm.action.end", {"level": "os", "target": ("Item",),
                                    "ok": True, "duration": 90.0,
                                    "server": "node1"})
    incidents = tr.finalize()
    assert len(incidents) == 1
    assert incidents[0].closed_by == "recovered"
    assert_phases_sum_to_span(incidents[0])


# ----------------------------------------------------------------------
# ISSUE edge case: quarantine-suppressed reports open no phantom incidents
# ----------------------------------------------------------------------

def test_suppressed_reports_never_open_phantom_incidents():
    tr = tracker()
    tr.feed(5.0, "rm.report.quarantined", {"url": "/ebid/ViewItem",
                                           "server": "node1"})
    tr.feed(6.0, "rm.report.quarantined", {"url": "/ebid/ViewItem",
                                           "server": "node1"})
    assert tr.finalize() == []


def test_suppressed_reports_count_on_the_existing_incident():
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(1.0, "rm.report", {"url": "/ebid/ViewItem", "server": "node1"})
    tr.feed(2.0, "rm.quarantine.begin", {"component": "Item",
                                         "server": "node1"})
    tr.feed(3.0, "rm.report.quarantined", {"url": "/ebid/ViewItem",
                                           "server": "node1"})
    tr.feed(4.0, "rm.report.quarantined", {"url": "/ebid/ViewItem",
                                           "server": "node1"})
    incidents = tr.finalize()
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.reports == 1  # the real report
    assert incident.suppressed_reports == 2
    assert incident.quarantines == 1
    assert incident.closed_by == "quarantine"


def test_forwarded_detector_report_is_evidence_not_a_count():
    """detector.report with reported=True stamps detection; rm.report counts."""
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(2.0, "detector.report", {"url": "/ebid/ViewItem",
                                     "reported": True})
    tr.feed(2.0, "rm.report", {"url": "/ebid/ViewItem", "server": "node1"})
    incidents = tr.finalize()
    assert len(incidents) == 1
    assert incidents[0].reports == 1  # not double-counted
    assert incidents[0].first_report_at == 2.0


def test_forwarded_detector_report_alone_opens_nothing():
    """Forwarded reports defer to the RM's adjudication entirely."""
    tr = tracker()
    tr.feed(2.0, "detector.report", {"url": "/ebid/ViewItem",
                                     "reported": True})
    assert tr.finalize() == []


def test_unforwarded_detector_report_opens_a_detector_incident():
    """With no RM wired, the detector is the only signal there is."""
    tr = tracker()
    tr.feed(2.0, "detector.report", {"url": "/ebid/ViewItem",
                                     "reported": False})
    incidents = tr.finalize()
    assert len(incidents) == 1
    assert incidents[0].trigger == "detector"
    assert incidents[0].reports == 1


# ----------------------------------------------------------------------
# ISSUE edge case: overlapping faults on distinct components
# ----------------------------------------------------------------------

def test_overlapping_faults_on_distinct_components_are_distinct_incidents():
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(5.0, "fault.injected", {"target": "User", "fault": "y",
                                    "server": "node2"})
    tr.feed(7.0, "rm.report", {"url": "/ebid/ViewItem", "server": "node1"})
    tr.feed(8.0, "rm.report", {"url": "/ebid/RegisterNewUser",
                               "server": "node2"})
    tr.feed(9.0, "rm.action.end", {"level": "ejb", "target": ("Item",),
                                   "ok": True, "duration": 1.0,
                                   "server": "node1"})
    tr.feed(10.0, "rm.action.end", {"level": "ejb", "target": ("User",),
                                    "ok": True, "duration": 1.0,
                                    "server": "node2"})
    incidents = tr.finalize()
    assert len(incidents) == 2
    by_key = {i.key: i for i in incidents}
    assert set(by_key) == {"Item", "User"}
    for incident in incidents:
        assert incident.reports == 1
        assert len(incident.actions) == 1
        assert incident.closed_by == "recovered"
        assert_phases_sum_to_span(incident)


def test_repeat_fault_on_same_component_joins_the_open_incident():
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(5.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    incidents = tr.finalize()
    assert len(incidents) == 1
    assert len(incidents[0].faults) == 2


def test_shared_path_component_attaches_to_the_earliest_open_incident():
    """/ebid/CommitBid touches Item too: one report, one incident credited."""
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(1.0, "rm.report", {"url": "/ebid/CommitBid", "server": "node1"})
    incidents = tr.finalize()
    assert len(incidents) == 1
    assert incidents[0].reports == 1


# ----------------------------------------------------------------------
# ISSUE edge case: an incident that ends via failover, not recovery
# ----------------------------------------------------------------------

def test_incident_closed_by_failover_when_no_recovery_ran():
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "node-crash",
                                    "server": "node1"})
    tr.feed(1.0, "lb.failover.begin", {"node": "node1"})
    tr.feed(4.0, "lb.failover.end", {"node": "node1"})
    incidents = tr.finalize()
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.failovers == 1
    assert incident.closed_by == "failover"
    assert incident.recovered is False
    assert_phases_sum_to_span(incident)


def test_failover_on_another_node_is_not_attributed():
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(1.0, "lb.failover.begin", {"node": "node2"})
    incidents = tr.finalize()
    assert incidents[0].failovers == 0
    assert incidents[0].closed_by == "quiesced"


def test_recovery_beats_failover_in_closed_by():
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(1.0, "lb.failover.begin", {"node": "node1"})
    tr.feed(3.0, "rm.action.end", {"level": "ejb", "target": ("Item",),
                                   "ok": True, "duration": 1.0,
                                   "server": "node1"})
    incidents = tr.finalize()
    assert incidents[0].failovers == 1
    assert incidents[0].closed_by == "recovered"


# ----------------------------------------------------------------------
# Infrastructure (chaos.event) incidents
# ----------------------------------------------------------------------

def test_chaos_link_fault_opens_an_infra_incident_that_absorbs_reports():
    tr = tracker()
    tr.feed(0.0, "chaos.event", {"kind": "link", "node": "node2",
                                 "target": None})
    tr.feed(2.0, "rm.report", {"url": "/not/mapped", "server": "node2"})
    tr.feed(5.0, "chaos.event", {"kind": "link-heal", "node": "node2",
                                 "target": None})
    incidents = tr.finalize()
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.trigger == "chaos"
    assert incident.key == "link:node2"
    assert incident.reports == 1
    assert incident.closed_by == "quiesced"
    assert incident.end == 5.0  # the heal is the last evidence


def test_storm_and_backoff_deferrals_are_attributed():
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(1.0, "rm.recovery.deferred", {"targets": ("Item",),
                                          "reason": "backoff",
                                          "server": "node1"})
    tr.feed(2.0, "rm.recovery.deferred", {"targets": ("Item",),
                                          "reason": "storm",
                                          "server": "node1"})
    incidents = tr.finalize()
    assert incidents[0].deferrals == 1
    assert incidents[0].storm_denied == 1


def test_escalation_ladder_stays_on_one_incident():
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    for t, level, ok in ((5.0, "ejb", False), (12.0, "app", False),
                         (30.0, "jvm", True)):
        tr.feed(t - 1.0, "rm.decision", {"level": level, "target": ("Item",),
                                         "server": "node1"})
        tr.feed(t, "rm.action.end", {"level": level, "target": ("Item",),
                                     "ok": ok, "duration": 1.0,
                                     "server": "node1"})
    incidents = tr.finalize()
    assert len(incidents) == 1
    incident = incidents[0]
    assert [a["level"] for a in incident.actions] == ["ejb", "app", "jvm"]
    assert incident.closed_by == "recovered"
    # Recovery phase covers the whole ladder, gaps included.
    assert incident.phases()["recovery"] == pytest.approx(30.0 - 4.0)
    assert_phases_sum_to_span(incident)


def test_unattributable_action_opens_a_recovery_incident_at_decision_time():
    tr = tracker()
    tr.feed(50.0, "rm.action.end", {"level": "ejb", "target": ("Item",),
                                    "ok": True, "duration": 2.0,
                                    "server": "node1"})
    incidents = tr.finalize()
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident.trigger == "recovery"
    assert incident.opened_at == pytest.approx(48.0)
    assert incident.phases()["recovery"] == pytest.approx(2.0)
    assert_phases_sum_to_span(incident)


# ----------------------------------------------------------------------
# Live mode (bus subscription) and aggregation
# ----------------------------------------------------------------------

def test_live_tracker_subscribes_and_detaches():
    bus = TraceBus(enabled=True)
    tr = IncidentTracker(bus=bus, url_path_map=URL_PATH_MAP)
    bus.publish("fault.injected", target="Item", fault="x", server="node1")
    bus.publish("request.end", operation="ViewItem", ok=True, duration=0.1)
    assert len(tr.open_incidents()) == 1
    tr.detach()
    bus.publish("fault.injected", target="User", fault="y", server="node2")
    assert len(tr.open_incidents()) == 1  # detached: no longer listening


def test_aggregate_incidents_rollup():
    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(1.0, "rm.report", {"url": "/ebid/ViewItem", "server": "node1"})
    tr.feed(3.0, "rm.action.end", {"level": "ejb", "target": ("Item",),
                                   "ok": True, "duration": 1.0,
                                   "server": "node1"})
    summary = aggregate_incidents(tr.finalize())
    assert summary["count"] == 1
    assert summary["closed_by"] == {"recovered": 1}
    assert summary["actions_attributed"] == 1
    assert summary["reports_attributed"] == 1
    assert summary["mean_span"] == pytest.approx(3.0)
    assert sum(summary["mean_phases"].values()) == pytest.approx(
        summary["mean_span"], abs=1e-3
    )


def test_path_for_url_longest_prefix_wins():
    path_map = {"/ebid": ("EbidWAR",), "/ebid/ViewItem": ("EbidWAR", "Item")}
    assert path_for_url("/ebid/ViewItem?x=1", path_map) == ("EbidWAR", "Item")
    assert path_for_url("/ebid/Other", path_map) == ("EbidWAR",)
    assert path_for_url("/nope", path_map) == ()


def test_quiet_period_must_be_positive():
    with pytest.raises(ValueError):
        IncidentTracker(quiet_period=0.0)


def test_to_dict_is_plain_json_data():
    import json

    tr = tracker()
    tr.feed(0.0, "fault.injected", {"target": "Item", "fault": "x",
                                    "server": "node1"})
    tr.feed(2.5, "rm.action.end", {"level": "ejb", "target": ("Item",),
                                   "ok": True, "duration": 1.0,
                                   "server": "node1"})
    payload = [i.to_dict() for i in tr.finalize()]
    round_tripped = json.loads(json.dumps(payload))
    assert round_tripped[0]["key"] == "Item"
    assert round_tripped[0]["phases"].keys() == {
        "detection", "diagnosis", "recovery", "residual"
    }
    assert sum(round_tripped[0]["phases"].values()) == pytest.approx(
        round_tripped[0]["span"], abs=1e-5
    )
