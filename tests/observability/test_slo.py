"""Rolling SLO windows: canonical computation and the live engine."""

import pytest

from repro.observability.slo import (
    SloEngine,
    SloPolicy,
    SloWindow,
    _quantile,
    aggregate_slo,
    compute_windows,
    windows_from_records,
)
from repro.sim.kernel import Kernel
from repro.workload.metrics import ActionRecord, OperationRecord, TawAccounting


def _action(t, ok=True, rt=0.5):
    record = ActionRecord(name="X", client_id=1, started_at=t - rt)
    record.operations = [
        OperationRecord(
            operation="X", url="/ebid/X", issued_at=t - rt, completed_at=t,
            ok=ok, response_time=rt, functional_group="Browse/View",
        )
    ]
    return record


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        SloPolicy(window=0.0)
    with pytest.raises(ValueError):
        SloPolicy(availability_target=0.0)
    with pytest.raises(ValueError):
        SloPolicy(availability_target=1.5)
    assert SloPolicy(availability_target=0.99).error_budget == pytest.approx(0.01)


# ----------------------------------------------------------------------
# compute_windows
# ----------------------------------------------------------------------

def test_windows_partition_the_run():
    good = {1: 3, 10: 2, 19: 1}
    bad = {5: 1, 25: 2}
    windows = compute_windows(good, bad, [], 30.0, policy=SloPolicy(window=10.0))
    assert [(w.start, w.end) for w in windows] == [(0, 10), (10, 20), (20, 30)]
    assert sum(w.good for w in windows) == 6
    assert sum(w.bad for w in windows) == 3
    assert windows[0].good == 3 and windows[0].bad == 1
    assert windows[1].good == 3 and windows[1].bad == 0
    assert windows[2].good == 0 and windows[2].bad == 2


def test_trailing_partial_window_is_never_judged():
    windows = compute_windows({1: 1, 35: 1}, {}, [], 39.0,
                              policy=SloPolicy(window=10.0))
    assert len(windows) == 3  # [30, 39) is partial: dropped


def test_availability_violation_and_burn():
    policy = SloPolicy(window=10.0, availability_target=0.99)
    windows = compute_windows({0: 90}, {0: 10}, [], 10.0, policy=policy)
    (window,) = windows
    assert window.availability == pytest.approx(0.9)
    assert window.violated
    assert "availability" in window.reasons[0]
    # 10% failures against a 1% budget: burning 10x.
    assert window.burn == pytest.approx(10.0)


def test_zero_error_budget_burns_infinitely():
    policy = SloPolicy(window=10.0, availability_target=1.0)
    (window,) = compute_windows({0: 9}, {0: 1}, [], 10.0, policy=policy)
    assert window.burn == float("inf")
    (clean,) = compute_windows({0: 9}, {}, [], 10.0, policy=policy)
    assert clean.burn == 0.0


def test_latency_violation_via_p99():
    policy = SloPolicy(window=10.0, latency_target=1.0)
    rts = [(float(i) / 100, 0.1) for i in range(98)] + [(9.4, 30.0),
                                                        (9.5, 30.0)]
    (window,) = compute_windows({0: 100}, {}, rts, 10.0, policy=policy)
    assert window.p99 == pytest.approx(30.0)
    assert window.violated
    assert "p99" in window.reasons[0]


def test_quiet_windows_are_never_judged():
    policy = SloPolicy(window=10.0, min_requests=5)
    (window,) = compute_windows({0: 1}, {5: 1}, [], 10.0, policy=policy)
    assert window.availability == pytest.approx(0.5)
    assert not window.violated  # below min_requests: not judged


def test_gaw_is_good_per_second():
    (window,) = compute_windows({0: 30}, {}, [], 30.0)
    assert window.gaw == pytest.approx(1.0)


def test_quantile_nearest_rank():
    assert _quantile([], 0.5) is None
    assert _quantile([1.0], 0.99) == 1.0
    values = sorted(float(i) for i in range(100))
    assert _quantile(values, 0.50) == 49.0
    assert _quantile(values, 0.99) == 98.0


def test_window_to_dict_serializes_inf_burn():
    window = SloWindow(start=0.0, end=10.0, good=0, bad=5,
                       availability_target=1.0)
    assert window.to_dict()["burn"] == "inf"


# ----------------------------------------------------------------------
# windows_from_records (timeline replay)
# ----------------------------------------------------------------------

def test_windows_from_records_per_request_approximation():
    records = [
        {"t": 1.0, "kind": "request.end", "ok": True, "duration": 0.2},
        {"t": 5.0, "kind": "request.end", "ok": False, "duration": 9.0},
        {"t": 12.0, "kind": "request.end", "ok": True, "duration": 0.3},
        {"t": 21.0, "kind": "rm.decision", "level": "ejb"},  # not a request
    ]
    windows = windows_from_records(records, policy=SloPolicy(window=10.0))
    assert len(windows) == 2  # t_end inferred from the latest event (21.0)
    assert (windows[0].good, windows[0].bad) == (1, 1)
    assert (windows[1].good, windows[1].bad) == (1, 0)
    assert windows[0].violated


# ----------------------------------------------------------------------
# Live engine
# ----------------------------------------------------------------------

def test_live_engine_judges_lagged_windows_and_publishes_violations():
    kernel = Kernel()
    kernel.trace.enabled = True
    taw = TawAccounting()
    policy = SloPolicy(window=10.0, availability_target=0.999)
    engine = SloEngine(taw, kernel=kernel, policy=policy)

    schedule = [(1.0, True), (5.0, True), (12.0, False), (15.0, True),
                (25.0, True), (35.0, True), (45.0, True)]

    def driver():
        last = 0.0
        for when, ok in schedule:
            yield kernel.timeout(when - last)
            last = when
            taw.record_action(_action(when, ok=ok))
            kernel.trace.publish("request.end", operation="X", ok=ok,
                                 duration=0.5)

    kernel.process(driver(), name="workload")
    kernel.run(until=50.0)

    # Window 1 ([10, 20): one bad request) settles once the clock clears
    # window 2 — the 35s event judges windows 0 and 1.
    assert [w.start for w in engine.live_violations] == [10.0]
    violated = [e for e in kernel.trace.events() if e.kind == "slo.violated"]
    assert len(violated) == 1
    assert violated[0].fields["window_start"] == 10.0
    assert violated[0].fields["reasons"]

    # The canonical pass agrees with the live one on full windows.
    windows = engine.evaluate(50.0)
    assert len(windows) == 5
    assert [w.start for w in windows if w.violated] == [10.0]


def test_live_engine_is_passive_no_kernel_events():
    """Attaching the engine must not schedule anything on the kernel."""
    kernel = Kernel()
    kernel.trace.enabled = True
    baseline = kernel.events_processed
    SloEngine(TawAccounting(), kernel=kernel)
    kernel.run(until=100.0)
    assert kernel.events_processed == baseline


def test_engine_detach_stops_judging():
    kernel = Kernel()
    kernel.trace.enabled = True
    taw = TawAccounting()
    engine = SloEngine(taw, kernel=kernel, policy=SloPolicy(window=10.0))
    engine.detach()
    kernel._now = 90.0
    taw.record_action(_action(1.0, ok=False))
    kernel.trace.publish("request.end", operation="X", ok=False, duration=0.5)
    assert engine.live_violations == []


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

def test_aggregate_slo_rollup():
    policy = SloPolicy(window=10.0, availability_target=0.99)
    windows = compute_windows({0: 90, 10: 10}, {0: 10}, [], 30.0,
                              policy=policy)
    summary = aggregate_slo(windows)
    assert summary["windows"] == 3
    assert summary["judged"] == 2  # the third window is empty
    assert summary["violations"] == 1
    assert summary["violation_windows"] == [0.0]
    assert summary["min_availability"] == pytest.approx(0.9)
    assert summary["max_burn"] == pytest.approx(10.0)
