"""CLI surface: the `repro incidents`, `slo`, `health` and `alerts`
subcommands."""

import json

from repro.cli import main
from repro.telemetry import TraceBus, write_timeline

MB = 1024 * 1024


def make_timeline(path):
    bus = TraceBus(enabled=True, label="run")
    bus.publish("fault.injected", target="Item", fault="corrupt-tx",
                server="node1")
    bus.publish("rm.report", url="/ebid/ViewItem", server="node1")
    bus.publish("rm.decision", level="ejb", target=("Item",), server="node1")
    bus.publish("rm.action.end", level="ejb", target=("Item",), ok=True,
                duration=1.0, server="node1")
    for i in range(4):
        bus.publish("request.end", operation="ViewItem", ok=(i != 0),
                    duration=0.3)
    write_timeline(path, [bus])
    return path


def test_incidents_command_renders_table_and_waterfall(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    assert main(["incidents", str(path)]) == 0
    out = capsys.readouterr().out
    assert "1 incident(s)" in out
    assert "phase waterfall" in out
    assert "recovered" in out


def test_incidents_command_writes_json_and_prom(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    json_out = tmp_path / "incidents.jsonl"
    prom_out = tmp_path / "metrics.prom"
    assert main(["incidents", str(path), "--json", str(json_out),
                 "--prom", str(prom_out)]) == 0
    records = [
        json.loads(line)
        for line in json_out.read_text(encoding="utf-8").splitlines()
    ]
    assert len(records) == 1 and records[0]["closed_by"] == "recovered"
    prom = prom_out.read_text(encoding="utf-8")
    assert "# TYPE repro_incidents_count counter" in prom
    assert "repro_incidents_count 1" in prom


def test_incidents_command_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["incidents", str(tmp_path / "nope.jsonl")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "no such trace file" in err


def test_slo_command_renders_windows(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    # All events land at t=0 on an unclocked bus: give the run an end so
    # at least one full window exists.
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"t": 10.0, "seq": 99, "bus": "run",
                             "kind": "run.end"}) + "\n")
    assert main(["slo", str(path), "--window", "5",
                 "--availability", "0.9"]) == 0
    out = capsys.readouterr().out
    assert "policy: window=5s availability>=0.9" in out
    assert "2 window(s)" in out
    assert "VIOLATED" in out  # 1 bad of 4 requests < 0.9 availability


def test_slo_command_empty_file_is_a_clean_error(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main(["slo", str(path)]) == 2
    assert "empty timeline" in capsys.readouterr().err


def make_predictive_timeline(path):
    """A timeline with a heap drain (alert fodder) preceding an incident.

    The drain loses 30 MB/s from t=5: two samples in, the trend tracker
    predicts exhaustion well inside the 120 s rule threshold, so
    ``heap-exhaustion-predicted`` fires once the 5 s for-duration holds —
    long before the t=200 incident it "warns" about.
    """
    records = []
    seq = 0
    for k in range(1, 9):  # t = 5, 10, ..., 40
        t = 5.0 * k
        records.append({"t": t, "seq": (seq := seq + 1), "bus": "run",
                        "kind": "heap.sample", "server": "node1",
                        "available": 900 * MB - int(t * 30 * MB),
                        "capacity": 1024 * MB})
    records.append({"t": 200.0, "seq": (seq := seq + 1), "bus": "run",
                    "kind": "fault.injected", "target": "Item",
                    "fault": "leak", "server": "node1"})
    records.append({"t": 201.0, "seq": (seq := seq + 1), "bus": "run",
                    "kind": "rm.report", "url": "/ebid/ViewItem",
                    "server": "node1"})
    records.append({"t": 203.0, "seq": (seq := seq + 1), "bus": "run",
                    "kind": "rm.action.end", "level": "ejb",
                    "target": ["Item"], "ok": True, "duration": 1.0,
                    "server": "node1"})
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return path


def test_health_command_renders_the_scoreboard(tmp_path, capsys):
    path = make_predictive_timeline(tmp_path / "timeline.jsonl")
    assert main(["health", str(path)]) == 0
    out = capsys.readouterr().out
    assert "component(s)" in out
    assert "node1" in out and "Item" in out
    assert "score" in out and "hazard" in out


def test_health_command_writes_prometheus_exposition(tmp_path, capsys):
    path = make_predictive_timeline(tmp_path / "timeline.jsonl")
    prom_out = tmp_path / "metrics.prom"
    assert main(["health", str(path), "--prom", str(prom_out)]) == 0
    prom = prom_out.read_text(encoding="utf-8")
    assert "# TYPE repro_health_score_node1_Item gauge" in prom


def test_alerts_command_renders_log_and_lead_times(tmp_path, capsys):
    path = make_predictive_timeline(tmp_path / "timeline.jsonl")
    assert main(["alerts", str(path)]) == 0
    out = capsys.readouterr().out
    assert "alert(s)" in out
    assert "heap-exhaustion-predicted" in out
    assert "lead time:" in out  # the drain warned the t=200 incident


def test_alerts_command_handles_a_quiet_timeline(tmp_path, capsys):
    # No heap drain, no failures worth alerting on: empty log, no crash.
    path = make_timeline(tmp_path / "timeline.jsonl")
    assert main(["alerts", str(path)]) == 0
    assert "alert(s)" in capsys.readouterr().out


def test_health_command_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["health", str(tmp_path / "nope.jsonl")]) == 2
    assert "no such trace file" in capsys.readouterr().err
