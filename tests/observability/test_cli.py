"""CLI surface: the `repro incidents`, `slo`, `health` and `alerts`
subcommands."""

import json

from repro.cli import main
from repro.telemetry import TraceBus, write_timeline

MB = 1024 * 1024


def make_timeline(path):
    bus = TraceBus(enabled=True, label="run")
    bus.publish("fault.injected", target="Item", fault="corrupt-tx",
                server="node1")
    bus.publish("rm.report", url="/ebid/ViewItem", server="node1")
    bus.publish("rm.decision", level="ejb", target=("Item",), server="node1")
    bus.publish("rm.action.end", level="ejb", target=("Item",), ok=True,
                duration=1.0, server="node1")
    for i in range(4):
        bus.publish("request.end", operation="ViewItem", ok=(i != 0),
                    duration=0.3)
    write_timeline(path, [bus])
    return path


def test_incidents_command_renders_table_and_waterfall(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    assert main(["incidents", str(path)]) == 0
    out = capsys.readouterr().out
    assert "1 incident(s)" in out
    assert "phase waterfall" in out
    assert "recovered" in out


def test_incidents_command_writes_json_and_prom(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    json_out = tmp_path / "incidents.jsonl"
    prom_out = tmp_path / "metrics.prom"
    assert main(["incidents", str(path), "--json", str(json_out),
                 "--prom", str(prom_out)]) == 0
    records = [
        json.loads(line)
        for line in json_out.read_text(encoding="utf-8").splitlines()
    ]
    assert len(records) == 1 and records[0]["closed_by"] == "recovered"
    prom = prom_out.read_text(encoding="utf-8")
    assert "# TYPE repro_incidents_count counter" in prom
    assert "repro_incidents_count 1" in prom


def test_incidents_command_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["incidents", str(tmp_path / "nope.jsonl")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "no such trace file" in err


def test_slo_command_renders_windows(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    # All events land at t=0 on an unclocked bus: give the run an end so
    # at least one full window exists.
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"t": 10.0, "seq": 99, "bus": "run",
                             "kind": "run.end"}) + "\n")
    assert main(["slo", str(path), "--window", "5",
                 "--availability", "0.9"]) == 0
    out = capsys.readouterr().out
    assert "policy: window=5s availability>=0.9" in out
    assert "2 window(s)" in out
    assert "VIOLATED" in out  # 1 bad of 4 requests < 0.9 availability


def test_slo_command_empty_file_is_a_clean_error(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main(["slo", str(path)]) == 2
    assert "empty timeline" in capsys.readouterr().err


def make_predictive_timeline(path):
    """A timeline with a heap drain (alert fodder) preceding an incident.

    The drain loses 30 MB/s from t=5: two samples in, the trend tracker
    predicts exhaustion well inside the 120 s rule threshold, so
    ``heap-exhaustion-predicted`` fires once the 5 s for-duration holds —
    long before the t=200 incident it "warns" about.
    """
    records = []
    seq = 0
    for k in range(1, 9):  # t = 5, 10, ..., 40
        t = 5.0 * k
        records.append({"t": t, "seq": (seq := seq + 1), "bus": "run",
                        "kind": "heap.sample", "server": "node1",
                        "available": 900 * MB - int(t * 30 * MB),
                        "capacity": 1024 * MB})
    records.append({"t": 200.0, "seq": (seq := seq + 1), "bus": "run",
                    "kind": "fault.injected", "target": "Item",
                    "fault": "leak", "server": "node1"})
    records.append({"t": 201.0, "seq": (seq := seq + 1), "bus": "run",
                    "kind": "rm.report", "url": "/ebid/ViewItem",
                    "server": "node1"})
    records.append({"t": 203.0, "seq": (seq := seq + 1), "bus": "run",
                    "kind": "rm.action.end", "level": "ejb",
                    "target": ["Item"], "ok": True, "duration": 1.0,
                    "server": "node1"})
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return path


def test_health_command_renders_the_scoreboard(tmp_path, capsys):
    path = make_predictive_timeline(tmp_path / "timeline.jsonl")
    assert main(["health", str(path)]) == 0
    out = capsys.readouterr().out
    assert "component(s)" in out
    assert "node1" in out and "Item" in out
    assert "score" in out and "hazard" in out


def test_health_command_writes_prometheus_exposition(tmp_path, capsys):
    path = make_predictive_timeline(tmp_path / "timeline.jsonl")
    prom_out = tmp_path / "metrics.prom"
    assert main(["health", str(path), "--prom", str(prom_out)]) == 0
    prom = prom_out.read_text(encoding="utf-8")
    assert "# TYPE repro_health_score_node1_Item gauge" in prom


def test_alerts_command_renders_log_and_lead_times(tmp_path, capsys):
    path = make_predictive_timeline(tmp_path / "timeline.jsonl")
    assert main(["alerts", str(path)]) == 0
    out = capsys.readouterr().out
    assert "alert(s)" in out
    assert "heap-exhaustion-predicted" in out
    assert "lead time:" in out  # the drain warned the t=200 incident


def test_alerts_command_handles_a_quiet_timeline(tmp_path, capsys):
    # No heap drain, no failures worth alerting on: empty log, no crash.
    path = make_timeline(tmp_path / "timeline.jsonl")
    assert main(["alerts", str(path)]) == 0
    assert "alert(s)" in capsys.readouterr().out


def test_health_command_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["health", str(tmp_path / "nope.jsonl")]) == 2
    assert "no such trace file" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Shard-aware surfaces: `repro shards`, `--shard` filters
# ----------------------------------------------------------------------

class ShardClock:
    """Duck-typed kernel clock so published events carry timestamps."""

    def __init__(self):
        self.now = 0.0


def make_shard_timeline(path):
    """A two-shard storm timeline with rollups, windows, and a signal."""
    clock = ShardClock()
    bus = TraceBus(kernel=clock, enabled=True, label="run")
    clock.now = 10.0
    bus.publish("storm.begin", shards=["shard001", "shard002"], events=4,
                horizon=60.0)
    clock.now = 20.0
    bus.publish("fault.injected", target="Item", fault="deadlock",
                server="shard001-n1")
    clock.now = 20.5
    bus.publish("fault.injected", target="Item", fault="deadlock",
                server="shard002-n1")
    clock.now = 21.0
    bus.publish("rm.report", url="/ebid/ViewItem", server="shard001-n1")
    clock.now = 23.0
    bus.publish("rm.action.end", level="ejb", target=("Item",), ok=True,
                duration=1.0, server="shard001-n1")
    clock.now = 24.0
    bus.publish("rm.action.end", level="ejb", target=("Item",), ok=True,
                duration=1.0, server="shard002-n1")
    clock.now = 30.0
    bus.publish("reshard.migrate", source="shard001", target="shard128",
                sessions=100, window=2.0)
    clock.now = 40.0
    bus.publish("capacity.pressure", shard="shard001", score=2.3,
                ewma=1.78, headroom=0.0)
    clock.now = 120.0
    for start, good, bad in ((0.0, 3000, 0), (30.0, 1500, 900),
                             (60.0, 3000, 0), (90.0, 3000, 0)):
        bus.publish("shard.window", shard="shard001", start=start,
                    end=start + 30.0, good=good, bad=bad,
                    violated=bad > 0)
    bus.publish("shard.window", shard="shard002", start=0.0, end=30.0,
                good=1500, bad=0, violated=False)
    bus.publish("shard.rollup", shard="shard001", sessions=1000,
                good=10500, bad=900, availability=0.921053,
                gaw_per_second=87.5, probes=120, probe_failures=9,
                probe_p50=0.002, probe_p99=0.011, failovers=1,
                link_faults=0, brick_crashes=0, storm_events=2,
                storm_kinds=["deadlock"], migrated_in=0, migrated_out=100,
                capacity_score=1.78, peak_score=1.9, pressured=True,
                headroom=0.0, slo_windows=4, slo_violations=1,
                slo_min_availability=0.625)
    bus.publish("shard.rollup", shard="shard002", sessions=500,
                good=1500, bad=0, availability=1.0, gaw_per_second=50.0,
                probes=120, probe_failures=0, probe_p50=0.002,
                probe_p99=0.004, failovers=0, link_faults=0,
                brick_crashes=0, storm_events=2, storm_kinds=["deadlock"],
                migrated_in=0, migrated_out=0, capacity_score=1.0,
                peak_score=1.0, pressured=False, headroom=0.375,
                slo_windows=1, slo_violations=0,
                slo_min_availability=1.0)
    write_timeline(path, [bus])
    return path


def test_shards_command_renders_rollup_and_meta_waterfall(tmp_path, capsys):
    path = make_shard_timeline(tmp_path / "timeline.jsonl")
    assert main(["shards", str(path)]) == 0
    out = capsys.readouterr().out
    assert "2 shard(s), cluster availability" in out
    assert "storm at t=10s struck 2 shard(s)" in out
    assert "shard001" in out and "shard002" in out
    assert "PRESSURE" in out and "storm" in out
    assert "1 meta-incident(s)" in out
    assert "shards: shard001, shard002" in out
    assert "~> shard001 -> shard128: 100 session(s) @ t=30s" in out
    assert "1 capacity signal(s)" in out
    assert "PRESSURE" in out


def test_shards_command_filters_and_exports(tmp_path, capsys):
    path = make_shard_timeline(tmp_path / "timeline.jsonl")
    json_out = tmp_path / "view.json"
    prom_out = tmp_path / "metrics.prom"
    assert main(["shards", str(path), "--shard", "shard002",
                 "--json", str(json_out), "--prom", str(prom_out)]) == 0
    out = capsys.readouterr().out
    assert "1 shard(s)" in out
    assert "shard002" in out
    payload = json.loads(json_out.read_text(encoding="utf-8"))
    assert [r["shard"] for r in payload["shards"]] == [
        "shard001", "shard002"
    ]  # JSON export keeps the full view
    assert len(payload["meta_incidents"]) == 1
    assert payload["meta_incidents"][0]["shards"] == [
        "shard001", "shard002"
    ]
    prom = prom_out.read_text(encoding="utf-8")
    assert 'repro_shard_availability{shard="shard001"} 0.921053' in prom
    assert 'repro_shard_slo_violations{shard="shard001"} 1' in prom
    assert 'repro_cluster_capacity_signals{signal="pressure"} 1' in prom


def test_shards_command_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["shards", str(tmp_path / "nope.jsonl")]) == 2
    assert "no such trace file" in capsys.readouterr().err


def test_slo_shard_filter_replays_judged_windows(tmp_path, capsys):
    path = make_shard_timeline(tmp_path / "timeline.jsonl")
    assert main(["slo", str(path), "--shard", "shard001"]) == 0
    out = capsys.readouterr().out
    assert "4 window(s)" in out
    assert "VIOLATED" in out  # the 30–60 s window lost 900 requests


def test_slo_shard_filter_unknown_shard_is_a_clean_error(tmp_path, capsys):
    path = make_shard_timeline(tmp_path / "timeline.jsonl")
    assert main(["slo", str(path), "--shard", "shard999"]) == 2
    err = capsys.readouterr().err
    assert "no shard SLO windows for 'shard999'" in err
    assert "shard001" in err  # the hint lists what the timeline has


def test_incidents_shard_filter_and_column(tmp_path, capsys):
    path = make_shard_timeline(tmp_path / "timeline.jsonl")
    assert main(["incidents", str(path)]) == 0
    out = capsys.readouterr().out
    assert "2 incident(s)" in out
    assert "shard" in out  # the attribution column appears
    assert main(["incidents", str(path), "--shard", "shard002"]) == 0
    out = capsys.readouterr().out
    assert "1 incident(s)" in out
    assert "shard002" in out and "shard001-n1" not in out


def test_incidents_flat_timeline_keeps_its_shardless_rendering(
        tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    assert main(["incidents", str(path)]) == 0
    header = [
        line for line in capsys.readouterr().out.splitlines()
        if line.startswith("id")
    ][0]
    assert "shard" not in header
