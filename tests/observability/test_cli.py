"""CLI surface: the `repro incidents` and `repro slo` subcommands."""

import json

from repro.cli import main
from repro.telemetry import TraceBus, write_timeline


def make_timeline(path):
    bus = TraceBus(enabled=True, label="run")
    bus.publish("fault.injected", target="Item", fault="corrupt-tx",
                server="node1")
    bus.publish("rm.report", url="/ebid/ViewItem", server="node1")
    bus.publish("rm.decision", level="ejb", target=("Item",), server="node1")
    bus.publish("rm.action.end", level="ejb", target=("Item",), ok=True,
                duration=1.0, server="node1")
    for i in range(4):
        bus.publish("request.end", operation="ViewItem", ok=(i != 0),
                    duration=0.3)
    write_timeline(path, [bus])
    return path


def test_incidents_command_renders_table_and_waterfall(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    assert main(["incidents", str(path)]) == 0
    out = capsys.readouterr().out
    assert "1 incident(s)" in out
    assert "phase waterfall" in out
    assert "recovered" in out


def test_incidents_command_writes_json_and_prom(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    json_out = tmp_path / "incidents.jsonl"
    prom_out = tmp_path / "metrics.prom"
    assert main(["incidents", str(path), "--json", str(json_out),
                 "--prom", str(prom_out)]) == 0
    records = [
        json.loads(line)
        for line in json_out.read_text(encoding="utf-8").splitlines()
    ]
    assert len(records) == 1 and records[0]["closed_by"] == "recovered"
    prom = prom_out.read_text(encoding="utf-8")
    assert "# TYPE repro_incidents_count counter" in prom
    assert "repro_incidents_count 1" in prom


def test_incidents_command_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["incidents", str(tmp_path / "nope.jsonl")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "no such trace file" in err


def test_slo_command_renders_windows(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    # All events land at t=0 on an unclocked bus: give the run an end so
    # at least one full window exists.
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"t": 10.0, "seq": 99, "bus": "run",
                             "kind": "run.end"}) + "\n")
    assert main(["slo", str(path), "--window", "5",
                 "--availability", "0.9"]) == 0
    out = capsys.readouterr().out
    assert "policy: window=5s availability>=0.9" in out
    assert "2 window(s)" in out
    assert "VIOLATED" in out  # 1 bad of 4 requests < 0.9 availability


def test_slo_command_empty_file_is_a_clean_error(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main(["slo", str(path)]) == 2
    assert "empty timeline" in capsys.readouterr().err
