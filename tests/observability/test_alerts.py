"""Alert rules and engine: for-duration, dedup, resolve, lead times."""

from types import SimpleNamespace

import pytest

from repro.observability.alerts import (
    AlertEngine,
    AlertRule,
    alert_lead_times,
    default_rules,
    median,
)
from repro.telemetry.trace import TraceBus


class StubRegistry:
    """Minimal health-registry stand-in: scripted signal values."""

    def __init__(self, components=(("node1", "Item"),), servers=("node1",)):
        self._components = list(components)
        self._servers = list(servers)
        self.scores = {}  # (server, component) -> score
        self.heap_tta = {}  # server -> seconds (or None)
        self.burn = 0.0

    def keys(self):
        return list(self._components)

    def servers(self):
        return list(self._servers)

    def score(self, component, server=None, now=None):
        return self.scores.get((server, component), 100.0)

    def heap_time_to_alarm(self, server, now=None):
        return self.heap_tta.get(server)

    def burn_signal(self, now):
        return self.burn


# ----------------------------------------------------------------------
# AlertRule
# ----------------------------------------------------------------------

def test_rule_rejects_negative_for_duration():
    with pytest.raises(ValueError, match="for_duration"):
        AlertRule(name="x", signal="health", threshold=50.0, for_duration=-1.0)


def test_rule_rejects_unknown_scope():
    with pytest.raises(ValueError, match="scope"):
        AlertRule(name="x", signal="health", threshold=50.0, scope="pod")


def test_rule_condition_directions_and_none():
    below = AlertRule(name="b", signal="health", threshold=50.0, below=True)
    above = AlertRule(name="a", signal="burn", threshold=0.5, below=False)
    assert below.condition(40.0) and not below.condition(60.0)
    assert above.condition(0.9) and not above.condition(0.1)
    # No data is never an alert condition.
    assert not below.condition(None) and not above.condition(None)


def test_default_rules_include_the_proactive_trigger():
    names = {rule.name for rule in default_rules()}
    assert "heap-exhaustion-predicted" in names


# ----------------------------------------------------------------------
# AlertEngine: pending → fire → dedup → resolve
# ----------------------------------------------------------------------

def make_engine(rules, bus=None):
    return AlertEngine(rules=rules, bus=bus)


def test_for_duration_holds_before_firing():
    rule = AlertRule(name="low", signal="health", threshold=50.0,
                     for_duration=10.0)
    engine = make_engine([rule])
    registry = StubRegistry()
    registry.scores[("node1", "Item")] = 30.0
    assert engine.evaluate(0.0, registry) == []  # pending, not fired
    assert engine.evaluate(5.0, registry) == []  # still holding
    fired = engine.evaluate(10.0, registry)
    assert len(fired) == 1
    alert = fired[0]
    assert alert.rule == "low" and alert.active
    assert alert.server == "node1" and alert.component == "Item"
    assert alert.fired_at == 10.0 and alert.pending_since == 0.0


def test_condition_blip_resets_the_pending_clock():
    rule = AlertRule(name="low", signal="health", threshold=50.0,
                     for_duration=10.0)
    engine = make_engine([rule])
    registry = StubRegistry()
    registry.scores[("node1", "Item")] = 30.0
    engine.evaluate(0.0, registry)
    registry.scores[("node1", "Item")] = 90.0  # recovers briefly
    engine.evaluate(5.0, registry)
    registry.scores[("node1", "Item")] = 30.0  # sick again
    engine.evaluate(8.0, registry)
    assert engine.evaluate(17.0, registry) == []  # 9 s held, not 10
    assert len(engine.evaluate(18.0, registry)) == 1


def test_active_alert_dedups_until_resolved():
    rule = AlertRule(name="low", signal="health", threshold=50.0)
    engine = make_engine([rule])
    registry = StubRegistry()
    registry.scores[("node1", "Item")] = 30.0
    assert len(engine.evaluate(0.0, registry)) == 1
    # Condition persists: no duplicate alert objects while active.
    assert engine.evaluate(1.0, registry) == []
    assert engine.evaluate(2.0, registry) == []
    assert len(engine.alerts) == 1
    # Condition clears: the alert resolves.
    registry.scores[("node1", "Item")] = 90.0
    engine.evaluate(3.0, registry)
    assert engine.alerts[0].resolved_at == 3.0
    assert engine.active_alerts() == []
    # Re-firing after resolve creates a fresh alert instance.
    registry.scores[("node1", "Item")] = 30.0
    engine.evaluate(4.0, registry)
    assert len(engine.alerts) == 2


def test_server_scope_keys_and_heap_tta_signal():
    rule = AlertRule(name="heap", signal="heap_tta", threshold=120.0,
                     below=True, scope="server")
    engine = make_engine([rule])
    registry = StubRegistry(servers=("node1", "node2"))
    registry.heap_tta["node1"] = 60.0  # node2 has no trend -> None -> false
    fired = engine.evaluate(0.0, registry)
    assert [(a.server, a.component) for a in fired] == [("node1", None)]


def test_fire_and_resolve_publish_sticky_bus_events():
    bus = TraceBus(enabled=True)
    rule = AlertRule(name="low", signal="health", threshold=50.0)
    engine = make_engine([rule], bus=bus)
    registry = StubRegistry()
    registry.scores[("node1", "Item")] = 30.0
    engine.evaluate(5.0, registry)
    registry.scores[("node1", "Item")] = 90.0
    engine.evaluate(9.0, registry)
    events = bus.events()
    assert [e.kind for e in events] == ["alert.fired", "alert.resolved"]
    fired = events[0].fields
    assert fired["rule"] == "low" and fired["server"] == "node1"
    assert events[1].fields["duration"] == pytest.approx(4.0)
    # Sticky: alert events live in the reserved ring that survives
    # request-flood eviction of the main buffer.
    assert any(e.kind == "alert.fired" for e in bus._sticky)


def test_listeners_see_fires_and_resolves():
    rule = AlertRule(name="low", signal="health", threshold=50.0)
    engine = make_engine([rule])
    fired, resolved = [], []
    engine.on_fire.append(fired.append)
    engine.on_resolve.append(resolved.append)
    registry = StubRegistry()
    registry.scores[("node1", "Item")] = 30.0
    engine.evaluate(0.0, registry)
    registry.scores[("node1", "Item")] = 90.0
    engine.evaluate(6.0, registry)
    assert len(fired) == 1 and len(resolved) == 1
    assert fired[0] is resolved[0]


def test_finalize_resolves_everything_still_active():
    rules = [
        AlertRule(name="low", signal="health", threshold=50.0),
        AlertRule(name="burning", signal="burn", threshold=0.5, below=False,
                  scope="global"),
    ]
    engine = make_engine(rules)
    registry = StubRegistry()
    registry.scores[("node1", "Item")] = 30.0
    registry.burn = 0.9
    engine.evaluate(0.0, registry)
    assert len(engine.active_alerts()) == 2
    alerts = engine.finalize(100.0)
    assert engine.active_alerts() == []
    assert all(a.resolved_at == 100.0 for a in alerts)


def test_alert_to_dict_is_json_shaped():
    rule = AlertRule(name="low", signal="health", threshold=50.0)
    engine = make_engine([rule])
    registry = StubRegistry()
    registry.scores[("node1", "Item")] = 30.0
    engine.evaluate(0.0, registry)
    payload = engine.alerts[0].to_dict()
    assert payload["rule"] == "low"
    assert payload["resolved_at"] is None
    assert payload["value"] == pytest.approx(30.0)


# ----------------------------------------------------------------------
# Lead times and the tiny median
# ----------------------------------------------------------------------

def alert_at(t, server="node1"):
    return SimpleNamespace(fired_at=t, server=server)


def incident_at(t, server="node1"):
    return SimpleNamespace(opened_at=t, server=server)


def test_lead_times_pick_earliest_warning_per_incident():
    alerts = [alert_at(100.0), alert_at(150.0)]
    incidents = [incident_at(200.0)]
    assert alert_lead_times(alerts, incidents) == [100.0]


def test_lead_times_respect_server_and_window():
    alerts = [alert_at(100.0, server="node2"),  # wrong server
              alert_at(10.0),  # outside the 300 s window for t=400
              alert_at(390.0)]
    incidents = [incident_at(400.0), incident_at(50.0, server="node3")]
    # Only the t=390 alert warns the t=400 incident; node3 got nothing.
    assert alert_lead_times(alerts, incidents) == [10.0]


def test_serverless_alerts_warn_any_incident():
    alerts = [alert_at(95.0, server=None)]
    incidents = [incident_at(100.0, server="node7")]
    assert alert_lead_times(alerts, incidents) == [5.0]


def test_median_handles_empty_odd_and_even():
    assert median([]) is None
    assert median([3.0]) == 3.0
    assert median([1.0, 9.0, 5.0]) == 5.0
    assert median([1.0, 2.0, 3.0, 10.0]) == 2.5
