"""Rendering: the `repro incidents` / `repro slo` text surfaces."""

from repro.observability.incidents import IncidentTracker
from repro.observability.report import summarize_incidents, summarize_slo
from repro.observability.slo import SloPolicy, compute_windows

URL_PATH_MAP = {"/ebid/ViewItem": ("EbidWAR", "ViewItem", "Item")}


def stitched_incidents():
    tracker = IncidentTracker(url_path_map=URL_PATH_MAP)
    tracker.feed(100.0, "fault.injected", {"target": "Item", "fault": "x",
                                           "server": "node1"})
    tracker.feed(103.0, "rm.report", {"url": "/ebid/ViewItem",
                                      "server": "node1"})
    tracker.feed(104.0, "rm.decision", {"level": "ejb", "target": ("Item",),
                                        "server": "node1"})
    tracker.feed(106.0, "rm.action.end", {"level": "ejb", "target": ("Item",),
                                          "ok": False, "duration": 2.0,
                                          "server": "node1"})
    tracker.feed(107.0, "rm.decision", {"level": "jvm", "target": ("Item",),
                                        "server": "node1"})
    tracker.feed(112.0, "rm.action.end", {"level": "jvm", "target": ("Item",),
                                          "ok": True, "duration": 5.0,
                                          "server": "node1"})
    return tracker.finalize()


def test_summarize_incidents_table_waterfall_and_aggregates():
    out = summarize_incidents(stitched_incidents())
    assert out.startswith("1 incident(s)")
    assert "closed by" in out  # table header
    assert "recovered" in out
    assert "phase waterfall" in out
    assert "ejb->jvm" in out  # the escalation ladder
    assert "closed by: recovered=1" in out
    assert "attributed: 2 recovery action(s), 1 report(s)" in out
    # Deterministic: same incidents, same bytes.
    assert out == summarize_incidents(stitched_incidents())


def test_summarize_incidents_waterfall_bar_is_fixed_width():
    out = summarize_incidents(stitched_incidents(), waterfall_width=20)
    bars = [line for line in out.splitlines() if "|" in line]
    assert bars
    for line in bars:
        left, right = line.index("|"), line.rindex("|")
        assert right - left - 1 == 20


def test_summarize_incidents_empty():
    assert summarize_incidents([]) == "0 incident(s)"


def test_summarize_slo_policy_violations_and_aggregate():
    policy = SloPolicy(window=10.0, availability_target=0.99)
    windows = compute_windows({0: 90, 10: 10}, {0: 10}, [], 20.0,
                              policy=policy)
    out = summarize_slo(windows, policy=policy)
    assert "policy: window=10s availability>=0.99" in out
    assert "2 window(s)" in out
    assert "VIOLATED" in out
    assert "1 violation(s):" in out
    assert "t=0-10s:" in out
    assert "min availability 0.9" in out
    assert out == summarize_slo(windows, policy=policy)


def test_summarize_slo_no_violations_and_empty():
    windows = compute_windows({0: 10}, {}, [], 10.0,
                              policy=SloPolicy(window=10.0))
    assert "no violations" in summarize_slo(windows)
    assert summarize_slo([]) == "0 window(s)"
