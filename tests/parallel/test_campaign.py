"""Tests for the parallel campaign runner (repro.parallel)."""

import pytest

from repro.parallel import (
    CampaignError,
    TrialSpec,
    available_jobs,
    campaign_summary,
    derive_trial_seed,
    normalize_jobs,
    run_campaign,
)
from repro.parallel.demo import simulate_trial
from repro.parallel.worker import TaskResolutionError, resolve_task, run_trial

DEMO = "repro.parallel.demo:simulate_trial"
SPECS = [
    TrialSpec(task=DEMO, kwargs={"clients": 3, "requests": 5},
              tag=f"trial-{i}", seed=i)
    for i in range(6)
]


# --- task resolution ---------------------------------------------------------

def test_resolve_task_returns_the_callable():
    assert resolve_task(DEMO) is simulate_trial


def test_resolve_task_supports_dotted_attributes():
    fn = resolve_task("repro.parallel.campaign:TrialSpec.__init__")
    assert callable(fn)


@pytest.mark.parametrize("bad", [
    "no-colon", ":fn", "module:", "repro.parallel.demo:nope",
    "no.such.module:fn", "repro.parallel.demo:__doc__",
])
def test_resolve_task_rejects_bad_addresses(bad):
    with pytest.raises(TaskResolutionError):
        resolve_task(bad)


# --- envelopes ---------------------------------------------------------------

def test_run_trial_injects_seed_and_times_the_trial():
    result = run_trial((3, SPECS[3]))
    assert result.ok
    assert result.index == 3 and result.tag == "trial-3" and result.seed == 3
    assert result.value["seed"] == 3
    assert result.elapsed_s > 0 and result.pid > 0


def test_run_trial_captures_exceptions_in_the_envelope():
    spec = TrialSpec(task=DEMO, kwargs={"clients": "not-a-number"}, tag="boom")
    result = run_trial((0, spec))
    assert not result.ok
    assert result.value is None
    assert "TypeError" in result.error
    assert "Traceback" in result.traceback


def test_campaign_check_raises_with_worker_traceback():
    bad = TrialSpec(task="repro.parallel.demo:missing", tag="gone")
    with pytest.raises(CampaignError) as excinfo:
        run_campaign([SPECS[0], bad], jobs=1)
    message = str(excinfo.value)
    assert "trial 1" in message and "gone" in message
    assert "TaskResolutionError" in message


def test_campaign_check_false_returns_failed_envelopes():
    bad = TrialSpec(task="repro.parallel.demo:missing", tag="gone")
    results = run_campaign([bad, SPECS[0]], jobs=1, check=False)
    assert [r.ok for r in results] == [False, True]
    assert campaign_summary(results)["errors"] == 1


# --- ordering and determinism ------------------------------------------------

def test_results_come_back_in_spec_order():
    for jobs in (1, 2):
        results = run_campaign(SPECS, jobs=jobs)
        assert [r.index for r in results] == list(range(len(SPECS)))
        assert [r.tag for r in results] == [s.tag for s in SPECS]


def test_parallel_values_identical_to_sequential():
    # The tentpole contract: jobs=N output is byte-identical to jobs=1.
    sequential = [r.value for r in run_campaign(SPECS, jobs=1)]
    parallel = [r.value for r in run_campaign(SPECS, jobs=2)]
    assert parallel == sequential


def test_identical_seed_identical_digest():
    a = simulate_trial(seed=7, clients=4, requests=6)
    b = simulate_trial(seed=7, clients=4, requests=6)
    c = simulate_trial(seed=8, clients=4, requests=6)
    assert a == b
    assert c["log_digest"] != a["log_digest"]


def test_single_spec_campaign_stays_in_process():
    import os

    results = run_campaign([SPECS[0]], jobs=8)
    assert results[0].pid == os.getpid()


# --- seeds and job counts ----------------------------------------------------

def test_derive_trial_seed_is_stable_and_tag_sensitive():
    assert derive_trial_seed(0, "a") == derive_trial_seed(0, "a")
    assert derive_trial_seed(0, "a") != derive_trial_seed(0, "b")
    assert derive_trial_seed(0, "a") != derive_trial_seed(1, "a")
    assert 0 <= derive_trial_seed(0, "a") < 2**64


def test_normalize_jobs_contract():
    assert normalize_jobs(4) == 4
    assert normalize_jobs(1) == 1
    cores = available_jobs()
    assert normalize_jobs(0) == cores
    assert normalize_jobs(None) == cores
    assert normalize_jobs(-3) == cores
    assert cores >= 1


def test_campaign_summary_shape():
    summary = campaign_summary(run_campaign(SPECS[:3], jobs=1))
    assert summary["trials"] == 3
    assert summary["errors"] == 0
    assert summary["workers"] == 1
    assert summary["total_trial_s"] >= summary["max_trial_s"] > 0


def test_empty_campaign():
    assert run_campaign([], jobs=4) == []
    summary = campaign_summary([])
    assert summary == {"trials": 0, "errors": 0, "workers": 0,
                       "total_trial_s": 0.0, "max_trial_s": 0.0}
