"""Integration tests: the built-in instrumentation publishes real events."""

from repro.cluster import FailoverMode, build_cluster
from repro.core import FailureKind, FailureReport, RecoveryManager
from repro.ebid.schema import DatasetConfig
from repro.experiments.common import SingleNodeRig
from repro.telemetry import set_default_tracing
from tests.cluster.test_load_balancer import issue, login, served_by
from tests.toyapp import URL_PATH_MAP, build_toy_system
from tests.toyapp import issue as toy_issue


def kinds(bus):
    return [event.kind for event in bus.events()]


def test_server_publishes_request_lifecycle():
    system = build_toy_system()
    system.kernel.trace.enabled = True
    toy_issue(system, "/toy/greet", {"who": "x"})
    seen = kinds(system.kernel.trace)
    assert "server.request.start" in seen
    assert "server.request.end" in seen


def test_microreboot_publishes_begin_and_end():
    system = build_toy_system()
    system.kernel.trace.enabled = True
    system.kernel.run_until_triggered(
        system.kernel.process(system.coordinator.microreboot(["Greeter"]))
    )
    begin = system.kernel.trace.events(kinds="component.microreboot.begin")
    end = system.kernel.trace.events(kinds="component.microreboot.end")
    assert len(begin) == len(end) == 1
    assert begin[0].fields["components"] == ("Greeter",)
    assert begin[0].fields["level"] == "ejb"
    assert end[0].fields["duration"] > 0


def test_recovery_manager_publishes_decision_and_action():
    system = build_toy_system()
    system.kernel.trace.enabled = True
    rm = RecoveryManager(
        system.kernel, system.coordinator, URL_PATH_MAP, score_threshold=3
    )
    rm.start()
    for _ in range(3):
        rm.report(
            FailureReport(
                time=system.kernel.now,
                url="/toy/greet",
                operation="greet",
                kind=FailureKind.HTTP_ERROR,
            )
        )
    system.kernel.run(until=5.0)
    trace = system.kernel.trace
    assert len(trace.events(kinds="rm.report")) == 3
    decisions = trace.events(kinds="rm.decision")
    assert [e.fields["level"] for e in decisions] == ["ejb"]
    ends = trace.events(kinds="rm.action.end")
    assert len(ends) == 1
    assert ends[0].fields["ok"] is True


def test_load_balancer_publishes_failover_events():
    cluster = build_cluster(3, dataset=DatasetConfig.tiny(), seed=2)
    cluster.kernel.trace.enabled = True
    cookie = login(cluster, 1)
    bad = cluster.find_node(served_by(cluster, cookie)[0])

    cluster.load_balancer.begin_failover(bad, FailoverMode.FULL)
    issue(cluster, "/ebid/AboutMe", cookie=cookie)
    cluster.load_balancer.end_failover(bad)
    cluster.load_balancer.end_failover(bad)  # idempotent: no second event

    trace = cluster.kernel.trace
    begins = trace.events(kinds="lb.failover.begin")
    redirects = trace.events(kinds="lb.failover")
    ends = trace.events(kinds="lb.failover.end")
    assert len(begins) == len(ends) == 1
    assert begins[0].fields["node"] == bad.name
    assert len(redirects) == 1
    assert redirects[0].fields["from_node"] == bad.name
    assert redirects[0].fields["to_node"] != bad.name


def test_traced_rig_emits_client_events_and_untraced_rig_none():
    previous = set_default_tracing(True)
    try:
        rig = SingleNodeRig(seed=0, n_clients=5)
    finally:
        set_default_tracing(previous)
    rig.start()
    rig.run_for(30.0)
    seen = set(kinds(rig.kernel.trace))
    assert "request.start" in seen
    assert "request.end" in seen
    assert rig.kernel.trace.published > 0

    quiet = SingleNodeRig(seed=0, n_clients=5)
    quiet.start()
    quiet.run_for(30.0)
    assert quiet.kernel.trace.published == 0
