"""Tests for the causal span layer (TraceContext / SpanCollector)."""

from repro.appserver.http import HttpRequest
from repro.ebid.app import build_ebid_system
from repro.ebid.schema import DatasetConfig
from repro.faults import FaultInjector
from repro.sim.kernel import Kernel
from repro.telemetry.spans import (
    SpanCollector,
    set_default_spans,
    spans_enabled_by_default,
)


# ----------------------------------------------------------------------
# Unit behaviour
# ----------------------------------------------------------------------

def test_disabled_collector_attaches_nothing():
    collector = SpanCollector(Kernel())
    request = HttpRequest(url="/ebid/ViewItem", operation="ViewItem")
    assert collector.attach(request) is None
    assert request.trace is None
    assert collector.traces_started == 0


def test_attach_is_idempotent_and_first_node_wins():
    collector = SpanCollector(Kernel(), enabled=True)
    request = HttpRequest(url="/ebid/ViewItem", operation="ViewItem")
    trace = collector.attach(request)  # the LB attaches without a node
    again = collector.attach(request, node="node-1")  # admitting server
    assert trace is again
    assert trace.node == "node-1"
    collector.attach(request, node="node-2")
    assert trace.node == "node-1"
    assert collector.traces_started == 1


def test_finished_path_carries_components_edges_and_error_sites():
    kernel = Kernel()
    collector = SpanCollector(kernel, enabled=True)
    seen = []
    collector.add_sink(seen.append)

    trace = collector.start_trace("/ebid/CommitBid", "CommitBid", client_id=7)
    war = trace.start_span("EbidWAR")
    bean = trace.start_span("CommitBid", parent=war)
    entity = trace.start_span("IdentityManager", parent=bean)
    trace.finish_span(entity, outcome="ApplicationException")
    trace.finish_span(bean, outcome="ApplicationException")
    trace.finish_span(war)
    path = trace.finish(ok=False, failure="http-error")

    assert seen == [path]
    assert path.components == ("EbidWAR", "CommitBid", "IdentityManager")
    assert path.edges == (
        ("EbidWAR", "CommitBid"), ("CommitBid", "IdentityManager"),
    )
    assert path.failed_in == ("CommitBid", "IdentityManager")
    assert path.client_id == 7 and not path.ok
    # Finishing twice delivers nothing new.
    assert trace.finish(ok=False) is None
    assert collector.paths_recorded == 1


def test_span_cap_truncates_instead_of_growing():
    collector = SpanCollector(Kernel(), enabled=True, max_spans_per_trace=2)
    trace = collector.start_trace("/ebid/ViewItem", "ViewItem")
    first = trace.start_span("A")
    assert trace.start_span("B", parent=first) is not None
    assert trace.start_span("C") is None  # over the cap
    trace.finish_span(None)  # tolerated
    assert trace.truncated
    path = trace.finish(ok=True)
    assert path.components == ("A", "B")


def test_default_spans_flag_round_trips():
    previous = set_default_spans(True)
    try:
        assert spans_enabled_by_default()
        assert SpanCollector(Kernel()).enabled
    finally:
        set_default_spans(previous)
    assert SpanCollector(Kernel()).enabled is previous


def test_paths_publish_to_an_enabled_trace_bus():
    kernel = Kernel()
    kernel.trace.enabled = True
    collector = SpanCollector(kernel, enabled=True)
    trace = collector.start_trace("/ebid/ViewItem", "ViewItem")
    span = trace.start_span("EbidWAR")
    trace.finish_span(span)
    trace.finish(ok=True)
    kinds = [event.kind for event in kernel.trace.events()]
    assert kinds == ["span", "path.end"]


# ----------------------------------------------------------------------
# End-to-end through the application server
# ----------------------------------------------------------------------

def make_system():
    system = build_ebid_system(dataset=DatasetConfig.tiny(), seed=3)
    collector = SpanCollector(system.kernel, enabled=True)
    system.server.span_collector = collector
    return system, collector


def serve(system, url, operation, params=None):
    request = HttpRequest(url=url, operation=operation, params=params or {})
    response = system.kernel.run_until_triggered(
        system.server.handle_request(request)
    )
    return request, response


def test_request_through_server_records_observed_call_tree():
    system, collector = make_system()
    request, response = serve(
        system, "/ebid/ViewItem", "ViewItem", {"item_id": 1}
    )
    assert int(response.status) == 200
    path = request.trace.finish(ok=True)
    assert path.components[0] == "EbidWAR"
    assert "ViewItem" in path.components and "Item" in path.components
    assert path.edges[0] == ("EbidWAR", "ViewItem")
    assert path.node == system.server.name
    assert path.ok and path.failed_in == ()
    assert collector.paths_recorded == 1


def test_pre_dispatch_fault_still_lands_on_the_failed_path():
    """Fault hooks fire before an instance is picked; the span must start
    earlier still, or chi-square would implicate the *calling* component."""
    system, _collector = make_system()
    FaultInjector(system).inject_transient_exception("BrowseCategories")
    request, response = serve(
        system, "/ebid/BrowseCategories", "BrowseCategories"
    )
    assert int(response.status) == 500
    path = request.trace.finish(ok=False, failure="http-error")
    assert "BrowseCategories" in path.components
    assert "BrowseCategories" in path.failed_in


def test_untraced_request_pays_no_span_cost():
    system, collector = make_system()
    collector.enabled = False
    request, response = serve(
        system, "/ebid/ViewItem", "ViewItem", {"item_id": 1}
    )
    assert int(response.status) == 200
    assert request.trace is None
    assert collector.traces_started == 0
