"""Tests for the trace bus: ordering, ring bounds, filtering, enablement."""

from repro.sim import Kernel
from repro.telemetry import (
    TraceBus,
    set_default_tracing,
    tracing_enabled_by_default,
)


def make_bus(**kwargs):
    kwargs.setdefault("enabled", True)
    return TraceBus(**kwargs)


def test_events_preserve_publish_order_and_sequence():
    bus = make_bus()
    for i in range(5):
        bus.publish("tick", i=i)
    events = bus.events()
    assert [e.fields["i"] for e in events] == [0, 1, 2, 3, 4]
    assert [e.seq for e in events] == [0, 1, 2, 3, 4]


def test_events_stamped_with_kernel_time():
    kernel = Kernel()
    bus = TraceBus(kernel, enabled=True)

    def proc():
        bus.publish("before")
        yield kernel.timeout(2.5)
        bus.publish("after")

    kernel.process(proc())
    kernel.run()
    before, after = bus.events()
    assert before.t == 0.0
    assert after.t == 2.5


def test_ring_buffer_keeps_only_newest_events():
    bus = make_bus(capacity=4)
    for i in range(10):
        bus.publish("tick", i=i)
    assert len(bus) == 4
    assert bus.capacity == 4
    assert bus.published == 10
    assert bus.dropped == 6
    assert [e.fields["i"] for e in bus.events()] == [6, 7, 8, 9]


def test_recovery_events_survive_request_floods():
    """Sticky kinds keep the recovery story when per-request events have
    long since evicted everything else from the main ring."""
    bus = make_bus(capacity=8)
    bus.publish("rm.decision", level="ejb")
    bus.publish("component.microreboot.end", duration=0.5)
    bus.publish("lb.failover.begin", node="n1")
    for i in range(100):
        bus.publish("request.end", i=i)
    kinds_seen = [e.kind for e in bus.events()]
    assert kinds_seen[:3] == [
        "rm.decision", "component.microreboot.end", "lb.failover.begin",
    ]
    assert kinds_seen[3:] == ["request.end"] * 8
    # Still time/sequence ordered, and no duplicates when a sticky event
    # also remains in the main ring.
    bus2 = make_bus(capacity=8)
    bus2.publish("request.start")
    bus2.publish("rm.decision")
    assert [e.seq for e in bus2.events()] == [0, 1]


def test_disabled_bus_records_nothing():
    bus = TraceBus(enabled=False)
    assert bus.publish("tick") is None
    assert len(bus) == 0
    assert bus.published == 0
    assert bus.dropped == 0


def test_kernel_bus_disabled_by_default():
    assert not tracing_enabled_by_default()
    kernel = Kernel()
    assert not kernel.trace.enabled
    kernel.trace.publish("tick")
    assert kernel.trace.published == 0


def test_set_default_tracing_applies_to_new_buses():
    previous = set_default_tracing(True)
    try:
        assert previous is False
        assert TraceBus().enabled
        # An explicit enabled= always wins over the default.
        assert not TraceBus(enabled=False).enabled
    finally:
        set_default_tracing(previous)
    assert not TraceBus().enabled


def test_subscribe_exact_kind():
    bus = make_bus()
    seen = []
    bus.subscribe(lambda e: seen.append(e.kind), kinds="request.end")
    bus.publish("request.start")
    bus.publish("request.end")
    bus.publish("rm.decision")
    assert seen == ["request.end"]


def test_subscribe_prefix_wildcard():
    bus = make_bus()
    seen = []
    bus.subscribe(lambda e: seen.append(e.kind), kinds="rm.*")
    for kind in ("rm.report", "rm.decision", "request.end", "rm.action.end"):
        bus.publish(kind)
    assert seen == ["rm.report", "rm.decision", "rm.action.end"]


def test_subscribe_without_kinds_sees_everything():
    bus = make_bus()
    seen = []
    bus.subscribe(seen.append)
    bus.publish("a")
    bus.publish("b")
    assert [e.kind for e in seen] == ["a", "b"]


def test_unsubscribe_stops_delivery():
    bus = make_bus()
    seen = []
    token = bus.subscribe(seen.append)
    bus.publish("a")
    bus.unsubscribe(token)
    bus.publish("b")
    assert [e.kind for e in seen] == ["a"]


def test_events_filtered_like_subscriptions():
    bus = make_bus()
    for kind in ("lb.failover.begin", "lb.failover", "lb.failover.end", "x"):
        bus.publish(kind)
    assert [e.kind for e in bus.events(kinds="lb.failover.*")] == [
        "lb.failover.begin",
        "lb.failover.end",
    ]
    assert len(bus.events(kinds=("lb.failover", "x"))) == 2


def test_flatten_remaps_reserved_payload_keys():
    bus = make_bus()
    event = bus.publish("tick", t=99, node="n1")
    record = event.flatten(bus="b0")
    assert record["bus"] == "b0"
    assert record["kind"] == "tick"
    assert record["node"] == "n1"
    assert record["x_t"] == 99  # payload "t" must not clobber the envelope
    assert record["t"] == 0.0


def test_clear_empties_buffer_but_keeps_totals():
    bus = make_bus()
    bus.publish("tick")
    bus.clear()
    assert len(bus) == 0
    assert bus.published == 1
