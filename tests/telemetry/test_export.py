"""Tests for JSONL timeline export, capture scopes, and the summarizer."""

import pytest

from repro.sim import Kernel
from repro.telemetry import (
    TimelineError,
    TraceBus,
    capture_to_jsonl,
    load_timeline,
    read_timeline,
    summarize_timeline,
    tracing_enabled_by_default,
    write_timeline,
)


def test_write_read_roundtrip(tmp_path):
    bus_a = TraceBus(enabled=True, label="alpha")
    bus_b = TraceBus(enabled=True, label="beta")
    bus_a.publish("request.end", operation="ViewItem", duration=0.2)
    bus_b.publish("rm.decision", level="ejb")
    path = tmp_path / "timeline.jsonl"

    written = write_timeline(path, [bus_a, bus_b])
    records = read_timeline(path)

    assert written == len(records) == 2
    assert records[0]["bus"] == "alpha"
    assert records[0]["kind"] == "request.end"
    assert records[0]["operation"] == "ViewItem"
    assert records[1]["bus"] == "beta"
    assert records[1]["level"] == "ejb"


def test_unlabelled_buses_get_positional_ids(tmp_path):
    buses = [TraceBus(enabled=True), TraceBus(enabled=True)]
    for bus in buses:
        bus.publish("tick")
    path = tmp_path / "timeline.jsonl"
    write_timeline(path, buses)
    assert [r["bus"] for r in read_timeline(path)] == [0, 1]


def test_capture_to_jsonl_exports_buses_created_inside(tmp_path):
    outside = Kernel()  # exists before the capture: must not leak in
    path = tmp_path / "timeline.jsonl"
    with capture_to_jsonl(path):
        assert tracing_enabled_by_default()
        inside = Kernel()
        assert inside.trace.enabled
        inside.trace.publish("tick", origin="inside")
        outside.trace.publish("tick", origin="outside")
    assert not tracing_enabled_by_default()

    records = read_timeline(path)
    assert [r.get("origin") for r in records] == ["inside"]


def test_capture_to_jsonl_survives_kernel_garbage_collection(tmp_path):
    path = tmp_path / "timeline.jsonl"
    with capture_to_jsonl(path):
        kernel = Kernel()
        kernel.trace.publish("tick")
        del kernel  # capture scope keeps the bus alive for export
    assert len(read_timeline(path)) == 1


def test_load_timeline_returns_records(tmp_path):
    bus = TraceBus(enabled=True, label="run")
    bus.publish("tick")
    path = tmp_path / "timeline.jsonl"
    write_timeline(path, [bus])
    records = load_timeline(path)
    assert len(records) == 1 and records[0]["kind"] == "tick"


def test_load_timeline_classifies_errors(tmp_path):
    with pytest.raises(TimelineError, match="no such trace file"):
        load_timeline(tmp_path / "nope.jsonl")

    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(TimelineError, match="empty timeline"):
        load_timeline(empty)

    unreadable = tmp_path / "dir.jsonl"
    unreadable.mkdir()
    with pytest.raises(TimelineError, match="cannot read"):
        load_timeline(unreadable)


def test_summarize_empty_timeline():
    assert "empty timeline" in summarize_timeline([])


def test_summarize_timeline_sections():
    records = [
        {"t": 0.5, "seq": 0, "kind": "request.end", "bus": 0,
         "operation": "ViewItem", "ok": True, "duration": 0.21},
        {"t": 1.0, "seq": 1, "kind": "request.end", "bus": 0,
         "operation": "MakeBid", "ok": False, "duration": 7.9,
         "failure": "timeout"},
        {"t": 2.0, "seq": 2, "kind": "rm.decision", "bus": 0,
         "level": "ejb", "target": ["SB_ViewItem"]},
        {"t": 2.0, "seq": 3, "kind": "lb.failover.begin", "bus": 0,
         "node": "node-1", "mode": "micro"},
        {"t": 2.2, "seq": 4, "kind": "lb.failover", "bus": 0,
         "from_node": "node-1", "to_node": "node-2"},
        {"t": 2.6, "seq": 5, "kind": "component.microreboot.end", "bus": 0,
         "components": ["SB_ViewItem"], "duration": 0.55},
        {"t": 3.0, "seq": 6, "kind": "lb.failover.end", "bus": 0,
         "node": "node-1"},
        {"t": 9.0, "seq": 7, "kind": "lb.failover.begin", "bus": 0,
         "node": "node-3", "mode": "full"},
    ]
    text = summarize_timeline(records)
    assert "8 events from 1 bus(es)" in text
    assert "events by kind" in text
    assert "recovery timeline (2 events)" in text
    assert "rm.decision" in text and "level=ejb" in text
    assert "node-1: micro failover t=2.000..3.000s (1.000s)" in text
    assert "requests redirected during failover: 1" in text
    assert "never ended (wedged?)" in text  # node-3's window stayed open
    assert "slowest requests (of 2 completed)" in text
    assert "FAILED(timeout)" in text


def test_summarize_respects_slowest_limit():
    records = [
        {"t": float(i), "seq": i, "kind": "request.end", "bus": 0,
         "operation": f"Op{i}", "ok": True, "duration": float(i)}
        for i in range(10)
    ]
    text = summarize_timeline(records, slowest=3)
    listed = [line for line in text.splitlines() if "  Op" in line]
    assert len(listed) == 3
    assert "Op9" in listed[0]  # slowest first
