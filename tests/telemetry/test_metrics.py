"""Tests for counters, gauges, families, and the quantile sketch."""

import random

import pytest

from repro.telemetry import (
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5


def test_counter_rejects_decrease():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(3)
    assert gauge.value == 12


def test_family_counts_per_label():
    family = CounterFamily("f")
    family.inc("a")
    family.inc("a")
    family.inc("b", 3)
    assert family.get("a") == 2
    assert family.get("missing") == 0.0
    assert family.total == 5
    assert len(family) == 2


def test_family_as_dict_coerces_integral_counts():
    family = CounterFamily("f")
    family.inc("a")
    family.inc("b", 0.5)
    snapshot = family.as_dict()
    assert snapshot["a"] == 1 and isinstance(snapshot["a"], int)
    assert snapshot["b"] == 0.5


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------

def exact_quantile(values, q):
    """The same rank convention the sketch uses: rank = q * (n - 1)."""
    ordered = sorted(values)
    return ordered[round(q * (len(ordered) - 1))]


@pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
def test_quantiles_within_relative_accuracy_uniform(q):
    accuracy = 0.01
    histogram = Histogram(relative_accuracy=accuracy)
    values = [i / 10 for i in range(1, 10_001)]  # 0.1 .. 1000.0
    for value in values:
        histogram.observe(value)
    estimate = histogram.quantile(q)
    truth = exact_quantile(values, q)
    # Bucket midpoints guarantee alpha relative error; allow the rank
    # granularity of the discrete test distribution on top.
    assert abs(estimate - truth) / truth <= 2 * accuracy


@pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
def test_quantiles_within_relative_accuracy_lognormal(q):
    accuracy = 0.02
    histogram = Histogram(relative_accuracy=accuracy)
    rng = random.Random(7)
    values = [rng.lognormvariate(0.0, 1.5) for _ in range(20_000)]
    for value in values:
        histogram.observe(value)
    estimate = histogram.quantile(q)
    truth = exact_quantile(values, q)
    assert abs(estimate - truth) / truth <= 2 * accuracy


def test_histogram_memory_stays_bounded():
    histogram = Histogram(relative_accuracy=0.01)
    for i in range(1, 100_001):
        histogram.observe(i / 100)  # 5 decades of magnitude
    assert histogram.count == 100_000
    # log-bucketed: ~log(range)/log(gamma) buckets, never one per sample.
    assert histogram.bucket_count < 1200


def test_histogram_zero_and_negative_values():
    histogram = Histogram()
    for value in (0.0, -1.0, 0.0, 5.0):
        histogram.observe(value)
    assert histogram.quantile(0.0) == 0.0
    assert histogram.quantile(0.5) == 0.0  # three of four in the zero bucket
    assert histogram.min == -1.0
    assert histogram.max == 5.0


def test_histogram_summary_fields():
    histogram = Histogram()
    assert histogram.quantile(0.5) is None
    assert histogram.mean is None
    histogram.observe(2.0)
    histogram.observe(4.0)
    assert histogram.mean == 3.0
    assert histogram.count == 2
    assert set(histogram.percentiles()) == {"p50", "p95", "p99"}


def test_histogram_rejects_bad_arguments():
    with pytest.raises(ValueError):
        Histogram(relative_accuracy=1.5)
    with pytest.raises(ValueError):
        Histogram().quantile(1.2)


def test_empty_histogram_has_no_quantiles():
    """The defined contract: every quantile of an empty histogram is None
    (never an exception), and consumers must tolerate the None."""
    histogram = Histogram("empty")
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert histogram.quantile(q) is None
    assert histogram.percentiles() == {"p50": None, "p95": None, "p99": None}
    # Out-of-range q still raises even when empty: caller bug, not data.
    with pytest.raises(ValueError):
        histogram.quantile(-0.1)


def test_registry_snapshot_tolerates_empty_histogram():
    registry = MetricsRegistry()
    registry.histogram("latency")  # registered, never observed
    snap = registry.snapshot()
    assert snap["latency"]["count"] == 0
    assert snap["latency"]["p50"] is None
    assert snap["latency"]["min"] is None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("h") is registry.histogram("h")
    assert "a" in registry
    assert registry.get("missing") is None


def test_registry_rejects_type_mismatch():
    registry = MetricsRegistry()
    registry.counter("a")
    with pytest.raises(TypeError):
        registry.gauge("a")


def test_registry_snapshot_is_plain_data():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.gauge("g").set(7)
    registry.family("f").inc("x")
    histogram = registry.histogram("h")
    histogram.observe(1.0)
    snapshot = registry.snapshot()
    assert snapshot["c"] == 2
    assert snapshot["g"] == 7
    assert snapshot["f"] == {"x": 1}
    assert snapshot["h"]["count"] == 1
    assert "p99" in snapshot["h"]
    assert registry.names() == ["c", "f", "g", "h"]


# ----------------------------------------------------------------------
# Gauge families
# ----------------------------------------------------------------------

def test_gauge_family_sets_and_increments_children():
    family = GaugeFamily("shard.load", label="shard")
    family.set("shard001", 1.5)
    family.inc("shard001", 0.5)
    family.inc("shard002")
    assert family.get("shard001") == 2.0
    assert family.get("shard002") == 1.0
    assert family.get("missing") is None
    assert family.as_dict() == {"shard001": 2.0, "shard002": 1.0}
    assert len(family) == 2


def test_registry_gauge_family_snapshot_and_type_guard():
    registry = MetricsRegistry()
    family = registry.gauge_family("g", label="shard")
    assert registry.gauge_family("g") is family
    family.set("a", 3.0)
    assert registry.snapshot()["g"] == {"a": 3.0}
    with pytest.raises(TypeError):
        registry.family("g")


# ----------------------------------------------------------------------
# Histogram merge
# ----------------------------------------------------------------------

def test_histogram_merge_equals_single_sketch():
    rng = random.Random(7)
    values = [rng.expovariate(1.0) for _ in range(2000)]
    whole = Histogram("whole")
    left, right = Histogram("left"), Histogram("right")
    for i, value in enumerate(values):
        whole.observe(value)
        (left if i % 2 else right).observe(value)
    assert left.merge(right) is left  # chains
    assert left.count == whole.count
    assert left.sum == pytest.approx(whole.sum)
    assert left.min == whole.min and left.max == whole.max
    for q in (0.5, 0.9, 0.99):
        assert left.quantile(q) == whole.quantile(q)


def test_histogram_merge_empty_other_is_identity():
    histogram = Histogram("h")
    for value in (0.5, 1.0, 2.0):
        histogram.observe(value)
    before = (
        histogram.count, histogram.sum, histogram.min, histogram.max,
        histogram.quantile(0.5), histogram.quantile(0.99),
    )
    histogram.merge(Histogram("empty"))
    after = (
        histogram.count, histogram.sum, histogram.min, histogram.max,
        histogram.quantile(0.5), histogram.quantile(0.99),
    )
    assert after == before


def test_histogram_merge_of_empties_keeps_none_contract():
    merged = Histogram("a")
    merged.merge(Histogram("b"))
    assert merged.count == 0
    assert merged.quantile(0.5) is None
    assert merged.min is None and merged.max is None
    assert merged.percentiles()["p99"] is None


def test_histogram_merge_rejects_mismatches():
    coarse = Histogram("coarse", relative_accuracy=0.05)
    fine = Histogram("fine", relative_accuracy=0.01)
    fine.observe(1.0)
    with pytest.raises(ValueError):
        coarse.merge(fine)
    with pytest.raises(TypeError):
        coarse.merge("not a histogram")
