"""Tests for the CLI surface of tracing: run --trace and the trace command."""

import json

from repro.cli import build_parser, main
from repro.telemetry import TraceBus, write_timeline


def make_timeline(path):
    bus = TraceBus(enabled=True, label="run")
    bus.publish("request.end", operation="ViewItem", ok=True, duration=0.3)
    bus.publish("rm.decision", level="ejb", target=("SB_ViewItem",))
    bus.publish("rm.action.end", level="ejb", ok=True, duration=0.6)
    write_timeline(path, [bus])
    return path


def test_trace_command_summarizes_timeline(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "3 events from 1 bus(es)" in out
    assert "events by kind:" in out
    assert "recovery timeline (2 events)" in out
    assert "slowest requests" in out


def test_trace_command_slowest_flag(tmp_path, capsys):
    bus = TraceBus(enabled=True)
    for i in range(6):
        bus.publish("request.end", operation=f"Op{i}", ok=True,
                    duration=float(i))
    path = tmp_path / "timeline.jsonl"
    write_timeline(path, [bus])
    main(["trace", str(path), "--slowest", "2"])
    out = capsys.readouterr().out
    assert "Op5" in out and "Op4" in out
    assert "Op3" not in out


def test_trace_command_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
    err = capsys.readouterr().err
    assert "no such trace file" in err


def test_trace_command_empty_file_is_a_clean_error(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main(["trace", str(path)]) == 2
    assert "empty timeline" in capsys.readouterr().err


def test_trace_command_corrupt_file_is_a_clean_error(tmp_path, capsys):
    path = tmp_path / "corrupt.jsonl"
    path.write_text('{"t": 1.0, "kind": "x"}\nnot json at all\n')
    assert main(["trace", str(path)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "corrupt.jsonl:2" in err


def test_trace_command_wrong_schema_is_a_clean_error(tmp_path, capsys):
    path = tmp_path / "notatrace.jsonl"
    path.write_text('{"some": "other", "jsonl": "file"}\n')
    assert main(["trace", str(path)]) == 2
    assert "not a trace timeline" in capsys.readouterr().err


def test_run_parser_accepts_trace_flag(tmp_path):
    args = build_parser().parse_args(
        ["run", "figure1", "--quick", "--trace", str(tmp_path / "t.jsonl")]
    )
    assert args.trace == tmp_path / "t.jsonl"
    assert build_parser().parse_args(["run", "figure1"]).trace is None


def test_timeline_is_valid_jsonl(tmp_path):
    path = make_timeline(tmp_path / "timeline.jsonl")
    with open(path, encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh]
    assert all({"t", "seq", "kind", "bus"} <= set(r) for r in records)


# ----------------------------------------------------------------------
# The `paths` subcommand
# ----------------------------------------------------------------------

def make_span_timeline(path):
    bus = TraceBus(enabled=True, label="run")
    for span_id, (parent, comp, outcome) in enumerate(
        [(None, "EbidWAR", "ok"), (0, "CommitBid", "ok"),
         (1, "IdentityManager", "AppError")]
    ):
        bus.publish("span", trace=1, span=span_id, parent=parent,
                    component=comp, start=0.0, end=1.0, outcome=outcome)
    bus.publish(
        "path.end", trace=1, url="/ebid/CommitBid", operation="CommitBid",
        client=0, node="server-1", ok=False, failure="http-error",
        duration=1.0, components=("EbidWAR", "CommitBid", "IdentityManager"),
        failed_in=("IdentityManager",),
    )
    bus.publish("rm.decision", level="ejb", target=("IdentityManager",))
    write_timeline(path, [bus])
    return path


def test_paths_command_renders_call_tree_and_ranking(tmp_path, capsys):
    path = make_span_timeline(tmp_path / "spans.jsonl")
    assert main(["paths", str(path)]) == 0
    out = capsys.readouterr().out
    assert "observed call trees" in out
    assert "/ebid/CommitBid" in out
    assert "EbidWAR -> CommitBid" in out
    assert "anomaly ranking" in out
    assert "recovery decision audit" in out
    assert "rm.decision" in out


def test_paths_command_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["paths", str(tmp_path / "nope.jsonl")]) == 2
    assert "no such trace file" in capsys.readouterr().err


def test_paths_command_empty_file_is_a_clean_error(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main(["paths", str(path)]) == 2
    assert "empty timeline" in capsys.readouterr().err


def test_paths_command_corrupt_file_is_a_clean_error(tmp_path, capsys):
    path = tmp_path / "corrupt.jsonl"
    path.write_text("{broken\n")
    assert main(["paths", str(path)]) == 2
    assert capsys.readouterr().err.startswith("error:")


def test_paths_command_spanless_timeline_degrades_gracefully(tmp_path, capsys):
    path = make_timeline(tmp_path / "plain.jsonl")
    assert main(["paths", str(path)]) == 0
    out = capsys.readouterr().out
    assert "no path.end events" in out
