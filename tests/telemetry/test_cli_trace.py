"""Tests for the CLI surface of tracing: run --trace and the trace command."""

import json

from repro.cli import build_parser, main
from repro.telemetry import TraceBus, write_timeline


def make_timeline(path):
    bus = TraceBus(enabled=True, label="run")
    bus.publish("request.end", operation="ViewItem", ok=True, duration=0.3)
    bus.publish("rm.decision", level="ejb", target=("SB_ViewItem",))
    bus.publish("rm.action.end", level="ejb", ok=True, duration=0.6)
    write_timeline(path, [bus])
    return path


def test_trace_command_summarizes_timeline(tmp_path, capsys):
    path = make_timeline(tmp_path / "timeline.jsonl")
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "3 events from 1 bus(es)" in out
    assert "events by kind:" in out
    assert "recovery timeline (2 events)" in out
    assert "slowest requests" in out


def test_trace_command_slowest_flag(tmp_path, capsys):
    bus = TraceBus(enabled=True)
    for i in range(6):
        bus.publish("request.end", operation=f"Op{i}", ok=True,
                    duration=float(i))
    path = tmp_path / "timeline.jsonl"
    write_timeline(path, [bus])
    main(["trace", str(path), "--slowest", "2"])
    out = capsys.readouterr().out
    assert "Op5" in out and "Op4" in out
    assert "Op3" not in out


def test_trace_command_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
    err = capsys.readouterr().err
    assert "no such trace file" in err


def test_trace_command_empty_file(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main(["trace", str(path)]) == 0
    assert "empty timeline" in capsys.readouterr().out


def test_run_parser_accepts_trace_flag(tmp_path):
    args = build_parser().parse_args(
        ["run", "figure1", "--quick", "--trace", str(tmp_path / "t.jsonl")]
    )
    assert args.trace == tmp_path / "t.jsonl"
    assert build_parser().parse_args(["run", "figure1"]).trace is None


def test_timeline_is_valid_jsonl(tmp_path):
    path = make_timeline(tmp_path / "timeline.jsonl")
    with open(path, encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh]
    assert all({"t", "seq", "kind", "bus"} <= set(r) for r in records)
