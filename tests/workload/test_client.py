"""Tests for the emulated client population."""

import pytest

from repro.appserver.http import HttpStatus
from repro.ebid.app import build_ebid_system
from repro.ebid.schema import DatasetConfig
from repro.workload.client import ClientPopulation, EmulatedClient
from repro.workload.markov import WorkloadProfile


def make_population(n_clients=30, seed=11, duration=240.0, reporter=None):
    system = build_ebid_system(dataset=DatasetConfig.tiny(), seed=seed)
    population = ClientPopulation(
        system.kernel,
        system.server,
        DatasetConfig.tiny(),
        n_clients=n_clients,
        rng_registry=system.rng,
        reporter=reporter,
    )
    population.start()
    system.kernel.run(until=duration)
    return system, population


def test_fault_free_run_has_no_failures():
    _system, population = make_population()
    assert population.metrics.failed_requests == 0
    assert population.metrics.good_requests > 200


def test_clients_progress_through_sessions():
    _system, population = make_population()
    names = {a.name for a in population.metrics.actions}
    assert "Login" in names
    assert "Logout" in names
    assert len(names) > 8  # a healthy variety of actions


def test_actions_follow_their_templates():
    _system, population = make_population()
    from repro.workload.markov import ACTION_TEMPLATES

    for action in population.metrics.actions:
        template = ACTION_TEMPLATES[action.name]
        ops = tuple(op.operation for op in action.operations)
        assert ops == template[: len(ops)]  # prefix (aborted actions stop early)


def test_failures_are_reported():
    reports = []
    system = build_ebid_system(dataset=DatasetConfig.tiny(), seed=11)
    population = ClientPopulation(
        system.kernel,
        system.server,
        DatasetConfig.tiny(),
        n_clients=30,
        rng_registry=system.rng,
        reporter=reports.append,
    )
    population.start()
    system.kernel.run(until=60.0)
    from repro.faults import FaultInjector

    FaultInjector(system).inject_transient_exception("BrowseCategories")
    system.kernel.run(until=180.0)
    assert reports
    assert all(r.url == "/ebid/BrowseCategories" for r in reports)


def test_client_reacts_to_lost_session():
    """After a JVM restart destroys FastS, clients notice the login prompt,
    end the session, and log in again."""
    system = build_ebid_system(dataset=DatasetConfig.tiny(), seed=11)
    population = ClientPopulation(
        system.kernel, system.server, DatasetConfig.tiny(),
        n_clients=30, rng_registry=system.rng,
    )
    population.start()
    system.kernel.run(until=120.0)

    def restart():
        yield from system.server.restart_jvm()

    system.kernel.run_until_triggered(system.kernel.process(restart()))
    system.kernel.run(until=400.0)
    metrics = population.metrics
    app_specific = metrics.failures_by_kind.get("app-specific", 0)
    assert app_specific > 0  # someone hit the login prompt
    # New sessions were established afterwards: logins after the restart.
    late_logins = [
        a for a in metrics.actions
        if a.name == "Login" and a.started_at > 140.0 and a.committed
    ]
    assert late_logins


def test_retry_on_503(monkeypatch):
    """An idempotent request that gets 503+Retry-After is retried."""
    system = build_ebid_system(dataset=DatasetConfig.tiny(), seed=3)
    client = EmulatedClient(
        client_id=0,
        kernel=system.kernel,
        rng=system.rng.stream("c"),
        frontend=system.server,
        dataset=DatasetConfig.tiny(),
    )
    from repro.appserver.http import HttpResponse

    calls = []
    real_handle = system.server.handle_request

    def flaky_handle(request):
        calls.append(request.operation)
        if len(calls) == 1:
            done = system.kernel.event()
            done.succeed(
                HttpResponse(HttpStatus.SERVICE_UNAVAILABLE, retry_after=0.5)
            )
            return done
        return real_handle(request)

    monkeypatch.setattr(system.server, "handle_request", flaky_handle)
    record_holder = []

    def driver():
        record = yield from client._do_operation("BrowseCategories", {})
        record_holder.append(record)

    system.kernel.run_until_triggered(system.kernel.process(driver()))
    assert record_holder[0].ok
    assert record_holder[0].retries == 1
    assert len(calls) == 2


def test_client_timeout_records_failure():
    system = build_ebid_system(dataset=DatasetConfig.tiny(), seed=3)
    system.server.request_lease_ttl = 1e9  # disable the server-side lease
    client = EmulatedClient(
        client_id=0,
        kernel=system.kernel,
        rng=system.rng.stream("c"),
        frontend=system.server,
        dataset=DatasetConfig.tiny(),
        profile=WorkloadProfile(request_timeout=2.0),
    )
    from repro.faults import FaultInjector

    FaultInjector(system).inject_deadlock("BrowseCategories")

    def driver():
        record = yield from client._do_operation("BrowseCategories", {})
        return record

    process = system.kernel.process(driver())
    system.kernel.run(until=30.0)
    record = process.value
    assert not record.ok
    assert record.failure_kind == "timeout"
    assert record.response_time == pytest.approx(2.0, abs=0.1)
