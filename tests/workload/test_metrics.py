"""Tests for the action-weighted throughput (Taw) accounting."""

import pytest

from repro.workload.metrics import ActionRecord, OperationRecord, TawAccounting


def op(name="ViewItem", issued=10.0, completed=10.5, ok=True, group="Browse/View"):
    return OperationRecord(
        operation=name,
        url=f"/ebid/{name}",
        issued_at=issued,
        completed_at=completed,
        ok=ok,
        response_time=completed - issued,
        functional_group=group,
    )


def action(name="ViewItem", ops=()):
    record = ActionRecord(name=name, client_id=1, started_at=0.0)
    record.operations = list(ops)
    return record


def test_committed_action_counts_all_ops_good():
    metrics = TawAccounting()
    metrics.record_action(action(ops=[op(issued=1, completed=2),
                                      op(issued=3, completed=4)]))
    assert metrics.good_requests == 2
    assert metrics.failed_requests == 0
    assert metrics.good_actions == 1


def test_one_failure_retroactively_fails_the_whole_action():
    """The heart of Taw (§4): actions succeed or fail atomically."""
    metrics = TawAccounting()
    metrics.record_action(
        action(
            name="PlaceBid",
            ops=[
                op("ViewItem", 1, 2, ok=True),
                op("MakeBid", 3, 4, ok=True),
                op("CommitBid", 5, 6, ok=False),
            ],
        )
    )
    assert metrics.failed_requests == 3  # the earlier successes count bad
    assert metrics.good_requests == 0
    assert metrics.failed_actions == 1


def test_series_bucketing_by_second():
    metrics = TawAccounting()
    metrics.record_action(action(ops=[op(issued=10.2, completed=10.9)]))
    metrics.record_action(action(ops=[op(issued=10.5, completed=11.1)]))
    series = metrics.good_taw_series()
    assert series[10] == 1
    assert series[11] == 1


def test_requests_in_window():
    metrics = TawAccounting()
    metrics.record_action(action(ops=[op(issued=5, completed=5.5)]))
    metrics.record_action(action(ops=[op(issued=20, completed=20.5, ok=False)]))
    good, bad = metrics.requests_in_window(0, 10)
    assert (good, bad) == (1, 0)
    good, bad = metrics.requests_in_window(10, 30)
    assert (good, bad) == (0, 1)


def test_requests_in_window_edges_are_half_open():
    """The [start, end) contract: window edges never double- or zero-count.

    A request completing at exactly t=10 lives in bucket 10: it belongs
    to [10, 20) and not to [0, 10) — the boundary bucket goes to exactly
    one side.
    """
    metrics = TawAccounting()
    metrics.record_action(action(ops=[op(issued=9.5, completed=10.0)]))
    assert metrics.requests_in_window(0, 10) == (0, 0)
    assert metrics.requests_in_window(10, 20) == (1, 0)


def test_requests_in_window_partitions_the_run():
    """Consecutive windows sum to the run total (no gaps, no overlaps)."""
    metrics = TawAccounting()
    for second in range(0, 30, 3):
        metrics.record_action(
            action(ops=[op(issued=second, completed=second + 0.5,
                           ok=(second % 2 == 0))])
        )
    windows = [(0, 10), (10, 20), (20, 30)]
    good = sum(metrics.requests_in_window(s, e)[0] for s, e in windows)
    bad = sum(metrics.requests_in_window(s, e)[1] for s, e in windows)
    assert good == metrics.good_requests
    assert bad == metrics.failed_requests


def test_requests_in_window_compares_bucket_labels_not_timestamps():
    """Documented nuance: the comparison is on int bucket labels."""
    metrics = TawAccounting()
    metrics.record_action(action(ops=[op(issued=9.2, completed=9.7)]))
    # t=9.7 lives in bucket 9: inside [0, 10) but outside [9.5, 10).
    assert metrics.requests_in_window(0, 10) == (1, 0)
    assert metrics.requests_in_window(9.5, 10) == (0, 0)
    assert metrics.requests_in_window(9, 10) == (1, 0)


def test_operations_mix():
    metrics = TawAccounting()
    metrics.record_action(action(ops=[op("ViewItem"), op("ViewItem"),
                                      op("MakeBid")]))
    mix = metrics.operations_mix()
    assert mix["ViewItem"] == pytest.approx(2 / 3)
    assert mix["MakeBid"] == pytest.approx(1 / 3)


def test_response_time_stats():
    metrics = TawAccounting()
    metrics.record_action(action(ops=[op(issued=0, completed=0.5),
                                      op(issued=1, completed=10.0)]))
    assert metrics.mean_response_time() == pytest.approx((0.5 + 9.0) / 2)
    assert metrics.response_times_over(8.0) == 1


def test_response_time_series_buckets_means():
    metrics = TawAccounting()
    metrics.record_action(action(ops=[op(issued=0, completed=0.2),
                                      op(issued=0.5, completed=0.9)]))
    series = metrics.response_time_series(bucket_seconds=1.0)
    assert series[0.0] == pytest.approx(0.3)


def test_group_unavailability_merges_spans():
    metrics = TawAccounting()
    metrics.record_action(
        action(ops=[op(issued=10, completed=12, ok=False)])
    )
    metrics.record_action(
        action(ops=[op(issued=11, completed=14, ok=False)])
    )
    metrics.record_action(
        action(ops=[op(issued=30, completed=31, ok=False)])
    )
    spans = metrics.group_unavailability("Browse/View")
    assert spans == [(10, 14), (30, 31)]


def test_group_unavailability_pads_instant_failures():
    metrics = TawAccounting()
    metrics.record_action(action(ops=[op(issued=10, completed=10, ok=False)]))
    spans = metrics.group_unavailability("Browse/View", min_span=1.0)
    assert spans == [(10, 11)]


def test_failures_by_kind_and_operation():
    metrics = TawAccounting()
    failed = op("CommitBid", ok=False)
    failed.failure_kind = "http-error"
    metrics.record_action(action(ops=[failed]))
    assert metrics.failures_by_operation["CommitBid"] == 1
    assert metrics.failures_by_kind["http-error"] == 1
