"""Tests for the Markov workload model."""

import random

import pytest

from repro.ebid.descriptors import OPERATIONS
from repro.workload.markov import ACTION_TEMPLATES, WorkloadProfile


def test_action_templates_reference_real_operations():
    for action, script in ACTION_TEMPLATES.items():
        for operation in script:
            assert operation in OPERATIONS, (action, operation)


def test_templates_cover_all_25_operations():
    covered = {op for script in ACTION_TEMPLATES.values() for op in script}
    assert covered == set(OPERATIONS)


def test_unknown_action_weight_rejected():
    with pytest.raises(ValueError):
        WorkloadProfile(mid_action_weights={"NoSuchAction": 1.0})


def test_think_time_capped():
    profile = WorkloadProfile()
    rng = random.Random(0)
    draws = [profile.think_time(rng) for _ in range(5000)]
    assert all(d <= profile.think_time_max for d in draws)
    assert sum(draws) / len(draws) == pytest.approx(7.0, rel=0.1)


def test_sessions_start_with_login_or_register():
    profile = WorkloadProfile()
    rng = random.Random(1)
    starts = {next(iter(profile.session_actions(rng))) for _ in range(200)}
    assert starts <= {"Login", "Register"}
    assert "Login" in starts and "Register" in starts


def test_register_fraction_matches_probability():
    profile = WorkloadProfile(register_probability=0.10)
    rng = random.Random(2)
    registers = sum(
        1 for _ in range(4000) if profile.first_action(rng) == "Register"
    )
    assert registers / 4000 == pytest.approx(0.10, abs=0.02)


def test_logout_fraction_matches_probability():
    profile = WorkloadProfile(logout_probability=0.75)
    rng = random.Random(3)
    logouts = sum(
        1
        for _ in range(2000)
        if list(profile.session_actions(rng))[-1] == "Logout"
    )
    assert logouts / 2000 == pytest.approx(0.75, abs=0.03)


def test_mean_session_length_supports_table1_mix():
    """Sessions must average ≈7.6 operations so that login+logout are 23%."""
    profile = WorkloadProfile()
    rng = random.Random(4)
    ops = [
        sum(len(ACTION_TEMPLATES[a]) for a in profile.session_actions(rng))
        for _ in range(4000)
    ]
    assert sum(ops) / len(ops) == pytest.approx(7.6, rel=0.06)


def test_mid_action_distribution_matches_weights():
    profile = WorkloadProfile()
    rng = random.Random(5)
    counts = {}
    draws = 50_000
    for _ in range(draws):
        action = profile.next_mid_action(rng)
        if action is not None:
            counts[action] = counts.get(action, 0) + 1
    total = sum(counts.values())
    weights_total = sum(profile.mid_action_weights.values())
    for action, weight in profile.mid_action_weights.items():
        expected = weight / weights_total
        assert counts.get(action, 0) / total == pytest.approx(
            expected, abs=0.01
        ), action


def test_browse_categories_most_frequent_operation():
    """§5.2: BrowseCategories is the most-frequently called EJB."""
    profile = WorkloadProfile()
    rng = random.Random(6)
    counts = {}
    for _ in range(3000):
        for action in profile.session_actions(rng):
            for op in ACTION_TEMPLATES[action]:
                counts[op] = counts.get(op, 0) + 1
    dynamic = {
        op: c for op, c in counts.items()
        if OPERATIONS[op][0].value != "static HTML content"
    }
    top = max(dynamic, key=dynamic.get)
    assert top in ("BrowseCategories", "Authenticate")
    assert counts["BrowseCategories"] >= 0.9 * counts["Authenticate"]
