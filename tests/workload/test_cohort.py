"""Tests for the cohort-vectorized workload engine.

The load-bearing contract here is **equivalence**: at small N, where the
per-client engine is affordable, the cohort engine must reproduce its
availability, its action-weighted goodput rate and its action mix within
a documented tolerance on identical seeds.  Everything else (samplers,
conservation, determinism, lazy detail) supports that contract.
"""

from collections import Counter

import pytest

from repro.ebid.schema import DatasetConfig
from repro.experiments.common import SingleNodeRig
from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry
from repro.workload.cohort import (
    SESSION_FATAL_ACTIONS,
    CohortEngine,
    CohortStateSpace,
    binomial,
    multinomial,
    proportional_split,
)
from repro.workload.markov import ACTION_TEMPLATES

#: Documented equivalence tolerances (see the engine's module docstring):
#: the cohort engine discretizes think time into 1 s ticks and pools the
#: Markov transitions, so it agrees with the per-client engine
#: statistically, not draw for draw.
GAW_RELATIVE_TOLERANCE = 0.05
ACTION_MIX_ABSOLUTE_TOLERANCE = 0.02


def _engine(seed=0, n_sessions=200, shards=("s0", "s1"), outcome=None, **kw):
    kernel = Kernel()
    rng = RngRegistry(seed)
    outcome = outcome or (lambda shard, op: (0.0, 0.05))
    return kernel, CohortEngine(kernel, rng, outcome, n_sessions, shards, **kw)


# ----------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------
def test_binomial_edges():
    rng = RngRegistry(1).stream("t")
    assert binomial(rng, 0, 0.5) == 0
    assert binomial(rng, 100, 0.0) == 0
    assert binomial(rng, 100, 1.0) == 100
    assert 0 <= binomial(rng, 10, 0.5) <= 10


@pytest.mark.parametrize("n,p", [(10, 0.3), (200, 0.05), (100_000, 0.2)])
def test_binomial_mean_tracks_np(n, p):
    # Covers all three regimes: Bernoulli sum, pmf inversion, Gaussian.
    rng = RngRegistry(2).stream("t")
    draws = [binomial(rng, n, p) for _ in range(400)]
    assert all(0 <= d <= n for d in draws)
    mean = sum(draws) / len(draws)
    sd = (n * p * (1 - p)) ** 0.5
    assert abs(mean - n * p) < 5 * sd / 400**0.5 + 1


def test_multinomial_conserves_and_distributes():
    rng = RngRegistry(3).stream("t")
    probs = (0.5, 0.3, 0.15, 0.05)
    for n in (0, 1, 7, 10_000):
        counts = multinomial(rng, n, probs)
        assert sum(counts) == n
        assert all(c >= 0 for c in counts)
    big = multinomial(rng, 1_000_000, probs)
    for share, expected in zip(big, probs):
        assert abs(share / 1_000_000 - expected) < 0.01


# ----------------------------------------------------------------------
# State space
# ----------------------------------------------------------------------
def test_state_space_covers_every_operation_position():
    space = CohortStateSpace()
    assert len(space) == sum(len(ops) for ops in ACTION_TEMPLATES.values())
    for state in space.states:
        assert ACTION_TEMPLATES[state.action][state.op_index] == state.operation


def test_state_space_distributions_are_proper():
    space = CohortStateSpace()
    for indices, probs in (space.entry_dist, space.next_action_dist):
        assert len(indices) == len(probs)
        assert abs(sum(probs) - 1.0) < 1e-9
        # Every target is the first operation of some action.
        assert all(space.states[i].op_index == 0 for i in indices)


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------
def test_population_is_conserved():
    kernel, engine = _engine(n_sessions=1000)
    assert engine.population() == 1000
    engine.start(120.0)
    kernel.run(until=120.0)
    assert engine.population() == 1000
    assert engine.ticks_run == 120


def test_failures_route_through_taw_and_fatal_actions_restart():
    fail_everything = lambda shard, op: (1.0, 0.05)  # noqa: E731
    kernel, engine = _engine(n_sessions=500, outcome=fail_everything)
    engine.start(60.0)
    kernel.run(until=60.0)
    m = engine.metrics
    assert m.good_requests == 0
    assert m.failed_requests > 0
    assert m.failed_actions > 0
    assert engine.population() == 500
    # With every click failing, only first-op states ever hold sessions
    # (a failure never advances within the action's script).
    for table in engine.counts.values():
        for idx, count in enumerate(table):
            if count:
                assert engine.space.states[idx].op_index == 0
    assert SESSION_FATAL_ACTIONS == {"Login", "Register", "Logout"}


def test_details_are_lazy_and_bounded():
    seen = []
    fail_everything = lambda shard, op: (1.0, 0.05)  # noqa: E731
    kernel, engine = _engine(
        n_sessions=500,
        outcome=fail_everything,
        reporter=seen.append,
        max_details_per_tick=2,
        detail_retention=10,
    )
    engine.start(30.0)
    kernel.run(until=30.0)
    # At most max_details_per_tick per shard per tick were materialized...
    assert engine.total_details <= 2 * len(engine.shards) * engine.ticks_run
    assert engine.total_details == len(seen)
    # ...but the retained list is bounded regardless.
    assert len(engine.details) == 10
    assert engine.details_dropped == engine.total_details - 10
    ids = [d.session_id for d in seen]
    assert len(set(ids)) == len(ids)
    assert all(d.url.startswith("/") for d in engine.details)


def test_same_seed_same_trajectory():
    runs = []
    for _ in range(2):
        kernel, engine = _engine(seed=7, n_sessions=300)
        engine.start(90.0)
        kernel.run(until=90.0)
        runs.append(
            (
                engine.counts,
                engine.shard_good_series,
                engine.actions_finished,
                engine.metrics.good_requests,
            )
        )
    assert runs[0] == runs[1]


def test_ring_placement_covers_all_sessions():
    from repro.cluster.sharding import ShardRing

    shards = [f"s{i}" for i in range(4)]
    ring = ShardRing(shards)
    _kernel, engine = _engine(n_sessions=400, shards=shards, ring=ring)
    assert sum(engine.shard_sessions.values()) == 400
    # Consistent hashing, not round-robin: placement follows the ring.
    assert engine.shard_sessions == ring.counts(range(400))


# ----------------------------------------------------------------------
# Elastic migration: shards join/leave, sessions move with zero loss
# ----------------------------------------------------------------------
def test_proportional_split_conserves_caps_and_is_deterministic():
    counts = [10, 0, 3, 87, 0, 1]
    for take in (0, 1, 7, 50, 101, 500):
        split = proportional_split(counts, take)
        assert sum(split) == min(take, sum(counts))
        assert all(0 <= s <= c for s, c in zip(split, counts))
        assert split == proportional_split(counts, take)  # RNG-free
    assert proportional_split([0, 0], 5) == [0, 0]
    # The big cell contributes proportionally, not everything.
    split = proportional_split(counts, 50)
    assert 0 < split[3] < counts[3]


def test_migration_is_conserved_and_released_after_window():
    kernel, engine = _engine(n_sessions=1000)
    s1_before = engine.shard_sessions["s1"]
    moved = engine.begin_migration("s0", "s1", 200, window=2.0)
    assert moved == 200
    # Copy-then-cutover: extracted but not yet arrived — still counted.
    assert engine.in_transit() == 200
    assert engine.population() == 1000
    assert engine.shard_sessions["s0"] == 500 - 200
    assert engine.migrations == [
        {"source": "s0", "target": "s1", "sessions": 200,
         "at": 0.0, "window": 2.0}
    ]
    engine.start(5.0)
    kernel.run(until=5.0)
    assert engine.in_transit() == 0
    assert engine.population() == 1000
    assert engine.shard_sessions["s1"] == s1_before + 200
    assert engine.sessions_migrated == 200


def test_add_shard_and_retire_shard_guards():
    kernel, engine = _engine(n_sessions=400)
    engine.add_shard("s2")
    assert engine.shard_sessions["s2"] == 0
    with pytest.raises(ValueError):
        engine.add_shard("s2")
    # Retiring refuses while sessions live there or are in flight to it.
    engine.begin_migration("s0", "s2", 50, window=1.0)
    with pytest.raises(ValueError):
        engine.retire_shard("s2")
    engine.start(10.0)
    kernel.run(until=3.0)
    moved_back = engine.begin_migration("s2", "s0", 50, window=1.0)
    assert moved_back == 50
    kernel.run(until=6.0)
    engine.retire_shard("s2")
    assert "s2" not in engine.shards
    assert engine.population() == 400
    with pytest.raises(KeyError):
        engine.begin_migration("s0", "s2", 10)  # retired target
    with pytest.raises(KeyError):
        engine.retire_shard("missing")
    # The retired shard still appears in the accounting summary.
    assert any(r["shard"] == "s2" for r in engine.shard_summary())


def test_migrating_sessions_pause_but_never_fail():
    # In-transit sessions issue no clicks: a migration is a Gaw dip,
    # never a failure burst.  Every s0 click would fail here — but all
    # of s0 is in transit while s0 is sick, and lands on healthy s1.
    fail_s0 = lambda shard, op: (1.0 if shard == "s0" else 0.0, 0.05)  # noqa: E731
    kernel, engine = _engine(n_sessions=600, outcome=fail_s0)
    moved = engine.begin_migration("s0", "s1", 300, window=3.0)
    assert moved == 300
    assert engine.shard_sessions["s0"] == 0
    engine.start(10.0)
    kernel.run(until=10.0)
    assert engine.metrics.failed_requests == 0
    assert engine.metrics.good_requests > 0
    assert engine.population() == 600


# ----------------------------------------------------------------------
# The equivalence contract
# ----------------------------------------------------------------------
def test_small_n_equivalence_with_per_client_engine():
    """Cohort availability, Gaw rate and action mix match the per-client
    engine within the documented tolerances on identical seeds.

    Fault-free at N=150 for 400 simulated seconds; the cohort run is fed
    the per-client run's own measured mean response time, so both engines
    see the same offered click rate 1/(think + RT).
    """
    n, duration = 150, 400.0
    rig = SingleNodeRig(
        seed=3,
        n_clients=n,
        dataset=DatasetConfig.tiny(),
        with_recovery_manager=False,
    )
    rig.start()
    rig.run_for(duration)
    pc = rig.metrics
    pc_availability = pc.good_requests / pc.total_requests
    pc_gaw_rate = pc.good_requests / duration
    mix = Counter(action.name for action in pc.actions)
    pc_mix = {name: c / sum(mix.values()) for name, c in mix.items()}
    mean_rt = pc.mean_response_time()

    kernel = Kernel()
    engine = CohortEngine(
        kernel,
        RngRegistry(3),
        lambda shard, op: (0.0, mean_rt),
        n,
        ["s0"],
    )
    engine.start(duration)
    kernel.run(until=duration)
    cm = engine.metrics
    cohort_availability = cm.good_requests / cm.total_requests
    cohort_gaw_rate = cm.good_requests / duration
    cohort_mix = engine.action_mix()

    assert pc_availability == 1.0 and cohort_availability == 1.0
    assert (
        abs(cohort_gaw_rate - pc_gaw_rate) / pc_gaw_rate
        < GAW_RELATIVE_TOLERANCE
    )
    for action in set(pc_mix) | set(cohort_mix):
        assert (
            abs(pc_mix.get(action, 0.0) - cohort_mix.get(action, 0.0))
            < ACTION_MIX_ABSOLUTE_TOLERANCE
        ), f"action mix diverges at {action}"
