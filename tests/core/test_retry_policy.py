"""Unit tests for the retry policy configuration (§6.2)."""

from repro.core.retry import RetryPolicy


def test_disabled_baseline():
    policy = RetryPolicy.disabled()
    assert not policy.enabled
    assert policy.drain_delay == 0.0


def test_retry_only_matches_table6_column():
    policy = RetryPolicy.retry_only()
    assert policy.enabled
    assert policy.drain_delay == 0.0
    assert policy.retry_after == 2.0  # the paper's [Retry-After 2 seconds]


def test_delay_and_retry_uses_200ms_drain():
    policy = RetryPolicy.delay_and_retry()
    assert policy.enabled
    assert policy.drain_delay == 0.2


def test_custom_policy():
    policy = RetryPolicy(enabled=True, retry_after=5.0, max_retries=1,
                         drain_delay=0.05)
    assert policy.retry_after == 5.0
    assert policy.max_retries == 1
