"""The dependency-aware parallel recovery scheduler on the toy system."""

import pytest

from repro.core import (
    FailureKind,
    FailureReport,
    RecoveryManager,
    RecoveryStormLimiter,
)
from tests.toyapp import URL_PATH_MAP, build_toy_system


def make_rm(system, **kwargs):
    defaults = dict(
        score_threshold=3, escalation_window=45.0, scheduler="parallel"
    )
    defaults.update(kwargs)
    rm = RecoveryManager(
        system.kernel, system.coordinator, URL_PATH_MAP, **defaults
    )
    rm.start()
    return rm


def report(rm, system, url, kind=FailureKind.HTTP_ERROR, at=None):
    rm.report(
        FailureReport(
            time=system.kernel.now if at is None else at,
            url=url,
            operation=url.rsplit("/", 1)[-1],
            kind=kind,
        )
    )


def burst(rm, system, url, n=3):
    for _ in range(n):
        report(rm, system, url)


def overlapping(a, b):
    return a.decided_at < b.finished_at and b.decided_at < a.finished_at


def test_independent_groups_microreboot_concurrently():
    system = build_toy_system()
    rm = make_rm(system)
    burst(rm, system, "/toy/greet")
    burst(rm, system, "/toy/balance")
    system.kernel.run(until=5.0)
    assert [a.level for a in rm.actions] == ["ejb", "ejb"]
    assert rm.actions[0].target == ("Greeter",)
    assert rm.actions[1].target == ("Account", "Ledger")
    assert overlapping(rm.actions[0], rm.actions[1])
    assert all(a.ok for a in rm.actions)


def test_same_group_recoveries_stay_serialized():
    system = build_toy_system()
    rm = make_rm(system)
    # The balance burst dispatches the Account group; the transfer burst
    # implicates Transfer, whose targets conflict with the in-flight
    # group (Transfer references Account and Ledger) — so it must wait,
    # and the completed group recovery then retires its evidence.
    burst(rm, system, "/toy/balance")
    burst(rm, system, "/toy/transfer")
    system.kernel.run(until=5.0)
    assert len(rm.actions) == 1
    assert rm.actions[0].target == ("Account", "Ledger")


def test_parallel_schedule_is_deterministic_across_fresh_systems():
    def run_one():
        system = build_toy_system()
        rm = make_rm(system)
        burst(rm, system, "/toy/greet")
        burst(rm, system, "/toy/balance")
        system.kernel.run(until=5.0)
        return [
            (a.level, a.target, a.decided_at, a.finished_at, a.ok)
            for a in rm.actions
        ]

    assert run_one() == run_one()


def test_storm_limiter_caps_global_concurrency():
    system = build_toy_system()
    limiter = RecoveryStormLimiter(system.kernel, limit=1)
    deferred = []
    rm = make_rm(system, storm_limiter=limiter)
    rm.defer_listeners.append(
        lambda reason, level, targets, ttl: deferred.append((reason, targets))
    )
    burst(rm, system, "/toy/greet")
    burst(rm, system, "/toy/balance")
    system.kernel.run(until=1.0)
    # Only the Greeter µRB was admitted; the independent Account group
    # was storm-deferred, not cancelled.
    assert [a.target for a in rm.actions] == [("Greeter",)]
    assert ("storm", ("Account",)) in deferred
    # Scores survived the deferral: the next report re-diagnoses from
    # current evidence and dispatches now that the slot is free.
    report(rm, system, "/toy/balance")
    system.kernel.run(until=5.0)
    assert [a.target for a in rm.actions] == [
        ("Greeter",), ("Account", "Ledger"),
    ]
    assert not overlapping(rm.actions[0], rm.actions[1])
    assert limiter.active == 0


def test_ladders_are_per_group_and_coarse_waits_for_inflight():
    system = build_toy_system()
    rm = make_rm(system)
    burst(rm, system, "/toy/greet")
    system.kernel.run(until=1.0)
    assert [a.target for a in rm.actions] == [("Greeter",)]
    assert sorted(rm._ladders) == ["Greeter"]

    # Greeter keeps failing (its ladder is spent: the target was tried)
    # while the Account group's first recovery is still in flight — the
    # node-wide escalation must wait for the node to be quiet.
    burst(rm, system, "/toy/balance")
    burst(rm, system, "/toy/greet")
    system.kernel.run(until=1.1)
    # The Account µRB is mid-flight; Greeter's coarse demand is waiting.
    assert sorted(rm._ladders) == ["Account", "Greeter"]
    assert len(rm._inflight) == 1
    assert not any(a.level == "war" for a in rm.actions)

    system.kernel.run(until=2.0)
    assert [a.level for a in rm.actions] == ["ejb", "ejb"]
    report(rm, system, "/toy/greet")
    system.kernel.run(until=5.0)
    war = rm.actions[-1]
    assert war.level == "war"
    assert war.decided_at >= rm.actions[1].finished_at


def test_parallel_scheduler_requires_recursive_policy():
    system = build_toy_system()
    with pytest.raises(ValueError, match="recursive"):
        RecoveryManager(
            system.kernel,
            system.coordinator,
            URL_PATH_MAP,
            scheduler="parallel",
            policy="process-restart",
        )


def test_staleness_is_per_component_not_global():
    system = build_toy_system()
    rm = make_rm(system)
    burst(rm, system, "/toy/greet")
    system.kernel.run(until=1.0)
    finished = rm.actions[0].finished_at
    assert rm.actions[0].target == ("Greeter",)

    # A report stamped before the Greeter µRB finished is stale for
    # Greeter's path — but the same stamp is perfectly fresh evidence
    # for the never-recovered Account group.
    stale_stamp = finished / 2
    report(rm, system, "/toy/greet", at=stale_stamp)
    report(rm, system, "/toy/balance", at=stale_stamp)
    system.kernel.run(until=2.0)
    assert rm.metrics.counter("rm.reports.stale").value == 1
    assert rm.scores.get("Account") == 1
    assert "Greeter" not in rm.scores


def test_war_demand_needs_twice_the_evidence_when_unlocalized():
    system = build_toy_system()
    rm = make_rm(system)
    # Interleaved failures across every URL push ToyWAR over the normal
    # threshold while each bean is still below it: the parallel
    # scheduler must wait for a localized culprit instead of coarsening.
    for url in ("/toy/greet", "/toy/balance", "/toy/transfer"):
        report(rm, system, url)
    system.kernel.run(until=1.0)
    assert rm.scores["ToyWAR"] == 3
    assert rm.actions == []

    # Twice the threshold of unlocalized evidence is a coarse demand.
    for url in ("/toy/greet", "/toy/balance", "/toy/transfer"):
        report(rm, system, url)
    system.kernel.run(until=2.0)
    assert [a.level for a in rm.actions] == ["ejb"]
    # (Account crossed threshold on the way — the specific candidate
    # still wins over the node-wide rung.)
    assert rm.actions[0].target == ("Account", "Ledger")
