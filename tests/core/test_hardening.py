"""Tests for the hardened recovery pipeline: backoff, flap quarantine,
storm limiting (the knobs in :mod:`repro.core.hardening`)."""

import pytest

from repro.core import FailureKind, FailureReport, RecoveryManager
from repro.core.hardening import HardeningPolicy, RecoveryStormLimiter
from repro.sim import Kernel
from tests.toyapp import URL_PATH_MAP, build_toy_system


def make_rm(system, hardening, **kwargs):
    defaults = dict(score_threshold=3, escalation_window=45.0)
    defaults.update(kwargs)
    rm = RecoveryManager(
        system.kernel, system.coordinator, URL_PATH_MAP,
        hardening=hardening, **defaults,
    )
    rm.start()
    return rm


def report(rm, system, url):
    rm.report(
        FailureReport(
            time=system.kernel.now,
            url=url,
            operation=url.rsplit("/", 1)[-1],
            kind=FailureKind.HTTP_ERROR,
        )
    )


def flap_policy(**overrides):
    knobs = dict(
        enabled=True, backoff_base=60.0, backoff_factor=2.0,
        backoff_max=300.0, flap_threshold=3, flap_window=500.0,
        flap_debounce=0.0, quarantine_ttl=50.0,
    )
    knobs.update(overrides)
    return HardeningPolicy(**knobs)


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------
class TestHardeningPolicy:
    def test_constructors(self):
        assert not HardeningPolicy.disabled().enabled
        assert HardeningPolicy.hardened().enabled

    @pytest.mark.parametrize(
        "knobs",
        [
            {"backoff_base": -1.0},
            {"backoff_factor": 0.5},
            {"flap_threshold": 0},
            {"flap_debounce": -0.1},
            {"quarantine_ttl": -5.0},
            {"storm_limit": 0},
            {"storm_window_limit": 0},
            {"shed_latency": -0.4},
            {"latency_samples": 0},
        ],
    )
    def test_bad_knobs_fail_at_construction(self, knobs):
        with pytest.raises(ValueError):
            HardeningPolicy(**knobs)


# ----------------------------------------------------------------------
# Storm limiter
# ----------------------------------------------------------------------
class TestRecoveryStormLimiter:
    def test_concurrent_cap_and_release(self):
        limiter = RecoveryStormLimiter(Kernel(), limit=1)
        assert limiter.admit("rm0")
        assert not limiter.admit("rm1")
        assert limiter.denied == 1
        limiter.release()
        assert limiter.admit("rm1")

    def test_window_cap_resets_as_time_passes(self):
        kernel = Kernel()
        limiter = RecoveryStormLimiter(
            kernel, limit=2, window=60.0, window_limit=2
        )
        assert limiter.admit()
        limiter.release()
        assert limiter.admit()
        limiter.release()
        # Two starts inside the window: the rapid-fire cap kicks in even
        # though nothing is running concurrently.
        assert not limiter.admit()

        def advance():
            yield kernel.timeout(61.0)

        kernel.process(advance())
        kernel.run()
        assert limiter.admit()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"limit": 0},
            {"window": -1.0},
            {"limit": 4, "window_limit": 2},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryStormLimiter(Kernel(), **kwargs)


# ----------------------------------------------------------------------
# Backoff + flap quarantine in the recovery manager
# ----------------------------------------------------------------------
def drive_waves(system, rm, waves, gap=20.0, url="/toy/greet"):
    """``waves`` rounds of 3 reports each, ``gap`` seconds apart."""

    def driver():
        for _ in range(waves):
            for _ in range(3):
                report(rm, system, url)
            yield system.kernel.timeout(gap)

    system.kernel.process(driver())
    system.kernel.run(until=waves * gap + 50.0)


def test_backoff_defers_rerecovery_of_fresh_target():
    system = build_toy_system()
    rm = make_rm(system, flap_policy())
    drive_waves(system, rm, waves=2)
    # One µRB; the second wave's demand hits the target's backoff and is
    # deferred instead of recycling the component again.
    assert [a.level for a in rm.actions] == ["ejb"]
    assert rm.metrics.counter("rm.backoff.deferred").value >= 1


def test_disabled_policy_recovers_every_wave():
    system = build_toy_system()
    rm = make_rm(system, HardeningPolicy.disabled())
    drive_waves(system, rm, waves=2)
    assert len(rm.actions) >= 2


def test_repeated_flapping_quarantines_the_target():
    system = build_toy_system()
    rm = make_rm(system, flap_policy(quarantine_ttl=1000.0))
    drive_waves(system, rm, waves=4)
    assert "Greeter" in rm.active_quarantines()
    assert system.server.naming.is_sentinel("Greeter")
    assert rm.metrics.counter("rm.quarantine.count").value == 1
    # Still only the one original µRB: the loop was broken, not fed.
    assert len(rm.actions) == 1


def test_quarantine_suppresses_explained_reports():
    system = build_toy_system()
    rm = make_rm(system, flap_policy())
    drive_waves(system, rm, waves=6)
    # Reports whose path contains the quarantined flapper are dropped
    # before scoring — they are already explained.
    assert rm.metrics.counter("rm.reports.quarantined").value > 0
    assert len(rm.actions) == 1


def test_quarantine_listeners_observe_begin_and_lift():
    system = build_toy_system()
    rm = make_rm(system, flap_policy(quarantine_ttl=30.0))
    seen = []
    rm.quarantine_listeners.append(
        lambda name, active: seen.append((name, set(active)))
    )
    drive_waves(system, rm, waves=4)
    system.kernel.run(until=system.kernel.now + 100.0)
    assert ("Greeter", {"Greeter"}) in seen  # begin
    assert ("Greeter", set()) in seen  # lift at ttl expiry
    assert not rm.active_quarantines()
    assert not system.server.naming.is_sentinel("Greeter")


def test_flap_debounce_coalesces_report_bursts():
    system = build_toy_system()
    # Debounce longer than the wave gap: the repeated deferrals collapse
    # into (at most) one counted strike, so no quarantine forms.
    rm = make_rm(system, flap_policy(flap_debounce=400.0))
    drive_waves(system, rm, waves=4)
    assert not rm.active_quarantines()
    assert rm.metrics.counter("rm.quarantine.count").value == 0


def test_storm_limiter_defers_rm_actions():
    system = build_toy_system()
    limiter = RecoveryStormLimiter(
        system.kernel, limit=1, window=10_000.0, window_limit=1
    )
    rm = make_rm(system, flap_policy(), storm_limiter=limiter)
    # Burn the in-window budget so the RM's first action is denied.
    assert limiter.admit("other-node")
    limiter.release()
    drive_waves(system, rm, waves=1)
    assert rm.actions == []
    assert limiter.denied >= 1
