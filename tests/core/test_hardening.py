"""Tests for the hardened recovery pipeline: backoff, flap quarantine,
storm limiting (the knobs in :mod:`repro.core.hardening`)."""

import pytest

from repro.core import FailureKind, FailureReport, RecoveryManager
from repro.core.hardening import HardeningPolicy, RecoveryStormLimiter
from repro.sim import Kernel
from tests.toyapp import URL_PATH_MAP, build_toy_system


def make_rm(system, hardening, **kwargs):
    defaults = dict(score_threshold=3, escalation_window=45.0)
    defaults.update(kwargs)
    rm = RecoveryManager(
        system.kernel, system.coordinator, URL_PATH_MAP,
        hardening=hardening, **defaults,
    )
    rm.start()
    return rm


def report(rm, system, url):
    rm.report(
        FailureReport(
            time=system.kernel.now,
            url=url,
            operation=url.rsplit("/", 1)[-1],
            kind=FailureKind.HTTP_ERROR,
        )
    )


def flap_policy(**overrides):
    knobs = dict(
        enabled=True, backoff_base=60.0, backoff_factor=2.0,
        backoff_max=300.0, flap_threshold=3, flap_window=500.0,
        flap_debounce=0.0, quarantine_ttl=50.0,
    )
    knobs.update(overrides)
    return HardeningPolicy(**knobs)


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------
class TestHardeningPolicy:
    def test_constructors(self):
        assert not HardeningPolicy.disabled().enabled
        assert HardeningPolicy.hardened().enabled
        assert HardeningPolicy.parallel().enabled
        assert HardeningPolicy.parallel().parallel_recovery
        assert not HardeningPolicy.hardened().parallel_recovery

    @pytest.mark.parametrize(
        "knobs",
        [
            {"backoff_base": -1.0},
            {"backoff_factor": 0.5},
            {"flap_threshold": 0},
            {"flap_debounce": -0.1},
            {"quarantine_ttl": -5.0},
            {"storm_limit": 0},
            {"storm_window_limit": 0},
            {"shed_latency": -0.4},
            {"latency_samples": 0},
        ],
    )
    def test_bad_knobs_fail_at_construction(self, knobs):
        with pytest.raises(ValueError):
            HardeningPolicy(**knobs)


# ----------------------------------------------------------------------
# Storm limiter
# ----------------------------------------------------------------------
class TestRecoveryStormLimiter:
    def test_concurrent_cap_and_release(self):
        limiter = RecoveryStormLimiter(Kernel(), limit=1)
        assert limiter.admit("rm0")
        assert not limiter.admit("rm1")
        assert limiter.denied == 1
        limiter.release()
        assert limiter.admit("rm1")

    def test_window_cap_resets_as_time_passes(self):
        kernel = Kernel()
        limiter = RecoveryStormLimiter(
            kernel, limit=2, window=60.0, window_limit=2
        )
        assert limiter.admit()
        limiter.release()
        assert limiter.admit()
        limiter.release()
        # Two starts inside the window: the rapid-fire cap kicks in even
        # though nothing is running concurrently.
        assert not limiter.admit()

        def advance():
            yield kernel.timeout(61.0)

        kernel.process(advance())
        kernel.run()
        assert limiter.admit()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"limit": 0},
            {"window": -1.0},
            {"limit": 4, "window_limit": 2},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryStormLimiter(Kernel(), **kwargs)


# ----------------------------------------------------------------------
# Backoff + flap quarantine in the recovery manager
# ----------------------------------------------------------------------
def drive_waves(system, rm, waves, gap=20.0, url="/toy/greet"):
    """``waves`` rounds of 3 reports each, ``gap`` seconds apart."""

    def driver():
        for _ in range(waves):
            for _ in range(3):
                report(rm, system, url)
            yield system.kernel.timeout(gap)

    system.kernel.process(driver())
    system.kernel.run(until=waves * gap + 50.0)


def test_backoff_defers_rerecovery_of_fresh_target():
    system = build_toy_system()
    rm = make_rm(system, flap_policy())
    drive_waves(system, rm, waves=2)
    # One µRB; the second wave's demand hits the target's backoff and is
    # deferred instead of recycling the component again.
    assert [a.level for a in rm.actions] == ["ejb"]
    assert rm.metrics.counter("rm.backoff.deferred").value >= 1


def test_disabled_policy_recovers_every_wave():
    system = build_toy_system()
    rm = make_rm(system, HardeningPolicy.disabled())
    drive_waves(system, rm, waves=2)
    assert len(rm.actions) >= 2


def test_repeated_flapping_quarantines_the_target():
    system = build_toy_system()
    rm = make_rm(system, flap_policy(quarantine_ttl=1000.0))
    drive_waves(system, rm, waves=4)
    assert "Greeter" in rm.active_quarantines()
    assert system.server.naming.is_sentinel("Greeter")
    assert rm.metrics.counter("rm.quarantine.count").value == 1
    # Still only the one original µRB: the loop was broken, not fed.
    assert len(rm.actions) == 1


def test_quarantine_suppresses_explained_reports():
    system = build_toy_system()
    rm = make_rm(system, flap_policy())
    drive_waves(system, rm, waves=6)
    # Reports whose path contains the quarantined flapper are dropped
    # before scoring — they are already explained.
    assert rm.metrics.counter("rm.reports.quarantined").value > 0
    assert len(rm.actions) == 1


def test_quarantine_listeners_observe_begin_and_lift():
    system = build_toy_system()
    rm = make_rm(system, flap_policy(quarantine_ttl=30.0))
    seen = []
    rm.quarantine_listeners.append(
        lambda name, active: seen.append((name, set(active)))
    )
    drive_waves(system, rm, waves=4)
    system.kernel.run(until=system.kernel.now + 100.0)
    assert ("Greeter", {"Greeter"}) in seen  # begin
    assert ("Greeter", set()) in seen  # lift at ttl expiry
    assert not rm.active_quarantines()
    assert not system.server.naming.is_sentinel("Greeter")


def test_flap_debounce_coalesces_report_bursts():
    system = build_toy_system()
    # Debounce longer than the wave gap: the repeated deferrals collapse
    # into (at most) one counted strike, so no quarantine forms.
    rm = make_rm(system, flap_policy(flap_debounce=400.0))
    drive_waves(system, rm, waves=4)
    assert not rm.active_quarantines()
    assert rm.metrics.counter("rm.quarantine.count").value == 0


def test_storm_limiter_defers_rm_actions():
    system = build_toy_system()
    limiter = RecoveryStormLimiter(
        system.kernel, limit=1, window=10_000.0, window_limit=1
    )
    rm = make_rm(system, flap_policy(), storm_limiter=limiter)
    # Burn the in-window budget so the RM's first action is denied.
    assert limiter.admit("other-node")
    limiter.release()
    drive_waves(system, rm, waves=1)
    assert rm.actions == []
    assert limiter.denied >= 1


def test_errored_action_releases_storm_slot_and_advances_backoff():
    """An action that raises must not leak its storm-limiter slot.

    A ghost URL-map entry names a component the coordinator has never
    deployed, so group expansion raises mid-action.  The slot must be
    released (``active`` back to 0), the errored action recorded, and the
    ghost target's backoff advanced exactly like a completed recovery —
    otherwise a storm of failing actions wedges the limiter while the
    RM replays the same doomed decision forever.
    """
    system = build_toy_system()
    limiter = RecoveryStormLimiter(system.kernel, limit=1)
    rm = RecoveryManager(
        system.kernel,
        system.coordinator,
        {**URL_PATH_MAP, "/toy/ghost": ("ToyWAR", "Ghost")},
        hardening=flap_policy(),
        storm_limiter=limiter,
        score_threshold=3,
        escalation_window=45.0,
    )
    rm.start()
    for _ in range(3):
        report(rm, system, "/toy/ghost")
    system.kernel.run(until=1.0)

    assert len(rm.actions) == 1
    ghost = rm.actions[0]
    assert not ghost.ok
    assert "Ghost" in ghost.error
    assert ghost.finished_at is not None
    # Satellite contract: slot released, per-target backoff advanced.
    assert limiter.active == 0
    assert rm._backoff_until.get("Ghost", 0.0) > system.kernel.now
    assert rm.metrics.counter("rm.actions.errors").value == 1

    # The freed slot keeps the RM functional: once the escalation window
    # lapses, a fresh incident dispatches a real µRB through the limiter.
    system.kernel.run(until=60.0)
    for _ in range(3):
        report(rm, system, "/toy/greet")
    system.kernel.run(until=70.0)
    assert any(a.ok and a.target == ("Greeter",) for a in rm.actions)
    assert limiter.active == 0


def test_quarantine_boundary_is_half_open():
    """``t == until`` is post-quarantine: half-open ``[begin, until)``.

    A report stamped at exactly the lift instant was observed after the
    sentinel unbound, so it is fresh evidence and must be scored — only
    strictly-earlier reports are explained by the quarantine.
    """
    system = build_toy_system()
    rm = make_rm(system, flap_policy())
    rm.quarantined["Greeter"] = 100.0

    def at(time):
        return FailureReport(
            time=time, url="/toy/greet", operation="greet",
            kind=FailureKind.HTTP_ERROR,
        )

    assert rm._explained_by_quarantine(at(99.9))
    assert not rm._explained_by_quarantine(at(100.0))
    assert not rm._explained_by_quarantine(at(100.1))
    # A different path never intersects the quarantine at any stamp.
    balance = FailureReport(
        time=99.9, url="/toy/balance", operation="balance",
        kind=FailureKind.HTTP_ERROR,
    )
    assert not rm._explained_by_quarantine(balance)


def test_deferred_demand_rediagnoses_from_current_evidence():
    """A deferred recovery re-enters against *current* diagnosis.

    The greet wave's demand is backoff-deferred (Greeter was just
    recovered); by the time the RM acts again the hot evidence points at
    the Account group.  The retry must target what the scores say *now*,
    not the candidate captured when the deferral was issued.
    """
    system = build_toy_system()
    rm = make_rm(system, flap_policy())
    deferred = []
    rm.defer_listeners.append(
        lambda reason, level, targets, ttl: deferred.append(
            (reason, targets)
        )
    )

    for _ in range(3):
        report(rm, system, "/toy/greet")
    system.kernel.run(until=10.0)
    assert [a.target for a in rm.actions] == [("Greeter",)]

    # Greeter fails again while inside its backoff: deferred, not acted.
    for _ in range(3):
        report(rm, system, "/toy/greet")
    system.kernel.run(until=20.0)
    assert len(rm.actions) == 1
    assert any(
        reason == "backoff" and "Greeter" in targets
        for reason, targets in deferred
    )

    # The Account group heats up before the deferral clears — still
    # inside the same incident (escalation window), after the greet
    # evidence has aged out of the score window.  The next action is the
    # Account-group µRB, not a replay of the stale Greeter candidate (or
    # a coarse escalation on Greeter's behalf).
    system.kernel.run(until=36.0)
    for _ in range(3):
        report(rm, system, "/toy/balance")
    system.kernel.run(until=40.0)
    assert len(rm.actions) == 2
    assert rm.actions[1].level == "ejb"
    assert rm.actions[1].target == ("Account", "Ledger")
    assert rm.actions[1].ok
