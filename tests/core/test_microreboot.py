"""Unit/integration tests for the microreboot coordinator."""

import pytest

from repro.appserver.container import ContainerState
from repro.appserver.errors import AppServerError
from repro.appserver.http import HttpRequest, HttpStatus
from repro.core import MicrorebootCoordinator, RetryPolicy
from tests.toyapp import build_toy_system, issue


def run(system, generator):
    return system.kernel.run_until_triggered(system.kernel.process(generator))


def test_expand_targets_applies_recovery_group():
    system = build_toy_system()
    assert system.coordinator.expand_targets(["Account"]) == ["Account", "Ledger"]
    assert system.coordinator.expand_targets(["Greeter"]) == ["Greeter"]


def test_expand_targets_unknown_component_rejected():
    system = build_toy_system()
    with pytest.raises(AppServerError):
        system.coordinator.expand_targets(["Ghost"])


def test_microreboot_duration_is_crash_plus_reinit():
    system = build_toy_system()
    start = system.kernel.now
    event = run(system, system.coordinator.microreboot(["Greeter"]))
    expected = (
        0.004 + 0.090 + system.server.timing.gc_pause_after_urb
    )
    assert system.kernel.now - start == pytest.approx(expected, abs=1e-9)
    assert event.level == "ejb"
    assert event.components == ("Greeter",)


def test_microreboot_group_duration_sums_members():
    system = build_toy_system()
    start = system.kernel.now
    run(system, system.coordinator.microreboot(["Ledger"]))
    expected = (0.005 + 0.100) + (0.005 + 0.120) + system.server.timing.gc_pause_after_urb
    assert system.kernel.now - start == pytest.approx(expected, abs=1e-9)


def test_microreboot_replaces_instances_and_keeps_classloader():
    system = build_toy_system()
    container = system.server.containers["Greeter"]
    old_instances = list(container.instances)
    old_loader = container.classloader
    run(system, system.coordinator.microreboot(["Greeter"]))
    assert all(i not in container.instances for i in old_instances)
    assert container.classloader is old_loader


def test_microreboot_restores_corrupted_metadata():
    system = build_toy_system()
    system.server.naming._corrupt("Greeter", None)
    system.server.containers["Transfer"].tx_method_map["transfer"] = None
    run(system, system.coordinator.microreboot(["Greeter", "Transfer"]))
    assert system.server.naming.lookup("Greeter") == "Greeter"
    assert system.server.containers["Transfer"].tx_method_map["transfer"] is not None


def test_microreboot_aborts_involved_transactions_only():
    system = build_toy_system()
    involved = system.server.transactions.begin("a")
    involved.touch("Greeter")
    bystander = system.server.transactions.begin("b")
    bystander.touch("Audit")
    run(system, system.coordinator.microreboot(["Greeter"]))
    assert not involved.is_active
    assert bystander.is_active


def test_microreboot_releases_attributed_memory():
    system = build_toy_system()
    system.server.heap.leak("Greeter", 4096)
    system.server.heap.leak("Audit", 100)
    event = run(system, system.coordinator.microreboot(["Greeter"]))
    assert event.memory_released == 4096
    assert event.memory_released_by == {"Greeter": 4096}
    assert system.server.heap.leaked_by("Audit") == 100


def test_calls_during_microreboot_fail_fast():
    system = build_toy_system()
    responses = []

    def client():
        yield system.kernel.timeout(0.01)  # while the µRB is in flight
        response = yield system.server.handle_request(
            HttpRequest(url="/toy/greet", operation="greet")
        )
        responses.append(response)

    system.kernel.process(client())
    system.kernel.process(system.coordinator.microreboot(["Greeter"]))
    system.kernel.run(until=5.0)
    assert responses[0].status == HttpStatus.INTERNAL_SERVER_ERROR
    assert "exception" in responses[0].body


def test_calls_during_microreboot_get_retry_after_when_enabled():
    system = build_toy_system(retry_policy=RetryPolicy.retry_only())
    system.server.retry_enabled = True
    responses = []

    def client():
        yield system.kernel.timeout(0.01)
        response = yield system.server.handle_request(
            HttpRequest(url="/toy/greet", operation="greet", idempotent=True)
        )
        responses.append(response)

    system.kernel.process(client())
    system.kernel.process(system.coordinator.microreboot(["Greeter"]))
    system.kernel.run(until=5.0)
    assert responses[0].status == HttpStatus.SERVICE_UNAVAILABLE
    assert responses[0].retry_after > 0


def test_non_idempotent_requests_never_get_503():
    system = build_toy_system(retry_policy=RetryPolicy.retry_only())
    system.server.retry_enabled = True
    responses = []

    def client():
        yield system.kernel.timeout(0.01)
        response = yield system.server.handle_request(
            HttpRequest(url="/toy/greet", operation="greet", idempotent=False)
        )
        responses.append(response)

    system.kernel.process(client())
    system.kernel.process(system.coordinator.microreboot(["Greeter"]))
    system.kernel.run(until=5.0)
    assert responses[0].status == HttpStatus.INTERNAL_SERVER_ERROR


def test_drain_delay_lets_inflight_requests_complete():
    system = build_toy_system(retry_policy=RetryPolicy.delay_and_retry())
    responses = []

    def client():
        response = yield system.server.handle_request(
            HttpRequest(url="/toy/greet", operation="greet")
        )
        responses.append(response)

    def delayed_urb():
        yield system.kernel.timeout(0.008)  # request is inside Greeter now
        yield from system.coordinator.microreboot(["Greeter"])

    system.kernel.process(client())  # enters Greeter at t≈0
    system.kernel.process(delayed_urb())
    system.kernel.run(until=5.0)
    assert responses[0].status == HttpStatus.OK  # finished during the drain


def test_without_drain_inflight_requests_are_killed():
    system = build_toy_system(retry_policy=RetryPolicy.retry_only())
    responses = []

    def client():
        response = yield system.server.handle_request(
            HttpRequest(url="/toy/greet", operation="greet")
        )
        responses.append(response)

    def delayed_urb():
        yield system.kernel.timeout(0.008)  # request is inside Greeter now
        yield from system.coordinator.microreboot(["Greeter"])

    system.kernel.process(client())
    system.kernel.process(delayed_urb())
    system.kernel.run(until=5.0)
    assert responses[0].network_error  # thread killed mid-flight


def test_microreboot_war_sweeps_corrupt_sessions():
    from repro.stores.sessions import SessionData

    system = build_toy_system()
    store = system.server.session_store
    good = SessionData("good", 1)
    good.attributes = {"user_id": 1}
    bad = SessionData("bad", 2)
    bad.attributes = {"user_id": 2}
    store.write("good", good)
    store.write("bad", bad)
    store._raw("bad").attributes = None
    event = run(system, system.coordinator.microreboot_war())
    assert event.level == "war"
    assert store.read("bad") is None
    assert store.read("good") is not None


def test_restart_application_duration_and_loaders():
    system = build_toy_system()
    old_loader = system.server.containers["Greeter"].classloader
    start = system.kernel.now
    event = run(system, system.coordinator.restart_application())
    timing = system.server.timing
    expected = (
        timing.app_restart_crash_time
        + timing.app_restart_reinit_time
        + timing.gc_pause_after_urb
    )
    assert system.kernel.now - start == pytest.approx(expected, rel=1e-6)
    assert event.level == "application"
    assert system.server.containers["Greeter"].classloader is not old_loader
    response = issue(system, "/toy/greet")
    assert response.status == HttpStatus.OK


def test_events_log_accumulates():
    system = build_toy_system()
    run(system, system.coordinator.microreboot(["Greeter"]))
    run(system, system.coordinator.restart_application())
    assert [e.level for e in system.coordinator.events] == ["ejb", "application"]
    assert system.coordinator.microreboot_count == 1
    assert system.coordinator.app_restart_count == 1


def test_estimated_recovery_time_covers_group_and_drain():
    system = build_toy_system(retry_policy=RetryPolicy.delay_and_retry())
    estimate = system.coordinator.estimated_recovery_time(["Account"])
    assert estimate == pytest.approx(0.2 + 0.005 + 0.100 + 0.005 + 0.120)
