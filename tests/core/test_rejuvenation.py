"""Tests for the microrejuvenation service (§6.4)."""

import pytest

from repro.core import RejuvenationService
from tests.toyapp import build_toy_system

MB = 1024 * 1024


def make_service(system, **kwargs):
    defaults = dict(
        m_alarm_fraction=0.35, m_sufficient_fraction=0.80, check_interval=1.0
    )
    defaults.update(kwargs)
    service = RejuvenationService(system.kernel, system.coordinator, **defaults)
    service.start()
    return service


def test_threshold_validation():
    system = build_toy_system()
    with pytest.raises(ValueError):
        RejuvenationService(
            system.kernel, system.coordinator,
            m_alarm_fraction=0.9, m_sufficient_fraction=0.5,
        )


def test_no_action_while_memory_is_plentiful():
    system = build_toy_system()
    service = make_service(system)
    system.kernel.run(until=10.0)
    assert service.rejuvenation_rounds == 0
    assert system.coordinator.microreboot_count == 0


def test_alarm_triggers_rolling_microreboots():
    system = build_toy_system()
    heap = system.server.heap
    service = make_service(system)
    # Leak enough to cross Malarm (available < 35% of capacity).
    heap.leak("Greeter", int(heap.capacity * 0.60))
    system.kernel.run(until=10.0)
    assert service.rejuvenation_rounds >= 1
    assert heap.available >= service.m_sufficient
    assert heap.leaked_by("Greeter") == 0


def test_learning_reorders_candidates_by_released_memory():
    system = build_toy_system()
    heap = system.server.heap
    service = make_service(system)
    heap.leak("Greeter", int(heap.capacity * 0.55))
    heap.leak("Audit", int(heap.capacity * 0.10))
    system.kernel.run(until=10.0)
    assert service.candidates[0] == "Greeter"
    assert service.candidates[1] == "Audit"


def test_second_round_tries_biggest_leaker_first():
    system = build_toy_system()
    heap = system.server.heap
    service = make_service(system)
    heap.leak("Greeter", int(heap.capacity * 0.60))
    system.kernel.run(until=10.0)
    first_round_urbs = service.microreboots_performed
    assert first_round_urbs >= 1
    # Leak again: this time one targeted µRB should suffice.
    heap.leak("Greeter", int(heap.capacity * 0.60))
    system.kernel.run(until=20.0)
    assert service.rejuvenation_rounds == 2
    assert service.microreboots_performed == first_round_urbs + 1


def test_jvm_restart_when_microreboots_cannot_reclaim():
    from repro.appserver.memory import OWNER_SERVER

    system = build_toy_system()
    heap = system.server.heap
    service = make_service(system)
    # The leak is *outside* the application: no component µRB frees it.
    heap.leak(OWNER_SERVER, int(heap.capacity * 0.60))
    system.kernel.run(until=60.0)
    assert service.jvm_restarts_performed >= 1
    assert heap.leaked_total == 0


def test_double_start_does_not_spawn_a_second_rejuvenator():
    system = build_toy_system()
    service = make_service(system, check_interval=2.0)  # make_service starts it
    first = service.start()  # second start: must be a no-op
    assert service.start() is first
    system.kernel.run(until=9.0)
    # One rejuvenator → one sample per check_interval.  A second process
    # would double the cadence (8 samples by t=9, not 4).
    assert service.samples_recorded == 4


def test_check_interval_must_be_positive():
    system = build_toy_system()
    with pytest.raises(ValueError, match="check_interval"):
        RejuvenationService(
            system.kernel, system.coordinator, check_interval=0
        )


def test_memory_samples_ring_is_bounded():
    from repro.core.rejuvenation import MEMORY_SAMPLE_RETENTION

    system = build_toy_system()
    service = make_service(system)
    for i in range(MEMORY_SAMPLE_RETENTION + 50):
        service._sample()
    assert len(service.memory_samples) == MEMORY_SAMPLE_RETENTION
    # The total count survives ring eviction.
    assert service.samples_recorded == MEMORY_SAMPLE_RETENTION + 50


def test_released_history_is_a_smoothed_average():
    system = build_toy_system()
    heap = system.server.heap
    service = make_service(system)
    leak = int(heap.capacity * 0.60)
    heap.leak("Greeter", leak)
    system.kernel.run(until=10.0)
    first = service.released_history["Greeter"]
    assert first > 0
    # A second round releasing the same amount moves the EWMA toward the
    # observation without snapping to it (alpha < 1 keeps history).
    heap.leak("Greeter", leak)
    system.kernel.run(until=20.0)
    second = service.released_history["Greeter"]
    assert second > first
    assert second < leak  # still smoothed, not a raw last-observation


def test_memory_timeline_is_recorded():
    system = build_toy_system()
    service = make_service(system, check_interval=2.0)
    system.kernel.run(until=9.0)
    times = [t for t, _ in service.memory_samples]
    assert times == [2.0, 4.0, 6.0, 8.0]


def test_group_members_not_rebooted_twice_in_a_round():
    system = build_toy_system()
    heap = system.server.heap
    service = make_service(system)
    heap.leak(
        "ToyWAR", int(heap.capacity * 0.60)
    )  # forces a full sweep in round one
    system.kernel.run(until=30.0)
    # Account and Ledger share a recovery group: the sweep must recycle
    # the group once, not once per member.
    group_events = [
        e for e in system.coordinator.events
        if set(e.components) == {"Account", "Ledger"}
    ]
    assert len(group_events) <= service.rejuvenation_rounds
