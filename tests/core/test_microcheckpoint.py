"""Tests for microcheckpointing (§8): resumable long-running operations."""

import pytest

from repro.core.microcheckpoint import MicrocheckpointStore
from repro.sim import Interrupt, Kernel
from tests.toyapp import build_toy_system


class TestStore:
    def test_save_load_roundtrip(self):
        store = MicrocheckpointStore(Kernel())
        store.save("op-1", {"cursor": 40, "partial": [1, 2]})
        assert store.load("op-1") == {"cursor": 40, "partial": [1, 2]}

    def test_load_missing_is_none(self):
        assert MicrocheckpointStore(Kernel()).load("ghost") is None

    def test_progress_is_copied(self):
        store = MicrocheckpointStore(Kernel())
        progress = {"items": [1]}
        store.save("op", progress)
        progress["items"].append(2)  # caller mutates afterwards
        loaded = store.load("op")
        assert loaded == {"items": [1]}
        loaded["items"].append(3)
        assert store.load("op") == {"items": [1]}

    def test_complete_discards(self):
        store = MicrocheckpointStore(Kernel())
        store.save("op", 1)
        store.complete("op")
        assert store.load("op") is None
        assert store.discards == 1

    def test_lease_expiry_collects_orphans(self):
        kernel = Kernel()
        store = MicrocheckpointStore(kernel, lease_ttl=10.0)
        store.save("abandoned", {"cursor": 5})
        kernel.run(until=11.0)
        assert store.load("abandoned") is None
        assert len(store) == 0

    def test_load_renews_lease(self):
        kernel = Kernel()
        store = MicrocheckpointStore(kernel, lease_ttl=10.0)
        store.save("op", 1)
        kernel.run(until=8.0)
        assert store.load("op") == 1
        kernel.run(until=15.0)  # would have expired without the renewal
        assert store.load("op") == 1

    def test_persistent_fault_guard(self):
        """A checkpoint resumed too many times is presumed poisonous."""
        store = MicrocheckpointStore(Kernel(), max_resumptions=2)
        store.save("op", {"cursor": 7})
        assert store.load("op") is not None  # resumption 1
        assert store.load("op") is not None  # resumption 2
        assert store.load("op") is None  # discarded: start from scratch
        assert store.load("op") is None

    def test_resave_preserves_resumption_count(self):
        store = MicrocheckpointStore(Kernel(), max_resumptions=2)
        store.save("op", 1)
        store.load("op")
        store.save("op", 2)  # progress advanced after the resume
        store.load("op")
        assert store.load("op") is None  # 2 resumptions consumed


class TestResumableOperationAcrossMicroreboot:
    """End-to-end: a long-running bean operation is killed by a µRB
    mid-way; the retried request resumes from the checkpoint instead of
    starting over — 'a fresh instance ... can pick up a request and
    continue processing it where the previous instance left off'."""

    TOTAL_STEPS = 40
    CHECKPOINT_EVERY = 10

    def _run_long_operation(self, system, store, op_key, log):
        """Generator: process TOTAL_STEPS work units, checkpointing."""
        kernel = system.kernel

        def operation():
            progress = store.load(op_key) or {"next_step": 0}
            start = progress["next_step"]
            log.append(("started-at", start))
            for step in range(start, self.TOTAL_STEPS):
                yield kernel.timeout(0.05)  # one unit of work
                if (step + 1) % self.CHECKPOINT_EVERY == 0:
                    store.save(op_key, {"next_step": step + 1})
            store.complete(op_key)
            return "done"

        return kernel.process(operation())

    def test_resume_after_kill(self):
        system = build_toy_system()
        store = MicrocheckpointStore(system.kernel)
        log = []

        first = self._run_long_operation(system, store, "bulk-op", log)

        def killer():
            yield system.kernel.timeout(1.2)  # ~24 steps in, 20 checkpointed
            first.interrupt(cause="microreboot")

        system.kernel.process(killer())
        system.kernel.run(until=5.0)
        assert first.triggered and isinstance(first.value, Interrupt)

        # The retry picks up from the last checkpoint, not from zero.
        second = self._run_long_operation(system, store, "bulk-op", log)
        system.kernel.run(until=10.0)
        assert second.value == "done"
        assert log == [("started-at", 0), ("started-at", 20)]
        assert store.load("bulk-op") is None  # completed and cleaned up

    def test_without_checkpointing_work_restarts_from_zero(self):
        """The ablation: same kill, no checkpoint — all progress lost."""
        system = build_toy_system()
        store = MicrocheckpointStore(system.kernel)
        log = []

        class NoCheckpoint:
            def load(self, key):
                return None

            def save(self, key, progress):
                pass

            def complete(self, key):
                pass

        first = self._run_long_operation(system, NoCheckpoint(), "op", log)

        def killer():
            yield system.kernel.timeout(1.2)
            first.interrupt(cause="microreboot")

        system.kernel.process(killer())
        system.kernel.run(until=5.0)
        second = self._run_long_operation(system, NoCheckpoint(), "op", log)
        system.kernel.run(until=10.0)
        assert second.value == "done"
        assert log == [("started-at", 0), ("started-at", 0)]
