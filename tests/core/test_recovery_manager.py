"""Tests for the recovery manager: diagnosis scores, recursive policy."""

import pytest

from repro.core import FailureKind, FailureReport, RecoveryManager
from repro.core.recovery_manager import LEVELS
from tests.toyapp import URL_PATH_MAP, build_toy_system


def make_rm(system, **kwargs):
    defaults = dict(score_threshold=3, escalation_window=45.0)
    defaults.update(kwargs)
    rm = RecoveryManager(
        system.kernel, system.coordinator, URL_PATH_MAP, **defaults
    )
    rm.start()
    return rm


def report(rm, system, url, kind=FailureKind.HTTP_ERROR, at=None):
    rm.report(
        FailureReport(
            time=system.kernel.now if at is None else at,
            url=url,
            operation=url.rsplit("/", 1)[-1],
            kind=kind,
        )
    )


def test_levels_ladder_matches_paper():
    assert LEVELS == ("ejb", "war", "application", "jvm", "os", "human")


def test_path_for_url_longest_prefix():
    system = build_toy_system()
    rm = make_rm(system)
    assert rm.path_for_url("/toy/greet?who=x") == ["ToyWAR", "Greeter"]
    assert rm.path_for_url("/unknown") == []


def test_scores_accumulate_along_paths():
    system = build_toy_system()
    rm = make_rm(system, score_threshold=100)
    report(rm, system, "/toy/greet")
    report(rm, system, "/toy/balance")
    system.kernel.run(until=1.0)
    assert rm.scores["ToyWAR"] == 2
    assert rm.scores["Greeter"] == 1
    assert rm.scores["Account"] == 1


def test_threshold_triggers_ejb_microreboot_of_top_scorer():
    system = build_toy_system()
    rm = make_rm(system, score_threshold=3)
    for _ in range(3):
        report(rm, system, "/toy/greet")
    system.kernel.run(until=5.0)
    assert len(rm.actions) == 1
    action = rm.actions[0]
    assert action.level == "ejb"
    # ToyWAR scores highest overall but EJBs are tried first (recursive
    # policy: cheapest/finest first); Greeter is the top EJB scorer.
    assert action.target == ("Greeter",)
    assert system.coordinator.microreboot_count == 1


def test_group_membership_expands_recovery_target():
    system = build_toy_system()
    rm = make_rm(system)
    for _ in range(3):
        report(rm, system, "/toy/balance")
    system.kernel.run(until=5.0)
    assert rm.actions[0].target == ("Account", "Ledger")


def test_below_threshold_no_action():
    system = build_toy_system()
    rm = make_rm(system, score_threshold=5)
    for _ in range(4):
        report(rm, system, "/toy/greet")
    system.kernel.run(until=5.0)
    assert rm.actions == []


def test_scores_reset_after_action():
    system = build_toy_system()
    rm = make_rm(system)
    for _ in range(3):
        report(rm, system, "/toy/greet")
    system.kernel.run(until=5.0)
    assert rm.scores == {}


def test_persistent_failures_escalate_through_levels():
    """The recursive policy: EJB µRBs, then WAR, then app, then JVM."""
    system = build_toy_system()
    rm = make_rm(system, escalation_window=1000.0)

    def driver():
        for _ in range(30):
            if rm.human_notified:
                break
            for _ in range(3):
                report(rm, system, "/toy/greet")
            yield system.kernel.timeout(30.0)

    system.kernel.process(driver())
    system.kernel.run(until=2000.0)
    levels = [a.level for a in rm.actions]
    # First attempt is an EJB µRB; escalation then walks the ladder.  A
    # second EJB target (ToyWAR is excluded at level 0, Greeter tried) is
    # unavailable for /toy/greet so the next step is the WAR.
    assert levels[0] == "ejb"
    assert "war" in levels
    assert "application" in levels
    assert "jvm" in levels
    assert levels.index("war") < levels.index("application") < levels.index("jvm")
    assert rm.human_notified


def test_quiet_period_resets_escalation():
    system = build_toy_system()
    rm = make_rm(system, escalation_window=10.0)

    def driver():
        for _ in range(3):
            report(rm, system, "/toy/greet")
        yield system.kernel.timeout(100.0)  # well past the window
        for _ in range(3):
            report(rm, system, "/toy/greet")

    system.kernel.process(driver())
    system.kernel.run(until=200.0)
    assert [a.level for a in rm.actions] == ["ejb", "ejb"]


def test_resource_exhaustion_uses_memory_diagnosis():
    system = build_toy_system()
    rm = make_rm(system)
    system.server.heap.leak("Audit", 50 * 1024 * 1024)
    system.server.heap.leak("Greeter", 1024)
    report(rm, system, "/toy/greet", kind=FailureKind.RESOURCE_EXHAUSTION)
    system.kernel.run(until=5.0)
    assert rm.actions[0].target == ("Audit",)
    assert system.server.heap.leaked_by("Audit") == 0


def test_stale_reports_after_recovery_are_dropped():
    system = build_toy_system()
    rm = make_rm(system)
    for _ in range(3):
        report(rm, system, "/toy/greet")
    system.kernel.run(until=5.0)
    assert len(rm.actions) == 1
    # Reports stamped before the recovery finished are ignored.
    report(rm, system, "/toy/greet", at=rm.actions[0].finished_at - 0.01)
    report(rm, system, "/toy/greet", at=rm.actions[0].finished_at - 0.01)
    report(rm, system, "/toy/greet", at=rm.actions[0].finished_at - 0.01)
    system.kernel.run(until=10.0)
    assert len(rm.actions) == 1


def test_recurring_failures_notify_human():
    system = build_toy_system()
    rm = make_rm(system, recurring_limit=3, recurring_window=10_000.0,
                 escalation_window=1.0)

    def driver():
        for _ in range(5):
            for _ in range(3):
                report(rm, system, "/toy/greet")
            yield system.kernel.timeout(60.0)

    system.kernel.process(driver())
    system.kernel.run(until=1000.0)
    assert rm.human_notified
    assert len(rm.actions) <= 4  # stopped acting once the human took over


def exploding_microreboot(names, level="ejb"):
    raise RuntimeError("crash during recovery")
    yield  # generator shape: the RM drives this with `yield from`


def test_failed_action_is_recorded_and_rm_survives():
    """An action that raises must not wedge the RM: the action is recorded
    (with its error), incident state resets, and later incidents are
    handled normally."""
    system = build_toy_system()
    rm = make_rm(system)
    original = system.coordinator.microreboot
    system.coordinator.microreboot = exploding_microreboot
    for _ in range(3):
        report(rm, system, "/toy/greet")
    system.kernel.run(until=5.0)

    assert len(rm.actions) == 1
    failed = rm.actions[0]
    assert failed.level == "ejb"
    assert not failed.ok
    assert "crash during recovery" in failed.error
    assert failed.finished_at is not None
    assert not rm.recovering
    assert rm.scores == {}

    # A fresh incident past the escalation window, with the coordinator
    # working again, recovers normally: the RM process is still alive.
    system.coordinator.microreboot = original

    def driver():
        yield system.kernel.timeout(100.0)
        for _ in range(3):
            report(rm, system, "/toy/greet")

    system.kernel.process(driver())
    system.kernel.run(until=200.0)
    assert [action.ok for action in rm.actions] == [False, True]
    assert rm.actions[1].level == "ejb"
    assert system.coordinator.microreboot_count == 1


def test_failed_ejb_action_escalates_within_incident():
    """After a failed EJB µRB the ladder coarsens instead of replaying the
    same stale escalation state forever."""
    system = build_toy_system()
    rm = make_rm(system)
    system.coordinator.microreboot = exploding_microreboot

    def driver():
        for _ in range(3):
            report(rm, system, "/toy/greet")
        yield system.kernel.timeout(10.0)  # within the escalation window
        for _ in range(3):
            report(rm, system, "/toy/greet")

    system.kernel.process(driver())
    system.kernel.run(until=40.0)
    assert [action.level for action in rm.actions] == ["ejb", "war"]
    assert all(not action.ok for action in rm.actions)


def test_listeners_observe_actions():
    system = build_toy_system()
    rm = make_rm(system)
    seen = []
    rm.listeners.append(lambda action: seen.append(action.level))
    for _ in range(3):
        report(rm, system, "/toy/greet")
    system.kernel.run(until=5.0)
    assert seen == ["ejb"]
