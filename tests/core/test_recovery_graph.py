"""RecoveryGraph: static edges, live refinement, deterministic grouping."""

import pytest

from repro.core import RecoveryGraph
from repro.diagnosis import PathAnalyzer
from repro.ebid.descriptors import ebid_descriptors
from tests.toyapp import toy_descriptors


@pytest.fixture
def toy_graph():
    return RecoveryGraph(toy_descriptors())


@pytest.fixture
def ebid_graph():
    return RecoveryGraph(ebid_descriptors())


class TestStaticEdges:
    def test_reference_edges_relate_caller_and_callee(self, toy_graph):
        # Transfer references Account and Ledger.
        assert toy_graph.related("Transfer", "Account")
        assert toy_graph.related("Transfer", "Ledger")

    def test_group_references_couple_both_directions(self, toy_graph):
        # Account group-references Ledger; either recycling invalidates
        # the shared metadata, so both orders conflict.
        assert toy_graph.related("Account", "Ledger")
        assert toy_graph.related("Ledger", "Account")

    def test_unrelated_components_are_independent(self, toy_graph):
        assert not toy_graph.related("Greeter", "Account")
        assert not toy_graph.related("Greeter", "Transfer")
        assert not toy_graph.related("Audit", "Account")

    def test_descendants_follow_transitive_closure(self, toy_graph):
        assert toy_graph.descendants("Transfer") == {"Account", "Ledger"}
        assert toy_graph.descendants("Greeter") == set()


class TestConflicts:
    def test_intersecting_sets_conflict(self, toy_graph):
        assert toy_graph.conflicts({"Greeter"}, {"Greeter", "Audit"})

    def test_cross_pair_dependency_conflicts(self, toy_graph):
        assert toy_graph.conflicts({"Transfer"}, {"Account", "Ledger"})

    def test_independent_sets_do_not_conflict(self, toy_graph):
        assert not toy_graph.conflicts({"Greeter"}, {"Account", "Ledger"})
        assert not toy_graph.conflicts({"Audit"}, {"Greeter"})

    def test_empty_sets_never_conflict(self, toy_graph):
        assert not toy_graph.conflicts(set(), {"Greeter"})
        assert not toy_graph.conflicts({"Greeter"}, set())

    def test_chaos_component_targets_are_pairwise_independent(
        self, ebid_graph
    ):
        # The chaos campaign's burst targets were chosen to be recoverable
        # concurrently; the graph must agree, else the parallel-recovery
        # arm never overlaps anything.
        from repro.faults.chaos import COMPONENT_TARGETS

        for i, a in enumerate(COMPONENT_TARGETS):
            for b in COMPONENT_TARGETS[i + 1:]:
                assert not ebid_graph.conflicts({a}, {b}), (a, b)

    def test_session_bean_conflicts_with_entity_group(self, ebid_graph):
        # BrowseCategories references the Category entity, which sits in
        # the big entity recovery group — so it conflicts with any target
        # set touching that group.
        assert ebid_graph.conflicts({"BrowseCategories"}, {"Category"})
        assert ebid_graph.conflicts({"BrowseCategories"}, {"Item", "Bid"})


class TestGrouping:
    def test_partition_toy(self, toy_graph):
        assert toy_graph.partition(
            ["Greeter", "Account", "Transfer", "Audit"]
        ) == [("Account", "Transfer"), ("Audit",), ("Greeter",)]

    def test_group_key_is_deterministic(self):
        assert RecoveryGraph.group_key({"Ledger", "Account"}) == "Account"
        assert RecoveryGraph.group_key(("Greeter",)) == "Greeter"

    def test_partition_is_deterministic(self, ebid_graph):
        names = list(ebid_graph.nodes)
        assert ebid_graph.partition(names) == ebid_graph.partition(
            reversed(names)
        )


class TestLiveEdges:
    def test_observed_call_edges_refine_the_graph(self):
        analyzer = PathAnalyzer(min_paths=1, min_failed=0)
        graph = RecoveryGraph(toy_descriptors(), analyzer=analyzer)
        # Statically independent...
        assert not graph.related("Greeter", "Audit")
        # ...until the span layer observes Greeter actually calling Audit.
        analyzer.record_path(
            1.0, ("ToyWAR", "Greeter", "Audit"), True,
            edges=(("Greeter", "Audit"),),
        )
        assert graph.related("Greeter", "Audit")
        assert graph.conflicts({"Greeter"}, {"Audit"})

    def test_live_edges_track_the_analyzer_window(self):
        analyzer = PathAnalyzer(min_paths=1, min_failed=0)
        graph = RecoveryGraph(toy_descriptors(), analyzer=analyzer)
        analyzer.record_path(
            1.0, ("ToyWAR", "Greeter", "Audit"), True,
            edges=(("Greeter", "Audit"),),
        )
        assert graph.related("Greeter", "Audit")
        analyzer.clear()
        assert not graph.related("Greeter", "Audit")
