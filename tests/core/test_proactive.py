"""Proactive rejuvenation policy: monitor, targeting, cooldown, shadow."""

from types import SimpleNamespace

import pytest

from repro.appserver.memory import OWNER_SERVER
from repro.core import FailureKind, RecoveryManager
from repro.core.proactive import DEFAULT_TRIGGER_RULES, ProactiveRejuvenationPolicy
from tests.toyapp import URL_PATH_MAP, build_toy_system

MB = 1024 * 1024


def make_rig(shadow=False, **kwargs):
    system = build_toy_system()
    rm = RecoveryManager(
        system.kernel, system.coordinator, URL_PATH_MAP, score_threshold=3
    )
    rm.start()
    policy = ProactiveRejuvenationPolicy(
        system.kernel, rm, shadow=shadow, **kwargs
    )
    return system, rm, policy


def heap_alert(system, rule="heap-exhaustion-predicted", component=None,
               server=None):
    """A fired-alert stand-in shaped like alerts.Alert."""
    return SimpleNamespace(
        rule=rule,
        server=server if server is not None else system.server.name,
        component=component,
        fired_at=system.kernel.now,
    )


# ----------------------------------------------------------------------
# Construction and the heap monitor
# ----------------------------------------------------------------------

def test_check_interval_and_cooldown_validation():
    system, rm, _policy = make_rig()
    with pytest.raises(ValueError, match="check_interval"):
        ProactiveRejuvenationPolicy(system.kernel, rm, check_interval=0)
    with pytest.raises(ValueError, match="cooldown"):
        ProactiveRejuvenationPolicy(system.kernel, rm, cooldown=-1.0)


def test_start_is_idempotent():
    system, _rm, policy = make_rig()
    first = policy.start()
    again = policy.start()
    assert again is first  # no second monitor process spawned


def test_monitor_publishes_heap_samples():
    system, _rm, policy = make_rig(check_interval=2.0)
    system.kernel.trace.enabled = True
    policy.start()
    system.kernel.run(until=7.0)
    samples = system.kernel.trace.events(kinds=("heap.sample",))
    assert [e.t for e in samples] == [2.0, 4.0, 6.0]
    assert samples[0].fields["server"] == system.server.name
    assert samples[0].fields["capacity"] == system.server.heap.capacity


# ----------------------------------------------------------------------
# Acting on alerts
# ----------------------------------------------------------------------

def test_heap_alert_preempts_the_biggest_leaker():
    system, rm, policy = make_rig()
    system.server.heap.leak("Greeter", 64 * MB)
    system.server.heap.leak(OWNER_SERVER, 512 * MB)  # not µRB-able: skipped
    action = policy.on_alert(heap_alert(system))
    assert action is not None
    assert action.target == ("Greeter",)
    assert action.trigger is FailureKind.PREDICTED
    system.kernel.run(until=5.0)
    assert action.ok
    assert system.server.heap.leaked_by("Greeter") == 0
    assert policy.stats() == {
        "alerts_seen": 1,
        "preempts_dispatched": 1,
        "preempts_declined": 0,
    }


def test_component_alert_names_its_target_directly():
    system, _rm, policy = make_rig(
        trigger_rules=DEFAULT_TRIGGER_RULES + ("component-health-low",)
    )
    alert = heap_alert(system, rule="component-health-low",
                       component="Greeter")
    action = policy.on_alert(alert)
    assert action is not None and "Greeter" in action.target


def test_non_trigger_rules_and_other_servers_are_ignored():
    system, _rm, policy = make_rig()
    system.server.heap.leak("Greeter", 64 * MB)
    assert policy.on_alert(
        heap_alert(system, rule="error-budget-burning")
    ) is None
    assert policy.on_alert(heap_alert(system, server="elsewhere")) is None
    # Neither counts as a decline: the alert simply wasn't for this policy.
    assert policy.preempts_declined == 0
    assert policy.alerts_seen == 2


def test_no_attributable_leaker_declines():
    system, _rm, policy = make_rig()
    system.server.heap.leak(OWNER_SERVER, 512 * MB)  # only the server leaks
    assert policy.on_alert(heap_alert(system)) is None
    assert policy.preempts_declined == 1


def test_cooldown_bounds_the_preempt_rate():
    system, _rm, policy = make_rig(cooldown=30.0)
    system.server.heap.leak("Greeter", 64 * MB)
    assert policy.on_alert(heap_alert(system)) is not None
    system.kernel.run(until=10.0)
    system.server.heap.leak("Greeter", 64 * MB)
    # Still inside the 30 s cooldown: declined.
    assert policy.on_alert(heap_alert(system)) is None
    assert policy.preempts_declined == 1
    system.kernel.run(until=31.0)
    assert policy.on_alert(heap_alert(system)) is not None
    assert policy.preempts_dispatched == 2


def test_preempts_leave_reactive_backoff_state_alone():
    system, _rm, policy = make_rig()
    rm = policy.rm
    system.server.heap.leak("Greeter", 64 * MB)
    assert policy.on_alert(heap_alert(system)) is not None
    system.kernel.run(until=5.0)
    # Planned maintenance is not flapping: no backoff entry, no strikes.
    assert not rm._in_backoff("Greeter", system.kernel.now)
    assert not rm.active_quarantines()


def test_shadow_policy_counts_alerts_but_never_acts():
    system, rm, policy = make_rig(shadow=True)
    system.server.heap.leak("Greeter", 64 * MB)
    assert policy.on_alert(heap_alert(system)) is None
    assert policy.alerts_seen == 1
    assert policy.preempts_dispatched == 0 and policy.preempts_declined == 0
    system.kernel.run(until=5.0)
    assert rm.actions == []
    assert system.server.heap.leaked_by("Greeter") == 64 * MB
