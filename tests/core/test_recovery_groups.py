"""Unit tests for recovery-group computation."""

import pytest

from repro.appserver.descriptors import ComponentKind, DeploymentDescriptor
from repro.appserver.component import StatelessSessionBean
from repro.core.recovery_groups import compute_recovery_groups


def descriptor(name, group_references=()):
    return DeploymentDescriptor(
        name=name,
        kind=ComponentKind.STATELESS_SESSION,
        factory=StatelessSessionBean,
        group_references=group_references,
    )


def test_singletons_without_references():
    groups = compute_recovery_groups([descriptor("A"), descriptor("B")])
    assert groups["A"] == frozenset({"A"})
    assert groups["B"] == frozenset({"B"})


def test_direct_reference_merges():
    groups = compute_recovery_groups(
        [descriptor("A", ("B",)), descriptor("B")]
    )
    assert groups["A"] == groups["B"] == frozenset({"A", "B"})


def test_references_are_symmetric():
    """B never names A, yet B joins A's group: the metadata coupling cuts
    both ways (§3.2)."""
    groups = compute_recovery_groups([descriptor("A", ("B",)), descriptor("B")])
    assert "A" in groups["B"]


def test_transitive_closure():
    groups = compute_recovery_groups(
        [
            descriptor("A", ("B",)),
            descriptor("B", ("C",)),
            descriptor("C"),
            descriptor("D"),
        ]
    )
    assert groups["A"] == frozenset({"A", "B", "C"})
    assert groups["D"] == frozenset({"D"})


def test_cycles_are_fine():
    groups = compute_recovery_groups(
        [descriptor("A", ("B",)), descriptor("B", ("A",))]
    )
    assert groups["A"] == frozenset({"A", "B"})


def test_unknown_reference_rejected():
    with pytest.raises(ValueError):
        compute_recovery_groups([descriptor("A", ("Ghost",))])


def test_two_disjoint_groups():
    groups = compute_recovery_groups(
        [
            descriptor("A", ("B",)),
            descriptor("B"),
            descriptor("X", ("Y",)),
            descriptor("Y"),
        ]
    )
    assert groups["A"] == frozenset({"A", "B"})
    assert groups["X"] == frozenset({"X", "Y"})
    assert groups["A"] != groups["X"]


def test_every_component_has_a_group():
    names = [f"C{i}" for i in range(10)]
    groups = compute_recovery_groups([descriptor(n) for n in names])
    assert set(groups) == set(names)
