"""Tests for low-level (FIG/FAUmachine-style) fault injection."""

import pytest

from repro.appserver.http import HttpStatus
from repro.appserver.memory import OWNER_SERVER
from repro.cluster.node import Node
from repro.ebid.app import build_ebid_system
from repro.ebid.schema import DatasetConfig
from repro.faults.lowlevel import LowLevelInjector
from tests.ebid.conftest import issue


@pytest.fixture
def rig():
    system = build_ebid_system(dataset=DatasetConfig.tiny(), seed=4)
    node = Node(system)
    injector = LowLevelInjector(system, system.rng.stream("lowlevel"))
    return system, node, injector


def restart_jvm(system, node):
    system.kernel.run_until_triggered(system.kernel.process(node.restart_jvm()))


class TestBitFlips:
    def test_memory_flip_breaks_db_access_until_jvm_restart(self, rig):
        system, node, injector = rig
        injector.flip_bits_in_process_memory()
        assert not system.server.connection_pool.healthy
        response = issue(system, "/ebid/ViewItem", {"item_id": 1})
        assert response.status == 500
        assert "connection pool" in response.body
        # A microreboot does not scrub server metadata (§7).
        system.kernel.run_until_triggered(
            system.kernel.process(system.coordinator.microreboot(["ViewItem"]))
        )
        assert not system.server.connection_pool.healthy
        restart_jvm(system, node)
        assert issue(system, "/ebid/ViewItem", {"item_id": 1}).status == HttpStatus.OK

    def test_register_flip_also_corrupts_in_flight_data(self, rig):
        from repro.ebid.audit import audit_database

        system, node, injector = rig
        pk = injector.flip_bits_in_registers()
        assert any(f"items:{pk}" in v for v in audit_database(system.database))
        restart_jvm(system, node)
        # The JVM restart resuscitates the service but not the data (≈).
        assert audit_database(system.database)


class TestBadSyscalls:
    def test_accept_fails_until_jvm_restart(self, rig):
        system, node, injector = rig
        injector.inject_bad_syscall_returns()
        assert issue(system, "/ebid/HomePage").network_error
        restart_jvm(system, node)
        assert issue(system, "/ebid/HomePage").status == HttpStatus.OK


class TestLeaks:
    def test_intra_jvm_leak_survives_microreboots(self, rig):
        system, _node, injector = rig
        injector.leak_intra_jvm(1024)
        system.kernel.run_until_triggered(
            system.kernel.process(system.coordinator.restart_application())
        )
        assert system.server.heap.leaked_by(OWNER_SERVER) == 1024
        system.server.kill()
        assert system.server.heap.leaked_total == 0

    def test_extra_jvm_leak_needs_os_reboot(self, rig):
        system, node, injector = rig
        injector.leak_extra_jvm(node, node.os_memory)
        assert issue(system, "/ebid/HomePage").network_error
        restart_jvm(system, node)  # not enough: the OS is still exhausted
        assert issue(system, "/ebid/HomePage").network_error
        system.kernel.run_until_triggered(system.kernel.process(node.reboot_os()))
        assert issue(system, "/ebid/HomePage").status == HttpStatus.OK
        assert node.os_leaked == 0
