"""Tests for the chaos engine: deterministic schedules, applied faults,
and the injector's timestamped ``fault.injected`` log."""

from repro.cluster import build_cluster
from repro.core import RetryPolicy
from repro.ebid.schema import DatasetConfig
from repro.faults.chaos import ChaosEngine, ChaosSpec
from repro.faults.injector import FaultInjector, InjectedFault


def make_cluster(seed=0):
    return build_cluster(
        2, dataset=DatasetConfig.tiny(), seed=seed, session_store="ssm",
        retry_policy=RetryPolicy.retry_only(),
    )


def schedule_key(engine):
    return [
        (round(e.time, 9), e.kind, e.node, e.target)
        for e in engine.schedule
    ]


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = ChaosEngine(make_cluster(seed=7), spec=ChaosSpec.smoke())
        b = ChaosEngine(make_cluster(seed=7), spec=ChaosSpec.smoke())
        assert schedule_key(a) == schedule_key(b)

    def test_different_seed_different_schedule(self):
        a = ChaosEngine(make_cluster(seed=7), spec=ChaosSpec.smoke())
        b = ChaosEngine(make_cluster(seed=8), spec=ChaosSpec.smoke())
        assert schedule_key(a) != schedule_key(b)

    def test_smoke_spec_covers_every_fault_class(self):
        engine = ChaosEngine(make_cluster(), spec=ChaosSpec.smoke())
        kinds = {e.kind for e in engine.schedule}
        assert {"link", "link-heal", "slowdown", "slowdown-heal",
                "ssm-crash", "ssm-restart"} <= kinds
        # Flap trains and bursts draw from the component fault kinds.
        assert kinds & {"transient-exception", "deadlock", "infinite-loop"}

    def test_schedule_is_sorted_and_inside_window(self):
        spec = ChaosSpec.smoke()
        engine = ChaosEngine(make_cluster(), spec=spec)
        times = [e.time for e in engine.schedule]
        assert times == sorted(times)
        assert all(t >= spec.start for t in times)


class TestEngineRun:
    def test_engine_applies_whole_schedule(self):
        cluster = make_cluster()
        spec = ChaosSpec.smoke()
        engine = ChaosEngine(cluster, spec=spec)
        engine.start()
        cluster.kernel.run(until=spec.start + spec.duration + 60.0)
        assert len(engine.applied) == len(engine.schedule)
        assert sum(engine.counts.values()) == len(engine.schedule)
        assert all(e.applied_at is not None for e in engine.applied)
        timeline = engine.timeline()
        assert len(timeline) == len(engine.schedule)
        assert all(
            entry["time"] >= spec.start for entry in timeline
        )

    def test_component_faults_land_in_injector_logs(self):
        cluster = make_cluster()
        spec = ChaosSpec.smoke()
        engine = ChaosEngine(cluster, spec=spec)
        expected = sum(
            1 for e in engine.schedule
            if e.kind in ("transient-exception", "deadlock", "infinite-loop")
        )
        engine.start()
        cluster.kernel.run(until=spec.start + spec.duration + 60.0)
        logged = [
            entry
            for injector in engine.injectors
            for entry in injector.injected
        ]
        assert len(logged) == expected


class TestInjectorLog:
    def test_injection_is_timestamped_and_published(self):
        cluster = make_cluster()
        kernel = cluster.kernel
        injector = FaultInjector(cluster.nodes[0].system)
        published = []
        kernel.trace.enabled = True
        kernel.trace.subscribe(
            lambda ev: published.append(ev.fields), kinds=("fault.injected",)
        )

        def driver():
            yield kernel.timeout(12.5)
            injector.inject_transient_exception("ViewItem")

        kernel.process(driver())
        kernel.run(until=20.0)

        assert injector.injected == [
            InjectedFault("transient-exception", "ViewItem", 12.5)
        ]
        assert published and published[0]["target"] == "ViewItem"


# ----------------------------------------------------------------------
# Multi-shard storms
# ----------------------------------------------------------------------
def make_sharded(seed=0, n_shards=8):
    from repro.cluster.cluster import build_sharded_cluster

    return build_sharded_cluster(
        n_shards, seed=seed, dataset=DatasetConfig.tiny(),
        retry_policy=RetryPolicy.retry_only(),
    )


class TestShardStorm:
    def test_same_seed_same_storm_schedule(self):
        from repro.faults.chaos import ShardStormEngine, StormSpec

        spec = StormSpec.smoke()
        a = ShardStormEngine(make_sharded(seed=11), spec=spec)
        b = ShardStormEngine(make_sharded(seed=11), spec=spec)
        c = ShardStormEngine(make_sharded(seed=12), spec=spec)
        assert a.storm_shards == b.storm_shards
        assert a.planned_schedule() == b.planned_schedule()
        assert a.planned_schedule() != c.planned_schedule()

    def test_storm_strikes_k_distinct_shards_with_cycled_kinds(self):
        from repro.faults.chaos import STORM_KINDS, ShardStormEngine, StormSpec

        spec = StormSpec.smoke()
        engine = ShardStormEngine(make_sharded(), spec=spec)
        assert len(set(engine.storm_shards)) == spec.k_shards == 4
        kinds = [engine.shard_kind(s) for s in engine.storm_shards]
        assert kinds == list(STORM_KINDS)  # one of each at K=4
        assert engine.shard_kind("not-struck") is None
        # Every event inside the storm window; heals exactly at horizon.
        horizon = spec.start + spec.duration
        for entry in engine.planned_schedule():
            if entry["kind"].endswith("-heal"):
                assert entry["time"] == horizon
            else:
                assert spec.start <= entry["time"] < horizon

    def test_rolling_wave_staggered_onsets(self):
        from repro.faults.chaos import ShardStormEngine, StormSpec

        spec = StormSpec(start=10.0, duration=40.0, k_shards=4,
                         wave_interval=5.0)
        engine = ShardStormEngine(make_sharded(), spec=spec)
        onsets = {}
        for entry in engine.planned_schedule():
            if not entry["kind"].endswith("-heal"):
                onsets.setdefault(entry["shard"], entry["time"])
        assert sorted(onsets.values()) == [10.0, 15.0, 20.0, 25.0]

    def test_storm_applies_and_heals_on_a_live_cluster(self):
        from repro.faults.chaos import ShardStormEngine, StormSpec

        cluster = make_sharded()
        spec = StormSpec(start=5.0, duration=30.0, k_shards=4)
        engine = ShardStormEngine(cluster, spec=spec)
        engine.start()
        cluster.kernel.run(until=60.0)
        assert len(engine.applied) == len(engine.schedule)
        assert {"deadlock", "link", "link-heal", "brick-crash",
                "brick-heal", "slowdown", "slowdown-heal"} <= set(
                    engine.counts)
        # Deadlock re-injected as a pulse train, not a one-shot.
        assert engine.counts["deadlock"] == len(
            [e for e in engine.schedule if e.kind == "deadlock"]
        ) >= 2
        # Everything healed: no link faults or hogs left behind.
        assert not cluster.load_balancer._link_faults
        for shard in engine.storm_shards:
            assert not cluster.shard_groups[shard].crashed
        assert engine.timeline()[-1]["time"] == spec.start + spec.duration

    def test_storm_rejects_k_beyond_cluster(self):
        import pytest

        from repro.faults.chaos import ShardStormEngine, StormSpec

        with pytest.raises(ValueError):
            ShardStormEngine(
                make_sharded(n_shards=2),
                spec=StormSpec(k_shards=4),
            )
