"""Tests for the chaos engine: deterministic schedules, applied faults,
and the injector's timestamped ``fault.injected`` log."""

from repro.cluster import build_cluster
from repro.core import RetryPolicy
from repro.ebid.schema import DatasetConfig
from repro.faults.chaos import ChaosEngine, ChaosSpec
from repro.faults.injector import FaultInjector, InjectedFault


def make_cluster(seed=0):
    return build_cluster(
        2, dataset=DatasetConfig.tiny(), seed=seed, session_store="ssm",
        retry_policy=RetryPolicy.retry_only(),
    )


def schedule_key(engine):
    return [
        (round(e.time, 9), e.kind, e.node, e.target)
        for e in engine.schedule
    ]


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = ChaosEngine(make_cluster(seed=7), spec=ChaosSpec.smoke())
        b = ChaosEngine(make_cluster(seed=7), spec=ChaosSpec.smoke())
        assert schedule_key(a) == schedule_key(b)

    def test_different_seed_different_schedule(self):
        a = ChaosEngine(make_cluster(seed=7), spec=ChaosSpec.smoke())
        b = ChaosEngine(make_cluster(seed=8), spec=ChaosSpec.smoke())
        assert schedule_key(a) != schedule_key(b)

    def test_smoke_spec_covers_every_fault_class(self):
        engine = ChaosEngine(make_cluster(), spec=ChaosSpec.smoke())
        kinds = {e.kind for e in engine.schedule}
        assert {"link", "link-heal", "slowdown", "slowdown-heal",
                "ssm-crash", "ssm-restart"} <= kinds
        # Flap trains and bursts draw from the component fault kinds.
        assert kinds & {"transient-exception", "deadlock", "infinite-loop"}

    def test_schedule_is_sorted_and_inside_window(self):
        spec = ChaosSpec.smoke()
        engine = ChaosEngine(make_cluster(), spec=spec)
        times = [e.time for e in engine.schedule]
        assert times == sorted(times)
        assert all(t >= spec.start for t in times)


class TestEngineRun:
    def test_engine_applies_whole_schedule(self):
        cluster = make_cluster()
        spec = ChaosSpec.smoke()
        engine = ChaosEngine(cluster, spec=spec)
        engine.start()
        cluster.kernel.run(until=spec.start + spec.duration + 60.0)
        assert len(engine.applied) == len(engine.schedule)
        assert sum(engine.counts.values()) == len(engine.schedule)
        assert all(e.applied_at is not None for e in engine.applied)
        timeline = engine.timeline()
        assert len(timeline) == len(engine.schedule)
        assert all(
            entry["time"] >= spec.start for entry in timeline
        )

    def test_component_faults_land_in_injector_logs(self):
        cluster = make_cluster()
        spec = ChaosSpec.smoke()
        engine = ChaosEngine(cluster, spec=spec)
        expected = sum(
            1 for e in engine.schedule
            if e.kind in ("transient-exception", "deadlock", "infinite-loop")
        )
        engine.start()
        cluster.kernel.run(until=spec.start + spec.duration + 60.0)
        logged = [
            entry
            for injector in engine.injectors
            for entry in injector.injected
        ]
        assert len(logged) == expected


class TestInjectorLog:
    def test_injection_is_timestamped_and_published(self):
        cluster = make_cluster()
        kernel = cluster.kernel
        injector = FaultInjector(cluster.nodes[0].system)
        published = []
        kernel.trace.enabled = True
        kernel.trace.subscribe(
            lambda ev: published.append(ev.fields), kinds=("fault.injected",)
        )

        def driver():
            yield kernel.timeout(12.5)
            injector.inject_transient_exception("ViewItem")

        kernel.process(driver())
        kernel.run(until=20.0)

        assert injector.injected == [
            InjectedFault("transient-exception", "ViewItem", 12.5)
        ]
        assert published and published[0]["target"] == "ViewItem"
