"""Tests for application-level fault injection: each fault manifests
organically, and the matching recovery genuinely cures it."""

import pytest

from repro.appserver.http import HttpStatus
from repro.ebid.app import build_ebid_system
from repro.ebid.schema import DatasetConfig
from repro.faults import FaultInjector
from repro.faults.corruption import CorruptionMode
from tests.ebid.conftest import issue, login


@pytest.fixture
def system():
    return build_ebid_system(dataset=DatasetConfig.tiny(), seed=9)


def urb(system, components):
    return system.kernel.run_until_triggered(
        system.kernel.process(system.coordinator.microreboot(components))
    )


class TestDeadlock:
    def test_calls_hang_until_lease_expiry(self, system):
        system.server.request_lease_ttl = 1.0
        FaultInjector(system).inject_deadlock("BrowseCategories")
        response = issue(system, "/ebid/BrowseCategories")
        assert response.network_error
        assert "request-lease-expired" in response.body

    def test_microreboot_kills_stuck_threads_and_cures(self, system):
        injector = FaultInjector(system)
        injector.inject_deadlock("BrowseCategories")
        responses = []

        def client():
            response = yield system.server.handle_request(
                __import__(
                    "repro.appserver.http", fromlist=["HttpRequest"]
                ).HttpRequest(url="/ebid/BrowseCategories", operation="BrowseCategories")
            )
            responses.append(response)

        system.kernel.process(client())
        system.kernel.run(until=2.0)  # the thread is now stuck
        assert not responses
        urb(system, ["BrowseCategories"])
        system.kernel.run(until=20.0)
        assert responses and responses[0].network_error  # killed by the µRB
        assert issue(system, "/ebid/BrowseCategories").status == HttpStatus.OK


class TestInfiniteLoop:
    def test_hog_slows_the_node_and_urb_reclaims(self, system):
        FaultInjector(system).inject_infinite_loop("ViewItem")
        issue_event = system.server.handle_request(
            __import__("repro.appserver.http", fromlist=["HttpRequest"]).HttpRequest(
                url="/ebid/ViewItem", operation="ViewItem", params={"item_id": 1}
            )
        )
        system.kernel.run(until=1.0)
        assert system.server.cpu.active_jobs >= 1  # the hog is spinning
        urb(system, ["ViewItem"])
        system.kernel.run(until=15.0)
        assert system.server.cpu._hogs == 0
        assert issue_event.triggered


class TestMemoryLeak:
    def test_leak_attributed_and_reclaimed(self, system):
        FaultInjector(system).inject_memory_leak("ViewItem", 1024)
        for item in (1, 2, 3):
            issue(system, "/ebid/ViewItem", {"item_id": item})
        assert system.server.heap.leaked_by("ViewItem") == 3 * 1024
        event = urb(system, ["ViewItem"])
        assert event.memory_released == 3 * 1024


class TestTransientException:
    def test_raises_until_microreboot(self, system):
        FaultInjector(system).inject_transient_exception("BrowseCategories")
        assert issue(system, "/ebid/BrowseCategories").status == 500
        assert issue(system, "/ebid/BrowseCategories").status == 500
        urb(system, ["BrowseCategories"])
        assert issue(system, "/ebid/BrowseCategories").status == HttpStatus.OK


class TestPrimaryKeyCorruption:
    def _commit_bid(self, system, cookie, item_id=3):
        prepare = issue(system, "/ebid/MakeBid", {"item_id": item_id}, cookie)
        return issue(
            system, "/ebid/CommitBid",
            {"amount": prepare.payload["current_bid"] + 5}, cookie,
        )

    def test_null_counters_break_commits(self, system):
        cookie = login(system)
        FaultInjector(system).corrupt_primary_keys(CorruptionMode.NULL)
        assert self._commit_bid(system, cookie).status == 500
        urb(system, ["IdentityManager"])
        assert self._commit_bid(system, cookie).payload["accepted"]

    def test_invalid_counters_rejected_by_schema(self, system):
        cookie = login(system)
        before = system.database.count("bids")
        FaultInjector(system).corrupt_primary_keys(CorruptionMode.INVALID)
        assert self._commit_bid(system, cookie).status == 500
        assert system.database.count("bids") == before  # nothing persisted

    def test_wrong_counters_duplicate_and_stray(self, system):
        from repro.ebid.audit import audit_database

        cookie = login(system)
        FaultInjector(system).corrupt_primary_keys(CorruptionMode.WRONG)
        assert self._commit_bid(system, cookie).status == 500  # duplicate key
        issue(system, "/ebid/LeaveUserFeedback", {"to_user_id": 2}, cookie)
        feedback = issue(
            system, "/ebid/CommitUserFeedback",
            {"rating": 1, "comment": "x"}, cookie,
        )
        assert feedback.status == HttpStatus.OK  # stray id committed!
        assert feedback.payload["feedback_id"] >= 50_000
        assert audit_database(system.database)  # durable damage (≈)
        urb(system, ["IdentityManager"])
        assert self._commit_bid(system, cookie).payload["accepted"]


class TestJndiCorruption:
    def test_null_entry(self, system):
        FaultInjector(system).corrupt_jndi("ViewItem", CorruptionMode.NULL)
        assert issue(system, "/ebid/ViewItem", {"item_id": 1}).status == 500
        urb(system, ["ViewItem"])
        assert issue(system, "/ebid/ViewItem", {"item_id": 1}).status == HttpStatus.OK

    def test_invalid_entry_dangles(self, system):
        FaultInjector(system).corrupt_jndi("ViewItem", CorruptionMode.INVALID)
        assert issue(system, "/ebid/ViewItem", {"item_id": 1}).status == 500

    def test_wrong_entry_misroutes(self, system):
        FaultInjector(system).corrupt_jndi("ViewItem", CorruptionMode.WRONG)
        response = issue(system, "/ebid/ViewItem", {"item_id": 1})
        assert response.status == 500
        assert "does not implement" in response.body


class TestSessionBeanAttributeCorruption:
    def test_null_attr_expunged_after_first_failure(self, system):
        cookie = login(system)
        FaultInjector(system).corrupt_session_bean_attribute(CorruptionMode.NULL)
        container = system.server.containers["CommitBid"]
        results = []
        for _ in range(container.descriptor.pool_size + 1):
            prepare = issue(system, "/ebid/MakeBid", {"item_id": 3}, cookie)
            commit = issue(
                system, "/ebid/CommitBid",
                {"amount": prepare.payload["current_bid"] + 3}, cookie,
            )
            results.append(int(commit.status))
        assert 500 in results  # exactly one instance was corrupted
        assert results.count(500) == 1  # ... and it got replaced

    def test_wrong_attr_commits_bad_amounts(self, system):
        from repro.ebid.audit import audit_database

        cookie = login(system)
        FaultInjector(system).corrupt_session_bean_attribute(CorruptionMode.WRONG)
        prepare = issue(system, "/ebid/MakeBid", {"item_id": 3}, cookie)
        commit = issue(
            system, "/ebid/CommitBid",
            {"amount": prepare.payload["current_bid"]}, cookie,  # lowball!
        )
        assert commit.payload["accepted"]  # a healthy instance refuses this
        assert any(
            "duplicate amount" in v for v in audit_database(system.database)
        )

    def test_wrong_attr_breaks_displayed_prices(self, system):
        FaultInjector(system).corrupt_session_bean_attribute(CorruptionMode.WRONG)
        response = issue(system, "/ebid/ViewItem", {"item_id": 1})
        truth = system.database.read("items", 1)["max_bid"]
        assert response.payload["price"] == truth * 100


class TestDatabaseCorruption:
    def test_corrupt_and_repair(self, system):
        from repro.ebid.audit import audit_database

        reference = {"items": system.database.snapshot("items")}
        pk = FaultInjector(system).corrupt_database("items", CorruptionMode.WRONG)
        assert audit_database(system.database)
        system.database.repair_table("items", reference["items"])
        assert audit_database(system.database) == []
        assert system.database.read("items", pk)["max_bid"] < 999999
