"""Unit tests for SSM: external, lease-based, checksummed session storage."""

from repro.sim import Kernel
from repro.stores.sessions import SessionData
from repro.stores.ssm import SSM


def make_session(session_id="c1", user_id=1):
    data = SessionData(session_id, user_id)
    data.attributes = {"user_id": user_id}
    return data


def make_store(lease_ttl=100.0):
    kernel = Kernel()
    return kernel, SSM(kernel, lease_ttl=lease_ttl)


def test_write_read_roundtrip():
    _, store = make_store()
    store.write("c1", make_session())
    assert store.read("c1").user_id == 1


def test_read_missing_is_none():
    _, store = make_store()
    assert store.read("ghost") is None


def test_survival_semantics_flags():
    assert SSM.survives_microreboot
    assert SSM.survives_jvm_restart


def test_jvm_exit_loses_nothing():
    _, store = make_store()
    store.write("c1", make_session())
    store.notify_jvm_exit(server=None)
    assert store.read("c1") is not None


def test_checksum_corruption_detected_and_discarded():
    """Table 2: 'corruption detected via checksum; bad object
    automatically discarded' — no reboot involved."""
    _, store = make_store()
    store.write("c1", make_session())
    store._raw("c1").attributes["user_id"] = 999  # bit flip
    assert store.read("c1") is None
    assert store.checksum_failures == 1
    assert store.read("c1") is None  # gone for good


def test_lease_expiry_garbage_collects():
    kernel, store = make_store(lease_ttl=10.0)
    store.write("c1", make_session())
    kernel.run(until=11.0)
    assert store.read("c1") is None
    assert len(store) == 0


def test_read_renews_lease():
    kernel, store = make_store(lease_ttl=10.0)
    store.write("c1", make_session())
    kernel.run(until=8.0)
    assert store.read("c1") is not None  # renews to t=18
    kernel.run(until=15.0)
    assert store.read("c1") is not None  # still live
    kernel.run(until=40.0)
    assert store.read("c1") is None


def test_orphaned_sessions_collected_on_any_read():
    kernel, store = make_store(lease_ttl=5.0)
    store.write("orphan", make_session("orphan"))
    store.write("fresh", make_session("fresh", 2))
    kernel.run(until=6.0)
    store.write("fresh", make_session("fresh", 2))  # re-grants fresh only
    store.read("fresh")
    assert "orphan" not in store.session_ids()


def test_delete_releases_lease():
    _, store = make_store()
    store.write("c1", make_session())
    store.delete("c1")
    assert store.read("c1") is None
    assert len(store.leases) == 0


def test_write_seals_a_copy():
    _, store = make_store()
    original = make_session()
    store.write("c1", original)
    original.attributes["user_id"] = 777  # caller mutates afterwards
    stored = store.read("c1")
    assert stored.attributes["user_id"] == 1
    assert stored.checksum is not None


def test_crash_drops_availability_not_state():
    _, store = make_store()
    store.write("c1", make_session())
    store.crash()
    # The brick quorum is unreachable: reads miss and writes drop...
    assert store.read("c1") is None
    store.write("c2", make_session("c2", user_id=2))
    assert store.missed_reads == 1
    assert store.dropped_writes == 1
    # ...but the replicated state itself survives the outage.
    store.restart()
    assert store.read("c1").user_id == 1
    assert store.read("c2") is None
