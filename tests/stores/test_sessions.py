"""Unit tests for session objects: checksums and validation."""

import pytest

from repro.stores.sessions import SessionCorruptionError, SessionData


def make_session():
    data = SessionData("cookie-1", 42)
    data.attributes = {"user_id": 42, "cart": [7, 9]}
    return data


def test_checksum_roundtrip():
    data = make_session().seal()
    assert data.checksum_ok()


def test_checksum_detects_attribute_flip():
    data = make_session().seal()
    data.attributes["cart"] = [7, 999]
    assert not data.checksum_ok()


def test_checksum_detects_identity_flip():
    data = make_session().seal()
    data.user_id = 43
    assert not data.checksum_ok()


def test_copy_is_deep_enough():
    data = make_session()
    clone = data.copy()
    clone.attributes["cart"] = []
    assert data.attributes["cart"] == [7, 9]


def test_copy_preserves_checksum():
    data = make_session().seal()
    assert data.copy().checksum == data.checksum


def test_validate_accepts_healthy_session():
    make_session().validate()


def test_validate_rejects_null_attributes():
    data = make_session()
    data.attributes = None
    with pytest.raises(SessionCorruptionError, match="null"):
        data.validate()


def test_validate_rejects_invalid_user_id():
    data = make_session()
    data.user_id = -5
    with pytest.raises(SessionCorruptionError, match="invalid"):
        data.validate()


def test_validate_rejects_boolean_user_id():
    """bool is an int subclass: `True` must not pass as user id 1."""
    data = make_session()
    data.user_id = True
    data.attributes["user_id"] = True
    with pytest.raises(SessionCorruptionError, match="invalid"):
        data.validate()


def test_validate_rejects_boolean_bound_user():
    data = make_session()
    data.attributes["user_id"] = True  # corrupted binding, id stays 42
    with pytest.raises(SessionCorruptionError, match="mismatch"):
        data.validate()


def test_validate_rejects_identity_mismatch():
    """The *wrong* corruption: valid-looking but swapped identity."""
    data = make_session()
    data.attributes["user_id"] = 77
    with pytest.raises(SessionCorruptionError, match="mismatch"):
        data.validate()


def test_validate_tolerates_missing_bound_user():
    data = SessionData("c", 5)
    data.attributes = {}
    data.validate()  # no embedded user id: nothing to cross-check
