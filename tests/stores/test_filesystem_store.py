"""Unit tests for the static content store."""

import pytest

from repro.stores.filesystem import StaticContentStore


def test_publish_and_read():
    store = StaticContentStore()
    store.publish("/static/home.html", "<html>welcome</html>")
    assert store.read("/static/home.html") == "<html>welcome</html>"


def test_read_missing_raises():
    with pytest.raises(FileNotFoundError):
        StaticContentStore().read("/nope.gif")


def test_seal_makes_read_only():
    store = StaticContentStore(read_only=True)
    store.publish("/a", "x")
    store.seal()
    with pytest.raises(PermissionError):
        store.publish("/b", "y")
    assert store.read("/a") == "x"


def test_seal_without_read_only_keeps_writable():
    store = StaticContentStore(read_only=False)
    store.seal()
    store.publish("/a", "x")
    assert store.exists("/a")


def test_paths_and_counters():
    store = StaticContentStore()
    store.publish("/a", "1")
    store.publish("/b", "2")
    store.read("/a")
    assert sorted(store.paths()) == ["/a", "/b"]
    assert store.reads == 1
