"""Unit tests for the lease table."""

import pytest

from repro.sim import Kernel
from repro.stores.leases import LeaseTable


def make_table(ttl=10.0):
    kernel = Kernel()
    return kernel, LeaseTable(kernel, default_ttl=ttl)


def test_ttl_must_be_positive():
    with pytest.raises(ValueError):
        LeaseTable(Kernel(), default_ttl=0)


def test_grant_makes_live():
    _, table = make_table()
    table.grant("k")
    assert table.is_live("k")


def test_lease_expires_with_the_clock():
    kernel, table = make_table(ttl=10.0)
    table.grant("k")
    kernel.run(until=9.9)
    assert table.is_live("k")
    kernel.run(until=10.0)
    assert not table.is_live("k")


def test_renew_extends():
    kernel, table = make_table(ttl=10.0)
    table.grant("k")
    kernel.run(until=8.0)
    assert table.renew("k")
    kernel.run(until=15.0)
    assert table.is_live("k")


def test_renew_unknown_key_fails():
    _, table = make_table()
    assert not table.renew("never-granted")


def test_explicit_release():
    _, table = make_table()
    table.grant("k")
    table.release("k")
    assert not table.is_live("k")
    assert len(table) == 0


def test_collect_expired_removes_and_counts():
    kernel, table = make_table(ttl=5.0)
    table.grant("a")
    table.grant("b", ttl=50.0)
    kernel.run(until=6.0)
    assert table.collect_expired() == ["a"]
    assert table.expired_count == 1
    assert table.is_live("b")


def test_custom_ttl_overrides_default():
    kernel, table = make_table(ttl=5.0)
    table.grant("k", ttl=100.0)
    kernel.run(until=50.0)
    assert table.is_live("k")
