"""Unit tests for FastS: fast, in-JVM, µRB-survivable session storage."""

from repro.stores.fasts import FastS
from repro.stores.sessions import SessionData


def make_session(session_id="c1", user_id=1):
    data = SessionData(session_id, user_id)
    data.attributes = {"user_id": user_id}
    return data


def test_write_read_roundtrip():
    store = FastS()
    store.write("c1", make_session())
    assert store.read("c1").user_id == 1


def test_read_missing_is_none():
    assert FastS().read("ghost") is None


def test_read_returns_copy():
    store = FastS()
    store.write("c1", make_session())
    first = store.read("c1")
    first.attributes["user_id"] = 999
    assert store.read("c1").attributes["user_id"] == 1


def test_write_is_atomic_replacement():
    store = FastS()
    store.write("c1", make_session(user_id=1))
    store.write("c1", make_session(user_id=2))
    assert store.read("c1").user_id == 2


def test_delete():
    store = FastS()
    store.write("c1", make_session())
    store.delete("c1")
    assert store.read("c1") is None


def test_survival_semantics_flags():
    assert FastS.survives_microreboot
    assert not FastS.survives_jvm_restart


def test_jvm_exit_clears_everything():
    store = FastS()
    store.write("c1", make_session())
    store.write("c2", make_session("c2", 2))
    store.notify_jvm_exit(server=None)
    assert len(store) == 0


def test_sweep_discards_corrupt_sessions_only():
    store = FastS()
    store.write("good", make_session("good", 1))
    store.write("nulled", make_session("nulled", 2))
    store.write("swapped", make_session("swapped", 3))
    store._raw("nulled").attributes = None
    store._raw("swapped").attributes["user_id"] = 99
    discarded = store.sweep_invalid()
    assert sorted(discarded) == ["nulled", "swapped"]
    assert store.read("good") is not None
    assert store.read("nulled") is None


def test_corruption_is_returned_as_is():
    """FastS has no checksums: corrupt objects reach the application."""
    store = FastS()
    store.write("c1", make_session())
    store._raw("c1").attributes = None
    assert store.read("c1").attributes is None


def test_access_counters():
    store = FastS()
    store.write("c1", make_session())
    store.read("c1")
    store.read("c1")
    assert store.writes == 1
    assert store.reads == 2
