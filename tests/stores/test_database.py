"""Unit tests for the transactional database."""

import pytest

from repro.sim import Kernel
from repro.stores.database import (
    Database,
    DatabaseDownError,
    DatabaseError,
    DuplicateKeyError,
    SchemaError,
)


@pytest.fixture
def db():
    kernel = Kernel()
    database = Database(kernel, recovery_time=2.0, session_idle_timeout=10.0)
    database.create_table("items")
    database.kernel_ref = kernel  # convenience for tests
    return database


class TestSchema:
    def test_create_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table("items")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.read("ghosts", 1)

    def test_non_integer_pk_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("items", {"id": "zzz", "name": "bad"})

    def test_boolean_pk_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("items", {"id": True})

    def test_missing_pk_rejected(self, db):
        with pytest.raises(SchemaError):
            db.insert("items", {"name": "no id"})


class TestCrud:
    def test_insert_read_roundtrip(self, db):
        db.insert("items", {"id": 1, "name": "lamp"})
        assert db.read("items", 1) == {"id": 1, "name": "lamp"}

    def test_read_returns_copy(self, db):
        db.insert("items", {"id": 1, "name": "lamp"})
        row = db.read("items", 1)
        row["name"] = "mutated"
        assert db.read("items", 1)["name"] == "lamp"

    def test_read_missing_is_none(self, db):
        assert db.read("items", 404) is None

    def test_duplicate_key_rejected(self, db):
        db.insert("items", {"id": 1})
        with pytest.raises(DuplicateKeyError):
            db.insert("items", {"id": 1})

    def test_update_merges_fields(self, db):
        db.insert("items", {"id": 1, "name": "lamp", "price": 10})
        db.update("items", 1, {"price": 12})
        assert db.read("items", 1) == {"id": 1, "name": "lamp", "price": 12}

    def test_update_missing_row_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.update("items", 9, {"x": 1})

    def test_delete(self, db):
        db.insert("items", {"id": 1})
        db.delete("items", 1)
        assert db.read("items", 1) is None

    def test_delete_missing_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.delete("items", 9)

    def test_select_by_equality(self, db):
        db.insert("items", {"id": 1, "cat": "a"})
        db.insert("items", {"id": 2, "cat": "b"})
        db.insert("items", {"id": 3, "cat": "a"})
        assert {r["id"] for r in db.select("items", cat="a")} == {1, 3}

    def test_count_and_max_pk(self, db):
        assert db.max_pk("items") == 0
        for pk in (5, 2, 9):
            db.insert("items", {"id": pk})
        assert db.count("items") == 3
        assert db.max_pk("items") == 9


class TestTransactions:
    def test_commit_makes_writes_durable(self, db):
        db.insert("items", {"id": 1}, tx_id=77)
        db.commit_transaction(77)
        assert db.read("items", 1) is not None
        assert db.in_flight_transactions == 0

    def test_rollback_undoes_insert(self, db):
        db.insert("items", {"id": 1}, tx_id=77)
        db.rollback_transaction(77)
        assert db.read("items", 1) is None

    def test_rollback_undoes_update(self, db):
        db.insert("items", {"id": 1, "v": "old"})
        db.update("items", 1, {"v": "new"}, tx_id=5)
        db.rollback_transaction(5)
        assert db.read("items", 1)["v"] == "old"

    def test_rollback_undoes_delete(self, db):
        db.insert("items", {"id": 1, "v": "x"})
        db.delete("items", 1, tx_id=5)
        db.rollback_transaction(5)
        assert db.read("items", 1)["v"] == "x"

    def test_rollback_applies_undo_in_reverse(self, db):
        db.insert("items", {"id": 1, "v": 0})
        db.update("items", 1, {"v": 1}, tx_id=5)
        db.update("items", 1, {"v": 2}, tx_id=5)
        db.rollback_transaction(5)
        assert db.read("items", 1)["v"] == 0

    def test_auto_commit_writes_cannot_roll_back(self, db):
        db.insert("items", {"id": 1})  # no tx id: durable immediately
        db.rollback_transaction(123)  # unrelated
        assert db.read("items", 1) is not None

    def test_interleaved_transactions_roll_back_independently(self, db):
        db.insert("items", {"id": 1}, tx_id=1)
        db.insert("items", {"id": 2}, tx_id=2)
        db.rollback_transaction(1)
        db.commit_transaction(2)
        assert db.read("items", 1) is None
        assert db.read("items", 2) is not None


class TestCrashRecovery:
    def test_crashed_database_refuses_access(self, db):
        db.crash()
        with pytest.raises(DatabaseDownError):
            db.read("items", 1)
        with pytest.raises(DatabaseDownError):
            db.insert("items", {"id": 1})

    def test_recovery_preserves_committed_data(self, db):
        db.insert("items", {"id": 1})
        db.insert("items", {"id": 2}, tx_id=9)
        db.commit_transaction(9)
        db.crash()
        db.kernel_ref.run_until_triggered(db.kernel_ref.process(db.recover()))
        assert db.read("items", 1) is not None
        assert db.read("items", 2) is not None

    def test_recovery_rolls_back_in_flight_transactions(self, db):
        db.insert("items", {"id": 1}, tx_id=9)  # never committed
        db.crash()
        db.kernel_ref.run_until_triggered(db.kernel_ref.process(db.recover()))
        assert db.read("items", 1) is None
        assert db.in_flight_transactions == 0

    def test_recovery_charges_recovery_time(self, db):
        db.crash()
        start = db.kernel_ref.now
        db.kernel_ref.run_until_triggered(db.kernel_ref.process(db.recover()))
        assert db.kernel_ref.now - start == pytest.approx(2.0)

    def test_recover_running_database_rejected(self, db):
        with pytest.raises(DatabaseError):
            next(db.recover())


class TestSessionsAndLocks:
    def test_session_lock_release_on_close(self, db):
        kernel = db.kernel_ref
        session = db.open_session(owner="ejb-X")

        def locker():
            yield session.lock_row("items", 1)

        kernel.run_until_triggered(kernel.process(locker()))
        assert db.row_lock_holder("items", 1) is session
        session.close()
        assert db.row_lock_holder("items", 1) is None

    def test_idle_timeout_releases_leaked_lock(self, db):
        """The §7 scenario: a lock held by a microrebooted component's
        session stays held until the DB's idle timeout fires."""
        kernel = db.kernel_ref
        session = db.open_session(owner="ejb-X")

        def locker():
            yield session.lock_row("items", 1)

        kernel.run_until_triggered(kernel.process(locker()))
        kernel.run(until=9.0)
        assert db.row_lock_holder("items", 1) is session  # still leaked
        kernel.run(until=10.5)
        assert db.row_lock_holder("items", 1) is None  # timeout reclaimed it

    def test_close_sessions_owned_by(self, db):
        """JVM kill → TCP teardown → immediate session termination (§7)."""
        kernel = db.kernel_ref
        session = db.open_session(owner="ejb-X")

        def locker():
            yield session.lock_row("items", 1)

        kernel.run_until_triggered(kernel.process(locker()))
        db.close_sessions_owned_by(["ejb-X"])
        assert db.row_lock_holder("items", 1) is None
        assert not session.open

    def test_closed_session_cannot_lock(self, db):
        session = db.open_session(owner="x")
        session.close()
        with pytest.raises(DatabaseError):
            session.lock_row("items", 1)


class TestAuditRepair:
    def test_snapshot_diff_and_repair(self, db):
        db.insert("items", {"id": 1, "name": "lamp"})
        db.insert("items", {"id": 2, "name": "sofa"})
        reference = db.snapshot("items")
        db._corrupt_row("items", 1, "name", "LAMP???")
        db.delete("items", 2)
        db.insert("items", {"id": 3, "name": "intruder"})
        assert db.diff_table("items", reference) == [1, 2, 3]
        changed = db.repair_table("items", reference)
        assert changed == 3
        assert db.diff_table("items", reference) == []

    def test_corrupt_missing_row_rejected(self, db):
        with pytest.raises(DatabaseError):
            db._corrupt_row("items", 42, "name", "x")
