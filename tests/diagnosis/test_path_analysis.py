"""Tests for Pinpoint-style path analysis (chi-square anomaly scoring)."""

from repro.diagnosis import PathAnalyzer, chi_square_2x2


class FakeKernel:
    def __init__(self, now=0.0):
        self.now = now


# ----------------------------------------------------------------------
# The statistic
# ----------------------------------------------------------------------

def test_chi_square_known_value():
    # 10 failed with C, 0 failed without, 0 ok with, 10 ok without:
    # perfect association → statistic equals N.
    assert chi_square_2x2(10, 0, 0, 10) == 20.0


def test_chi_square_degenerate_tables_are_zero():
    assert chi_square_2x2(0, 0, 0, 0) == 0.0
    assert chi_square_2x2(5, 0, 5, 0) == 0.0  # every path contains C
    assert chi_square_2x2(0, 5, 0, 5) == 0.0  # no path contains C


def test_chi_square_independence_scores_zero():
    # Presence of C is uncorrelated with failure.
    assert chi_square_2x2(5, 5, 5, 5) == 0.0


# ----------------------------------------------------------------------
# Ranking
# ----------------------------------------------------------------------

def analyzer(**kwargs):
    defaults = dict(kernel=FakeKernel(), window=None,
                    min_paths=1, min_failed=1)
    defaults.update(kwargs)
    return PathAnalyzer(**defaults)


def feed(pa, failed_with, ok_with, ok_without, component="Bad",
         shared=("WAR",)):
    t = 0.0
    for _ in range(failed_with):
        pa.record_path(t, (*shared, component), ok=False,
                       failed_in=(component,))
    for _ in range(ok_with):
        pa.record_path(t, (*shared, component), ok=True)
    for _ in range(ok_without):
        pa.record_path(t, shared, ok=True)


def test_faulty_component_tops_the_ranking():
    pa = analyzer()
    feed(pa, failed_with=8, ok_with=0, ok_without=12)
    ranking = pa.rank()
    assert ranking[0][0] == "Bad"
    assert ranking[0][1] > 0
    # The shared component is on every path — no positive association.
    assert all(name != "WAR" for name, _score in ranking)


def test_components_on_healthy_paths_are_not_implicated():
    pa = analyzer()
    # "Good" appears only on successful paths; negative association.
    for _ in range(5):
        pa.record_path(0.0, ("WAR", "Good"), ok=True)
    for _ in range(5):
        pa.record_path(0.0, ("WAR", "Bad"), ok=False, failed_in=("Bad",))
    names = [name for name, _ in pa.rank()]
    assert "Bad" in names and "Good" not in names


def test_tie_breaks_toward_the_observed_error_site():
    pa = analyzer()
    # A and B always co-occur, so their tables are identical; only B is
    # ever the component whose invocation actually raised.
    for _ in range(6):
        pa.record_path(0.0, ("A", "B"), ok=False, failed_in=("B",))
    for _ in range(6):
        pa.record_path(0.0, ("C",), ok=True)
    ranking = pa.rank()
    assert ranking[0][0] == "B"
    assert ranking[0][1] == ranking[1][1]  # genuinely tied statistics


def test_no_failures_means_empty_ranking():
    pa = analyzer()
    feed(pa, failed_with=0, ok_with=5, ok_without=5)
    assert pa.rank() == []


# ----------------------------------------------------------------------
# Readiness gating and decay
# ----------------------------------------------------------------------

def test_ready_requires_both_volume_and_failures():
    pa = analyzer(min_paths=10, min_failed=3)
    feed(pa, failed_with=2, ok_with=0, ok_without=10)
    assert not pa.ready()  # 12 paths but only 2 failed
    feed(pa, failed_with=1, ok_with=0, ok_without=0)
    assert pa.ready()


def test_sliding_window_decays_old_observations():
    kernel = FakeKernel()
    pa = PathAnalyzer(kernel=kernel, window=100.0,
                      min_paths=1, min_failed=1)
    pa.record_path(0.0, ("WAR", "Old"), ok=False, failed_in=("Old",))
    kernel.now = 50.0
    assert pa.sample() == (1, 1)
    kernel.now = 200.0  # the old path is now outside the window
    pa.record_path(200.0, ("WAR", "New"), ok=False, failed_in=("New",))
    total, failed = pa.sample()
    assert (total, failed) == (1, 1)
    assert [name for name, _ in pa.rank()] != ["Old"]


def test_memory_stays_bounded_by_max_paths():
    pa = analyzer(max_paths=100)
    for i in range(1000):
        pa.record_path(float(i), ("WAR", f"C{i % 7}"), ok=i % 3 == 0)
    assert pa.sample()[0] == 100
    assert pa.recorded == 1000


def test_clear_resets_observations():
    pa = analyzer()
    feed(pa, failed_with=3, ok_with=0, ok_without=3)
    pa.clear()
    assert pa.sample() == (0, 0)
    assert pa.rank() == []


# ----------------------------------------------------------------------
# Graph and audit
# ----------------------------------------------------------------------

def test_dependency_graph_counts_edges():
    pa = analyzer()
    pa.record_path(0.0, ("WAR", "A"), ok=True, edges=(("WAR", "A"),))
    pa.record_path(0.0, ("WAR", "A", "B"), ok=True,
                   edges=(("WAR", "A"), ("A", "B")))
    graph = pa.dependency_graph()
    assert graph["WAR"]["A"] == 2
    assert graph["A"]["B"] == 1


def test_explain_summarizes_state():
    pa = analyzer()
    feed(pa, failed_with=4, ok_with=0, ok_without=8)
    audit = pa.explain(limit=2)
    assert audit["paths"] == 12 and audit["failed"] == 4
    assert audit["ready"] is True
    assert audit["ranking"][0][0] == "Bad"
