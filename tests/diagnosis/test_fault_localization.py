"""End-to-end fault localization: spans → PathAnalyzer → RecoveryManager.

The acceptance scenario for path-analysis diagnosis: a transient exception
seeded into one EJB, with the RM's static URL map *stale* (it predates the
commit paths' dependency on the faulty bean).  Path analysis must pick the
faulty component as its top-ranked µRB target and recover with fewer
mis-targeted actions than static-map mode.
"""

import pytest

from repro.experiments.path_diagnosis import FAULTY, run_one_mode
from repro.experiments.common import SingleNodeRig


@pytest.fixture(scope="module")
def outcomes():
    return {
        mode: run_one_mode(
            mode, seed=0, n_clients=100, inject_at=40.0, duration=240.0
        )
        for mode in ("static-map", "path-analysis")
    }


def test_path_analysis_top_ranks_the_faulty_component(outcomes):
    assert outcomes["path-analysis"]["top_ranked"] == FAULTY


def test_path_analysis_first_urb_cures(outcomes):
    o = outcomes["path-analysis"]
    assert o["cure_action"] == 1
    assert o["mis_targeted"] == 0
    assert o["diagnosis_modes"][0] == "path-analysis"
    assert o["actions"][0][1] == "ejb"
    assert FAULTY in o["actions"][0][2]


def test_static_map_mis_targets_under_a_stale_map(outcomes):
    static = outcomes["static-map"]
    path = outcomes["path-analysis"]
    assert static["mis_targeted"] > path["mis_targeted"]
    assert static["failed_requests"] > path["failed_requests"]
    # The stale map never names the faulty bean, so any EJB candidate the
    # static mode does find is by definition a wrong target.
    for _t, level, target in static["actions"]:
        if level == "ejb":
            assert FAULTY not in target


def test_static_default_keeps_span_layer_disabled():
    """Table 1-4 rigs must not pay span overhead: default diagnosis keeps
    the collector disabled and wires no analyzer into the RM."""
    rig = SingleNodeRig(n_clients=1)
    assert rig.recovery_manager.diagnosis == "static-map"
    assert rig.recovery_manager.path_analyzer is None
    assert not rig.span_collector.enabled


def test_path_analysis_rig_wires_analyzer_as_sink():
    rig = SingleNodeRig(n_clients=1, diagnosis="path-analysis")
    assert rig.span_collector.enabled
    assert rig.path_analyzer is not None
    assert rig.recovery_manager.path_analyzer is rig.path_analyzer
    assert rig.path_analyzer.record in rig.span_collector.sinks


def test_rm_falls_back_to_static_before_enough_paths():
    """With no observed paths the analyzer is not ready; the diagnosis
    audit must show the static fallback, not a path-analysis pick."""
    rig = SingleNodeRig(n_clients=30, diagnosis="path-analysis")
    # Starve the analyzer: detach the sink so it never sees a path.
    rig.span_collector.remove_sink(rig.path_analyzer.record)
    rig.injector.inject_transient_exception("BrowseCategories")
    rig.start()
    rig.run_for(60.0)
    assert rig.recovery_manager.actions, "RM never acted"
    assert rig.recovery_manager.diagnosis_log
    assert rig.recovery_manager.diagnosis_log[0]["mode"] == "static-fallback"
