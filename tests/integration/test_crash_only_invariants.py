"""Integration tests for the crash-only design invariants (§2).

These tie the whole stack together: with state segregated into dedicated
stores, any component (or all of them) can be crashed at any moment without
corrupting persistent state, and recovery is correct every time.
"""

import pytest

from repro.appserver.http import HttpRequest, HttpStatus
from repro.ebid.app import build_ebid_system
from repro.ebid.audit import audit_database
from repro.ebid.schema import DatasetConfig
from repro.workload.client import ClientPopulation


@pytest.fixture
def system():
    return build_ebid_system(dataset=DatasetConfig.tiny(), seed=6)


def run(system, generator):
    return system.kernel.run_until_triggered(system.kernel.process(generator))


def test_random_microreboot_storm_preserves_database_integrity(system):
    """Crash components by parts, continuously, under load: the database's
    invariants must hold at every checkpoint (state segregation works)."""
    population = ClientPopulation(
        system.kernel, system.server, DatasetConfig.tiny(),
        n_clients=40, rng_registry=system.rng,
    )
    population.start()
    rng = system.rng.stream("storm")
    names = system.server.component_names("ebid")

    def storm():
        for _ in range(25):
            yield system.kernel.timeout(rng.uniform(2.0, 8.0))
            victim = rng.choice(names)
            yield from system.coordinator.microreboot([victim])

    process = system.kernel.process(storm())
    last_check = 0.0
    while not process.triggered:
        system.kernel.run(until=last_check + 30.0)
        last_check = system.kernel.now
        assert audit_database(system.database) == [], f"at t={last_check}"
    assert system.coordinator.microreboot_count == 25


def test_microreboot_mid_transaction_rolls_back_cleanly(system):
    """A µRB landing in the middle of a commit aborts its transaction;
    the database shows either all of the operation or none of it."""
    login = system.kernel.run_until_triggered(
        system.server.handle_request(
            HttpRequest(url="/ebid/Authenticate", operation="Authenticate",
                        params={"user_id": 1, "password": "pw1"})
        )
    )
    cookie = login.payload["cookie"]
    prepare = system.kernel.run_until_triggered(
        system.server.handle_request(
            HttpRequest(url="/ebid/MakeBid", operation="MakeBid",
                        params={"item_id": 3}, cookie=cookie)
        )
    )
    amount = prepare.payload["current_bid"] + 5
    bids_before = system.database.count("bids")
    item_before = system.database.read("items", 3)

    commit_event = system.server.handle_request(
        HttpRequest(url="/ebid/CommitBid", operation="CommitBid",
                    params={"amount": amount}, cookie=cookie,
                    idempotent=False)
    )

    def mid_flight_urb():
        yield system.kernel.timeout(0.012)  # inside CommitBid's transaction
        yield from system.coordinator.microreboot(["CommitBid"])

    system.kernel.process(mid_flight_urb())
    response = system.kernel.run_until_triggered(commit_event)
    assert response.network_error  # the shepherd thread was killed

    # All-or-nothing: no partial bid state.
    assert system.database.count("bids") == bids_before
    assert system.database.read("items", 3) == item_before
    assert system.server.transactions.active_transactions == []
    assert audit_database(system.database) == []


def test_every_single_component_survives_its_own_microreboot(system):
    """Each of the 27 deployable components can be individually recycled
    and the full request surface still works afterwards."""
    for name in system.server.component_names("ebid"):
        run(system, system.coordinator.microreboot([name]))
    for url, params in (
        ("/ebid/BrowseCategories", {}),
        ("/ebid/ViewItem", {"item_id": 1}),
        ("/ebid/SearchItemsByRegion", {"region_id": 1}),
        ("/ebid/HomePage", {}),
    ):
        response = system.kernel.run_until_triggered(
            system.server.handle_request(
                HttpRequest(url=url, operation=url.rsplit("/", 1)[-1],
                            params=params)
            )
        )
        assert response.status == HttpStatus.OK, url


def test_database_crash_and_recovery_under_load(system):
    """The persistence tier itself is crash-only: it can fail-stop at any
    time; the application degrades (DB errors) and recovers with it."""
    population = ClientPopulation(
        system.kernel, system.server, DatasetConfig.tiny(),
        n_clients=30, rng_registry=system.rng,
    )
    population.start()
    system.kernel.run(until=60.0)
    good_before = population.metrics.good_requests
    system.database.crash()
    system.kernel.run(until=90.0)

    def recover():
        yield from system.database.recover()

    run(system, recover())
    system.kernel.run(until=180.0)
    assert population.metrics.good_requests > good_before  # serving again
    assert audit_database(system.database) == []
