"""The full escalation ladder preserves session state at every rung (§4).

Drives a single-node SSM cluster's recovery manager up the recursive
recovery policy — EJB µRB (including the recovery-group expansion),
WAR, application, JVM restart, OS reboot — and checks after each rung
that the conversational session established before the first failure
still works: the crash-only contract says recovery may cost time, never
session state, because sessions live in the external store.
"""

from repro.appserver.http import HttpRequest, HttpStatus
from repro.cluster import build_cluster
from repro.core import FailureKind, FailureReport, RecoveryManager
from repro.ebid.descriptors import URL_PATH_MAP
from repro.ebid.schema import DatasetConfig

#: A URL whose path touches Item, a member of the eBid recovery group
#: (Category → Region → User → Item → Bid), so one of the EJB-level µRBs
#: expands to the whole group.
FAILING_URL = "/ebid/SearchItemsByCategory"


def issue(cluster, url, params=None, cookie=None):
    request = HttpRequest(
        url=url, operation=url.rsplit("/", 1)[-1], params=params or {},
        cookie=cookie,
    )
    return cluster.kernel.run_until_triggered(
        cluster.load_balancer.handle_request(request)
    )


def establish_session(cluster):
    response = issue(
        cluster, "/ebid/Authenticate", {"user_id": 1, "password": "pw1"},
    )
    cookie = response.payload["cookie"]
    issue(cluster, "/ebid/MakeBid", {"item_id": 3}, cookie=cookie)
    return cookie


def assert_session_alive(cluster, cookie, context):
    """The session (and its selected-item state) must still be usable."""
    response = issue(cluster, "/ebid/MakeBid", {"item_id": 3}, cookie=cookie)
    assert response.status == HttpStatus.OK, (
        f"after {context}: MakeBid failed with {response.status}"
    )
    assert not response.payload.get("login_required"), (
        f"after {context}: session state was lost"
    )


def test_escalation_ladder_preserves_session_state():
    cluster = build_cluster(
        1, dataset=DatasetConfig.tiny(), session_store="ssm",
    )
    kernel = cluster.kernel
    node = cluster.nodes[0]
    rm = RecoveryManager(
        kernel,
        node.system.coordinator,
        URL_PATH_MAP,
        node_controller=node,
        escalation_window=1000.0,
        recurring_limit=100,
    )
    rm.start()

    cookie = establish_session(cluster)

    def drive_until(level):
        """Feed failure reports until an action at ``level`` completes."""

        def driver():
            for _ in range(40):
                if any(
                    a.level == level and a.finished_at is not None
                    for a in rm.actions
                ):
                    return
                for _ in range(3):
                    rm.report(
                        FailureReport(
                            time=kernel.now,
                            url=FAILING_URL,
                            operation="SearchItemsByCategory",
                            kind=FailureKind.HTTP_ERROR,
                        )
                    )
                yield kernel.timeout(30.0)

        kernel.run_until_triggered(kernel.process(driver()))
        assert any(
            a.level == level and a.finished_at is not None
            for a in rm.actions
        ), f"never reached a completed {level!r} action"

    # Rung by rung: recover, then prove the session survived the rung.
    for level in ("ejb", "war", "application", "jvm", "os"):
        drive_until(level)
        assert_session_alive(cluster, cookie, f"{level} recovery")

    levels = [a.level for a in rm.actions]
    assert levels.index("war") < levels.index("application")
    assert levels.index("application") < levels.index("jvm")
    assert levels.index("jvm") < levels.index("os")

    # The EJB rung includes the recovery-group expansion: rebooting Item
    # drags the whole coupled group down together (§5.2).
    group_targets = [a.target for a in rm.actions if a.level == "ejb"]
    assert any(len(target) > 1 for target in group_targets), (
        f"no group µRB among EJB actions: {group_targets}"
    )
