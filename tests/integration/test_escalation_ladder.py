"""The full escalation ladder preserves session state at every rung (§4).

Drives a single-node SSM cluster's recovery manager up the recursive
recovery policy — EJB µRB (including the recovery-group expansion),
WAR, application, JVM restart, OS reboot — and checks after each rung
that the conversational session established before the first failure
still works: the crash-only contract says recovery may cost time, never
session state, because sessions live in the external store.
"""

from repro.appserver.http import HttpRequest, HttpStatus
from repro.cluster import build_cluster
from repro.core import FailureKind, FailureReport, RecoveryManager
from repro.core.hardening import HardeningPolicy
from repro.ebid.descriptors import URL_PATH_MAP
from repro.ebid.schema import DatasetConfig

#: A URL whose path touches Item, a member of the eBid recovery group
#: (Category → Region → User → Item → Bid), so one of the EJB-level µRBs
#: expands to the whole group.
FAILING_URL = "/ebid/SearchItemsByCategory"


def issue(cluster, url, params=None, cookie=None):
    request = HttpRequest(
        url=url, operation=url.rsplit("/", 1)[-1], params=params or {},
        cookie=cookie,
    )
    return cluster.kernel.run_until_triggered(
        cluster.load_balancer.handle_request(request)
    )


def establish_session(cluster):
    response = issue(
        cluster, "/ebid/Authenticate", {"user_id": 1, "password": "pw1"},
    )
    cookie = response.payload["cookie"]
    issue(cluster, "/ebid/MakeBid", {"item_id": 3}, cookie=cookie)
    return cookie


def assert_session_alive(cluster, cookie, context):
    """The session (and its selected-item state) must still be usable."""
    response = issue(cluster, "/ebid/MakeBid", {"item_id": 3}, cookie=cookie)
    assert response.status == HttpStatus.OK, (
        f"after {context}: MakeBid failed with {response.status}"
    )
    assert not response.payload.get("login_required"), (
        f"after {context}: session state was lost"
    )


def test_escalation_ladder_preserves_session_state():
    cluster = build_cluster(
        1, dataset=DatasetConfig.tiny(), session_store="ssm",
    )
    kernel = cluster.kernel
    node = cluster.nodes[0]
    rm = RecoveryManager(
        kernel,
        node.system.coordinator,
        URL_PATH_MAP,
        node_controller=node,
        escalation_window=1000.0,
        recurring_limit=100,
    )
    rm.start()

    cookie = establish_session(cluster)

    def drive_until(level):
        """Feed failure reports until an action at ``level`` completes."""

        def driver():
            for _ in range(40):
                if any(
                    a.level == level and a.finished_at is not None
                    for a in rm.actions
                ):
                    return
                for _ in range(3):
                    rm.report(
                        FailureReport(
                            time=kernel.now,
                            url=FAILING_URL,
                            operation="SearchItemsByCategory",
                            kind=FailureKind.HTTP_ERROR,
                        )
                    )
                yield kernel.timeout(30.0)

        kernel.run_until_triggered(kernel.process(driver()))
        assert any(
            a.level == level and a.finished_at is not None
            for a in rm.actions
        ), f"never reached a completed {level!r} action"

    # Rung by rung: recover, then prove the session survived the rung.
    for level in ("ejb", "war", "application", "jvm", "os"):
        drive_until(level)
        assert_session_alive(cluster, cookie, f"{level} recovery")

    levels = [a.level for a in rm.actions]
    assert levels.index("war") < levels.index("application")
    assert levels.index("application") < levels.index("jvm")
    assert levels.index("jvm") < levels.index("os")

    # The EJB rung includes the recovery-group expansion: rebooting Item
    # drags the whole coupled group down together (§5.2).
    group_targets = [a.target for a in rm.actions if a.level == "ejb"]
    assert any(len(target) > 1 for target in group_targets), (
        f"no group µRB among EJB actions: {group_targets}"
    )


def test_interleaved_ladders_stay_independent():
    """Two independent components escalate on fully disjoint ladders.

    BrowseCategories and ViewUserInfo fail concurrently under the
    parallel scheduler: their first µRBs overlap, and from then on every
    piece of per-target hardening state — escalation ladder, backoff
    key, flap-strike history, eventual quarantine — stays keyed to its
    own component.  BrowseCategories keeps flapping and is quarantined;
    ViewUserInfo (one clean recovery) must not inherit a single strike.
    Sessions on uninvolved bricks survive the whole episode.
    """
    cluster = build_cluster(
        1, dataset=DatasetConfig.tiny(), session_store="ssm",
    )
    kernel = cluster.kernel
    node = cluster.nodes[0]
    rm = RecoveryManager(
        kernel,
        node.system.coordinator,
        URL_PATH_MAP,
        node_controller=node,
        scheduler="parallel",
        hardening=HardeningPolicy(
            enabled=True, parallel_recovery=True,
            backoff_base=60.0, backoff_factor=2.0, backoff_max=300.0,
            flap_threshold=3, flap_window=500.0, flap_debounce=0.0,
            quarantine_ttl=300.0,
        ),
        # Short enough that each 20s wave opens a fresh incident (the
        # per-group ladders reset); the backoff keys live much longer.
        escalation_window=15.0,
        recurring_limit=100,
    )
    rm.start()

    cookie = establish_session(cluster)

    def wave(urls):
        for url in urls:
            for _ in range(3):
                rm.report(
                    FailureReport(
                        time=kernel.now,
                        url=url,
                        operation=url.rsplit("/", 1)[-1],
                        kind=FailureKind.HTTP_ERROR,
                    )
                )

    # Wave 1: both components fail at the same instant.  Their µRBs are
    # dispatched concurrently on separate per-group ladders.
    wave(["/ebid/BrowseCategories", "/ebid/ViewUserInfo"])
    kernel.run(until=kernel.now + 2.0)
    assert sorted(a.target for a in rm.actions) == [
        ("BrowseCategories",), ("ViewUserInfo",),
    ]
    assert all(a.level == "ejb" and a.ok for a in rm.actions)
    first, second = rm.actions
    assert first.decided_at < second.finished_at
    assert second.decided_at < first.finished_at
    # Each component escalates on its own ladder (the hot entity group
    # also got one while being considered — and skipped — as a
    # conflicting candidate).
    assert {"BrowseCategories", "ViewUserInfo"} <= set(rm._ladders)
    assert rm._ladders["BrowseCategories"] is not rm._ladders["ViewUserInfo"]

    # Waves 2-4: only BrowseCategories keeps failing.  Each wave lands
    # inside its backoff (a flap strike), never re-recycles it, and the
    # third strike quarantines it.  ViewUserInfo is never touched again.
    for _ in range(3):
        kernel.run(until=kernel.now + 18.0)
        wave(["/ebid/BrowseCategories"])
        kernel.run(until=kernel.now + 2.0)

    assert len(rm.actions) == 2  # no re-recovery, no coarse escalation
    # Disjoint flap histories and backoff keys: three strikes against
    # the flapper, exactly the one clean recovery against the other.
    assert len(rm._recovery_history["BrowseCategories"]) == 3
    assert len(rm._recovery_history["ViewUserInfo"]) == 1
    assert (
        rm._backoff_until["BrowseCategories"]
        > rm._backoff_until["ViewUserInfo"]
    )
    assert rm.active_quarantines() == {"BrowseCategories"}
    assert node.system.server.naming.is_sentinel("BrowseCategories")
    assert not node.system.server.naming.is_sentinel("ViewUserInfo")
    # The quarantined flapper's reports are dropped as already explained
    # (the rest of the quarantining wave, then all of the final wave).
    assert rm.metrics.counter("rm.reports.quarantined").value == 5

    # The crash-only contract held throughout: the session established
    # before the first failure still works on the untouched paths.
    assert_session_alive(cluster, cookie, "interleaved ladders")
