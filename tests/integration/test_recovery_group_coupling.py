"""Integration tests: why recovery groups exist (§3.2).

The EntityGroup members hold cross-container metadata references to each
other.  Microrebooting the whole group keeps them consistent; recycling one
member alone (possible only with an ablated coordinator) leaves its peers
holding references to a destroyed incarnation.
"""

import pytest

from repro.appserver.errors import StaleReferenceError
from repro.appserver.http import HttpRequest, HttpStatus
from repro.core.microreboot import MicrorebootCoordinator
from repro.ebid.app import build_ebid_system
from repro.ebid.schema import DatasetConfig


@pytest.fixture
def system():
    return build_ebid_system(dataset=DatasetConfig.tiny(), seed=12)


def issue(system, url, params=None):
    request = HttpRequest(url=url, operation=url.rsplit("/", 1)[-1],
                          params=params or {})
    return system.kernel.run_until_triggered(system.server.handle_request(request))


def warm(system):
    """Touch the group members so peer generations are snapshotted."""
    issue(system, "/ebid/ViewItem", {"item_id": 2})
    issue(system, "/ebid/BrowseCategories")
    issue(system, "/ebid/ViewBidHistory", {"item_id": 2})


def test_group_peers_are_symmetric(system):
    item = system.server.containers["Item"]
    bid = system.server.containers["Bid"]
    assert "Bid" in item.group_peers
    assert "Item" in bid.group_peers
    assert "ViewItem" not in item.group_peers  # session beans go via JNDI


def test_group_microreboot_keeps_references_fresh(system):
    warm(system)
    system.kernel.run_until_triggered(
        system.kernel.process(system.coordinator.microreboot(["Item"]))
    )
    # The whole group was recycled together: everything still works.
    assert issue(system, "/ebid/ViewItem", {"item_id": 2}).status == HttpStatus.OK
    assert issue(system, "/ebid/ViewBidHistory", {"item_id": 2}).status == HttpStatus.OK


def test_singleton_microreboot_leaves_stale_references(system):
    warm(system)
    ablated = MicrorebootCoordinator(
        system.server, "ebid", honor_groups=False
    )
    system.kernel.run_until_triggered(
        system.kernel.process(ablated.microreboot(["Item"]))
    )
    # Bid's metadata now points at Item's destroyed incarnation.
    response = issue(system, "/ebid/ViewBidHistory", {"item_id": 2})
    assert response.status == HttpStatus.INTERNAL_SERVER_ERROR
    assert "stale reference" in response.body

    # Recycling the proper recovery group repairs everything.
    system.kernel.run_until_triggered(
        system.kernel.process(system.coordinator.microreboot(["Item"]))
    )
    assert issue(system, "/ebid/ViewBidHistory", {"item_id": 2}).status == HttpStatus.OK


def test_stale_reference_raises_typed_error(system):
    warm(system)
    item = system.server.containers["Item"]
    item.initialize()  # recycle Item behind everyone's back
    bid = system.server.containers["Bid"]
    with pytest.raises(StaleReferenceError) as excinfo:
        bid._validate_group_references()
    assert excinfo.value.peer == "Item"


def test_jvm_restart_resets_all_peer_generations(system):
    warm(system)
    system.kernel.run_until_triggered(
        system.kernel.process(system.server.restart_jvm())
    )
    assert issue(system, "/ebid/ViewBidHistory", {"item_id": 2}).status == HttpStatus.OK
