"""Integration tests reproducing the paper's §7 limitations.

These are the cases where microreboots are *worse* than (or no better
than) coarser recovery — the paper documents them, so we reproduce them.
"""

import pytest

from repro.appserver.component import InvocationContext
from repro.cluster.node import Node
from repro.ebid.app import build_ebid_system
from repro.ebid.schema import DatasetConfig


@pytest.fixture
def system():
    return build_ebid_system(dataset=DatasetConfig.tiny(), seed=8)


def run(system, generator):
    return system.kernel.run_until_triggered(system.kernel.process(generator))


class TestExternalResourceLeak:
    """§7: "an EJB X can directly open a connection to a database without
    using JBoss's transaction service, acquire a database lock, then share
    that connection with another EJB Y.  If X is microrebooted prior to
    releasing the lock ... X's DB session stays alive.  The database will
    not release the lock until after X's DB session times out.  In the case
    of a JVM restart, however, the resulting termination of the underlying
    TCP connection ... would cause the immediate termination of the DB
    session and the release of the lock."
    """

    def _acquire_behind_platforms_back(self, system):
        database = system.database
        ctx = InvocationContext(system.server)  # X's shepherd context
        session = database.open_session(owner=ctx)

        def locker():
            yield session.lock_row("items", 1)

        run(system, locker())
        assert database.row_lock_holder("items", 1) is session
        return session

    def test_microreboot_leaks_the_lock_until_session_timeout(self, system):
        database = system.database
        session = self._acquire_behind_platforms_back(system)
        run(system, system.coordinator.microreboot(["ViewItem"]))
        # The platform did not know about the session: the lock is leaked.
        assert database.row_lock_holder("items", 1) is session
        # ... until the database's idle timeout reclaims it.
        system.kernel.run(
            until=system.kernel.now + database.session_idle_timeout + 1
        )
        assert database.row_lock_holder("items", 1) is None

    def test_jvm_restart_releases_the_lock_immediately(self, system):
        database = system.database
        node = Node(system)
        self._acquire_behind_platforms_back(system)
        run(system, node.restart_jvm())
        assert database.row_lock_holder("items", 1) is None


class TestSharedStateHazard:
    """§7: non-atomic updates to state shared between components.

    J2EE discourages mutable statics, and a µRB shows why: the classloader
    (and thus the static) survives, so corruption persists across the µRB;
    a whole-application restart discards the loader and clears it.
    """

    def test_static_variable_corruption_survives_microreboot(self, system):
        loader = system.server.containers["ViewItem"].classloader
        loader.statics["shared_counter"] = "corrupted!"
        run(system, system.coordinator.microreboot(["ViewItem"]))
        assert (
            system.server.containers["ViewItem"].classloader.statics[
                "shared_counter"
            ]
            == "corrupted!"
        )

    def test_application_restart_clears_statics(self, system):
        loader = system.server.containers["ViewItem"].classloader
        loader.statics["shared_counter"] = "corrupted!"
        run(system, system.coordinator.restart_application())
        assert (
            system.server.containers["ViewItem"].classloader.statics == {}
        )


class TestMicrorebootScope:
    """§7: µRBs do not scrub server metadata, and cannot recover faults
    below the application layer."""

    def test_microreboot_does_not_scrub_connection_pool(self, system):
        system.server.connection_pool.healthy = False
        run(system, system.coordinator.restart_application())
        assert not system.server.connection_pool.healthy  # still broken
        system.server.kill()
        assert system.server.connection_pool.healthy  # the JVM level fixes it

    def test_delayed_full_reboot_costs_little_extra(self, system):
        """"Even in this case, µRBs add only a small additional cost":
        a wasted µRB plus a JVM restart is barely worse than the restart."""
        node = Node(system)
        start = system.kernel.now
        run(system, system.coordinator.microreboot(["ViewItem"]))  # useless
        run(system, node.restart_jvm())
        total = system.kernel.now - start
        jvm_alone = system.server.timing.jvm_restart_time()
        assert total < jvm_alone * 1.05  # <5% overhead from the wrong guess
