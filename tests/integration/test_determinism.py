"""Determinism: identical seeds → identical simulations.

Reproducibility is what makes the experiment harnesses trustworthy: any
run can be replayed exactly, and the comparison detector's known-good
shadow stays in lockstep with the main instance.
"""

from repro.ebid.app import build_ebid_system
from repro.ebid.schema import DatasetConfig
from repro.faults import FaultInjector
from repro.workload.client import ClientPopulation


def run_workload(seed, with_fault=False):
    system = build_ebid_system(dataset=DatasetConfig.tiny(), seed=seed)
    population = ClientPopulation(
        system.kernel, system.server, DatasetConfig.tiny(),
        n_clients=40, rng_registry=system.rng,
    )
    population.start()
    if with_fault:
        def schedule():
            yield system.kernel.timeout(60.0)
            FaultInjector(system).inject_transient_exception("BrowseCategories")
            yield system.kernel.timeout(30.0)
            yield from system.coordinator.microreboot(["BrowseCategories"])

        system.kernel.process(schedule())
    system.kernel.run(until=240.0)
    metrics = population.metrics
    return {
        "good": metrics.good_requests,
        "bad": metrics.failed_requests,
        "mix": metrics.operations_mix(),
        "bids": system.database.count("bids"),
        "users": system.database.count("users"),
        "good_series": metrics.good_taw_series(),
    }


def test_same_seed_identical_fault_free_runs():
    first = run_workload(seed=31)
    second = run_workload(seed=31)
    assert first == second


def test_same_seed_identical_runs_with_fault_and_recovery():
    first = run_workload(seed=32, with_fault=True)
    second = run_workload(seed=32, with_fault=True)
    assert first == second
    assert first["bad"] > 0  # the fault actually manifested


def test_different_seeds_differ_but_share_shape():
    first = run_workload(seed=33)
    second = run_workload(seed=34)
    assert first["good_series"] != second["good_series"]
    # Same macroscopic behaviour: comparable request volumes.
    assert abs(first["good"] - second["good"]) < 0.25 * first["good"]
