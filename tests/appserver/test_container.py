"""Unit tests for containers: lifecycle, interceptors, instance pooling."""

import pytest

from repro.appserver.component import InvocationContext
from repro.appserver.container import ContainerState
from repro.appserver.descriptors import TxAttribute
from repro.appserver.errors import (
    ApplicationException,
    ComponentUnavailableError,
    InvocationError,
    TransactionError,
)
from tests.toyapp import build_toy_system, issue


def run_call(system, name, method, *args):
    """Drive one component call outside the HTTP path."""
    ctx = InvocationContext(system.server)

    def driver():
        result = yield from ctx.call(name, method, *args)
        return result

    process = system.kernel.process(driver())
    ctx.shepherd_process = process
    return system.kernel.run_until_triggered(process)


def test_invoke_dispatches_to_instance():
    system = build_toy_system()
    assert run_call(system, "Greeter", "greet", "world") == "hello world"


def test_invoke_unknown_method_is_invocation_error():
    system = build_toy_system()
    with pytest.raises(InvocationError):
        run_call(system, "Greeter", "no_such_method")


def test_invoke_private_method_rejected():
    system = build_toy_system()
    with pytest.raises(InvocationError):
        run_call(system, "Account", "_db")


def test_round_robin_over_pool():
    system = build_toy_system()
    container = system.server.containers["Greeter"]
    assert len(container.instances) == container.descriptor.pool_size
    for _ in range(container.descriptor.pool_size + 1):
        run_call(system, "Greeter", "greet", "x")
    assert container.invocation_count == container.descriptor.pool_size + 1


def test_microrebooting_container_raises_unavailable():
    system = build_toy_system()
    container = system.server.containers["Greeter"]
    container.state = ContainerState.MICROREBOOTING
    with pytest.raises(ComponentUnavailableError):
        run_call(system, "Greeter", "greet", "x")


def test_stopped_container_raises_unavailable():
    system = build_toy_system()
    system.server.containers["Greeter"].state = ContainerState.STOPPED
    with pytest.raises(ComponentUnavailableError):
        run_call(system, "Greeter", "greet", "x")


def test_required_method_commits_transaction():
    system = build_toy_system()
    run_call(system, "Transfer", "transfer", 100, 1, 25)
    assert system.database.read("accounts", 1)["balance"] == 125
    assert system.database.read("ledger", 100)["delta"] == 25
    assert system.server.transactions.committed_count == 1
    assert system.server.transactions.active_transactions == []


def test_required_method_rolls_back_on_failure():
    system = build_toy_system()
    # Account 99 does not exist: adjust fails after the tx began.
    with pytest.raises(ApplicationException):
        run_call(system, "Transfer", "transfer", 101, 99, 5)
    assert system.database.read("ledger", 101) is None
    assert system.server.transactions.rolled_back_count == 1


def test_failed_stateless_instance_is_discarded():
    """Corrupted instance state is naturally expunged (Table 2)."""
    system = build_toy_system()
    container = system.server.containers["Transfer"]
    victim = container.instances[0]
    victim.fee = None  # null-corrupt the attribute
    with pytest.raises(ApplicationException):
        run_call(system, "Transfer", "transfer", 102, 1, 5)
    assert victim not in container.instances
    assert victim.failed
    # The replacement instance serves the next call.
    run_call(system, "Transfer", "transfer", 103, 1, 5)


def test_null_tx_map_entry_fails_every_call():
    system = build_toy_system()
    system.server.containers["Transfer"].tx_method_map["transfer"] = None
    with pytest.raises(TransactionError, match="null"):
        run_call(system, "Transfer", "transfer", 104, 1, 5)


def test_invalid_tx_map_entry_fails():
    system = build_toy_system()
    system.server.containers["Transfer"].tx_method_map["transfer"] = "Banana"
    with pytest.raises(TransactionError, match="invalid"):
        run_call(system, "Transfer", "transfer", 105, 1, 5)


def test_wrong_tx_map_entry_leaves_partial_state():
    """The ``≈`` scenario of Table 2: a Required method runs without a
    transaction, auto-commits its writes, and the container flags the
    demarcation mismatch only after the damage is durable."""
    system = build_toy_system()
    container = system.server.containers["Transfer"]
    container.tx_method_map["transfer"] = TxAttribute.NOT_SUPPORTED
    before = system.database.read("accounts", 1)["balance"]
    with pytest.raises(TransactionError, match="auto-committed"):
        run_call(system, "Transfer", "transfer", 106, 1, 5)
    # The operation failed, yet its writes persisted individually.
    assert system.database.read("accounts", 1)["balance"] == before + 5
    assert system.database.read("ledger", 106) is not None


def test_reinitialize_restores_tx_map():
    system = build_toy_system()
    container = system.server.containers["Transfer"]
    container.tx_method_map["transfer"] = None
    container.initialize()
    assert container.tx_method_map["transfer"] is TxAttribute.REQUIRED


def test_destroy_kills_active_shepherds():
    system = build_toy_system()
    container = system.server.containers["Greeter"]

    responses = []

    def client():
        response = yield system.server.handle_request(
            __import__("repro.appserver.http", fromlist=["HttpRequest"]).HttpRequest(
                url="/toy/greet", operation="greet"
            )
        )
        responses.append(response)

    system.kernel.process(client())

    def killer():
        yield system.kernel.timeout(0.008)  # while the request is inside
        container.destroy(cause="test")

    system.kernel.process(killer())
    system.kernel.run(until=30.0)
    assert len(responses) == 1
    assert responses[0].network_error  # connection reset mid-flight


def test_generation_counts_reinitializations():
    system = build_toy_system()
    container = system.server.containers["Greeter"]
    first = container.generation
    container.initialize()
    assert container.generation == first + 1
