"""Unit tests for the processor-sharing CPU model."""

import pytest

from repro.appserver.cpu import ProcessorSharingCpu
from repro.sim import Interrupt, Kernel, SimulationError


def test_parameter_validation():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        ProcessorSharingCpu(kernel, cores=0)
    with pytest.raises(SimulationError):
        ProcessorSharingCpu(kernel, quantum=0)


def test_uncontended_job_takes_its_demand():
    kernel = Kernel()
    cpu = ProcessorSharingCpu(kernel, quantum=0.004)
    done = []

    def job():
        yield from cpu.consume(0.010)
        done.append(kernel.now)

    kernel.process(job())
    kernel.run()
    assert done == [pytest.approx(0.010)]


def test_two_jobs_share_the_processor():
    kernel = Kernel()
    cpu = ProcessorSharingCpu(kernel, quantum=0.001)
    done = {}

    def job(tag):
        yield from cpu.consume(0.010)
        done[tag] = kernel.now

    kernel.process(job("a"))
    kernel.process(job("b"))
    kernel.run()
    # Each needs 10 ms of CPU; sharing stretches both to ~20 ms.
    assert done["a"] == pytest.approx(0.020, rel=0.05)
    assert done["b"] == pytest.approx(0.020, rel=0.05)


def test_multicore_removes_contention():
    kernel = Kernel()
    cpu = ProcessorSharingCpu(kernel, cores=2, quantum=0.001)
    done = {}

    def job(tag):
        yield from cpu.consume(0.010)
        done[tag] = kernel.now

    kernel.process(job("a"))
    kernel.process(job("b"))
    kernel.run()
    assert done["a"] == pytest.approx(0.010, rel=0.05)
    assert done["b"] == pytest.approx(0.010, rel=0.05)


def test_zero_demand_completes_immediately():
    kernel = Kernel()
    cpu = ProcessorSharingCpu(kernel)
    done = []

    def job():
        yield from cpu.consume(0.0)
        done.append(kernel.now)

    kernel.process(job())
    kernel.run()
    assert done == [0.0]


def test_negative_demand_rejected():
    kernel = Kernel()
    cpu = ProcessorSharingCpu(kernel)

    def job():
        yield from cpu.consume(-1.0)

    process = kernel.process(job())
    kernel.run()
    assert isinstance(process.value, SimulationError)


def test_hog_slows_other_jobs():
    kernel = Kernel()
    cpu = ProcessorSharingCpu(kernel, quantum=0.001)
    cpu.add_hog()
    done = []

    def job():
        yield from cpu.consume(0.010)
        done.append(kernel.now)

    kernel.process(job())
    kernel.run()
    # The hog doubles the stretch factor for the whole run.
    assert done == [pytest.approx(0.020, rel=0.05)]


def test_remove_hog_restores_speed():
    kernel = Kernel()
    cpu = ProcessorSharingCpu(kernel, quantum=0.001)
    cpu.add_hog()
    cpu.remove_hog()
    done = []

    def job():
        yield from cpu.consume(0.010)
        done.append(kernel.now)

    kernel.process(job())
    kernel.run()
    assert done == [pytest.approx(0.010, rel=0.05)]


def test_remove_hog_without_hogs_rejected():
    with pytest.raises(SimulationError):
        ProcessorSharingCpu(Kernel()).remove_hog()


def test_interrupted_job_stops_contributing_load():
    kernel = Kernel()
    cpu = ProcessorSharingCpu(kernel, quantum=0.001)

    def victim():
        try:
            yield from cpu.consume(10.0)
        except Interrupt:
            pass

    process = kernel.process(victim())

    def killer():
        yield kernel.timeout(0.005)
        process.interrupt()

    kernel.process(killer())
    kernel.run()
    assert cpu.active_jobs == 0


def test_load_reflects_active_jobs():
    kernel = Kernel()
    cpu = ProcessorSharingCpu(kernel, cores=2, quantum=0.001)
    samples = []

    def job():
        yield from cpu.consume(0.010)

    def sampler():
        yield kernel.timeout(0.002)
        samples.append(cpu.load)

    for _ in range(4):
        kernel.process(job())
    kernel.process(sampler())
    kernel.run()
    assert samples == [pytest.approx(2.0)]  # 4 jobs on 2 cores
