"""Unit tests for the heap model and leak attribution."""

import pytest

from repro.appserver.errors import OutOfMemoryError_
from repro.appserver.memory import OWNER_SERVER, HeapModel

MB = 1024 * 1024


def make_heap(capacity=100 * MB, baseline=10 * MB):
    return HeapModel(capacity=capacity, baseline=baseline)


def test_initial_accounting():
    heap = make_heap()
    assert heap.available == 90 * MB
    assert heap.used == 10 * MB
    assert heap.leaked_total == 0


def test_baseline_cannot_exceed_capacity():
    with pytest.raises(ValueError):
        HeapModel(capacity=10, baseline=11)


def test_default_baseline_is_fraction_of_capacity():
    heap = HeapModel(capacity=1000)
    assert heap.baseline == 130


def test_leak_reduces_available():
    heap = make_heap()
    heap.leak("ViewItem", 5 * MB)
    assert heap.available == 85 * MB
    assert heap.leaked_by("ViewItem") == 5 * MB


def test_negative_leak_rejected():
    with pytest.raises(ValueError):
        make_heap().leak("X", -1)


def test_leaks_accumulate_per_owner():
    heap = make_heap()
    heap.leak("A", MB)
    heap.leak("A", 2 * MB)
    heap.leak("B", 4 * MB)
    assert heap.leaked_by("A") == 3 * MB
    assert heap.leaked_by("B") == 4 * MB
    assert heap.leaked_total == 7 * MB


def test_owners_sorted_by_leak():
    heap = make_heap()
    heap.leak("small", MB)
    heap.leak("big", 10 * MB)
    heap.leak("mid", 5 * MB)
    assert heap.owners_by_leak() == ["big", "mid", "small"]


def test_release_owner_frees_and_reports():
    heap = make_heap()
    heap.leak("A", 8 * MB)
    assert heap.release_owner("A") == 8 * MB
    assert heap.leaked_by("A") == 0
    assert heap.available == 90 * MB


def test_release_unknown_owner_is_zero():
    assert make_heap().release_owner("ghost") == 0


def test_release_application_frees_only_listed():
    heap = make_heap()
    heap.leak("A", MB)
    heap.leak("B", MB)
    heap.leak(OWNER_SERVER, MB)
    freed = heap.release_application(["A", "B"])
    assert freed == 2 * MB
    assert heap.leaked_by(OWNER_SERVER) == MB


def test_release_all_frees_server_leaks_too():
    heap = make_heap()
    heap.leak("A", MB)
    heap.leak(OWNER_SERVER, 2 * MB)
    assert heap.release_all() == 3 * MB
    assert heap.leaked_total == 0


def test_check_allocation_raises_when_exhausted():
    heap = make_heap()
    heap.leak("A", 90 * MB)  # exactly exhausts the heap
    with pytest.raises(OutOfMemoryError_):
        heap.check_allocation()


def test_check_allocation_accounts_for_request_size():
    heap = make_heap()
    heap.leak("A", 85 * MB)
    heap.check_allocation(4 * MB)  # still fits
    with pytest.raises(OutOfMemoryError_):
        heap.check_allocation(5 * MB)


def test_leak_on_exhausted_heap_raises_but_records():
    heap = make_heap()
    heap.leak("A", 90 * MB)
    with pytest.raises(OutOfMemoryError_):
        heap.leak("A", MB)
    assert heap.leaked_by("A") == 91 * MB
