"""Unit tests for the transaction manager."""

import pytest

from repro.appserver.errors import TransactionError
from repro.appserver.transactions import TransactionManager, TxState


class FakeResource:
    def __init__(self):
        self.commits = []
        self.rollbacks = []

    def commit_transaction(self, tx_id):
        self.commits.append(tx_id)

    def rollback_transaction(self, tx_id):
        self.rollbacks.append(tx_id)


def test_begin_creates_active_tx():
    manager = TransactionManager()
    tx = manager.begin(owner="shepherd-1")
    assert tx.is_active
    assert tx in manager.active_transactions


def test_commit_flushes_resources_in_order():
    manager = TransactionManager()
    tx = manager.begin("o")
    first, second = FakeResource(), FakeResource()
    tx.enlist(first)
    tx.enlist(second)
    manager.commit(tx)
    assert first.commits == [tx.tx_id]
    assert second.commits == [tx.tx_id]
    assert tx.state is TxState.COMMITTED
    assert manager.committed_count == 1
    assert manager.active_transactions == []


def test_rollback_notifies_resources():
    manager = TransactionManager()
    tx = manager.begin("o")
    resource = FakeResource()
    tx.enlist(resource)
    manager.rollback(tx)
    assert resource.rollbacks == [tx.tx_id]
    assert tx.state is TxState.ROLLED_BACK
    assert manager.rolled_back_count == 1


def test_enlist_is_idempotent():
    manager = TransactionManager()
    tx = manager.begin("o")
    resource = FakeResource()
    tx.enlist(resource)
    tx.enlist(resource)
    manager.commit(tx)
    assert resource.commits == [tx.tx_id]


def test_double_commit_rejected():
    manager = TransactionManager()
    tx = manager.begin("o")
    manager.commit(tx)
    with pytest.raises(TransactionError):
        manager.commit(tx)


def test_commit_after_rollback_rejected():
    manager = TransactionManager()
    tx = manager.begin("o")
    manager.rollback(tx)
    with pytest.raises(TransactionError):
        manager.commit(tx)


def test_enlist_on_retired_tx_rejected():
    manager = TransactionManager()
    tx = manager.begin("o")
    manager.commit(tx)
    with pytest.raises(TransactionError):
        tx.enlist(FakeResource())


def test_abort_involving_targets_touched_components():
    manager = TransactionManager()
    touched = manager.begin("a")
    touched.touch("ViewItem")
    untouched = manager.begin("b")
    untouched.touch("MakeBid")
    aborted = manager.abort_involving(["ViewItem"])
    assert aborted == 1
    assert touched.state is TxState.ROLLED_BACK
    assert untouched.is_active


def test_abort_involving_handles_group_membership():
    manager = TransactionManager()
    tx = manager.begin("a")
    tx.touch("Item")
    assert manager.abort_involving(["User", "Item", "Bid"]) == 1


def test_abort_all():
    manager = TransactionManager()
    for tag in ("a", "b", "c"):
        manager.begin(tag)
    assert manager.abort_all() == 3
    assert manager.active_transactions == []


def test_tx_ids_are_unique():
    manager = TransactionManager()
    ids = {manager.begin(i).tx_id for i in range(10)}
    assert len(ids) == 10
