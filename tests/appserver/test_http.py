"""Unit tests for the HTTP types."""

from repro.appserver.http import (
    HttpRequest,
    HttpResponse,
    HttpStatus,
    error_response,
    exception_page,
)


def test_request_ids_are_unique():
    first = HttpRequest(url="/a", operation="a")
    second = HttpRequest(url="/a", operation="a")
    assert first.request_id != second.request_id


def test_response_defaults():
    response = HttpResponse(HttpStatus.OK)
    assert not response.is_error_status
    assert not response.network_error
    assert response.retry_after is None


def test_error_status_detection():
    assert HttpResponse(HttpStatus.NOT_FOUND).is_error_status
    assert HttpResponse(HttpStatus.INTERNAL_SERVER_ERROR).is_error_status
    assert HttpResponse(HttpStatus.SERVICE_UNAVAILABLE).is_error_status
    assert not HttpResponse(HttpStatus.OK).is_error_status


def test_error_response_carries_keywords():
    response = error_response(HttpStatus.INTERNAL_SERVER_ERROR, "boom")
    assert response.is_error_status
    assert "error" in response.body
    assert "boom" in response.body


def test_exception_page_is_200_with_telltale_text():
    """Incorrectly-handled exceptions render polite 200 pages (§5.1) —
    only the keyword scan catches them."""
    response = exception_page("NullPointerException")
    assert response.status == HttpStatus.OK
    assert "exception" in response.body.lower()


def test_comparable_payload_strips_volatile_keys():
    response = HttpResponse(
        HttpStatus.OK,
        payload={"item_id": 3, "elapsed": 0.012, "served_by": "node1",
                 "price": 10},
    )
    assert response.comparable_payload() == {"item_id": 3, "price": 10}
