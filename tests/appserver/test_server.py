"""Integration tests for the application server's request path."""

import pytest

from repro.appserver.errors import AppServerError
from repro.appserver.http import HttpRequest, HttpStatus
from repro.appserver.memory import OWNER_SERVER
from repro.appserver.server import ServerState
from tests.toyapp import build_toy_system, issue, toy_descriptors


def test_successful_request_roundtrip():
    system = build_toy_system()
    response = issue(system, "/toy/greet", {"who": "osdi"})
    assert response.status == HttpStatus.OK
    assert response.body == "hello osdi"


def test_unknown_url_is_404():
    system = build_toy_system()
    response = issue(system, "/toy/nothing-here")
    assert response.status == HttpStatus.NOT_FOUND


def test_application_exception_becomes_500_with_keywords():
    system = build_toy_system()
    response = issue(system, "/toy/balance", {"account_id": 999})
    assert response.status == HttpStatus.INTERNAL_SERVER_ERROR
    assert "exception" in response.body


def test_stopped_server_refuses_connections():
    system = build_toy_system()
    system.server.kill()
    response = issue(system, "/toy/greet")
    assert getattr(response, "network_error", False)


def test_accept_fault_surfaces_as_network_error():
    """Bad syscall returns break the accept path (§5.1 low-level faults)."""
    system = build_toy_system()
    system.server.accept_fault = "accept() returned EBADF"
    response = issue(system, "/toy/greet")
    assert response.network_error
    assert "EBADF" in response.body


def test_double_deploy_rejected():
    system = build_toy_system()
    with pytest.raises(AppServerError):
        system.server.deploy("toy", toy_descriptors())


def test_boot_twice_rejected():
    system = build_toy_system()

    def reboot():
        yield from system.server.boot(cold=False)

    process = system.kernel.process(reboot())
    system.kernel.run()
    assert isinstance(process.value, AppServerError)


def test_kill_aborts_active_transactions():
    system = build_toy_system()
    tx = system.server.transactions.begin("orphan")
    system.server.kill()
    assert not tx.is_active
    assert system.server.transactions.active_transactions == []


def test_kill_clears_fasts_but_cold_boot_restores_service():
    system = build_toy_system()
    system.server.session_store.write(
        "cookie-1",
        __import__("repro.stores.sessions", fromlist=["SessionData"]).SessionData(
            "cookie-1", 7
        ),
    )
    system.server.kill()
    assert len(system.server.session_store) == 0

    def restart():
        yield from system.server.boot(cold=True)

    start = system.kernel.now
    system.kernel.run_until_triggered(system.kernel.process(restart()))
    # Cold boot charges the full 19 s JVM restart time (§5.2).
    assert system.kernel.now - start == pytest.approx(19.08, rel=0.01)
    response = issue(system, "/toy/greet")
    assert response.status == HttpStatus.OK


def test_jvm_restart_frees_server_leaks():
    system = build_toy_system()
    system.server.heap.leak(OWNER_SERVER, 1024)

    def restart():
        yield from system.server.restart_jvm()

    system.kernel.run_until_triggered(system.kernel.process(restart()))
    assert system.server.heap.leaked_total == 0
    assert system.server.state is ServerState.RUNNING


def test_request_lease_purges_stuck_request():
    system = build_toy_system()
    system.server.request_lease_ttl = 0.5
    container = system.server.containers["Greeter"]

    def stuck_hook(container_, ctx, method):
        yield system.kernel.event()  # never triggers: a hung computation

    container.invocation_hooks.append(stuck_hook)
    start = system.kernel.now
    response = issue(system, "/toy/greet")
    assert response.network_error
    assert "request-lease-expired" in response.body
    assert system.kernel.now - start == pytest.approx(0.5, abs=0.01)


def test_response_accounting_by_status():
    system = build_toy_system()
    issue(system, "/toy/greet")
    issue(system, "/toy/balance", {"account_id": 999})
    assert system.server.responses_by_status[200] == 1
    assert system.server.responses_by_status[500] == 1
    assert system.server.requests_accepted == 2
    assert system.server.requests_completed == 2


def test_classloader_statics_survive_microreboot_not_app_restart():
    system = build_toy_system()
    loader = system.server.containers["Greeter"].classloader
    loader.statics["hits"] = 42

    def urb():
        yield from system.coordinator.microreboot(["Greeter"])

    system.kernel.run_until_triggered(system.kernel.process(urb()))
    assert system.server.containers["Greeter"].classloader.statics["hits"] == 42

    def app_restart():
        yield from system.coordinator.restart_application()

    system.kernel.run_until_triggered(system.kernel.process(app_restart()))
    assert system.server.containers["Greeter"].classloader.statics == {}


def test_concurrent_requests_all_complete():
    system = build_toy_system()
    responses = []

    def client(i):
        event = system.server.handle_request(
            HttpRequest(url="/toy/greet", operation="greet", params={"who": str(i)})
        )
        response = yield event
        responses.append(response)

    for i in range(50):
        system.kernel.process(client(i))
    system.kernel.run(until=30.0)
    assert len(responses) == 50
    assert all(r.status == HttpStatus.OK for r in responses)
