"""Unit tests for the naming service (JNDI analogue)."""

import pytest

from repro.appserver.errors import NamingError
from repro.appserver.naming import NamingService, Sentinel


def test_bind_and_lookup():
    naming = NamingService()
    naming.bind("ViewItem", "container-ViewItem")
    assert naming.lookup("ViewItem") == "container-ViewItem"


def test_lookup_unbound_raises():
    with pytest.raises(NamingError):
        NamingService().lookup("ghost")


def test_rebinding_replaces():
    naming = NamingService()
    naming.bind("X", "a")
    naming.bind("X", "b")
    assert naming.lookup("X") == "b"


def test_unbind_removes():
    naming = NamingService()
    naming.bind("X", "a")
    naming.unbind("X")
    assert not naming.is_bound("X")
    with pytest.raises(NamingError):
        naming.lookup("X")


def test_unbind_missing_is_noop():
    NamingService().unbind("never-bound")


def test_bound_names_lists_all():
    naming = NamingService()
    naming.bind("A", "1")
    naming.bind("B", "2")
    assert sorted(naming.bound_names()) == ["A", "B"]


def test_sentinel_binding_and_lookup():
    naming = NamingService()
    naming.bind("X", "container-X")
    naming.bind_sentinel("X", retry_after=0.5)
    assert naming.is_sentinel("X")
    result = naming.lookup("X")
    assert isinstance(result, Sentinel)
    assert result.retry_after == 0.5
    assert result.component == "X"


def test_rebind_after_sentinel_clears_it():
    naming = NamingService()
    naming.bind("X", "c")
    naming.bind_sentinel("X", retry_after=1.0)
    naming.bind("X", "c")
    assert not naming.is_sentinel("X")
    assert naming.lookup("X") == "c"


def test_corrupt_to_null_elicits_naming_error():
    naming = NamingService()
    naming.bind("X", "c")
    naming._corrupt("X", None)
    with pytest.raises(NamingError, match="null"):
        naming.lookup("X")


def test_corrupt_unbound_name_rejected():
    with pytest.raises(NamingError):
        NamingService()._corrupt("ghost", "x")


def test_corrupt_to_wrong_target_resolves_silently():
    """A *wrong* entry does not fail at lookup time — it misroutes."""
    naming = NamingService()
    naming.bind("X", "container-X")
    naming._corrupt("X", "container-Y")
    assert naming.lookup("X") == "container-Y"
