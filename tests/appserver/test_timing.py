"""Unit tests for the timing calibration."""

import random

import pytest

from repro.appserver.timing import TimingModel


def test_jboss_service_init_matches_paper_breakdown():
    """§5.2: 56% of the 19 s JVM restart is service initialization."""
    timing = TimingModel()
    services = dict(timing.jboss_services)
    assert services["transaction-service"] == 2.0
    assert services["embedded-web-server"] == 1.8
    assert services["control-and-management"] == 1.2
    assert len(timing.jboss_services) > 70
    total = timing.jboss_services_init_time()
    assert total == pytest.approx(0.56 * 19.083, rel=0.02)


def test_jvm_restart_time_matches_table3():
    timing = TimingModel()
    assert timing.jvm_restart_time() == pytest.approx(19.083, rel=0.01)


def test_app_restart_matches_table3():
    timing = TimingModel()
    total = timing.app_restart_crash_time + timing.app_restart_reinit_time
    assert total == pytest.approx(7.699, rel=0.001)


def test_ssm_penalty_is_an_order_larger_than_fasts():
    """Table 5: SSM accesses cost far more than in-JVM FastS accesses."""
    timing = TimingModel()
    assert timing.ssm_access_time > 10 * timing.fasts_access_time
    assert 0.010 <= timing.ssm_access_time <= 0.025


def test_sample_applies_bounded_jitter():
    timing = TimingModel(jitter=0.15)
    rng = random.Random(1)
    draws = [timing.sample(rng, 1.0) for _ in range(500)]
    assert all(0.85 <= d <= 1.15 for d in draws)
    assert min(draws) < 0.90 and max(draws) > 1.10


def test_sample_without_jitter_is_identity():
    timing = TimingModel(jitter=0.0)
    assert timing.sample(random.Random(1), 0.42) == 0.42
