"""Unit tests for classloader identity and static-variable survival."""

from repro.appserver.classloader import ClassLoaderRegistry


def test_loader_is_stable_across_calls():
    registry = ClassLoaderRegistry()
    assert registry.loader_for("X") is registry.loader_for("X")


def test_different_components_different_loaders():
    registry = ClassLoaderRegistry()
    assert registry.loader_for("X") is not registry.loader_for("Y")


def test_class_identity_includes_loader():
    registry = ClassLoaderRegistry()
    x_identity = registry.loader_for("X").class_identity("ItemBean")
    y_identity = registry.loader_for("Y").class_identity("ItemBean")
    assert x_identity != y_identity  # same class name, different loader


def test_statics_survive_reacquisition():
    """A microreboot keeps the loader, so statics persist (§3.2)."""
    registry = ClassLoaderRegistry()
    registry.loader_for("X").statics["counter"] = 41
    assert registry.loader_for("X").statics["counter"] == 41


def test_discard_resets_identity_and_statics():
    """An application/JVM restart discards the loader: fresh statics."""
    registry = ClassLoaderRegistry()
    old = registry.loader_for("X")
    old.statics["counter"] = 41
    registry.discard("X")
    new = registry.loader_for("X")
    assert new is not old
    assert new.loader_id != old.loader_id
    assert new.statics == {}


def test_discard_all():
    registry = ClassLoaderRegistry()
    old_x = registry.loader_for("X")
    old_y = registry.loader_for("Y")
    registry.discard_all()
    assert registry.loader_for("X") is not old_x
    assert registry.loader_for("Y") is not old_y
