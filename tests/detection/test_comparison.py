"""Tests for the comparison-based detector against a known-good shadow."""

import pytest

from repro.appserver.http import HttpRequest
from repro.core.recovery_manager import FailureKind
from repro.detection.comparison import COMPARABLE_FIELDS, ComparisonDetector
from repro.ebid.app import build_ebid_system
from repro.ebid.descriptors import OPERATIONS
from repro.ebid.schema import DatasetConfig
from repro.faults import FaultInjector
from repro.faults.corruption import CorruptionMode


@pytest.fixture
def rig():
    """Main + shadow systems on one kernel, same seed/dataset."""
    main = build_ebid_system(dataset=DatasetConfig.tiny(), seed=5)
    shadow = build_ebid_system(
        kernel=main.kernel, dataset=DatasetConfig.tiny(), seed=5, name="shadow"
    )
    return main, shadow, ComparisonDetector(shadow)


def check(main, detector, url, params=None, cookie=None):
    request = HttpRequest(
        url=url, operation=url.rsplit("/", 1)[-1], params=params or {},
        cookie=cookie,
    )
    response = main.kernel.run_until_triggered(main.server.handle_request(request))

    def driver():
        verdict = yield from detector.check(request, response)
        return verdict, response

    return main.kernel.run_until_triggered(main.kernel.process(driver()))


def test_every_operation_has_a_field_whitelist():
    for operation in OPERATIONS:
        assert operation in COMPARABLE_FIELDS, operation


def test_identical_systems_agree(rig):
    main, _shadow, detector = rig
    for url, params in (
        ("/ebid/ViewItem", {"item_id": 3}),
        ("/ebid/BrowseCategories", None),
        ("/ebid/SearchItemsByCategory", {"category_id": 1}),
        ("/ebid/ViewUserInfo", {"user_id": 2}),
    ):
        verdict, _response = check(main, detector, url, params)
        assert verdict is None, url
    assert detector.mismatches == 0
    assert detector.checks == 4


def test_wrong_dollar_amount_detected(rig):
    """The paper's flagship case: surreptitious corruption of a price."""
    main, _shadow, detector = rig
    FaultInjector(main).corrupt_session_bean_attribute(CorruptionMode.WRONG)
    verdict, response = check(main, detector, "/ebid/ViewItem", {"item_id": 3})
    assert verdict is FailureKind.COMPARISON_MISMATCH
    assert response.payload["price"] != 0


def test_status_divergence_detected(rig):
    main, _shadow, detector = rig
    FaultInjector(main).inject_transient_exception("BrowseCategories")
    verdict, _response = check(main, detector, "/ebid/BrowseCategories")
    assert verdict is FailureKind.COMPARISON_MISMATCH


def test_cookie_translation_for_sessions(rig):
    main, _shadow, detector = rig
    verdict, login = check(
        main, detector, "/ebid/Authenticate",
        {"user_id": 1, "password": "pw1"},
    )
    assert verdict is None
    cookie = login.payload["cookie"]
    assert detector._cookie_map[cookie]  # learned the shadow's cookie
    verdict, about = check(main, detector, "/ebid/AboutMe", cookie=cookie)
    assert verdict is None
    assert about.payload["nickname"] == "user1"


def test_mismatch_counter_tracks_verdicts(rig):
    main, _shadow, detector = rig
    verdict, _ = check(main, detector, "/ebid/ViewItem", {"item_id": 3})
    assert verdict is None
    FaultInjector(main).corrupt_session_bean_attribute(CorruptionMode.WRONG)
    # A *different* item: the WAR's fragment cache still holds item 3's
    # pre-corruption page, which would (correctly) still compare equal.
    verdict, _ = check(main, detector, "/ebid/ViewItem", {"item_id": 4})
    assert verdict is FailureKind.COMPARISON_MISMATCH
    assert detector.checks == 2
    assert detector.mismatches == 1


def test_mismatch_report_reaches_the_recovery_manager(rig):
    """The full §4 loop: a comparison mismatch becomes a FailureReport of
    kind COMPARISON_MISMATCH, scores the URL's call path in the RM, and
    (at threshold 1) triggers an EJB-level microreboot."""
    from repro.core.recovery_manager import FailureReport, RecoveryManager
    from repro.ebid.descriptors import URL_PATH_MAP

    main, _shadow, detector = rig
    FaultInjector(main).corrupt_session_bean_attribute(CorruptionMode.WRONG)
    verdict, response = check(main, detector, "/ebid/ViewItem", {"item_id": 3})
    assert verdict is FailureKind.COMPARISON_MISMATCH

    rm = RecoveryManager(
        main.kernel, main.coordinator, URL_PATH_MAP,
        score_threshold=1, post_recovery_grace=0.0,
    )
    rm.start()
    rm.report(
        FailureReport(
            time=main.kernel.now,
            url="/ebid/ViewItem",
            operation="ViewItem",
            kind=verdict,
            detail=response.body[:80],
        )
    )
    main.kernel.run(until=main.kernel.now + 30.0)
    assert rm.metrics.get("rm.reports.received").value == 1
    assert rm.actions, "a comparison mismatch must be actionable"
    action = rm.actions[0]
    assert action.level == "ejb"
    assert action.trigger is FailureKind.COMPARISON_MISMATCH
    # The ViewItem path's beans are the candidates the mismatch implicates.
    assert set(action.target) & set(URL_PATH_MAP["/ebid/ViewItem"])
