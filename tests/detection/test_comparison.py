"""Tests for the comparison-based detector against a known-good shadow."""

import pytest

from repro.appserver.http import HttpRequest
from repro.core.recovery_manager import FailureKind
from repro.detection.comparison import COMPARABLE_FIELDS, ComparisonDetector
from repro.ebid.app import build_ebid_system
from repro.ebid.descriptors import OPERATIONS
from repro.ebid.schema import DatasetConfig
from repro.faults import FaultInjector
from repro.faults.corruption import CorruptionMode


@pytest.fixture
def rig():
    """Main + shadow systems on one kernel, same seed/dataset."""
    main = build_ebid_system(dataset=DatasetConfig.tiny(), seed=5)
    shadow = build_ebid_system(
        kernel=main.kernel, dataset=DatasetConfig.tiny(), seed=5, name="shadow"
    )
    return main, shadow, ComparisonDetector(shadow)


def check(main, detector, url, params=None, cookie=None):
    request = HttpRequest(
        url=url, operation=url.rsplit("/", 1)[-1], params=params or {},
        cookie=cookie,
    )
    response = main.kernel.run_until_triggered(main.server.handle_request(request))

    def driver():
        verdict = yield from detector.check(request, response)
        return verdict, response

    return main.kernel.run_until_triggered(main.kernel.process(driver()))


def test_every_operation_has_a_field_whitelist():
    for operation in OPERATIONS:
        assert operation in COMPARABLE_FIELDS, operation


def test_identical_systems_agree(rig):
    main, _shadow, detector = rig
    for url, params in (
        ("/ebid/ViewItem", {"item_id": 3}),
        ("/ebid/BrowseCategories", None),
        ("/ebid/SearchItemsByCategory", {"category_id": 1}),
        ("/ebid/ViewUserInfo", {"user_id": 2}),
    ):
        verdict, _response = check(main, detector, url, params)
        assert verdict is None, url
    assert detector.mismatches == 0
    assert detector.checks == 4


def test_wrong_dollar_amount_detected(rig):
    """The paper's flagship case: surreptitious corruption of a price."""
    main, _shadow, detector = rig
    FaultInjector(main).corrupt_session_bean_attribute(CorruptionMode.WRONG)
    verdict, response = check(main, detector, "/ebid/ViewItem", {"item_id": 3})
    assert verdict is FailureKind.COMPARISON_MISMATCH
    assert response.payload["price"] != 0


def test_status_divergence_detected(rig):
    main, _shadow, detector = rig
    FaultInjector(main).inject_transient_exception("BrowseCategories")
    verdict, _response = check(main, detector, "/ebid/BrowseCategories")
    assert verdict is FailureKind.COMPARISON_MISMATCH


def test_cookie_translation_for_sessions(rig):
    main, _shadow, detector = rig
    verdict, login = check(
        main, detector, "/ebid/Authenticate",
        {"user_id": 1, "password": "pw1"},
    )
    assert verdict is None
    cookie = login.payload["cookie"]
    assert detector._cookie_map[cookie]  # learned the shadow's cookie
    verdict, about = check(main, detector, "/ebid/AboutMe", cookie=cookie)
    assert verdict is None
    assert about.payload["nickname"] == "user1"
