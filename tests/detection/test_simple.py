"""Tests for the simple client-side detector."""

import pytest

from repro.appserver.http import HttpRequest, HttpResponse, HttpStatus
from repro.core.recovery_manager import FailureKind
from repro.detection.simple import SimpleDetector


def request(op="ViewItem"):
    return HttpRequest(url=f"/ebid/{op}", operation=op)


def response(status=HttpStatus.OK, body="<html>fine</html>", payload=None,
             network_error=False):
    return HttpResponse(status=status, body=body, payload=payload or {},
                        network_error=network_error)


@pytest.fixture
def detector():
    return SimpleDetector()


def test_healthy_response_passes(detector):
    assert detector.evaluate(request(), response()) is None


def test_no_response_is_timeout(detector):
    assert detector.evaluate(request(), None) is FailureKind.TIMEOUT


def test_network_error(detector):
    r = response(network_error=True, body="network error: connection refused")
    assert detector.evaluate(request(), r) is FailureKind.NETWORK


def test_http_5xx(detector):
    r = response(status=HttpStatus.INTERNAL_SERVER_ERROR, body="<html>error</html>")
    assert detector.evaluate(request(), r) is FailureKind.HTTP_ERROR


def test_http_404(detector):
    r = response(status=HttpStatus.NOT_FOUND, body="x")
    assert detector.evaluate(request(), r) is FailureKind.HTTP_ERROR


def test_oom_signature_is_resource_exhaustion(detector):
    r = response(
        status=HttpStatus.INTERNAL_SERVER_ERROR,
        body="<html>error: exception: heap exhausted while allocating</html>",
    )
    assert detector.evaluate(request(), r) is FailureKind.RESOURCE_EXHAUSTION


@pytest.mark.parametrize("keyword", ["exception", "failed", "error"])
def test_keyword_scan_on_200_pages(detector, keyword):
    """Incorrectly-handled exceptions render 200 pages with telltale text."""
    r = response(body=f"<html>We are sorry, an {keyword} occurred</html>")
    assert detector.evaluate(request(), r) is FailureKind.KEYWORD


def test_benign_rejection_not_flagged(detector):
    r = response(body="<html>bid rejected: amount below minimum</html>")
    assert detector.evaluate(request(), r) is None


def test_login_prompt_while_logged_in(detector):
    r = response(body="<html>Please log in to continue</html>",
                 payload={"login_required": True})
    assert (
        detector.evaluate(request(), r, believes_logged_in=True)
        is FailureKind.APP_SPECIFIC
    )


def test_login_prompt_while_logged_out_is_fine(detector):
    r = response(payload={"login_required": True})
    assert detector.evaluate(request(), r, believes_logged_in=False) is None


def test_negative_id_detected(detector):
    """The paper's canonical example: negative item IDs in the reply."""
    r = response(payload={"item_id": -99999, "price": 10})
    assert detector.evaluate(request(), r) is FailureKind.APP_SPECIFIC


def test_negative_id_in_list_detected(detector):
    r = response(payload={"item_ids": [3, -7, 9]})
    assert detector.evaluate(request(), r) is FailureKind.APP_SPECIFIC


def test_non_integer_ids_ignored(detector):
    r = response(payload={"buy_id": None, "item_id": 5})
    assert detector.evaluate(request(), r) is None
