#!/usr/bin/env python3
"""Microrejuvenation: reclaiming memory leaks without shutting down (§6.4).

Two components leak: ViewItem at 250 KB per invocation and Item (inside
the slow-recovering EntityGroup) at 2 KB.  The rejuvenation service watches
available heap; below Malarm it microreboots components in a rolling
fashion until Msufficient is available again — and it *learns*: after the
first full sweep, the biggest leakers are tried first.

Run with::

    python examples/memory_rejuvenation.py
"""

from repro.core import RejuvenationService
from repro.experiments.common import SingleNodeRig

KB = 1024
MB = 1024 * KB


def main():
    rig = SingleNodeRig(seed=13, n_clients=200, with_recovery_manager=False)
    heap = rig.system.server.heap
    print(f"Heap: {heap.capacity // MB} MB; Malarm at 35%, Msufficient at 80%.")
    print("Leaks: ViewItem 1.8 MB/invocation, Item 2 KB/invocation.\n")

    rig.injector.inject_memory_leak("ViewItem", 1800 * KB)
    rig.injector.inject_memory_leak("Item", 2 * KB)

    service = RejuvenationService(
        rig.kernel, rig.system.coordinator,
        m_alarm_fraction=0.35, m_sufficient_fraction=0.80,
        check_interval=5.0,
    )
    service.start()
    rig.start()

    for minute in range(1, 16):
        rig.run_for(60.0)
        available = heap.available // MB
        print(f"[t={minute:2d} min] available {available:4d} MB; "
              f"rounds={service.rejuvenation_rounds} "
              f"µRBs={service.microreboots_performed} "
              f"JVM restarts={service.jvm_restarts_performed}")

    print("\nLearned rejuvenation order (biggest leakers first):")
    for name in service.candidates[:5]:
        print(f"  {name:<22} last released "
              f"{service.released_history.get(name, 0) // MB} MB")

    metrics = rig.metrics
    print(f"\nLost work over the run: {metrics.failed_requests} failed "
          f"requests out of {metrics.total_requests}.")
    print("A whole-JVM rejuvenation policy loses an order of magnitude "
          "more (see benchmarks/test_figure6_rejuvenation.py).")


if __name__ == "__main__":
    main()
