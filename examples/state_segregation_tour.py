#!/usr/bin/env python3
"""A tour of crash-only state segregation (§2, §3.3).

eBid keeps three kinds of important state in three dedicated stores:

  * long-term data    → the transactional database (survives everything);
  * session state     → FastS (in-JVM) or SSM (external, checksummed);
  * presentation data → a read-only static filesystem.

This example logs a user in, stores session state, then escalates through
the recovery hierarchy — microreboot, whole-application restart, JVM
restart — showing exactly which state survives each level, for both
session-store choices.

Run with::

    python examples/state_segregation_tour.py
"""

from repro import DatasetConfig, build_ebid_system
from repro.appserver.http import HttpRequest


def issue(system, url, params=None, cookie=None):
    request = HttpRequest(url=url, operation=url.rsplit("/", 1)[-1],
                          params=params or {}, cookie=cookie)
    return system.kernel.run_until_triggered(system.server.handle_request(request))


def session_alive(system, cookie):
    response = issue(system, "/ebid/AboutMe", cookie=cookie)
    return not response.payload.get("login_required")


def tour(store_kind):
    print(f"=== session store: {store_kind.upper()} ===")
    system = build_ebid_system(
        dataset=DatasetConfig.tiny(), seed=5, session_store=store_kind
    )
    kernel = system.kernel

    login = issue(system, "/ebid/Authenticate",
                  {"user_id": 1, "password": "pw1"})
    cookie = login.payload["cookie"]
    issue(system, "/ebid/MakeBid", {"item_id": 3}, cookie)  # session write
    bids_before = system.database.count("bids")
    print(f"  logged in (cookie {cookie}), item 3 selected for bidding")

    kernel.run_until_triggered(
        kernel.process(system.coordinator.microreboot(["Item"]))
    )
    print(f"  after EntityGroup µRB:        session alive: "
          f"{session_alive(system, cookie)}  (both stores survive µRBs)")

    kernel.run_until_triggered(
        kernel.process(system.coordinator.restart_application())
    )
    print(f"  after whole-app restart:      session alive: "
          f"{session_alive(system, cookie)}  (stores live outside the app)")

    kernel.run_until_triggered(kernel.process(system.server.restart_jvm()))
    alive = session_alive(system, cookie)
    note = "SSM is outside the JVM" if alive else "FastS died with the JVM"
    print(f"  after JVM restart:            session alive: {alive}  ({note})")

    print(f"  database rows intact through all of it: "
          f"{system.database.count('bids') == bids_before}")
    print(f"  static pages still served: "
          f"{issue(system, '/ebid/HomePage').status == 200}")
    print()


def main():
    for store_kind in ("fasts", "ssm"):
        tour(store_kind)
    print("This is the paper's design bargain: FastS is an order of "
          "magnitude faster per access (Table 5),\nSSM additionally "
          "survives JVM and node restarts (§5.2's lost-work comparison).")


if __name__ == "__main__":
    main()
