#!/usr/bin/env python3
"""Automated recovery of a loaded auction site (the Figure 1 story).

A population of emulated auction users hammers a single eBid node while
three different faults strike, ten (simulated) minutes apart:

  1. the transaction method map inside the EntityGroup is corrupted;
  2. RegisterNewUser's JNDI entry is nulled;
  3. BrowseCategories starts throwing exceptions.

The client-side detectors report failures to the recovery manager, which
diagnoses by URL call-path scoring and recovers with the recursive policy —
microreboots first.  The timeline printed at the end shows every recovery
decision and what it cost in failed requests.

Run with::

    python examples/auction_site_recovery.py
"""

from repro.experiments.common import SingleNodeRig
from repro.faults.corruption import CorruptionMode

FAULTS = [
    (120.0, "corrupt Item.record_bid's transaction attribute (EntityGroup)",
     lambda rig: rig.injector.corrupt_tx_method_map(
         "Item", "record_bid", CorruptionMode.WRONG)),
    (240.0, "null out RegisterNewUser's JNDI entry",
     lambda rig: rig.injector.corrupt_jndi(
         "RegisterNewUser", CorruptionMode.NULL)),
    (360.0, "inject a transient exception into BrowseCategories",
     lambda rig: rig.injector.inject_transient_exception("BrowseCategories")),
]


def main():
    print("Building a 150-client single-node rig with automated recovery...")
    rig = SingleNodeRig(seed=7, n_clients=150)
    rig.start()

    def fault_schedule():
        last = 0.0
        for at, description, inject in FAULTS:
            yield rig.kernel.timeout(at - last)
            last = at
            print(f"[t={rig.kernel.now:6.1f}s] FAULT: {description}")
            inject(rig)

    rig.kernel.process(fault_schedule(), name="fault-schedule")
    rig.run_for(480.0)

    print("\nRecovery timeline (what the recovery manager did):")
    for action in rig.recovery_manager.actions:
        target = "+".join(action.target) or "(whole level)"
        print(f"  [t={action.decided_at:6.1f}s] {action.level:<12} {target}"
              f"  ({(action.finished_at - action.decided_at) * 1000:.0f} ms)")

    metrics = rig.metrics
    print(f"\nOver {rig.kernel.now / 60:.0f} simulated minutes:")
    print(f"  good requests:   {metrics.good_requests}")
    print(f"  failed requests: {metrics.failed_requests}")
    print(f"  failed actions:  {metrics.failed_actions}")
    recoveries = len(rig.recovery_manager.actions)
    if recoveries:
        print(f"  failed requests per recovery: "
              f"{metrics.failed_requests / recoveries:.1f} "
              "(the paper's JVM-restart baseline: ≈3,917)")


if __name__ == "__main__":
    main()
