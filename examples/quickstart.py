#!/usr/bin/env python3
"""Quickstart: inject a fault into eBid, recover it with a microreboot.

Builds a single-node eBid system (the paper's crash-only auction
application on the microreboot-enabled application server), breaks the
most-frequently called component, and shows that a ~0.4 second microreboot
cures it — while a JVM restart would have taken ~19 seconds.

Run with::

    python examples/quickstart.py
"""

from repro import DatasetConfig, FaultInjector, build_ebid_system
from repro.appserver.http import HttpRequest


def issue(system, url, params=None):
    """Send one HTTP request and run the simulation to its response."""
    request = HttpRequest(url=url, operation=url.rsplit("/", 1)[-1],
                          params=params or {})
    event = system.server.handle_request(request)
    return system.kernel.run_until_triggered(event)


def main():
    print("Booting a single-node eBid system (warm start)...")
    system = build_ebid_system(dataset=DatasetConfig.tiny(), seed=42)
    kernel = system.kernel

    response = issue(system, "/ebid/BrowseCategories")
    print(f"[t={kernel.now:7.3f}s] healthy: {response.status} {response.body[:60]}")

    print("\nInjecting a transient exception into BrowseCategories "
          "(the most-called EJB)...")
    FaultInjector(system).inject_transient_exception("BrowseCategories")
    response = issue(system, "/ebid/BrowseCategories")
    print(f"[t={kernel.now:7.3f}s] faulty:  {response.status} {response.body[:60]}")

    print("\nMicrorebooting just that component...")
    start = kernel.now
    event = kernel.run_until_triggered(
        kernel.process(system.coordinator.microreboot(["BrowseCategories"]))
    )
    print(f"[t={kernel.now:7.3f}s] µRB done in {(kernel.now - start) * 1000:.0f} ms "
          f"(crash {event.crash_seconds * 1000:.0f} ms + "
          f"reinit {event.reinit_seconds * 1000:.0f} ms)")

    response = issue(system, "/ebid/BrowseCategories")
    print(f"[t={kernel.now:7.3f}s] cured:   {response.status} {response.body[:60]}")

    print("\nOther components were never touched — a request that was "
          "served during the µRB:")
    jvm_restart = system.server.timing.jvm_restart_time()
    print(f"A JVM restart would have taken {jvm_restart:.1f} s and lost every "
          "user session in FastS.")
    print(f"The microreboot took {(kernel.now - start) * 1000:.0f} ms — about "
          f"{jvm_restart / (kernel.now - start):.0f}x cheaper.")


if __name__ == "__main__":
    main()
