#!/usr/bin/env python3
"""Cluster failover: JVM restart vs microreboot (the §5.3 comparison).

A 4-node eBid cluster behind a session-affine load balancer serves an
emulated user population with node-local (FastS) session state.  A fault
strikes one node; the load balancer fails its traffic over while the node
recovers.  With a JVM restart, every session homed on the bad node is
stranded (their state lived in its FastS); with a microreboot the node is
back before most users notice.

Run with::

    python examples/cluster_failover.py
"""

from repro.cluster import FailoverMode
from repro.experiments.cluster_common import ClusterRig

N_NODES = 4
CLIENTS_PER_NODE = 120
WARMUP = 150.0
OBSERVE = 300.0


def run_variant(recovery):
    rig = ClusterRig(N_NODES, CLIENTS_PER_NODE, seed=21)
    rig.start(warmup=WARMUP)
    inject_at = rig.kernel.now
    bad_node = rig.cluster.nodes[0]
    rig.injector_for(0).inject_transient_exception("BrowseCategories")
    outcome = rig.script_recovery(
        bad_node, recovery, components=("BrowseCategories",),
        failover=FailoverMode.FULL, inject_at=inject_at,
    )
    failed_before = rig.metrics.failed_requests
    rig.run_for(OBSERVE)
    balancer = rig.cluster.load_balancer
    return {
        "recovery": recovery,
        "detected_after": outcome["detected_at"] - inject_at,
        "recovery_time": outcome["recovered_at"] - outcome["detected_at"],
        "failed_requests": rig.metrics.failed_requests - failed_before,
        "sessions_failed_over": len(balancer.sessions_failed_over),
        "total_requests": rig.metrics.total_requests,
    }


def main():
    print(f"{N_NODES}-node cluster, {CLIENTS_PER_NODE} clients/node, "
          "FastS session state, fault in BrowseCategories on node1.\n")
    for recovery in ("process-restart", "microreboot"):
        print(f"--- recovery scheme: {recovery} ---")
        outcome = run_variant(recovery)
        print(f"  detected after:       {outcome['detected_after']:.1f} s")
        print(f"  recovery took:        {outcome['recovery_time']:.2f} s")
        print(f"  sessions failed over: {outcome['sessions_failed_over']}")
        print(f"  failed requests:      {outcome['failed_requests']} "
              f"of {outcome['total_requests']}")
        print()
    print("The JVM restart's failures are dominated by the failed-over "
          "sessions (their FastS state was on the bad node);")
    print("the microreboot fails roughly the requests in flight during "
          "its half-second of recovery.")


if __name__ == "__main__":
    main()
