"""Chaos campaign: the seed recovery pipeline vs the hardened one.

The paper's evaluation injects one fault at a time; this experiment runs
the :mod:`repro.faults.chaos` engine against a 3-node SSM cluster — flap
trains, correlated fault bursts, LB link degradation, node slowdown, and an
SSM brick outage, all overlapping — twice, from the same seed:

* **seed** arm: the paper's pipeline exactly as §4 describes it (per-node
  recovery managers, no backoff, no quarantine, no storm limiting, no load
  shedding);
* **hardened** arm: identical rig, but with
  :class:`~repro.core.hardening.HardeningPolicy` enabled — exponential
  per-target µRB backoff, flap-detection quarantine, one cluster-wide
  :class:`~repro.core.hardening.RecoveryStormLimiter`, and graceful
  degradation at the load balancer;
* **parallel-recovery** arm: the hardened rig with the recovery managers
  running the dependency-aware parallel scheduler
  (:class:`~repro.core.recovery_graph.RecoveryGraph`), so independent
  components on one node microreboot concurrently instead of queueing
  behind each other's escalation ladder.

Every arm replays the *identical* precomputed fault schedule (the chaos
engine draws from dedicated RNG streams), so the only difference is how
the recovery pipeline responds.  The headline comparison is goodput: the
hardened pipeline should fail fewer client requests *and* execute fewer
recovery actions — recovering less, and recovering better — while the
parallel arm should additionally shrink the recovery phase of
multi-component incidents.
"""

from repro.cluster.cluster import build_cluster
from repro.core.hardening import HardeningPolicy, RecoveryStormLimiter
from repro.core.proactive import ProactiveRejuvenationPolicy
from repro.core.recovery_manager import FailureKind, RecoveryManager
from repro.core.retry import RetryPolicy
from repro.ebid.descriptors import URL_PATH_MAP
from repro.experiments.common import ExperimentResult
from repro.experiments.cluster_common import wire_recovery_failover
from repro.faults.chaos import COMPONENT_TARGETS, ChaosEngine, ChaosSpec
from repro.observability import (
    AlertEngine,
    ComponentHealthRegistry,
    EstimatorHub,
    IncidentTracker,
    SloEngine,
    aggregate_incidents,
    aggregate_slo,
    alert_lead_times,
    median,
)
from repro.parallel import TrialSpec, run_campaign
from repro.workload.client import ClientPopulation
from repro.workload.markov import WorkloadProfile

ARMS = ("seed", "hardened", "parallel-recovery")


def _max_overlap(actions):
    """Peak number of simultaneously in-flight recovery actions.

    Sweep-line over [decided_at, finished_at) intervals; closing an
    interval sorts before opening one at the same instant, so actions
    that merely abut do not count as overlapping.
    """
    events = []
    for action in actions:
        if action.finished_at is None:
            continue
        events.append((action.decided_at, 1))
        events.append((action.finished_at, -1))
    events.sort(key=lambda e: (e[0], e[1]))
    peak = active = 0
    for _t, delta in events:
        active += delta
        peak = max(peak, active)
    return peak


class ChaosClusterRig:
    """N nodes + LB + SSM + per-node recovery managers + chaos engine."""

    def __init__(
        self,
        seed=0,
        n_nodes=3,
        clients_per_node=30,
        hardened=False,
        parallel=False,
        spec=None,
        observability=True,
        prediction=None,
        preempt_cooldown=30.0,
    ):
        if prediction not in (None, "shadow", "proactive"):
            raise ValueError(f"unknown prediction mode {prediction!r}")
        if prediction is not None and not observability:
            raise ValueError("prediction requires observability")
        if parallel:
            # The parallel scheduler rides on the hardened safeguards (the
            # storm limiter is its global concurrency cap).
            self.hardening = HardeningPolicy.parallel()
            hardened = True
        else:
            self.hardening = (
                HardeningPolicy.hardened() if hardened
                else HardeningPolicy.disabled()
            )
        self.cluster = build_cluster(
            n_nodes,
            seed=seed,
            session_store="ssm",
            retry_policy=RetryPolicy.retry_only(),
            hardening=self.hardening,
        )
        self.kernel = self.cluster.kernel
        balancer = self.cluster.load_balancer

        self.storm_limiter = None
        if hardened:
            self.storm_limiter = RecoveryStormLimiter(
                self.kernel,
                limit=self.hardening.storm_limit,
                window=self.hardening.storm_window,
                window_limit=self.hardening.storm_window_limit,
            )

        # One recovery manager per node, as a real deployment would run
        # them; the storm limiter is the only piece of shared state.
        self.rms = []
        for node in self.cluster.nodes:
            rm = RecoveryManager(
                self.kernel,
                node.system.coordinator,
                URL_PATH_MAP,
                node_controller=node,
                # High enough that the blunt §4 notify-a-human cutoff does
                # not end either arm's campaign early: the comparison is
                # between the graduated safeguards, same limit both arms.
                recurring_limit=60,
                hardening=self.hardening,
                storm_limiter=self.storm_limiter,
            )
            self._wire_failover(rm, node, balancer)
            rm.start()
            self.rms.append(rm)

        self.reports = []
        self.population = ClientPopulation(
            self.kernel,
            balancer,
            self.cluster.dataset,
            n_clients=n_nodes * clients_per_node,
            rng_registry=self.cluster.rng,
            profile=WorkloadProfile(),
            reporter=self._dispatch_report,
        )
        self.metrics = self.population.metrics

        self.engine = ChaosEngine(self.cluster, spec=spec)

        # Incident stitching + rolling SLOs.  Both are passive TraceBus
        # subscribers, so turning them on changes what the run *reports*,
        # never what it *does* — the determinism and hardening-gate
        # contracts hold with observability enabled.  They need the bus
        # publishing, so enabling them enables tracing on this kernel.
        self.incident_tracker = None
        self.slo_engine = None
        if observability:
            self.kernel.trace.enabled = True
            self.incident_tracker = IncidentTracker(
                kernel=self.kernel, url_path_map=URL_PATH_MAP
            )
            self.slo_engine = SloEngine(self.metrics, kernel=self.kernel)

        # Prediction stack (estimators → health scores → alert rules →
        # proactive policy).  In "shadow" mode the stack observes and
        # alerts but the policy never acts, so the workload outcome must
        # be byte-identical to the plain arm — that passivity is what the
        # prediction benchmark gates on.  Only in "proactive" mode do
        # alerts turn into RecoveryManager.preempt() calls.
        self.prediction = prediction
        self.estimator_hub = None
        self.alert_engine = None
        self.health_registry = None
        self.policies = []
        if prediction is not None:
            self.estimator_hub = EstimatorHub(
                kernel=self.kernel,
                tracker=self.incident_tracker,
                url_path_map=URL_PATH_MAP,
            )
            self.alert_engine = AlertEngine(kernel=self.kernel)
            self.health_registry = ComponentHealthRegistry(
                kernel=self.kernel,
                hub=self.estimator_hub,
                alert_engine=self.alert_engine,
            )
            for node in self.cluster.nodes:
                self.health_registry.register(
                    node.system.server.name, COMPONENT_TARGETS
                )
            for rm in self.rms:
                policy = ProactiveRejuvenationPolicy(
                    self.kernel,
                    rm,
                    engine=self.alert_engine,
                    cooldown=preempt_cooldown,
                    shadow=(prediction == "shadow"),
                )
                policy.start()
                self.policies.append(policy)

    def _wire_failover(self, rm, node, balancer):
        wire_recovery_failover(rm, node, balancer)

    def _dispatch_report(self, report):
        """Deliver a failure report to the node that served the client."""
        self.reports.append(report)
        node = self.cluster.load_balancer.node_for_session(report.cookie)
        if node is None:
            index = report.client_id % len(self.cluster.nodes)
        else:
            index = self.cluster.nodes.index(node)
        self.rms[index].report(report)

    # ------------------------------------------------------------------
    def run(self, tail=60.0):
        """Start clients + chaos, run past the fault window, return stats."""
        spec = self.engine.spec
        self.population.start()
        self.engine.start()
        horizon = spec.start + spec.duration + tail
        self.kernel.run(until=horizon)
        if self.incident_tracker is not None:
            self.incident_tracker.finalize(horizon)
        if self.slo_engine is not None:
            self.slo_engine.evaluate(horizon)
        if self.alert_engine is not None:
            self.alert_engine.finalize(horizon)
        return self.outcome()

    def outcome(self):
        metrics = self.metrics
        actions = [a for rm in self.rms for a in rm.actions]
        by_level = {}
        for action in actions:
            by_level[action.level] = by_level.get(action.level, 0) + 1
        errored = sum(1 for a in actions if not a.ok)
        balancer = self.cluster.load_balancer
        registries = [rm.metrics for rm in self.rms]
        total = metrics.total_requests
        return {
            "good_requests": metrics.good_requests,
            "failed_requests": metrics.failed_requests,
            "availability": (
                round(metrics.good_requests / total, 4) if total else None
            ),
            "recovery_actions": len(actions),
            "actions_by_level": dict(sorted(by_level.items())),
            "errored_actions": errored,
            "reports": len(self.reports),
            "deferred": sum(
                int(r.counter("rm.backoff.deferred").value)
                for r in registries
            ),
            "quarantines": sum(
                int(r.counter("rm.quarantine.count").value)
                for r in registries
            ),
            "storm_denied": (
                self.storm_limiter.denied
                if self.storm_limiter is not None
                else 0
            ),
            "requests_shed": balancer.requests_shed,
            "link_dropped": int(
                balancer.metrics.counter("lb.link.dropped").value
            ),
            "humans_notified": sum(1 for rm in self.rms if rm.human_notified),
            "max_concurrent_recoveries": max(
                (_max_overlap(rm.actions) for rm in self.rms), default=0
            ),
            "chaos_events": dict(sorted(self.engine.counts.items())),
            "chaos_timeline": self.engine.timeline(),
            **self._observability_outcome(),
        }

    def _observability_outcome(self):
        if self.incident_tracker is None:
            return {}
        incidents = self.incident_tracker.incidents
        windows = self.slo_engine.windows
        return {
            "incidents": aggregate_incidents(incidents),
            "incident_records": [i.to_dict() for i in incidents],
            "slo": aggregate_slo(windows),
            "slo_violations_live": len(self.slo_engine.live_violations),
            **self._prediction_outcome(incidents),
        }

    def _prediction_outcome(self, incidents):
        if self.alert_engine is None:
            return {}
        alerts = self.alert_engine.alerts
        leads = alert_lead_times(alerts, incidents)
        actions = [a for rm in self.rms for a in rm.actions]
        preemptive = sum(
            1 for a in actions if a.trigger is FailureKind.PREDICTED
        )
        return {
            "prediction_mode": self.prediction,
            "alerts_fired": len(alerts),
            "alert_records": [a.to_dict() for a in alerts],
            "alert_lead_times": leads,
            "median_alert_lead": median(leads),
            "preemptive_actions": preemptive,
            "policy_stats": [p.stats() for p in self.policies],
        }


def run_one_arm(arm, seed, n_nodes, clients_per_node, spec_name, tail):
    specs = {
        "smoke": ChaosSpec.smoke,
        "standard": ChaosSpec.standard,
        "multiburst": ChaosSpec.multiburst,
    }
    spec = specs[spec_name]()
    rig = ChaosClusterRig(
        seed=seed,
        n_nodes=n_nodes,
        clients_per_node=clients_per_node,
        hardened=(arm != "seed"),
        parallel=(arm == "parallel-recovery"),
        spec=spec,
    )
    outcome = rig.run(tail=tail)
    outcome["arm"] = arm
    return outcome


def run(seed=0, n_nodes=3, clients_per_node=30, full=False, quick=False,
        jobs=1):
    """Run the chaos campaign under both pipelines and compare goodput."""
    spec_name = "standard"
    tail = 60.0
    if quick:
        spec_name, n_nodes, clients_per_node, tail = "smoke", 2, 20, 40.0
    if full:
        clients_per_node = 60

    specs = [
        TrialSpec(
            task="repro.experiments.chaos:run_one_arm",
            kwargs={
                "arm": arm,
                "n_nodes": n_nodes,
                "clients_per_node": clients_per_node,
                "spec_name": spec_name,
                "tail": tail,
            },
            tag=arm,
            seed=seed,
        )
        for arm in ARMS
    ]
    trials = run_campaign(specs, jobs=jobs)
    outcomes = {arm: trial.value for arm, trial in zip(ARMS, trials)}

    result = ExperimentResult(
        name="Availability under correlated chaos: seed pipeline vs "
             "hardened pipeline (backoff + quarantine + storm limiting + "
             "load shedding) vs hardened + parallel recovery",
        paper_reference="§5.1 fault model, extended to correlated faults",
        headers=(
            "pipeline", "good reqs", "failed reqs", "availability",
            "recoveries", "max conc", "deferred", "quarantines",
            "storm denied", "shed",
        ),
    )
    for arm in ARMS:
        o = outcomes[arm]
        result.rows.append(
            (
                arm,
                o["good_requests"],
                o["failed_requests"],
                o["availability"],
                o["recovery_actions"],
                o["max_concurrent_recoveries"],
                o["deferred"],
                o["quarantines"],
                o["storm_denied"],
                o["requests_shed"],
            )
        )
        result.notes.append(
            f"{arm} actions by level: {o['actions_by_level']}"
        )
        incidents = o.get("incidents")
        if incidents:
            means = incidents["mean_phases"]
            result.notes.append(
                f"{arm} incidents: {incidents['count']} "
                f"(closed by {incidents['closed_by']}), mean MTTR "
                f"{incidents['mean_span']}s = {means.get('detection')}s "
                f"detect + {means.get('diagnosis')}s diagnose + "
                f"{means.get('recovery')}s recover + "
                f"{means.get('residual')}s residual"
            )
        slo = o.get("slo")
        if slo:
            result.notes.append(
                f"{arm} SLO (30s windows): {slo['violations']}/"
                f"{slo['windows']} violated, min availability "
                f"{slo['min_availability']}, mean Gaw {slo['mean_gaw']}/s, "
                f"max burn {slo['max_burn']}"
            )

    seed_arm, hardened = outcomes["seed"], outcomes["hardened"]
    result.notes.append(
        "chaos schedule ({} events): {}".format(
            sum(seed_arm["chaos_events"].values()),
            seed_arm["chaos_events"],
        )
    )
    if (
        hardened["failed_requests"] < seed_arm["failed_requests"]
        and hardened["recovery_actions"] < seed_arm["recovery_actions"]
    ):
        result.notes.append(
            "hardened pipeline survived the same fault schedule with "
            f"{seed_arm['failed_requests'] - hardened['failed_requests']} "
            "fewer failed requests and "
            f"{seed_arm['recovery_actions'] - hardened['recovery_actions']} "
            "fewer recovery actions"
        )
    par = outcomes["parallel-recovery"]
    par_means = (par.get("incidents") or {}).get("mean_phases", {})
    hard_means = (hardened.get("incidents") or {}).get("mean_phases", {})
    if (
        par_means.get("recovery") is not None
        and hard_means.get("recovery") is not None
    ):
        result.notes.append(
            "parallel-recovery arm: peak within-node recovery concurrency "
            f"{par['max_concurrent_recoveries']} "
            f"(hardened {hardened['max_concurrent_recoveries']}), mean "
            f"recovery phase {par_means['recovery']}s vs hardened "
            f"{hard_means['recovery']}s"
        )
    return result, outcomes


if __name__ == "__main__":
    print(run(quick=True)[0].render())
