"""Table 5: fault-free performance impact of the µRB modifications.

Four configurations: original vs microreboot-enabled server, crossed with
in-JVM (FastS) vs external (SSM) session state.  Paper: throughput varies
<2% (within the margin of error); latency rises 70-90% with SSM because of
marshalling plus the network round trip, which matters little against the
~100 ms human-perceptible threshold.

In our substrate the µRB modifications (sentinel check on lookup, lifecycle
bookkeeping) have no modeled cost — consistent with the paper's finding
that they are within noise — so the "JBoss vs JBossµRB" pairs differ only
by run-to-run jitter, while the FastS/SSM pairs differ structurally.
"""

from repro.experiments.common import ExperimentResult, SingleNodeRig

PAPER = {
    ("JBoss", "fasts"): (72.09, 15.02),
    ("JBossµRB", "fasts"): (72.42, 16.08),
    ("JBoss", "ssm"): (71.63, 28.43),
    ("JBossµRB", "ssm"): (70.86, 27.69),
}

CONFIGS = (
    ("JBoss", "fasts"),
    ("JBossµRB", "fasts"),
    ("JBoss", "ssm"),
    ("JBossµRB", "ssm"),
)


def run_one(server_variant, store, seed, n_clients, duration):
    # The variants differ only in whether the µRB machinery is armed; a
    # different seed component keeps their jitter independent, as two
    # separate testbed runs would be.
    rig = SingleNodeRig(
        seed=seed + (1 if server_variant == "JBossµRB" else 0),
        n_clients=n_clients,
        session_store=store,
        with_recovery_manager=(server_variant == "JBossµRB"),
    )
    rig.start(warmup=60.0)
    start_good = rig.metrics.good_requests
    start_time = rig.kernel.now
    rig.run_for(duration)
    completed = rig.metrics.good_requests - start_good
    throughput = completed / (rig.kernel.now - start_time)
    window_rts = [
        rt for t, rt in rig.metrics.response_times if t >= start_time
    ]
    latency = sum(window_rts) / len(window_rts) if window_rts else 0.0
    return throughput, latency


def run(seed=0, n_clients=500, duration=300.0, full=False):
    """Measure all four configurations."""
    if full:
        n_clients, duration = 500, 600.0
    result = ExperimentResult(
        name="Fault-free performance: µRB modifications and session stores",
        paper_reference="Table 5",
        headers=(
            "Configuration", "paper req/s", "measured req/s",
            "paper latency (ms)", "measured latency (ms)",
        ),
    )
    measured = {}
    for variant, store in CONFIGS:
        throughput, latency = run_one(variant, store, seed, n_clients, duration)
        measured[(variant, store)] = (throughput, latency)
        paper_tp, paper_lat = PAPER[(variant, store)]
        store_label = "FastS" if store == "fasts" else "SSM"
        result.rows.append(
            (
                f"{variant} + eBid{store_label}",
                paper_tp,
                round(throughput, 2),
                paper_lat,
                round(latency * 1000, 2),
            )
        )
    fasts_lat = measured[("JBossµRB", "fasts")][1]
    ssm_lat = measured[("JBossµRB", "ssm")][1]
    if fasts_lat:
        result.notes.append(
            f"SSM latency penalty: +{100 * (ssm_lat / fasts_lat - 1):.0f}% "
            "(paper: +70-90%)"
        )
    return result, measured


if __name__ == "__main__":
    print(run(n_clients=500, duration=180.0)[0].render())
