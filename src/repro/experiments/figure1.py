"""Figure 1: action-weighted throughput, process restart vs microreboot.

The paper's headline experiment: three different faults injected ten
minutes apart into a 500-client single-node system, recovered automatically
either by restarting the JVM process or by microrebooting the implicated
EJBs.  "Overall, 11,752 requests (3,101 actions) failed when recovering
with a process restart ... 233 requests (34 actions) failed when recovering
by microrebooting", i.e. averages of ≈3,917 vs ≈78 failed requests per
recovery — a 98% reduction.

The three faults (paper caption):
  t=T  : corrupt the transaction method map inside EntityGroup (our
         concrete entry: Item.record_bid);
  t=2T : corrupt the JNDI entry for RegisterNewUser (null);
  t=3T : inject a transient exception in BrowseCategories, the
         most-frequently called EJB in the workload.
"""

from repro.experiments.common import ExperimentResult, SingleNodeRig
from repro.experiments.plotting import ascii_timeseries
from repro.faults.corruption import CorruptionMode
from repro.observability import aggregate_slo, compute_windows
from repro.parallel import TrialSpec, run_campaign

POLICIES = ("process-restart", "microreboot")


def inject_schedule(rig, fault_times):
    """Spawn a process injecting the three Figure 1 faults."""

    def driver():
        yield rig.kernel.timeout(fault_times[0])
        rig.injector.corrupt_tx_method_map(
            "Item", "record_bid", CorruptionMode.WRONG
        )
        yield rig.kernel.timeout(fault_times[1] - fault_times[0])
        rig.injector.corrupt_jndi("RegisterNewUser", CorruptionMode.NULL)
        yield rig.kernel.timeout(fault_times[2] - fault_times[1])
        rig.injector.inject_transient_exception("BrowseCategories")

    rig.kernel.process(driver(), name="fault-schedule")


def run_one_policy(policy, seed, n_clients, fault_times, duration):
    """One 40-minute (by default) run under the given recovery policy."""
    recovery_policy = "recursive" if policy == "microreboot" else policy
    rig = SingleNodeRig(
        seed=seed,
        n_clients=n_clients,
        recovery_policy=recovery_policy,
        session_store="fasts",
    )
    inject_schedule(rig, fault_times)
    rig.start()
    rig.run_for(duration)
    metrics = rig.metrics
    recoveries = len(rig.recovery_manager.actions)
    return {
        "policy": policy,
        "good_requests": metrics.good_requests,
        "failed_requests": metrics.failed_requests,
        "failed_actions": metrics.failed_actions,
        "recoveries": recoveries,
        "failed_per_recovery": (
            metrics.failed_requests / recoveries if recoveries else 0.0
        ),
        "good_series": metrics.good_taw_series(),
        "bad_series": metrics.bad_taw_series(),
        "actions": [
            (round(a.decided_at, 1), a.level, "+".join(a.target))
            for a in rig.recovery_manager.actions
        ],
    }


def run(seed=0, n_clients=500, fault_interval=600.0, full=False, quick=False,
        jobs=1):
    """Run both policies and compare (Figure 1)."""
    if quick:
        n_clients, fault_interval = 150, 150.0
    if full:
        n_clients, fault_interval = 500, 600.0
    fault_times = (fault_interval, 2 * fault_interval, 3 * fault_interval)
    duration = 4 * fault_interval

    specs = [
        TrialSpec(
            task="repro.experiments.figure1:run_one_policy",
            kwargs={
                "policy": policy,
                "n_clients": n_clients,
                "fault_times": fault_times,
                "duration": duration,
            },
            tag=policy,
            seed=seed,
        )
        for policy in POLICIES
    ]
    trials = run_campaign(specs, jobs=jobs)
    outcomes = {policy: trial.value for policy, trial in zip(POLICIES, trials)}

    result = ExperimentResult(
        name="Taw under failures: JVM process restart vs EJB microreboot",
        paper_reference="Figure 1 (paper: ≈3,917 vs ≈78 failed requests per recovery)",
        headers=(
            "recovery policy", "good reqs", "failed reqs", "failed actions",
            "recoveries", "failed reqs/recovery",
        ),
    )
    for policy in POLICIES:
        o = outcomes[policy]
        result.rows.append(
            (
                policy,
                o["good_requests"],
                o["failed_requests"],
                o["failed_actions"],
                o["recoveries"],
                round(o["failed_per_recovery"], 1),
            )
        )
        result.series[f"good-taw:{policy}"] = o["good_series"]
        result.series[f"bad-taw:{policy}"] = o["bad_series"]
        result.notes.append(f"{policy} recovery actions: {o['actions']}")
        # Post-hoc rolling SLO over the recorded Taw series: the windowed
        # view of the same comparison — µRBs should go bad in fewer,
        # narrower windows than process restarts on identical faults.
        slo = aggregate_slo(
            compute_windows(o["good_series"], o["bad_series"], [], duration)
        )
        result.notes.append(
            f"{policy} SLO (30s windows): {slo['violations']}/"
            f"{slo['windows']} violated, min availability "
            f"{slo['min_availability']}, mean Gaw {slo['mean_gaw']}/s"
        )
        result.figures[f"good Taw, {policy}"] = ascii_timeseries(
            o["good_series"], label="resp/sec ", height=8
        )

    restart = outcomes["process-restart"]["failed_requests"]
    urb = outcomes["microreboot"]["failed_requests"]
    if restart:
        result.notes.append(
            f"microreboots reduced failed requests by "
            f"{100 * (1 - urb / restart):.1f}% (paper: 98%)"
        )
    return result, outcomes


if __name__ == "__main__":
    print(run(quick=True)[0].render())
