"""Table 4: requests exceeding 8 seconds during failover at doubled load.

"Response times exceeding 8 seconds cause computer users to get
distracted ... making this a common threshold for Web site abandonment";
the table counts how many requests crossed it while a node was being
failed over and recovered.  Paper: 3,227 / 530 / 55 / 9 requests for
process restarts on 2/4/6/8 nodes, versus 3 / 0 / 0 / 0 for microreboots.
"""

from repro.experiments import figure4
from repro.experiments.common import ExperimentResult

PAPER = {
    (2, "process-restart"): 3227,
    (4, "process-restart"): 530,
    (6, "process-restart"): 55,
    (8, "process-restart"): 9,
    (2, "microreboot"): 3,
    (4, "microreboot"): 0,
    (6, "microreboot"): 0,
    (8, "microreboot"): 0,
}


def run(seed=0, cluster_sizes=(2, 4, 6, 8), clients_per_node=1000, full=False,
        stabilize=180.0, observe=420.0):
    """Table 4 is the >8 s column of the Figure 4 sweep."""
    figure_result, outcomes = figure4.run(
        seed=seed,
        cluster_sizes=cluster_sizes,
        clients_per_node=clients_per_node,
        stabilize=stabilize,
        observe=observe,
        full=full,
    )
    result = ExperimentResult(
        name="Requests exceeding 8 s during failover under doubled load",
        paper_reference="Table 4",
        headers=("# of nodes", "recovery", "paper", "measured"),
    )
    for outcome in outcomes:
        key = (outcome["n_nodes"], outcome["recovery"])
        result.rows.append(
            (
                outcome["n_nodes"],
                outcome["recovery"],
                PAPER.get(key, "-"),
                outcome["over_8s"],
            )
        )
    result.notes.extend(figure_result.notes)
    return result, outcomes


if __name__ == "__main__":
    print(run(cluster_sizes=(2, 4), clients_per_node=700, stabilize=120.0,
              observe=300.0)[0].render())
