"""Table 6: masking microreboots with HTTP/1.1 Retry-After (§6.2).

During a µRB the component's JNDI name is bound to a sentinel; idempotent
requests that hit the sentinel get ``503 Retry-After`` and the client
re-issues them once the component is back.  Optionally, a drain delay
between sentinel rebind and destruction lets in-flight requests complete.

Paper (averages over 10 trials): e.g. ViewItem 23 failed requests per µRB
with no retry, 16 with retry, 8 with delay & retry — retry masks roughly
half of the failures, the drain delay most of the rest.
"""

from repro.core.retry import RetryPolicy
from repro.experiments.common import ExperimentResult, SingleNodeRig

PAPER = {
    "ViewItem": (23, 16, 8),
    "BrowseCategories": (20, 8, 0),
    "SearchItemsByCategory": (31, 15, 0),
    "Authenticate": (20, 9, 1),
}

MODES = (
    ("No retry", RetryPolicy.disabled()),
    ("Retry", RetryPolicy.retry_only()),
    ("Delay & retry", RetryPolicy.delay_and_retry()),
)


def run_mode(component, policy, seed, n_clients, trials, gap):
    """Average failed requests per µRB of ``component`` under ``policy``."""
    rig = SingleNodeRig(
        seed=seed,
        n_clients=n_clients,
        retry_policy=policy,
        with_recovery_manager=False,
    )
    rig.start(warmup=40.0)
    coordinator = rig.system.coordinator
    failures = []
    for _ in range(trials):
        rig.run_for(gap)
        before = rig.metrics.failed_requests
        rig.kernel.run_until_triggered(
            rig.kernel.process(coordinator.microreboot([component]))
        )
        rig.run_for(gap / 2)  # let retroactive action failures settle
        failures.append(rig.metrics.failed_requests - before)
    return sum(failures) / len(failures)


def run(seed=0, n_clients=500, trials=10, gap=12.0, full=False, quick=False):
    """Sweep the paper's four components across the three retry modes."""
    if quick:
        n_clients, trials = 200, 4
    result = ExperimentResult(
        name="Masking microreboots with HTTP/1.1 Retry-After",
        paper_reference="Table 6",
        headers=(
            "Component", "paper (no/retry/delay)",
            "No retry", "Retry", "Delay & retry",
        ),
    )
    measured = {}
    for component in PAPER:
        row = []
        for mode_index, (_label, policy) in enumerate(MODES):
            avg = run_mode(
                component, policy, seed + mode_index, n_clients, trials, gap
            )
            row.append(round(avg, 1))
        measured[component] = tuple(row)
        result.rows.append(
            (component, "/".join(str(v) for v in PAPER[component]), *row)
        )
    result.notes.append(
        "expected ordering per component: no-retry >= retry >= delay&retry"
    )
    return result, measured


if __name__ == "__main__":
    print(run(quick=True)[0].render())
