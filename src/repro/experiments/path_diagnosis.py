"""Path-analysis diagnosis vs the static URL map, under a stale map.

The §4 diagnosis is deliberately simplistic: a hand-maintained URL-prefix →
call-path map plus specificity weighting, which the paper admits "often
yields false positives".  Its characteristic failure mode is *staleness*:
the map is written once, the application keeps evolving, and a dependency
the map never learned about cannot be implicated no matter how the scores
are weighted.  That is precisely why the authors' follow-on work replaced
the static map with Pinpoint-style analysis of *observed* request paths.

This experiment reproduces that failure mode.  The RM is configured with a
map that predates the commit paths' use of ``IdentityManager`` (the key
allocator called by CommitBid, CommitBuyNow, RegisterNewItem,
RegisterNewUser and CommitUserFeedback); a transient exception is then
injected into IdentityManager:

* **static-map** cannot see the faulty bean at all — on the stale paths
  the only component common to every failing URL is the WAR (which the
  EJB-candidate search rightly refuses), so the RM mis-targets coarser
  recoveries (a WAR µRB, then escalation) and only cures the fault when
  the ladder reaches a full application restart.
* **path-analysis** ranks components by failed-vs-successful membership of
  paths the span layer actually *observed*: IdentityManager sits on every
  failed path and (post-injection) no successful one, tops the chi-square
  ranking, and the very first µRB cures the fault.
"""

from repro.ebid.descriptors import URL_PATH_MAP
from repro.experiments.common import ExperimentResult, SingleNodeRig
from repro.parallel import TrialSpec, run_campaign

MODES = ("static-map", "path-analysis")

#: The shared session bean whose dependency the stale map is missing.
FAULTY = "IdentityManager"

#: The operator's map, written before the commit paths started calling
#: IdentityManager: identical to the live map minus that one component.
STALE_URL_PATH_MAP = {
    url: tuple(name for name in path if name != FAULTY)
    for url, path in URL_PATH_MAP.items()
}


def _cures(action, faulty_group):
    """Did this recovery action remove the injected invocation hook?

    EJB µRBs cure only when the faulty component's container is rebuilt;
    WAR µRBs never touch EJB state; application restart and anything
    coarser rebuilds every container.
    """
    if action.level == "ejb":
        return bool(set(action.target) & faulty_group)
    return action.level in ("application", "jvm", "os")


def run_one_mode(mode, seed, n_clients, inject_at, duration):
    rig = SingleNodeRig(
        seed=seed,
        n_clients=n_clients,
        diagnosis=mode,
        session_store="fasts",
        url_path_map=STALE_URL_PATH_MAP,
    )
    faulty_group = set(rig.system.coordinator.expand_targets([FAULTY]))

    def driver():
        yield rig.kernel.timeout(inject_at)
        rig.injector.inject_transient_exception(FAULTY)

    rig.kernel.process(driver(), name="fault-schedule")
    rig.start()
    rig.run_for(duration)

    actions = rig.recovery_manager.actions
    ejb_actions = [a for a in actions if a.level == "ejb"]
    wrong_ejb = [a for a in ejb_actions if not (set(a.target) & faulty_group)]
    cure_index, cure_time = None, None
    for index, action in enumerate(actions, start=1):
        if _cures(action, faulty_group):
            cure_index, cure_time = index, action.finished_at
            break
    # Every recovery performed before the curing one recycled the wrong
    # thing — including WAR µRBs the static mode falls back to when its
    # stale map yields no EJB candidate at all.
    mis_targeted = (
        cure_index - 1 if cure_index is not None else len(actions)
    )

    log = rig.recovery_manager.diagnosis_log
    top_ranked = None
    for entry in log:
        ranking = entry.get("ranking") or ()
        if ranking:
            top_ranked = ranking[0][0]
            break

    return {
        "mode": mode,
        "recoveries": len(actions),
        "ejb_urbs": len(ejb_actions),
        "wrong_target_urbs": len(wrong_ejb),
        "mis_targeted": mis_targeted,
        "cure_action": cure_index,
        "time_to_cure": (
            round(cure_time - inject_at, 1) if cure_time is not None else None
        ),
        "failed_requests": rig.metrics.failed_requests,
        "top_ranked": top_ranked,
        "actions": [
            (round(a.decided_at, 1), a.level, "+".join(a.target))
            for a in actions
        ],
        "diagnosis_modes": [entry["mode"] for entry in log],
    }


def run(seed=0, n_clients=150, inject_at=60.0, duration=None,
        full=False, quick=False, jobs=1):
    """Run the IdentityManager fault under both diagnosis modes."""
    if quick:
        n_clients, inject_at = 100, 40.0
    if full:
        n_clients, inject_at = 500, 120.0
    if duration is None:
        duration = inject_at + 300.0

    specs = [
        TrialSpec(
            task="repro.experiments.path_diagnosis:run_one_mode",
            kwargs={
                "mode": mode,
                "n_clients": n_clients,
                "inject_at": inject_at,
                "duration": duration,
            },
            tag=mode,
            seed=seed,
        )
        for mode in MODES
    ]
    trials = run_campaign(specs, jobs=jobs)
    outcomes = {mode: trial.value for mode, trial in zip(MODES, trials)}

    result = ExperimentResult(
        name="Fault localization under a stale URL map: static diagnosis "
             f"vs path analysis (transient exception in {FAULTY})",
        paper_reference="§4 diagnosis + Pinpoint (Chen et al., DSN 2002)",
        headers=(
            "diagnosis", "recoveries", "EJB µRBs", "mis-targeted",
            "cure action #", "time to cure (s)", "failed reqs",
        ),
    )
    for mode in MODES:
        o = outcomes[mode]
        result.rows.append(
            (
                mode,
                o["recoveries"],
                o["ejb_urbs"],
                o["mis_targeted"],
                o["cure_action"],
                o["time_to_cure"],
                o["failed_requests"],
            )
        )
        result.notes.append(f"{mode} recovery actions: {o['actions']}")

    path = outcomes["path-analysis"]
    static = outcomes["static-map"]
    if path["top_ranked"] is not None:
        result.notes.append(
            f"path-analysis top-ranked suspect: {path['top_ranked']} "
            f"(injected fault: {FAULTY})"
        )
    if (
        path["mis_targeted"] < static["mis_targeted"]
        and path["top_ranked"] == FAULTY
    ):
        result.notes.append(
            "path analysis localized the fault the stale map cannot see, "
            f"with {static['mis_targeted'] - path['mis_targeted']} "
            "fewer mis-targeted recoveries"
        )
    return result, outcomes


if __name__ == "__main__":
    print(run(quick=True)[0].render())
