"""Storm: correlated multi-shard fault storms + elastic resharding.

Megascale (PR 8) proved one faulted shard stays contained; this scenario
asks the question real WAN operators ask: what happens when *K shards
fault at once* — and is scaling out **during** the storm better than
riding it out on static capacity?  Three arms from the same seed:

* ``steady`` — fault-free baseline;
* ``storm`` — a :class:`~repro.faults.chaos.ShardStormEngine` strikes K
  shards simultaneously (deadlock pulse trains, LB→shard link faults,
  SSM brick crashes, node slowdowns), and the static cluster's hardened
  recovery pipeline + shard-aware failover must contain the blast
  radius;
* ``storm+elastic`` — same storm, but an
  :class:`~repro.cluster.elasticity.ElasticPolicy` watches the
  probe-grounded failure signal and *replaces* persistently sick shards
  live: a fresh shard boots, the ring cuts over, and the sick shard's
  sessions migrate (copy-then-cutover, zero loss).  The static arm pays
  every re-injected fault pulse for the storm's whole duration; the
  elastic arm pays one bounded migration window per sick shard instead.

The headline gates (benchmarks/test_storm.py): cluster availability
under a K=8 storm stays ≥ 0.999 with the healthy-shard median at 1.0,
the elastic arm conserves every session while strictly beating the
static arm on failed requests, and storm schedules + migration plans are
deterministic (same seed ⇒ same plans; jobs=1 ≡ jobs=2).
"""

import resource
import time

from repro.cluster.elasticity import ElasticPolicy, ReshardCoordinator
from repro.experiments.common import ExperimentResult
from repro.experiments.megascale import MegascaleRig
from repro.faults.chaos import COMPONENT_TARGETS, ShardStormEngine, StormSpec
from repro.parallel import TrialSpec, run_campaign

ARMS = ("steady", "storm", "storm+elastic")

#: How far back (simulated seconds) the elastic signal looks for
#: user-visible (cohort) failures on a shard.
SIGNAL_WINDOW = 20.0
#: Minimum failed clicks inside the window that count as "persistently
#: sick" — high enough that the decaying EWMA residue after a single
#: probe blip never triggers a replacement on its own.
SIGNAL_MIN_BAD = 25


class StormRig(MegascaleRig):
    """Megascale rig + shard storm engine + elastic reshard controller."""

    def __init__(
        self,
        seed=0,
        n_sessions=1_000_000,
        n_shards=128,
        nodes_per_shard=1,
        duration=240.0,
        tick=1.0,
        storm=False,
        elastic=False,
        storm_spec=None,
        load_skew=0.0,
        migration_window=2.0,
        observability=True,
        cluster_plane=True,
    ):
        super().__init__(
            seed=seed,
            n_sessions=n_sessions,
            n_shards=n_shards,
            nodes_per_shard=nodes_per_shard,
            duration=duration,
            tick=tick,
            fault=False,
            observability=observability,
            cluster_plane=cluster_plane,
            load_skew=load_skew,
        )
        self.storm_spec = storm_spec or StormSpec.standard()
        self.storm_engine = (
            ShardStormEngine(self.cluster, self.storm_spec) if storm else None
        )
        self.coordinator = None
        self.policy = None
        if elastic:
            self.coordinator = ReshardCoordinator(
                self.cluster,
                self.engine,
                probe_model=self.probe_model,
                migration_window=migration_window,
                on_shard_added=self._on_shard_added,
                on_shard_removed=self._on_shard_removed,
            )
            self.policy = ElasticPolicy(
                self.kernel,
                self.coordinator,
                self.probe_model,
                signal=self._elastic_signal,
                max_replacements=self.storm_spec.k_shards,
            )

    # ------------------------------------------------------------------
    def _elastic_signal(self, shard):
        """Sickness signal for one shard: probes OR user-visible failures.

        The probe EWMA reacts within seconds but decays just as fast
        (recovery cures a deadlock pulse before two policy checks agree),
        so the signal is the max of the probe failure rate and a recent
        cohort-failure indicator — a shard whose users keep failing is
        sick even when the probes between fault pulses look clean.
        """
        rate = self.probe_model.shard_fail_rate(shard)
        series = self.engine.shard_bad_series.get(shard)
        if series:
            horizon = int(self.kernel.now - SIGNAL_WINDOW)
            recent = sum(
                bad for second, bad in series.items() if second >= horizon
            )
            if recent >= SIGNAL_MIN_BAD:
                return max(rate, 1.0)
        return rate

    def _on_shard_added(self, shard, nodes):
        """A fresh shard boots mid-run: same pipeline as boot-time shards."""
        self._wire_shard_rms(shard, nodes)
        if self.health_registry is not None:
            for node in nodes:
                self.health_registry.register(
                    node.system.server.name, COMPONENT_TARGETS
                )

    def _on_shard_removed(self, shard, nodes):
        """A drained shard leaves: no more reports route to its RMs (the
        managers' past actions stay counted via ``self.rms``)."""
        self.rms_by_shard.pop(shard, None)
        self.probe_model.update_load_skew(self.engine.shard_sessions)

    def _spawn_scenario(self):
        if self.storm_engine is not None:
            self.storm_engine.start()
        if self.policy is not None:
            self.policy.start(self.duration)

    # ------------------------------------------------------------------
    def outcome(self):
        out = super().outcome()
        engine = self.engine
        rows = {r["shard"]: r for r in engine.shard_summary()}
        if self.storm_engine is not None:
            struck = self.storm_engine.storm_shards
            storm_avail = {
                shard: rows[shard]["availability"]
                for shard in struck
                if shard in rows
            }
            dips = [a for a in storm_avail.values() if a is not None]
            healthy = sorted(
                r["availability"]
                for name, r in rows.items()
                if name not in struck and r["availability"] is not None
            )
            out["storm"] = {
                "shards": list(struck),
                "kinds": {
                    shard: self.storm_engine.shard_kind(shard)
                    for shard in struck
                },
                "events_applied": dict(sorted(self.storm_engine.counts.items())),
                "schedule": self.storm_engine.planned_schedule(),
                "struck_shard_availability": dict(sorted(storm_avail.items())),
                "struck_worst": min(dips) if dips else None,
                "healthy_median": (
                    healthy[len(healthy) // 2] if healthy else None
                ),
            }
        if self.coordinator is not None:
            out["reshard"] = {
                "plans": list(self.coordinator.plans),
                "replacements": list(self.policy.replacements),
                "sessions_migrated": engine.sessions_migrated,
                "store_sessions_migrated": sum(
                    p["store_sessions"] for p in self.coordinator.plans
                ),
                "in_transit_at_end": engine.in_transit(),
                "migration_window": self.coordinator.migration_window,
            }
        return out


def _spec_for(scale, k_shards):
    if scale == "smoke":
        return StormSpec.smoke()
    if scale == "full":
        # Longer front on more shards: the 256-node full configuration.
        return StormSpec(start=60.0, duration=150.0, k_shards=k_shards)
    return StormSpec.standard()


def run_one_arm(arm, seed, scale, n_sessions, n_shards, nodes_per_shard,
                duration, k_shards, load_skew):
    rig = StormRig(
        seed=seed,
        n_sessions=n_sessions,
        n_shards=n_shards,
        nodes_per_shard=nodes_per_shard,
        duration=duration,
        storm=(arm != "steady"),
        elastic=(arm == "storm+elastic"),
        storm_spec=_spec_for(scale, k_shards),
        load_skew=load_skew,
    )
    outcome = rig.run()
    outcome["arm"] = arm
    return outcome


#: (sessions, shards, nodes_per_shard, duration, k_shards, load_skew).
SCALES = {
    "smoke": (50_000, 16, 1, 150.0, 4, 0.0),
    "standard": (1_000_000, 128, 1, 240.0, 8, 0.0),
    #: The --full unlock: 2M sessions on 256 nodes, with the probe model's
    #: per-shard load-skew weighting turned on.
    "full": (2_000_000, 128, 2, 300.0, 16, 0.25),
}


def run(seed=0, full=False, quick=False, jobs=1, scale=None):
    """Run the three storm arms and render the containment comparison."""
    if scale is None:
        scale = "smoke" if quick else ("full" if full else "standard")
    n_sessions, n_shards, nodes_per_shard, duration, k_shards, load_skew = (
        SCALES[scale]
    )

    started = time.monotonic()
    specs = [
        TrialSpec(
            task="repro.experiments.storm:run_one_arm",
            kwargs={
                "arm": arm,
                "scale": scale,
                "n_sessions": n_sessions,
                "n_shards": n_shards,
                "nodes_per_shard": nodes_per_shard,
                "duration": duration,
                "k_shards": k_shards,
                "load_skew": load_skew,
            },
            tag=arm,
            seed=seed,
        )
        for arm in ARMS
    ]
    trials = run_campaign(specs, jobs=jobs)
    outcomes = {arm: trial.value for arm, trial in zip(ARMS, trials)}
    wall = time.monotonic() - started
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    result = ExperimentResult(
        name=f"Storm: K={k_shards} simultaneous shard faults on "
             f"{n_shards} shards ({n_shards * nodes_per_shard} nodes), "
             f"{n_sessions:,} sessions, static vs elastic resharding",
        paper_reference="§5.1 fault injection + §5.3 failover under "
                        "correlated multi-shard storms",
        headers=(
            "arm", "availability", "failed reqs", "struck worst",
            "healthy median", "recoveries", "migrated", "replaced",
        ),
    )
    for arm in ARMS:
        o = outcomes[arm]
        storm = o.get("storm") or {}
        reshard = o.get("reshard") or {}
        result.rows.append(
            (
                arm,
                o["availability"],
                o["failed_requests"],
                storm.get("struck_worst"),
                storm.get("healthy_median"),
                o["recovery_actions"],
                reshard.get("sessions_migrated", 0),
                len(reshard.get("replacements", ())),
            )
        )
        notes = (
            f"{arm}: population {o['population']:,}/{o['sessions']:,}, "
            f"{o['probes_sent']} probes ({o['probes_failed']} failed), "
            f"recoveries by level {o['actions_by_level']}"
        )
        result.notes.append(notes)
        if storm:
            result.notes.append(
                f"{arm}: storm struck {storm['kinds']} "
                f"(events {storm['events_applied']})"
            )
        if reshard and reshard.get("plans"):
            moves = "; ".join(
                f"{p['op']} {p['shard']} ({p['sessions']:,} sessions, "
                f"{p['window']}s window)"
                for p in reshard["plans"]
            )
            result.notes.append(f"{arm}: reshard plan — {moves}")
        cluster = o.get("cluster")
        if cluster:
            summary = cluster["summary"]
            metas = cluster["meta_incidents"]
            note = (
                f"{arm} rollup: cluster probe p99 {summary['probe_p99']}s, "
                f"{summary['slo_violations']} shard-SLO window violation(s), "
                f"{len(cluster['capacity_signals'])} capacity signal(s), "
                f"{len(metas)} meta-incident(s)"
            )
            if metas:
                meta = metas[0]
                note += (
                    f"; #1 {meta['mode']} over {len(meta['shards'])} "
                    f"shard(s), span {meta['span']}s "
                    f"(detect {meta['phases']['detect']}s / decide "
                    f"{meta['phases']['decide']}s / migrate "
                    f"{meta['phases']['migrate']}s / drain "
                    f"{meta['phases']['drain']}s), "
                    f"{len(meta['migrations'])} migration(s) attributed"
                )
            result.notes.append(note)
    static, elastic = outcomes["storm"], outcomes["storm+elastic"]
    if static["availability"] and elastic["availability"]:
        result.notes.append(
            "elastic vs static under the same storm: failed requests "
            f"{static['failed_requests']} → {elastic['failed_requests']}, "
            f"availability {static['availability']} → "
            f"{elastic['availability']}; "
            f"{elastic['reshard']['sessions_migrated']:,} sessions migrated "
            "with zero loss"
        )
    result.notes.append(
        f"scale={scale}: wall {wall:.1f}s, peak RSS "
        f"{peak_rss_kb / 1024:.0f} MiB (driver process)"
    )
    return result, outcomes


if __name__ == "__main__":
    print(run(quick=True)[0].render())
