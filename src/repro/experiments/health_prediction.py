"""Reactive vs predictive recovery on a leak-heavy schedule.

The paper's recovery pipeline is reactive: it waits for failure reports
and recovers after the fact.  §6.4's microrejuvenation adds a threshold
trigger (memory below ``Malarm``), but still acts only once the node is
already short on heap.  This experiment closes the loop the ROADMAP
asked for — *predict* the exhaustion and recover before it happens —
and A/Bs the idea on :meth:`~repro.faults.chaos.ChaosSpec.leaky`, the
fault shape prediction is for: per-invocation memory leaks that µRBs
reclaim but never cure, draining a node's heap over minutes.

Three arms, identical fault schedule and workload seeds:

* **reactive** — the hardened chaos rig exactly as the chaos campaign
  runs it: leaks drain the heap until requests OOM, the recovery
  manager µRBs the biggest leaker, escalating to WAR/application
  restarts when the leak refills the heap faster than µRBs clear it.
* **shadow** — the same rig plus the full prediction stack (per-node
  heap monitors, online MTTF/hazard estimators, component health
  scores, the alert engine) with the proactive policy in shadow mode:
  alerts fire, nothing acts.  Two measurements come from this arm: the
  **alert lead time** (how long before each incident opened was it
  predicted?) and **passivity** — its workload outcome must be
  *identical* to the reactive arm's, proving the observability layer
  never perturbs the run it watches.
* **proactive** — the policy acts: health alerts schedule preemptive
  µRBs through :meth:`~repro.core.recovery_manager.RecoveryManager.
  preempt`.  The gate: strictly fewer failed requests *and* strictly
  fewer coarse (WAR-and-above) restarts than the reactive arm — paying
  for prediction with cheap sub-second µRBs instead of OOM outages.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.chaos import ChaosClusterRig
from repro.faults.chaos import ChaosSpec
from repro.parallel import TrialSpec, run_campaign

ARMS = ("reactive", "shadow", "proactive")

#: Recovery levels the proactive arm is supposed to make unnecessary.
COARSE_LEVELS = ("war", "application", "jvm", "os")

PREDICTION_MODE = {"reactive": None, "shadow": "shadow",
                   "proactive": "proactive"}


def coarse_actions(outcome):
    """WAR-and-above recovery count (the expensive restarts)."""
    by_level = outcome.get("actions_by_level", {})
    return sum(by_level.get(level, 0) for level in COARSE_LEVELS)


def run_one_arm(arm, seed, n_nodes, clients_per_node, leak_bytes, duration,
                tail):
    spec = ChaosSpec.leaky(leak_bytes=leak_bytes, duration=duration)
    rig = ChaosClusterRig(
        seed=seed,
        n_nodes=n_nodes,
        clients_per_node=clients_per_node,
        hardened=True,
        spec=spec,
        prediction=PREDICTION_MODE[arm],
    )
    outcome = rig.run(tail=tail)
    outcome["arm"] = arm
    return outcome


def run(seed=0, n_nodes=2, clients_per_node=20, full=False, quick=False,
        jobs=1):
    """Run the three arms and compare reactive vs predictive recovery."""
    leak_bytes = 36 * 1024 * 1024
    duration, tail = 420.0, 60.0
    if quick:
        duration, tail = 300.0, 40.0
    if full:
        n_nodes, clients_per_node = 3, 30

    specs = [
        TrialSpec(
            task="repro.experiments.health_prediction:run_one_arm",
            kwargs={
                "arm": arm,
                "n_nodes": n_nodes,
                "clients_per_node": clients_per_node,
                "leak_bytes": leak_bytes,
                "duration": duration,
                "tail": tail,
            },
            tag=arm,
            seed=seed,
        )
        for arm in ARMS
    ]
    trials = run_campaign(specs, jobs=jobs)
    outcomes = {arm: trial.value for arm, trial in zip(ARMS, trials)}

    result = ExperimentResult(
        name="Predictive observability: reactive recovery vs health-alert-"
             "driven proactive microrejuvenation on a leak-heavy schedule",
        paper_reference="§6.4 microrejuvenation, extended to prediction",
        headers=(
            "arm", "good reqs", "failed reqs", "availability",
            "recoveries", "preemptive", "coarse", "alerts",
            "median lead (s)",
        ),
    )
    for arm in ARMS:
        o = outcomes[arm]
        lead = o.get("median_alert_lead")
        result.rows.append(
            (
                arm,
                o["good_requests"],
                o["failed_requests"],
                o["availability"],
                o["recovery_actions"],
                o.get("preemptive_actions", "-"),
                coarse_actions(o),
                o.get("alerts_fired", "-"),
                round(lead, 1) if lead is not None else "-",
            )
        )
        result.notes.append(f"{arm} actions by level: {o['actions_by_level']}")

    reactive = outcomes["reactive"]
    shadow = outcomes["shadow"]
    proactive = outcomes["proactive"]

    passive = all(
        shadow[key] == reactive[key]
        for key in ("good_requests", "failed_requests", "recovery_actions")
    )
    result.notes.append(
        "shadow arm outcome identical to reactive: "
        f"{passive} (the prediction stack observes without perturbing)"
    )
    lead = shadow.get("median_alert_lead")
    if lead is not None:
        leads = shadow.get("alert_lead_times") or []
        result.notes.append(
            f"shadow arm alert lead time over {len(leads)} incident(s): "
            f"median {round(lead, 1)}s before the incident opened"
        )
    if (
        proactive["failed_requests"] < reactive["failed_requests"]
        and coarse_actions(proactive) < coarse_actions(reactive)
    ):
        result.notes.append(
            "proactive arm survived the same leak schedule with "
            f"{reactive['failed_requests'] - proactive['failed_requests']} "
            "fewer failed requests and "
            f"{coarse_actions(reactive) - coarse_actions(proactive)} fewer "
            "coarse restarts — prediction turned OOM outages into "
            "sub-second preemptive µRBs"
        )
    return result, outcomes


if __name__ == "__main__":
    print(run(quick=True)[0].render())
