"""Figure 3: failover under normal load, clusters of 2-8 nodes.

Session state is node-local (FastS), the common configuration.  A µRB-
curable fault is injected into the most-frequently called component
(BrowseCategories) on one node; the load balancer fails requests over to
the good nodes while that node recovers by JVM restart or by microreboot.

Paper: recovering with a JVM restart fails on average 2,280 requests,
dominated by the sessions established on the bad node; recovering with a
µRB fails 162, roughly the requests in flight during recovery, so the
count stays flat as the cluster grows while the restart-case count tracks
per-node session population.
"""

from repro.cluster.load_balancer import FailoverMode
from repro.experiments.cluster_common import ClusterRig
from repro.experiments.common import ExperimentResult

RECOVERIES = ("process-restart", "microreboot")


def run_one(n_nodes, recovery, clients_per_node, seed, duration, dataset=None):
    """One cluster run; returns failure and failover counts."""
    rig = ClusterRig(n_nodes, clients_per_node, seed=seed, dataset=dataset)
    rig.start(warmup=duration * 0.3)
    inject_at = rig.kernel.now
    bad_node = rig.cluster.nodes[0]
    rig.injector_for(0).inject_transient_exception("BrowseCategories")
    rig.script_recovery(
        bad_node,
        recovery,
        components=("BrowseCategories",),
        failover=FailoverMode.FULL,
        inject_at=inject_at,
    )
    baseline_failed = rig.metrics.failed_requests
    rig.run_for(duration * 0.7)
    balancer = rig.cluster.load_balancer
    return {
        "n_nodes": n_nodes,
        "recovery": recovery,
        "failed_requests": rig.metrics.failed_requests - baseline_failed,
        "total_requests": rig.metrics.total_requests,
        "sessions_failed_over": len(balancer.sessions_failed_over),
        "requests_failed_over": balancer.requests_failed_over,
    }


def run(
    seed=0,
    cluster_sizes=(2, 4, 6, 8),
    clients_per_node=150,
    duration=600.0,
    full=False,
):
    """Sweep cluster sizes for both recovery schemes (Figure 3)."""
    if full:
        clients_per_node, duration = 500, 600.0
    result = ExperimentResult(
        name="Node failover + recovery under normal load",
        paper_reference="Figure 3 (paper: ≈2,280 failed req/restart vs ≈162 per µRB)",
        headers=(
            "nodes", "recovery", "failed reqs", "% of total",
            "sessions failed over",
        ),
    )
    outcomes = []
    for n_nodes in cluster_sizes:
        for recovery in RECOVERIES:
            outcome = run_one(
                n_nodes, recovery, clients_per_node, seed, duration
            )
            outcomes.append(outcome)
            result.rows.append(
                (
                    n_nodes,
                    recovery,
                    outcome["failed_requests"],
                    round(
                        100 * outcome["failed_requests"]
                        / max(outcome["total_requests"], 1),
                        2,
                    ),
                    outcome["sessions_failed_over"],
                )
            )
    restart_counts = [
        o["failed_requests"] for o in outcomes if o["recovery"] == "process-restart"
    ]
    urb_counts = [
        o["failed_requests"] for o in outcomes if o["recovery"] == "microreboot"
    ]
    result.notes.append(
        f"mean failed requests: restart {sum(restart_counts) / len(restart_counts):.0f}, "
        f"µRB {sum(urb_counts) / len(urb_counts):.0f}"
    )
    return result, outcomes


if __name__ == "__main__":
    print(run(cluster_sizes=(2, 4), clients_per_node=100, duration=420.0)[0].render())
