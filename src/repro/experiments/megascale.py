"""Megascale: ~1M concurrent sessions on a consistent-hash sharded cluster.

The paper's evaluation tops out at hundreds of emulated clients on 8
nodes; the ROADMAP's north star is the regime real WAN services live in —
millions of sessions, hundreds of nodes, where recovery choices are made
*per shard* and observed through aggregates.  This scenario couples:

* the cohort-vectorized workload engine
  (:class:`~repro.workload.cohort.CohortEngine`) carrying the million
  sessions as per-(shard, state) count tables;
* a 100+-node sharded cluster
  (:func:`~repro.cluster.cluster.build_sharded_cluster`): consistent-hash
  ring, one replicated SSM brick group per shard, shard-aware failover at
  the load balancer;
* a **probe-grounded outcome model**: every tick each shard is probed
  with real HTTP requests through the real LB → application-server stack.
  The probes' failure rate and latency (EWMA per shard and request class)
  drive the cohort's success/latency draws — so an injected fault, the
  LB's failover, and the recovery managers' real µRBs all show up in the
  million-session aggregates with live-measured timing, without
  simulating a million individual requests;
* the full recovery pipeline per node (hardened RMs + storm limiter +
  §5.3 LB coordination), fed by probe failure reports *and* the cohort's
  lazily materialized per-session details;
* observability attributing per shard: node names embed their shard, so
  stitched incidents, health scores, and the engine's per-shard
  availability series all aggregate along shard lines.

Two arms from the same seed: ``steady`` (fault-free) and ``shardfault``
(a BrowseCategories deadlock plus an SSM brick crash at one shard), so
the headline is blast-radius: the faulted shard's availability dips and
recovers while the other ~127 shards never notice.
"""

import resource
import time

from repro.appserver.http import HttpRequest
from repro.cluster.cluster import build_sharded_cluster
from repro.core.hardening import HardeningPolicy, RecoveryStormLimiter
from repro.core.recovery_manager import FailureKind, FailureReport, RecoveryManager
from repro.core.retry import RetryPolicy
from repro.detection.simple import SimpleDetector
from repro.ebid.descriptors import OPERATIONS, URL_PATH_MAP, operation_url
from repro.ebid.schema import DatasetConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.cluster_common import wire_recovery_failover
from repro.faults.chaos import COMPONENT_TARGETS
from repro.faults.injector import FaultInjector
from repro.observability import (
    ClusterIncidentCorrelator,
    ComponentHealthRegistry,
    EstimatorHub,
    IncidentTracker,
    ShardMetricsAggregator,
    SloEngine,
    aggregate_incidents,
    aggregate_slo,
)
from repro.parallel import TrialSpec, run_campaign
from repro.workload.cohort import CohortEngine

ARMS = ("steady", "shardfault")

#: Operations probed per shard (rotating, one class per tick).  Each class
#: stands in for the operations sharing its failure domain: Authenticate
#: for the session-lifecycle ops, BrowseCategories for itself (the
#: most-invoked component and this scenario's fault target), ViewItem for
#: the remaining dynamic operations.
PROBE_OPS = ("BrowseCategories", "Authenticate", "ViewItem")

#: Deterministic probe parameters (probes are synthetic monitors, not
#: dataset-consistent users; the servlets only need well-formed ids).
PROBE_PARAMS = {
    "Authenticate": {"user_id": 1, "password": "pw1"},
    "ViewItem": {"item_id": 1},
}


def _probe_class(operation):
    """Map any of the 29 operations onto its probe class."""
    if operation == "BrowseCategories":
        return "BrowseCategories"
    if operation in ("Authenticate", "RegisterUserForm", "RegisterNewUser",
                     "Logout", "LoginForm"):
        return "Authenticate"
    return "ViewItem"


OP_PROBE_CLASS = {op: _probe_class(op) for op in OPERATIONS}


class ProbeOutcomeModel:
    """Grounds the cohort's outcome probabilities in real probe traffic.

    Each probe round sends one request per shard (rotating through
    :data:`PROBE_OPS`) through the load balancer, keyed so the ring routes
    it to that shard.  Outcomes update an EWMA failure rate and latency
    per ``(shard, probe class)``; :meth:`outcome` serves those numbers to
    the :class:`~repro.workload.cohort.CohortEngine`.  Probe failures are
    also reported to the shard's recovery manager — the probes *are* the
    §4 client-like end-to-end monitors, just deployed per shard instead
    of per client.
    """

    def __init__(self, kernel, balancer, ring, shards, reporter=None,
                 probe_timeout=8.0, alpha=0.4, base_latency=0.05,
                 load_skew=0.0):
        self.kernel = kernel
        self.balancer = balancer
        self.ring = ring
        self.shards = list(shards)
        self.reporter = reporter
        self.probe_timeout = probe_timeout
        self.alpha = alpha
        self.base_latency = base_latency
        #: Optional passive hook ``observer(t, shard, op, ok, latency)``:
        #: the cluster observability plane samples per-probe outcomes here
        #: (the EWMAs keep no history, so p50/p99 need live observation).
        #: None by default — a run without the plane pays one ``is None``.
        self.observer = None
        #: Per-shard load-skew weighting (the --full unlock): >0 scales a
        #: shard's modeled latency by how far its session load sits from
        #: the cluster mean, so consistent-hash imbalance shows up in the
        #: cohort's response times instead of every shard pretending to
        #: run at mean load.  0 keeps the historical flat model.
        self.load_skew = load_skew
        self._load_factor = {}
        self.detector = SimpleDetector()
        #: (shard, probe class) -> [ewma fail probability, ewma latency]
        self._stats = {
            (shard, op): [0.0, base_latency]
            for shard in self.shards
            for op in PROBE_OPS
        }
        #: Last failure kind seen per shard (colors the cohort's reports).
        self.last_failure_kind = {}
        self._probe_ids = self._assign_probe_ids(ring)
        self.probes_sent = 0
        self.probes_failed = 0

    def _assign_probe_ids(self, ring):
        """One client_id per shard that the ring routes to that shard.

        Searched from a high base so probe ids never collide with session
        indices; deterministic (pure hashing), so jobs=1 ≡ jobs=N holds.
        """
        ids = {}
        pending = set(self.shards)
        candidate = 1_000_000_000
        while pending:
            shard = ring.shard_for(candidate)
            if shard in pending:
                ids[shard] = candidate
                pending.discard(shard)
            candidate += 1
        return ids

    # ------------------------------------------------------------------
    # Elastic resharding hooks
    # ------------------------------------------------------------------
    def add_shard(self, shard):
        """A shard joined the ring: probe it, and re-key *every* probe.

        Ring churn can silently re-route an existing probe id to the new
        shard, so the whole id set is recomputed from the new ring — a
        pure function of ring + shard set, preserving determinism.
        """
        self.shards.append(shard)
        for op in PROBE_OPS:
            self._stats[(shard, op)] = [0.0, self.base_latency]
        self._probe_ids = self._assign_probe_ids(self.ring)

    def remove_shard(self, shard):
        """A shard left: stop probing it, re-key the survivors."""
        self.shards.remove(shard)
        for op in PROBE_OPS:
            self._stats.pop((shard, op), None)
        self.last_failure_kind.pop(shard, None)
        self._load_factor.pop(shard, None)
        self._probe_ids = self._assign_probe_ids(self.ring)

    def shard_fail_rate(self, shard):
        """Worst probe-class failure EWMA for ``shard`` (policy input)."""
        return max(
            (
                stats[0]
                for (s, _op), stats in self._stats.items()
                if s == shard
            ),
            default=0.0,
        )

    def update_load_skew(self, sessions_by_shard):
        """Recompute per-shard latency factors from current session load."""
        if self.load_skew <= 0.0 or not sessions_by_shard:
            self._load_factor = {}
            return
        mean = sum(sessions_by_shard.values()) / len(sessions_by_shard)
        if mean <= 0:
            self._load_factor = {}
            return
        self._load_factor = {
            shard: 1.0 + self.load_skew * (count / mean - 1.0)
            for shard, count in sessions_by_shard.items()
        }

    # ------------------------------------------------------------------
    def start(self, duration, interval=1.0):
        return self.kernel.process(
            self._run(duration, interval), name="probe-model"
        )

    def _run(self, duration, interval):
        end = self.kernel.now + duration
        rounds = 0
        while self.kernel.now < end - 1e-9:
            yield self.kernel.timeout(min(interval, end - self.kernel.now))
            op = PROBE_OPS[rounds % len(PROBE_OPS)]
            for shard in self.shards:
                self.kernel.process(
                    self._probe(shard, op), name=f"probe-{shard}"
                )
            rounds += 1

    def _probe(self, shard, op):
        request = HttpRequest(
            url=operation_url(op),
            operation=op,
            params=dict(PROBE_PARAMS.get(op, {})),
            cookie=None,
            idempotent=True,
            client_id=self._probe_ids[shard],
        )
        self.probes_sent += 1
        issued = self.kernel.now
        event = self.balancer.handle_request(request)
        patience = self.kernel.timeout(self.probe_timeout)
        try:
            yield self.kernel.any_of([event, patience])
        except Exception:  # noqa: BLE001 - a dead forward = failed probe
            event = None
        if event is not None and event.triggered:
            response = event.value
        else:
            response = None
        elapsed = self.kernel.now - issued
        failure = self.detector.evaluate(request, response)
        stats = self._stats.get((shard, op))
        if stats is None:
            return  # the shard was drained while this probe was in flight
        failed = 1.0 if failure is not None else 0.0
        if self.observer is not None:
            self.observer(
                self.kernel.now, shard, op, failure is None, elapsed
            )
        stats[0] += self.alpha * (failed - stats[0])
        # A timed-out probe's only latency information is the censoring
        # point itself; feeding it keeps the cohort's modeled RT honest
        # about how long failing clicks hold users.
        stats[1] += self.alpha * (elapsed - stats[1])
        if failure is not None:
            self.probes_failed += 1
            self.last_failure_kind[shard] = failure
            if self.reporter is not None:
                self.reporter(
                    FailureReport(
                        time=self.kernel.now,
                        url=request.url,
                        operation=op,
                        kind=failure,
                        detail=(
                            response.body[:80]
                            if response is not None else "probe timeout"
                        ),
                        client_id=request.client_id,
                        cookie=None,
                    ),
                    shard,
                )

    # ------------------------------------------------------------------
    def outcome(self, shard, operation):
        """(fail probability, latency seconds) for one cohort cell."""
        fail_p, latency = self._stats[(shard, OP_PROBE_CLASS[operation])]
        if self._load_factor:
            latency *= self._load_factor.get(shard, 1.0)
        return fail_p, latency


class MegascaleRig:
    """Sharded cluster × cohort engine × probes × recovery pipeline."""

    def __init__(
        self,
        seed=0,
        n_sessions=1_000_000,
        n_shards=128,
        nodes_per_shard=1,
        bricks_per_shard=2,
        duration=240.0,
        tick=1.0,
        fault=False,
        fault_at=60.0,
        fault_shard_index=None,
        brick_heal_after=60.0,
        observability=True,
        cluster_plane=True,
        load_skew=0.0,
    ):
        self.duration = duration
        self.fault = fault
        self.fault_at = fault_at
        self.brick_heal_after = brick_heal_after
        self.hardening = HardeningPolicy.hardened()
        self.cluster = build_sharded_cluster(
            n_shards,
            nodes_per_shard=nodes_per_shard,
            bricks_per_shard=bricks_per_shard,
            seed=seed,
            dataset=DatasetConfig.tiny(),
            retry_policy=RetryPolicy.retry_only(),
            hardening=self.hardening,
        )
        self.kernel = self.cluster.kernel
        balancer = self.cluster.load_balancer
        shards = self.cluster.shard_names
        self.fault_shard = (
            shards[fault_shard_index if fault_shard_index is not None
                   else len(shards) // 3]
            if fault else None
        )

        self.storm_limiter = RecoveryStormLimiter(
            self.kernel,
            limit=self.hardening.storm_limit,
            window=self.hardening.storm_window,
            window_limit=self.hardening.storm_window_limit,
        )
        #: shard -> [RecoveryManager per node of the shard]
        self.rms_by_shard = {}
        self.rms = []
        for shard in shards:
            self._wire_shard_rms(shard, self.cluster.shard_nodes[shard])

        self.reports = 0
        self._rm_cursor = {}
        self.probe_model = ProbeOutcomeModel(
            self.kernel,
            balancer,
            self.cluster.ring,
            shards,
            reporter=self._dispatch_report,
            load_skew=load_skew,
        )
        self.engine = CohortEngine(
            self.kernel,
            self.cluster.rng,
            self.probe_model.outcome,
            n_sessions=n_sessions,
            shards=shards,
            ring=self.cluster.ring,
            tick=tick,
            reporter=self._cohort_report,
        )
        self.metrics = self.engine.metrics

        # Observability: passive TraceBus subscribers; node names embed
        # their shard, so incidents and health scores attribute per shard.
        self.incident_tracker = None
        self.slo_engine = None
        self.health_registry = None
        self.shard_metrics = None
        self.correlator = None
        if observability:
            self.kernel.trace.enabled = True
            self.incident_tracker = IncidentTracker(
                kernel=self.kernel, url_path_map=URL_PATH_MAP
            )
            self.slo_engine = SloEngine(self.metrics, kernel=self.kernel)
            hub = EstimatorHub(
                kernel=self.kernel,
                tracker=self.incident_tracker,
                url_path_map=URL_PATH_MAP,
            )
            self.health_registry = ComponentHealthRegistry(
                kernel=self.kernel, hub=hub
            )
            for node in self.cluster.nodes:
                self.health_registry.register(
                    node.system.server.name, COMPONENT_TARGETS
                )
            if cluster_plane:
                self.shard_metrics = ShardMetricsAggregator(
                    bus=self.kernel.trace, cluster=self.cluster
                )
                self.shard_metrics.bind_engine(self.engine)
                self.probe_model.observer = self.shard_metrics.observe_probe
                self.correlator = ClusterIncidentCorrelator()

    # ------------------------------------------------------------------
    def _wire_shard_rms(self, shard, nodes):
        """One hardened RecoveryManager per node, LB-coordinated.

        Also the elastic scale-out path: a shard added mid-run gets the
        identical pipeline the boot-time shards got.
        """
        balancer = self.cluster.load_balancer
        members = []
        for node in nodes:
            rm = RecoveryManager(
                self.kernel,
                node.system.coordinator,
                URL_PATH_MAP,
                node_controller=node,
                recurring_limit=60,
                hardening=self.hardening,
                storm_limiter=self.storm_limiter,
            )
            wire_recovery_failover(rm, node, balancer)
            rm.start()
            members.append(rm)
            self.rms.append(rm)
        self.rms_by_shard[shard] = members
        return members

    def _rm_for_shard(self, shard):
        """Rotate reports across the shard's recovery managers."""
        members = self.rms_by_shard[shard]
        cursor = self._rm_cursor.get(shard, 0)
        self._rm_cursor[shard] = (cursor + 1) % len(members)
        return members[cursor % len(members)]

    def _dispatch_report(self, report, shard):
        members = self.rms_by_shard.get(shard)
        if not members:
            return  # the shard was drained while this report was in flight
        self.reports += 1
        self._rm_for_shard(shard).report(report)

    def _cohort_report(self, detail):
        """A materialized cohort failure becomes a real failure report."""
        kind = self.probe_model.last_failure_kind.get(
            detail.shard, FailureKind.HTTP_ERROR
        )
        self._dispatch_report(
            FailureReport(
                time=detail.at,
                url=detail.url,
                operation=detail.operation,
                kind=kind,
                detail=f"cohort session {detail.session_id}@{detail.shard}",
                client_id=detail.session_id,
                cookie=None,
            ),
            detail.shard,
        )

    # ------------------------------------------------------------------
    def _fault_script(self):
        """Deadlock BrowseCategories on the fault shard + crash a brick."""
        yield self.kernel.timeout(self.fault_at)
        shard = self.fault_shard
        for node in self.cluster.shard_nodes[shard]:
            FaultInjector(node.system).inject_deadlock("BrowseCategories")
        group = self.cluster.shard_groups[shard]
        group.crash_brick(0)
        self.kernel.trace.publish(
            "megascale.fault", shard=shard, fault="deadlock+brick-crash"
        )
        yield self.kernel.timeout(self.brick_heal_after)
        group.restart_brick(0)
        self.kernel.trace.publish("megascale.brick.heal", shard=shard)

    def _spawn_scenario(self):
        """Hook: start this scenario's fault machinery (subclasses
        override — the storm rig spawns its storm engine and elastic
        policy here)."""
        if self.fault:
            self.kernel.process(self._fault_script(), name="fault-script")

    def run(self):
        self.probe_model.update_load_skew(self.engine.shard_sessions)
        self.probe_model.start(self.duration)
        self.engine.start(self.duration)
        self._spawn_scenario()
        horizon = self.duration
        self.kernel.run(until=horizon)
        if self.incident_tracker is not None:
            self.incident_tracker.finalize(horizon)
        if self.slo_engine is not None:
            self.slo_engine.evaluate(horizon)
        if self.shard_metrics is not None:
            self.shard_metrics.collect(self.engine, duration=horizon)
        return self.outcome()

    # ------------------------------------------------------------------
    def shard_health(self):
        """Shard → minimum component health score over its nodes."""
        if self.health_registry is None:
            return {}
        out = {}
        for shard in self.cluster.shard_names:
            scores = [
                self.health_registry.score(component, server=node.name)
                for node in self.cluster.shard_nodes[shard]
                for component in COMPONENT_TARGETS
            ]
            scores = [s for s in scores if s is not None]
            if scores:
                out[shard] = round(min(scores), 1)
        return out

    def outcome(self):
        metrics = self.metrics
        engine = self.engine
        total = metrics.total_requests
        actions = [a for rm in self.rms for a in rm.actions]
        by_level = {}
        for action in actions:
            by_level[action.level] = by_level.get(action.level, 0) + 1
        balancer = self.cluster.load_balancer
        worst = engine.worst_shard()
        shard_rows = engine.shard_summary()
        availabilities = [
            r["availability"] for r in shard_rows
            if r["availability"] is not None
        ]
        out = {
            "sessions": engine.n_sessions,
            "population": engine.population(),
            "shards": len(self.cluster.shard_names),
            "nodes": len(self.cluster.nodes),
            "good_requests": metrics.good_requests,
            "failed_requests": metrics.failed_requests,
            "availability": (
                round(metrics.good_requests / total, 6) if total else None
            ),
            "gaw_per_second": (
                round(metrics.good_requests / self.duration, 1)
                if self.duration else None
            ),
            "worst_shard": worst,
            "healthy_shard_availability": (
                round(
                    sorted(availabilities)[len(availabilities) // 2], 6
                ) if availabilities else None
            ),
            "fault_shard": self.fault_shard,
            "recovery_actions": len(actions),
            "actions_by_level": dict(sorted(by_level.items())),
            "reports": self.reports,
            "cohort_details": engine.total_details,
            "probes_sent": self.probe_model.probes_sent,
            "probes_failed": self.probe_model.probes_failed,
            "requests_failed_over": balancer.requests_failed_over,
            "shard_failover_local": int(
                balancer.metrics.counter("lb.shard.failover.local").value
            ),
            "shard_failover_cross": int(
                balancer.metrics.counter("lb.shard.failover.cross").value
            ),
            "action_mix": {
                name: round(share, 4)
                for name, share in sorted(engine.action_mix().items())
            },
        }
        if self.incident_tracker is not None:
            out["incidents"] = aggregate_incidents(
                self.incident_tracker.incidents
            )
            out["incident_shards"] = sorted(
                {
                    self.cluster.shard_of_node[i.server]
                    for i in self.incident_tracker.incidents
                    if i.server in self.cluster.shard_of_node
                }
            )
        if self.slo_engine is not None:
            out["slo"] = aggregate_slo(self.slo_engine.windows)
        if self.shard_metrics is not None:
            out["cluster"] = self._cluster_outcome()
        health = self.shard_health()
        if health:
            sick = {s: h for s, h in health.items() if h < 100.0}
            out["sick_shards_health"] = dict(sorted(sick.items()))
        return out

    def _cluster_outcome(self):
        """The observability plane's view: rollups, signals, correlation.

        Everything here is derived by passive observers — popping the
        ``cluster`` key must leave an outcome byte-identical to a
        plane-off run (the benchmark gate).
        """
        plane = self.shard_metrics
        policy = getattr(self, "policy", None)
        replacements = (
            [dict(r) for r in policy.replacements] if policy is not None
            else []
        )
        metas = self.correlator.correlate(
            self.incident_tracker.incidents,
            replacements=replacements,
            migrations=plane.migrations,
            shard_of_node=self.cluster.shard_of_node,
            storm=plane.storm,
        )
        return {
            "rollup": plane.rows(),
            "summary": plane.cluster_summary(),
            "capacity_signals": list(plane.capacity_signals),
            "meta_incidents": [m.to_dict() for m in metas],
            "unclustered_incidents": self.correlator.unclustered,
        }


def run_one_arm(arm, seed, n_sessions, n_shards, nodes_per_shard, duration):
    rig = MegascaleRig(
        seed=seed,
        n_sessions=n_sessions,
        n_shards=n_shards,
        nodes_per_shard=nodes_per_shard,
        duration=duration,
        fault=(arm == "shardfault"),
    )
    outcome = rig.run()
    outcome["arm"] = arm
    return outcome


#: (sessions, shards, nodes_per_shard, duration) per scale name.
SCALES = {
    "smoke": (50_000, 16, 1, 90.0),
    "standard": (1_000_000, 128, 1, 240.0),
    "full": (2_000_000, 128, 2, 300.0),
}


def run(seed=0, full=False, quick=False, jobs=1, scale=None):
    """Run both megascale arms and render the blast-radius comparison."""
    if scale is None:
        scale = "smoke" if quick else ("full" if full else "standard")
    n_sessions, n_shards, nodes_per_shard, duration = SCALES[scale]

    started = time.monotonic()
    specs = [
        TrialSpec(
            task="repro.experiments.megascale:run_one_arm",
            kwargs={
                "arm": arm,
                "n_sessions": n_sessions,
                "n_shards": n_shards,
                "nodes_per_shard": nodes_per_shard,
                "duration": duration,
            },
            tag=arm,
            seed=seed,
        )
        for arm in ARMS
    ]
    trials = run_campaign(specs, jobs=jobs)
    outcomes = {arm: trial.value for arm, trial in zip(ARMS, trials)}
    wall = time.monotonic() - started
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    result = ExperimentResult(
        name=f"Megascale: {n_sessions:,} sessions on {n_shards} shards "
             f"({n_shards * nodes_per_shard} nodes), cohort-vectorized "
             "workload, fault at one shard",
        paper_reference="§4 workload + §5.3 failover, at WAN-service scale",
        headers=(
            "arm", "sessions", "availability", "Gaw/s", "worst shard",
            "worst avail", "recoveries", "failovers",
        ),
    )
    for arm in ARMS:
        o = outcomes[arm]
        worst = o["worst_shard"] or {}
        result.rows.append(
            (
                arm,
                f"{o['sessions']:,}",
                o["availability"],
                o["gaw_per_second"],
                worst.get("shard"),
                worst.get("availability"),
                o["recovery_actions"],
                o["requests_failed_over"],
            )
        )
        result.notes.append(
            f"{arm}: {o['probes_sent']} probes ({o['probes_failed']} "
            f"failed), {o['reports']} failure reports "
            f"({o['cohort_details']} from cohort details), recoveries by "
            f"level {o['actions_by_level']}"
        )
        incidents = o.get("incidents")
        if incidents and incidents.get("count"):
            result.notes.append(
                f"{arm}: {incidents['count']} incident(s) at shard(s) "
                f"{o.get('incident_shards')}, mean MTTR "
                f"{incidents['mean_span']}s"
            )
        slo = o.get("slo")
        if slo:
            result.notes.append(
                f"{arm} SLO (30s windows): {slo['violations']}/"
                f"{slo['windows']} violated, min availability "
                f"{slo['min_availability']}"
            )
        sick = o.get("sick_shards_health")
        if sick:
            result.notes.append(f"{arm}: shard health dips {sick}")
        cluster = o.get("cluster")
        if cluster:
            summary = cluster["summary"]
            pressured = summary["pressured_shards"]
            result.notes.append(
                f"{arm} rollup: cluster probe p50/p99 "
                f"{summary['probe_p50']}/{summary['probe_p99']}s, "
                f"{summary['slo_violations']} shard-SLO window violation(s), "
                f"{len(cluster['capacity_signals'])} capacity signal(s), "
                f"pressured at end: {pressured if pressured else 'none'}"
            )
    steady, faulted = outcomes["steady"], outcomes["shardfault"]
    if steady["availability"] and faulted["availability"]:
        blast = faulted.get("worst_shard") or {}
        result.notes.append(
            "blast radius: cluster availability "
            f"{steady['availability']} → {faulted['availability']} under "
            f"the shard fault; healthy-shard median stayed at "
            f"{faulted['healthy_shard_availability']} while "
            f"{blast.get('shard')} dipped to {blast.get('availability')}"
        )
    result.notes.append(
        f"scale={scale}: wall {wall:.1f}s, peak RSS "
        f"{peak_rss_kb / 1024:.0f} MiB (driver process)"
    )
    return result, outcomes


if __name__ == "__main__":
    print(run(quick=True)[0].render())
