"""Shared scaffolding for the cluster experiments (§5.3)."""

from repro.cluster.cluster import build_cluster
from repro.cluster.load_balancer import FailoverMode
from repro.core.recovery_manager import NODE_WIDE_LEVELS
from repro.faults.injector import FaultInjector
from repro.telemetry.spans import SpanCollector
from repro.workload.client import ClientPopulation
from repro.workload.markov import WorkloadProfile


def wire_recovery_failover(rm, node, balancer):
    """LB coordination (§5.3): full failover for node-wide recoveries,
    component-scoped MICRO failover for µRBs — and for quarantines.

    A quarantined component answers fast 503s on its own node, but in a
    cluster the other nodes are healthy: keeping a MICRO failover window
    open for the quarantined components (§6.1) turns the quarantine from
    "requests fail fast" into "requests go elsewhere".

    The balancer holds one failover record per node, so with the parallel
    scheduler several overlapping µRBs must *union* their target sets:
    each begin/end re-asserts the union of every in-flight action's
    targets plus the active quarantines, and the window closes only when
    both are empty.

    Shared by every rig that pairs per-node recovery managers with a
    load balancer (chaos campaign, health prediction, megascale).
    """
    active_micro = {}

    def micro_union():
        union = set(rm.active_quarantines())
        for targets in active_micro.values():
            union |= targets
        return union

    def sync_micro(_name=None, _active=None):
        union = micro_union()
        if union:
            balancer.begin_failover(
                node, mode=FailoverMode.MICRO, components=union
            )
        else:
            balancer.end_failover(node)

    def begin(action):
        if action.level in NODE_WIDE_LEVELS:
            balancer.begin_failover(node, mode=FailoverMode.FULL)
        elif action.level in ("ejb", "war") and action.target:
            active_micro[id(action)] = set(action.target)
            sync_micro()

    def end(action):
        # Closing this action's failover window must not strand a
        # concurrent action's redirect or an active quarantine's:
        # re-assert the remaining union.
        active_micro.pop(id(action), None)
        sync_micro()

    def deferred(reason, level, targets, ttl):
        # A deferred coarse recovery = the RM knows this node is sick but
        # is letting it breathe.  Meanwhile, route traffic around it
        # (sessions live in the external store, so they can be served
        # anywhere) instead of feeding requests to a broken node — for
        # the whole backoff, not just one degraded-ttl window.
        if level != "ejb":
            balancer.note_degraded(
                node, f"recovery-deferred-{reason}", ttl=ttl
            )

    rm.begin_listeners.append(begin)
    rm.listeners.append(end)
    rm.quarantine_listeners.append(sync_micro)
    rm.defer_listeners.append(deferred)


class ClusterRig:
    """N nodes + load balancer + clients, with scripted recovery."""

    def __init__(
        self,
        n_nodes,
        clients_per_node,
        seed=0,
        session_store="fasts",
        dataset=None,
        retry_policy=None,
    ):
        self.cluster = build_cluster(
            n_nodes,
            seed=seed,
            session_store=session_store,
            dataset=dataset,
            retry_policy=retry_policy,
        )
        self.kernel = self.cluster.kernel
        # One collector for the whole cluster: traces start at the LB and
        # are tagged (by the admitting server) with the node that actually
        # served the request — failover redirects stay visible per-path.
        # Enabled only via the spans default (e.g. `repro run --trace`).
        self.span_collector = SpanCollector(self.kernel)
        self.cluster.load_balancer.span_collector = self.span_collector
        for node in self.cluster.nodes:
            node.system.server.span_collector = self.span_collector
        self.reports = []
        self.population = ClientPopulation(
            self.kernel,
            self.cluster.load_balancer,
            self.cluster.dataset,
            n_clients=n_nodes * clients_per_node,
            rng_registry=self.cluster.rng,
            profile=WorkloadProfile(),
            reporter=self.reports.append,
        )
        self.metrics = self.population.metrics

    def start(self, warmup=0.0):
        self.population.start()
        if warmup:
            self.kernel.run(until=self.kernel.now + warmup)

    def run_for(self, seconds):
        self.kernel.run(until=self.kernel.now + seconds)

    def injector_for(self, node_index):
        return FaultInjector(self.cluster.nodes[node_index].system)

    # ------------------------------------------------------------------
    def script_recovery(
        self,
        bad_node,
        recovery,  # "microreboot" or "process-restart"
        components=("BrowseCategories",),
        failover=FailoverMode.FULL,
        detection_threshold=6,
        inject_at=None,
    ):
        """Spawn a watcher that performs one recovery once failures appear.

        Mirrors §5.3's flow: detectors report failures; when the RM decides
        to recover, it first notifies the LB (failover begins), recovers
        the node, then notifies the LB again (affinity restored).  Returns
        a dict filled with recovery timestamps.
        """
        outcome = {"recovered_at": None, "detected_at": None}
        balancer = self.cluster.load_balancer

        def watcher():
            while True:
                fresh = [
                    r for r in self.reports
                    if inject_at is None or r.time >= inject_at
                ]
                if len(fresh) >= detection_threshold:
                    break
                yield self.kernel.timeout(0.5)
            outcome["detected_at"] = self.kernel.now
            if failover is not FailoverMode.NONE:
                balancer.begin_failover(
                    bad_node, mode=failover, components=components
                )
            if recovery == "microreboot":
                yield from bad_node.system.coordinator.microreboot(
                    list(components)
                )
            else:
                yield from bad_node.restart_jvm()
            balancer.end_failover(bad_node)
            outcome["recovered_at"] = self.kernel.now

        self.kernel.process(watcher(), name="recovery-script")
        return outcome
