"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run(...) -> ExperimentResult`` with laptop-friendly
defaults and a ``full=True`` switch for paper-scale parameters, and the
result's ``render()`` prints rows/series mirroring the paper's
presentation.  ``EXPERIMENTS.md`` records paper-versus-measured values.

| Experiment | Module |
|---|---|
| Table 1 (workload mix)                | :mod:`repro.experiments.table1` |
| Table 2 (fault → reboot level)        | :mod:`repro.experiments.table2` |
| Table 3 (recovery times)              | :mod:`repro.experiments.table3` |
| Table 4 (>8 s requests at 2× load)    | :mod:`repro.experiments.table4` |
| Table 5 (fault-free performance)      | :mod:`repro.experiments.table5` |
| Table 6 (Retry-After masking)         | :mod:`repro.experiments.table6` |
| Figure 1 (Taw: restart vs µRB)        | :mod:`repro.experiments.figure1` |
| Figure 2 (functional disruption)      | :mod:`repro.experiments.figure2` |
| Figure 3 (failover, normal load)      | :mod:`repro.experiments.figure3` |
| Figure 4 (response time, 2× load)     | :mod:`repro.experiments.figure4` |
| Figure 5 (lax detection)              | :mod:`repro.experiments.figure5` |
| Figure 6 (microrejuvenation)          | :mod:`repro.experiments.figure6` |
| §5.3/§6.1 six-nines arithmetic        | :mod:`repro.experiments.availability` |
| Chaos: seed vs hardened pipeline      | :mod:`repro.experiments.chaos` |
| Prediction: reactive vs proactive µRB | :mod:`repro.experiments.health_prediction` |
| Megascale: 1M sessions, 128 shards    | :mod:`repro.experiments.megascale` |
"""

from repro.experiments.common import ExperimentResult, SingleNodeRig

__all__ = ["ExperimentResult", "SingleNodeRig"]
