"""Figure 2: functional disruption as perceived by end users.

Zooming in on one recovery event: during a JVM restart the whole service is
down (every functional group gaps); during a microreboot of the faulty
component, operations in the other functional groups keep succeeding, and
many operations within the affected group do too.
"""

from repro.ebid.descriptors import FUNCTIONAL_GROUPS
from repro.experiments.common import ExperimentResult, SingleNodeRig
from repro.experiments.plotting import ascii_gap_chart
from repro.faults.corruption import CorruptionMode
from repro.parallel import TrialSpec, run_campaign

POLICIES = ("process-restart", "microreboot")


def run_one(policy, seed, n_clients, inject_at, duration):
    recovery_policy = "recursive" if policy == "microreboot" else policy
    rig = SingleNodeRig(
        seed=seed, n_clients=n_clients, recovery_policy=recovery_policy
    )

    def driver():
        yield rig.kernel.timeout(inject_at)
        # RegisterNewUser sits in the User Account group: the paper's
        # zoomed figure shows that group (partially) unavailable while the
        # others keep serving.
        rig.injector.corrupt_jndi("RegisterNewUser", CorruptionMode.NULL)

    rig.kernel.process(driver())
    rig.start()
    rig.run_for(duration)
    gaps = {
        group: rig.metrics.group_unavailability(group)
        for group in FUNCTIONAL_GROUPS
    }
    return rig, gaps


def run_arm(policy, seed=0, n_clients=300, inject_at=240.0, duration=480.0):
    """Spawn-safe trial entrypoint: per-group gap spans for one policy.

    Returns only the (picklable) gap spans, not the rig itself.
    """
    _rig, gaps = run_one(policy, seed, n_clients, inject_at, duration)
    return gaps


def total_gap_seconds(spans, window):
    start, end = window
    total = 0.0
    for s, e in spans:
        s, e = max(s, start), min(e, end)
        if e > s:
            total += e - s
    return total


def run(seed=0, n_clients=300, inject_at=240.0, duration=480.0, full=False,
        jobs=1):
    """Compare per-group unavailability around one recovery event."""
    if full:
        n_clients, inject_at, duration = 500, 600.0, 1200.0
    window = (inject_at - 5.0, duration)

    result = ExperimentResult(
        name="Client-perceived availability by functional group",
        paper_reference="Figure 2",
        headers=("functional group", "restart: gap (s)", "µRB: gap (s)"),
    )
    specs = [
        TrialSpec(
            task="repro.experiments.figure2:run_arm",
            kwargs={
                "policy": policy,
                "n_clients": n_clients,
                "inject_at": inject_at,
                "duration": duration,
            },
            tag=policy,
            seed=seed,
        )
        for policy in POLICIES
    ]
    trials = run_campaign(specs, jobs=jobs)
    outcomes = {policy: trial.value for policy, trial in zip(POLICIES, trials)}
    restart_gaps = outcomes["process-restart"]
    urb_gaps = outcomes["microreboot"]
    for group in FUNCTIONAL_GROUPS:
        result.rows.append(
            (
                group,
                round(total_gap_seconds(restart_gaps[group], window), 1),
                round(total_gap_seconds(urb_gaps[group], window), 1),
            )
        )
    result.notes.append(
        "µRB case: only the User Account group should show a gap; the JVM "
        "restart gaps every group for the full restart (plus session loss)."
    )
    chart_window = (inject_at - 20.0, min(inject_at + 120.0, duration))
    result.figures["availability by group, PROCESS RESTART"] = ascii_gap_chart(
        restart_gaps, chart_window
    )
    result.figures["availability by group, MICROREBOOT"] = ascii_gap_chart(
        urb_gaps, chart_window
    )
    return result, outcomes


if __name__ == "__main__":
    print(run()[0].render())
