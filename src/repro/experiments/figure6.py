"""Figure 6: averting leak-induced failures with microrejuvenation (§6.4).

Memory leaks are injected in two components: ViewItem (a frequently-called
stateless session bean, 250 KB/invocation) and Item (an entity bean inside
the long-recovering EntityGroup, 2 KB/invocation).  The rejuvenation
service watches available heap; below ``Malarm`` (35% of the 1 GB heap) it
microreboots components in a rolling fashion until ``Msufficient`` (80%)
is available, learning which components release the most memory.

Paper: whole-JVM rejuvenation failed 11,915 requests over the 30-minute
run; microrejuvenation failed 1,383 — an order of magnitude better — and
good Taw never dropped to zero.
"""

from repro.core.rejuvenation import RejuvenationService
from repro.experiments.common import ExperimentResult, SingleNodeRig
from repro.experiments.plotting import ascii_timeseries
from repro.parallel import TrialSpec, run_campaign

KB = 1024

SCHEMES = ("jvm-restart", "microrejuvenation")


class JvmRejuvenator:
    """The baseline: whole-JVM restart whenever memory runs low."""

    def __init__(self, kernel, node, m_alarm_fraction=0.35, check_interval=5.0):
        self.kernel = kernel
        self.node = node
        self.m_alarm_fraction = m_alarm_fraction
        self.check_interval = check_interval
        self.restarts = 0
        self.memory_samples = []

    def start(self):
        return self.kernel.process(self._run(), name="jvm-rejuvenator")

    def _run(self):
        heap = self.node.server.heap
        while True:
            yield self.kernel.timeout(self.check_interval)
            self.memory_samples.append((self.kernel.now, heap.available))
            if heap.available < heap.capacity * self.m_alarm_fraction:
                yield from self.node.restart_jvm()
                self.restarts += 1
                self.memory_samples.append((self.kernel.now, heap.available))


def run_one(scheme, seed, n_clients, duration, item_leak, viewitem_leak):
    rig = SingleNodeRig(
        seed=seed, n_clients=n_clients, with_recovery_manager=False
    )
    rig.injector.inject_memory_leak("Item", item_leak)
    rig.injector.inject_memory_leak("ViewItem", viewitem_leak)

    if scheme == "microrejuvenation":
        service = RejuvenationService(
            rig.kernel,
            rig.system.coordinator,
            m_alarm_fraction=0.35,
            m_sufficient_fraction=0.80,
            check_interval=5.0,
        )
    else:
        service = JvmRejuvenator(rig.kernel, rig.node)
    service.start()
    rig.start()
    rig.run_for(duration)

    good_series = rig.metrics.good_taw_series()
    zero_good_seconds = sum(
        1
        for second in range(int(duration))
        if good_series.get(second, 0) == 0
    )
    return {
        "scheme": scheme,
        "failed_requests": rig.metrics.failed_requests,
        "good_requests": rig.metrics.good_requests,
        "memory_timeline": list(service.memory_samples),
        "zero_good_seconds": zero_good_seconds,
        "microreboots": getattr(service, "microreboots_performed", 0),
        "jvm_restarts": getattr(
            service, "jvm_restarts_performed", getattr(service, "restarts", 0)
        ),
        "rejuvenation_order": list(getattr(service, "candidates", []))[:3],
    }


def run(
    seed=0,
    n_clients=500,
    duration=1800.0,
    item_leak=2 * KB,
    viewitem_leak=250 * KB,
    full=False,
    quick=False,
    jobs=1,
):
    """30 minutes of leaking under both rejuvenation schemes."""
    if quick:
        n_clients, duration, viewitem_leak = 200, 600.0, 1800 * KB
    result = ExperimentResult(
        name="Available memory and lost work under rejuvenation",
        paper_reference="Figure 6 (paper: 11,915 vs 1,383 failed requests)",
        headers=(
            "scheme", "failed reqs", "good reqs", "rejuvenation events",
            "seconds with zero goodput",
        ),
    )
    specs = [
        TrialSpec(
            task="repro.experiments.figure6:run_one",
            kwargs={
                "scheme": scheme,
                "n_clients": n_clients,
                "duration": duration,
                "item_leak": item_leak,
                "viewitem_leak": viewitem_leak,
            },
            tag=scheme,
            seed=seed,
        )
        for scheme in SCHEMES
    ]
    trials = run_campaign(specs, jobs=jobs)
    outcomes = {scheme: trial.value for scheme, trial in zip(SCHEMES, trials)}
    for scheme in SCHEMES:
        outcome = outcomes[scheme]
        events = (
            outcome["microreboots"]
            if scheme == "microrejuvenation"
            else outcome["jvm_restarts"]
        )
        result.rows.append(
            (
                scheme,
                outcome["failed_requests"],
                outcome["good_requests"],
                events,
                outcome["zero_good_seconds"],
            )
        )
        result.series[f"memory:{scheme}"] = dict(outcome["memory_timeline"])
        result.figures[f"available memory, {scheme}"] = ascii_timeseries(
            {t: mem / (1024 * 1024) for t, mem in outcome["memory_timeline"]},
            label="MB ", height=8,
        )
    urb = outcomes["microrejuvenation"]
    result.notes.append(
        "after the first rolling sweep the biggest leakers lead the "
        f"candidate list: {urb['rejuvenation_order']}"
    )
    return result, outcomes


if __name__ == "__main__":
    print(run(quick=True)[0].render())
