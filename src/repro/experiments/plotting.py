"""Terminal-friendly renderings of the paper's figures.

The experiment harnesses return numeric series; these helpers draw them as
ASCII charts so ``benchmarks/results/*.txt`` contains not just the numbers
but a recognizable picture of each figure — the Taw dips of Figure 1, the
response-time spike of Figure 4, the memory sawtooth of Figure 6.
"""


def ascii_timeseries(series, width=78, height=12, label="", y_format="{:.0f}"):
    """Render {x: y} as a fixed-size ASCII chart (rows of '▮' columns).

    Points are bucketed into ``width`` columns (averaging within a bucket)
    and scaled to ``height`` rows.  Returns a multi-line string.
    """
    if not series:
        return f"{label}(no data)"
    xs = sorted(series)
    x_min, x_max = xs[0], xs[-1]
    span = max(x_max - x_min, 1e-9)
    columns = [[] for _ in range(width)]
    for x in xs:
        index = min(int((x - x_min) / span * (width - 1)), width - 1)
        columns[index].append(series[x])
    values = [
        sum(bucket) / len(bucket) if bucket else None for bucket in columns
    ]
    present = [v for v in values if v is not None]
    y_max = max(present)
    y_min = min(0.0, min(present))
    y_span = max(y_max - y_min, 1e-9)

    rows = []
    for level in range(height, 0, -1):
        threshold = y_min + y_span * (level - 0.5) / height
        line = "".join(
            " " if v is None else ("▮" if v >= threshold else " ")
            for v in values
        )
        rows.append(line)
    top = y_format.format(y_max)
    bottom = y_format.format(y_min)
    header = f"{label}  (y: {bottom}..{top}, x: {x_min:.0f}..{x_max:.0f})"
    axis = "-" * width
    return "\n".join([header, *rows, axis])


def ascii_gap_chart(groups_to_spans, window, width=78):
    """Render Figure 2: one row per functional group, gaps where requests
    failed (solid bar = available, blank = unavailable)."""
    start, end = window
    span = max(end - start, 1e-9)
    lines = []
    name_width = max((len(g) for g in groups_to_spans), default=0)
    for group, spans in groups_to_spans.items():
        cells = ["▮"] * width
        for s, e in spans:
            lo = max(int((s - start) / span * width), 0)
            hi = min(int((e - start) / span * width) + 1, width)
            for i in range(lo, hi):
                cells[i] = " "
        lines.append(f"{group.rjust(name_width)} |{''.join(cells)}|")
    lines.append(
        f"{' ' * name_width}  t={start:.0f}s{' ' * (width - 12)}t={end:.0f}s"
    )
    return "\n".join(lines)


def ascii_bars(items, width=50, label="", value_format="{:.0f}"):
    """Horizontal bar chart for {name: value} comparisons."""
    if not items:
        return f"{label}(no data)"
    peak = max(items.values()) or 1
    name_width = max(len(str(name)) for name in items)
    lines = [label] if label else []
    for name, value in items.items():
        bar = "▮" * max(1 if value > 0 else 0, int(value / peak * width))
        lines.append(
            f"{str(name).rjust(name_width)} |{bar.ljust(width)}| "
            + value_format.format(value)
        )
    return "\n".join(lines)
