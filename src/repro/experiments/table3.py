"""Table 3: recovery times under load, per component.

Averages over N trials per component on a single node under sustained
client load, broken into crash and reinitialization time, plus the WAR,
the whole application, and a JVM restart.

The per-component times are *calibrated inputs* (our deployment descriptors
carry the paper's measured values); what this experiment validates is that
the microreboot machinery actually delivers those times end-to-end under
load — recovery groups expand correctly (EntityGroup recovers as one 825 ms
unit), whole-application restarts are batch-optimized, and the JVM restart
breakdown (56% services / 44% application deployment) holds.
"""

from repro.ebid.descriptors import ebid_descriptors
from repro.experiments.common import ExperimentResult, SingleNodeRig

#: Paper Table 3 values (msec): component -> (µRB total, crash, reinit).
PAPER_TABLE3 = {
    "AboutMe": (551, 9, 542),
    "Authenticate": (491, 12, 479),
    "BrowseCategories": (411, 11, 400),
    "BrowseRegions": (416, 15, 401),
    "BuyNow": (471, 9, 462),
    "CommitBid": (533, 8, 525),
    "CommitBuyNow": (471, 9, 462),
    "CommitUserFeedback": (531, 9, 522),
    "DoBuyNow": (427, 10, 417),
    "EntityGroup": (825, 36, 789),
    "IdentityManager": (461, 10, 451),
    "LeaveUserFeedback": (484, 10, 474),
    "MakeBid": (514, 9, 505),
    "OldItem": (529, 10, 519),
    "RegisterNewItem": (447, 13, 434),
    "RegisterNewUser": (601, 13, 588),
    "SearchItemsByCategory": (442, 14, 428),
    "SearchItemsByRegion": (572, 8, 564),
    "UserFeedback": (483, 11, 472),
    "ViewBidHistory": (507, 11, 496),
    "ViewUserInfo": (415, 10, 405),
    "ViewItem": (446, 10, 436),
    "WAR (Web component)": (1028, 71, 957),
    "Entire eBid application": (7699, 33, 7666),
    "JVM/JBoss process restart": (19083, 0, 19083),
}

#: EntityGroup members are measured through any one member (the whole
#: group recovers together); the rest of the group is skipped.
GROUP_MEMBERS = ("Category", "Region", "User", "Item", "Bid")


def _measure(rig, trials, generator_factory):
    """Average (total, crash, reinit) seconds over ``trials`` runs."""
    totals = []
    for _ in range(trials):
        rig.run_for(5.0)  # breathe between recoveries, under load
        start = rig.kernel.now
        event = rig.kernel.run_until_triggered(
            rig.kernel.process(generator_factory())
        )
        if event is not None:
            # The µRB time proper is crash + reinit; the post-µRB garbage-
            # collector nudge happens after the component is serving again.
            totals.append(
                (
                    event.crash_seconds + event.reinit_seconds,
                    event.crash_seconds,
                    event.reinit_seconds,
                )
            )
        else:
            totals.append((rig.kernel.now - start, 0.0, 0.0))
    n = len(totals)
    return tuple(sum(t[i] for t in totals) / n for i in range(3))


def run(seed=0, n_clients=500, trials=10, full=False, quick=False):
    """Measure every Table 3 row."""
    if quick:
        n_clients, trials = 150, 3
    rig = SingleNodeRig(
        seed=seed, n_clients=n_clients, with_recovery_manager=False
    )
    rig.start(warmup=30.0)
    coordinator = rig.system.coordinator

    result = ExperimentResult(
        name="Average recovery times under load",
        paper_reference="Table 3",
        headers=(
            "Component", "paper µRB (ms)", "measured µRB (ms)",
            "crash (ms)", "reinit (ms)",
        ),
    )

    components = [
        d.name for d in ebid_descriptors()
        if d.name not in GROUP_MEMBERS and d.name != "EbidWAR"
    ]
    rows = {}
    for name in components:
        total, crash, reinit = _measure(
            rig, trials, lambda name=name: coordinator.microreboot([name])
        )
        rows[name] = (total, crash, reinit)

    total, crash, reinit = _measure(
        rig, trials, lambda: coordinator.microreboot(["Item"])
    )
    rows["EntityGroup"] = (total, crash, reinit)

    total, crash, reinit = _measure(rig, trials, coordinator.microreboot_war)
    rows["WAR (Web component)"] = (total, crash, reinit)

    total, crash, reinit = _measure(rig, trials, coordinator.restart_application)
    rows["Entire eBid application"] = (total, crash, reinit)

    jvm_trials = max(1, trials // 3)
    total, _c, _r = _measure(rig, jvm_trials, rig.node.restart_jvm)
    rows["JVM/JBoss process restart"] = (total, 0.0, total)

    for name in PAPER_TABLE3:
        if name not in rows:
            continue
        total, crash, reinit = rows[name]
        result.rows.append(
            (
                name,
                PAPER_TABLE3[name][0],
                round(total * 1000),
                round(crash * 1000),
                round(reinit * 1000),
            )
        )
    ejb_totals = [
        rows[n][0] * 1000 for n in rows
        if n not in ("WAR (Web component)", "Entire eBid application",
                     "JVM/JBoss process restart", "EntityGroup")
    ]
    result.notes.append(
        f"individual EJB µRBs range {min(ejb_totals):.0f}-{max(ejb_totals):.0f} ms "
        "(paper: 411-601 ms); the JVM restart is an order of magnitude above any µRB"
    )
    return result, rows


if __name__ == "__main__":
    print(run(quick=True)[0].render())
