"""Figure 5: cheap recovery relaxes failure detection (§6.3).

Left graph: a fault is injected in the most-frequently called EJB
(BrowseCategories) and recovery is *delayed* by Tdet seconds, then
performed either as a µRB or a JVM restart.  The paper's dotted line shows
that with µRB-based recovery a monitor may take up to ≈53.5 s to detect the
failure and still beat JVM restarts with instantaneous detection.

Right graph: false positives cost one useless recovery each.  With ≈3,917
failed requests per JVM restart and ≈78 per µRB, microreboot-based recovery
tolerates false-positive rates up to ≈98% before it is worse than restarts
with perfect detection.
"""

from repro.experiments.common import ExperimentResult, SingleNodeRig
from repro.parallel import TrialSpec, run_campaign

DEFAULT_TDETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0)


def run_delay_point(recovery, t_det, seed, n_clients, settle=45.0):
    """Failed requests when recovery happens ``t_det`` s after injection."""
    rig = SingleNodeRig(
        seed=seed, n_clients=n_clients, with_recovery_manager=False
    )
    rig.start(warmup=30.0)
    before = rig.metrics.failed_requests
    rig.injector.inject_transient_exception("BrowseCategories")
    rig.run_for(t_det)

    def recover():
        if recovery == "microreboot":
            yield from rig.system.coordinator.microreboot(["BrowseCategories"])
        else:
            yield from rig.node.restart_jvm()

    rig.kernel.run_until_triggered(rig.kernel.process(recover()))
    rig.run_for(settle)
    return rig.metrics.failed_requests - before


def detection_crossover(series_restart, series_urb):
    """Largest Tdet where µRB still beats restart-with-Tdet=0."""
    budget = series_restart[0.0]
    crossover = None
    for t_det in sorted(series_urb):
        if series_urb[t_det] <= budget:
            crossover = t_det
    return crossover, budget


def false_positive_series(failed_per_restart, failed_per_urb, max_n=200):
    """f(n) = failures from n useless recoveries + one useful one."""
    restart = {n: (n + 1) * failed_per_restart for n in range(max_n + 1)}
    urb = {n: (n + 1) * failed_per_urb for n in range(max_n + 1)}
    # Largest n for which n useless µRBs + 1 useful µRB still beat one
    # perfect-detection restart; FP rate = n/(n+1).
    tolerable_n = max(
        (n for n in urb if urb[n] <= failed_per_restart), default=0
    )
    tolerable_fp = tolerable_n / (tolerable_n + 1) if tolerable_n else 0.0
    return restart, urb, tolerable_fp


def run(seed=0, n_clients=300, t_dets=DEFAULT_TDETS, full=False, quick=False,
        jobs=1):
    """Both graphs of Figure 5."""
    if quick:
        n_clients = 150
        t_dets = (0.0, 2.0, 10.0, 40.0, 80.0)
    if full:
        n_clients = 500

    left = {"microreboot": {}, "process-restart": {}}
    arms = [
        (recovery, t_det) for recovery in left for t_det in t_dets
    ]
    specs = [
        TrialSpec(
            task="repro.experiments.figure5:run_delay_point",
            kwargs={
                "recovery": recovery,
                "t_det": t_det,
                "n_clients": n_clients,
            },
            tag=f"{recovery}/Tdet={t_det}",
            seed=seed,
        )
        for recovery, t_det in arms
    ]
    trials = run_campaign(specs, jobs=jobs)
    for (recovery, t_det), trial in zip(arms, trials):
        left[recovery][t_det] = trial.value

    crossover, budget = detection_crossover(
        left["process-restart"], left["microreboot"]
    )
    restart_fp, urb_fp, tolerable_fp = false_positive_series(
        failed_per_restart=left["process-restart"][0.0],
        failed_per_urb=max(left["microreboot"][0.0], 1),
    )

    result = ExperimentResult(
        name="Relaxing failure detection with cheap recovery",
        paper_reference="Figure 5 (paper: ≈53.5 s detection headroom; ≈98% FP tolerance)",
        headers=("Tdet (s)", "restart: failed reqs", "µRB: failed reqs"),
    )
    for t_det in t_dets:
        result.rows.append(
            (
                t_det,
                left["process-restart"][t_det],
                left["microreboot"][t_det],
            )
        )
    result.series["fp:restart"] = restart_fp
    result.series["fp:microreboot"] = urb_fp
    result.notes.append(
        f"µRB recovery beats Tdet=0 restarts (budget {budget} failed "
        f"requests) for detection delays up to ≈{crossover} s"
    )
    result.notes.append(
        f"tolerable false-positive rate with µRBs: {100 * tolerable_fp:.1f}%"
    )
    return result, {
        "left": left,
        "crossover": crossover,
        "tolerable_fp": tolerable_fp,
    }


if __name__ == "__main__":
    print(run(quick=True)[0].render())
