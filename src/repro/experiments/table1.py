"""Table 1: the client workload mix.

"We chose transition probabilities representative of online auction users;
the resulting workload ... mimics the real workload seen by a major
Internet auction site."  This harness runs the emulated population fault-
free and measures the fraction of requests per workload category.
"""

from repro.ebid.descriptors import OPERATIONS, OperationCategory
from repro.experiments.common import ExperimentResult, SingleNodeRig

#: The paper's Table 1 percentages.
PAPER_MIX = {
    OperationCategory.READ_ONLY_DB: 32,
    OperationCategory.SESSION_LIFECYCLE: 23,
    OperationCategory.STATIC: 12,
    OperationCategory.SEARCH: 12,
    OperationCategory.SESSION_UPDATE: 11,
    OperationCategory.DB_UPDATE: 10,
}


def measure_mix(metrics):
    """Category → measured fraction of all requests."""
    by_category = {category: 0.0 for category in OperationCategory}
    for operation, share in metrics.operations_mix().items():
        category, _idempotent, _group = OPERATIONS[operation]
        by_category[category] += share
    return by_category


def run(seed=0, n_clients=200, duration=1800.0, full=False):
    """Measure the workload mix over a steady fault-free run."""
    if full:
        n_clients, duration = 500, 3600.0
    rig = SingleNodeRig(
        seed=seed, n_clients=n_clients, with_recovery_manager=False
    )
    rig.start()
    rig.run_for(duration)

    measured = measure_mix(rig.metrics)
    result = ExperimentResult(
        name="Client workload mix",
        paper_reference="Table 1",
        headers=("User operation results mostly in...", "paper %", "measured %"),
    )
    for category, paper_pct in PAPER_MIX.items():
        result.rows.append(
            (category.value, paper_pct, round(100 * measured[category], 1))
        )
    result.notes.append(
        f"{rig.metrics.total_requests} requests from {n_clients} clients "
        f"over {duration / 60:.0f} simulated minutes"
    )
    return result


if __name__ == "__main__":
    print(run().render())
