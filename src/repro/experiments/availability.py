"""The six-nines availability arithmetic of §5.3 and §6.1.

A telephone-switch-grade cluster must satisfy 99.9999% of requests.  The
paper extrapolates its measured 8-node request rate to a 24-node cluster
over a year (≈53.3 × 10⁹ requests, allowing ≈53.3 × 10³ failed), then
divides the failure budget by the measured failed-requests-per-recovery:

* JVM restart + failover: 3,917 failed/recovery → 23 recoveries/year;
* µRB + failover: 162 → 329 recoveries/year;
* µRB without failover: 78 → 683 recoveries/year, i.e. software that may
  fail almost twice a day and still offer six nines.
"""

from repro.experiments.common import ExperimentResult

#: Paper's measured base rate: 33.8e4 requests served in 10 minutes by the
#: 8-node cluster (§5.3).
PAPER_8NODE_REQUESTS_PER_10MIN = 33.8e4

#: §5.3 uses the *failover-case* averages: 2,280 failed requests per JVM
#: restart with failover (Figure 3), 162 per µRB with failover, and §6.1
#: adds 78 per µRB without failover (Figure 1's average).
PAPER_FAILED_PER_RECOVERY = {
    "JVM restart + failover": 2280,
    "microreboot + failover": 162,
    "microreboot, no failover": 78,
}

SECONDS_PER_YEAR = 365 * 24 * 3600


def allowed_recoveries(
    failed_per_recovery,
    cluster_nodes=24,
    per_node_rate=None,
    nines=6,
):
    """How many recoveries a year fit in the failure budget."""
    if per_node_rate is None:
        per_node_rate = PAPER_8NODE_REQUESTS_PER_10MIN / 600.0 / 8.0
    yearly_requests = per_node_rate * cluster_nodes * SECONDS_PER_YEAR
    budget = yearly_requests * 10 ** (-nines)
    return int(budget / failed_per_recovery), yearly_requests, budget


def run(measured_failed_per_recovery=None, per_node_rate=None):
    """Compute the recovery allowances (optionally from measured inputs).

    ``measured_failed_per_recovery`` maps scheme → failed requests per
    recovery, e.g. from Figure 1 / Figure 3 runs; defaults to the paper's
    values so the arithmetic itself is reproducible stand-alone.
    """
    inputs = measured_failed_per_recovery or PAPER_FAILED_PER_RECOVERY
    result = ExperimentResult(
        name="Recoveries permitted per year at six nines (24-node cluster)",
        paper_reference="§5.3/§6.1 (paper: 23 / 329 / 683)",
        headers=(
            "recovery scheme", "failed reqs/recovery",
            "allowed recoveries/year", "per day",
        ),
    )
    details = {}
    for scheme, failed in inputs.items():
        allowed, yearly, budget = allowed_recoveries(
            failed, per_node_rate=per_node_rate
        )
        details[scheme] = {
            "allowed_per_year": allowed,
            "yearly_requests": yearly,
            "failure_budget": budget,
        }
        result.rows.append(
            (scheme, round(failed, 1), allowed, round(allowed / 365.0, 2))
        )
    result.notes.append(
        f"yearly requests at 24 nodes: {details[next(iter(details))]['yearly_requests']:.3g}; "
        f"six-nines budget: {details[next(iter(details))]['failure_budget']:.3g} failed requests"
    )
    return result, details


if __name__ == "__main__":
    print(run()[0].render())
