"""Figure 4: response time during failover under doubled load.

Clusters of 2/4/6/8 nodes at 1000 clients/node (twice the normal load),
FastS session state.  When the bad node is failed over for a JVM restart,
the surviving nodes absorb its traffic and saturate; response times spike
for the duration of the restart and drain afterwards.  Microreboots are
fast enough that the spike is unobservable.
"""

from repro.cluster.load_balancer import FailoverMode
from repro.experiments.cluster_common import ClusterRig
from repro.experiments.common import ExperimentResult
from repro.experiments.plotting import ascii_timeseries

RECOVERIES = ("process-restart", "microreboot")


def run_one(
    n_nodes, recovery, clients_per_node, seed, stabilize, observe, dataset=None
):
    """One doubled-load run; returns the response-time series and counts."""
    rig = ClusterRig(n_nodes, clients_per_node, seed=seed, dataset=dataset)
    # "We allow the system to stabilize at the higher load prior to
    # injecting faults" (§5.3).
    rig.start(warmup=stabilize)
    inject_at = rig.kernel.now
    bad_node = rig.cluster.nodes[0]
    rig.injector_for(0).inject_transient_exception("BrowseCategories")
    rig.script_recovery(
        bad_node,
        recovery,
        components=("BrowseCategories",),
        failover=FailoverMode.FULL,
        inject_at=inject_at,
    )
    rig.run_for(observe)
    series = rig.metrics.response_time_series(bucket_seconds=1.0)
    # Only the observation window matters for the figure.
    window = {
        t: rt for t, rt in series.items() if t >= inject_at - 30
    }
    return {
        "n_nodes": n_nodes,
        "recovery": recovery,
        "series": window,
        "peak_response_time": max(window.values(), default=0.0),
        "over_8s": rig.metrics.response_times_over(8.0),
        "inject_at": inject_at,
    }


def run(
    seed=0,
    cluster_sizes=(2, 4, 6, 8),
    clients_per_node=1000,
    stabilize=180.0,
    observe=420.0,
    full=False,
):
    """Sweep cluster sizes at doubled load (Figure 4 + Table 4 data)."""
    if full:
        clients_per_node, stabilize, observe = 1000, 300.0, 480.0
    result = ExperimentResult(
        name="Response time during failover under doubled load",
        paper_reference="Figure 4",
        headers=("nodes", "recovery", "peak RT (s)", "requests > 8 s"),
    )
    outcomes = []
    for n_nodes in cluster_sizes:
        for recovery in RECOVERIES:
            outcome = run_one(
                n_nodes, recovery, clients_per_node, seed, stabilize, observe
            )
            outcomes.append(outcome)
            result.rows.append(
                (
                    n_nodes,
                    recovery,
                    round(outcome["peak_response_time"], 2),
                    outcome["over_8s"],
                )
            )
            result.series[f"rt:{n_nodes}nodes:{recovery}"] = outcome["series"]
            result.figures[f"response time, {n_nodes} nodes, {recovery}"] = (
                ascii_timeseries(
                    outcome["series"], label="seconds ", height=8,
                    y_format="{:.2f}",
                )
            )
    return result, outcomes


if __name__ == "__main__":
    print(run(cluster_sizes=(2,), clients_per_node=600, stabilize=120.0,
              observe=240.0)[0].render())
