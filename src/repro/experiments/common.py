"""Shared experiment scaffolding."""

from dataclasses import dataclass, field

from repro.cluster.node import Node
from repro.core.recovery_manager import RecoveryManager
from repro.core.retry import RetryPolicy
from repro.detection.comparison import ComparisonDetector
from repro.diagnosis import PathAnalyzer
from repro.ebid.app import build_ebid_system
from repro.ebid.descriptors import URL_PATH_MAP
from repro.ebid.schema import DatasetConfig
from repro.faults.injector import FaultInjector
from repro.faults.lowlevel import LowLevelInjector
from repro.telemetry.spans import SpanCollector, spans_enabled_by_default
from repro.workload.client import ClientPopulation
from repro.workload.markov import WorkloadProfile


@dataclass
class ExperimentResult:
    """Uniform result container for every table/figure harness."""

    name: str
    paper_reference: str
    headers: tuple = ()
    rows: list = field(default_factory=list)
    series: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)
    #: label -> pre-rendered ASCII chart (see repro.experiments.plotting).
    figures: dict = field(default_factory=dict)

    def render(self):
        """Text rendering that mirrors the paper's table/figure."""
        lines = [f"== {self.name} ==", f"(reproduces {self.paper_reference})", ""]
        if self.headers and self.rows:
            widths = [
                max(len(str(h)), *(len(str(r[i])) for r in self.rows))
                for i, h in enumerate(self.headers)
            ]
            header = "  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
            lines.append(header)
            lines.append("-" * len(header))
            for row in self.rows:
                lines.append(
                    "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
                )
        for label, points in self.series.items():
            lines.append(f"series {label}: {len(points)} points")
        for note in self.notes:
            lines.append(f"note: {note}")
        for label, chart in self.figures.items():
            lines.append("")
            lines.append(f"--- {label} ---")
            lines.append(chart)
        return "\n".join(lines)


class SingleNodeRig:
    """One eBid node + clients + injectors + (optionally) a recovery manager.

    The standard single-node evaluation setup of §5.1/§5.2: 500 concurrent
    clients against one application-server node, with client-side failure
    detection feeding an external recovery manager.
    """

    def __init__(
        self,
        seed=0,
        n_clients=500,
        session_store="fasts",
        dataset=None,
        retry_policy=None,
        with_recovery_manager=True,
        with_comparison_detector=False,
        recovery_policy="recursive",
        profile=None,
        heap=None,
        rm_kwargs=None,
        diagnosis="static-map",
        url_path_map=None,
    ):
        self.dataset = dataset or DatasetConfig()
        self.system = build_ebid_system(
            seed=seed,
            session_store=session_store,
            dataset=self.dataset,
            retry_policy=retry_policy or RetryPolicy.disabled(),
        )
        if heap is not None:
            self.system.server.heap = heap
        self.kernel = self.system.kernel
        self.node = Node(self.system)
        self.injector = FaultInjector(self.system)
        self.lowlevel = LowLevelInjector(
            self.system, self.system.rng.stream("lowlevel")
        )

        # Span layer: always built (so `repro run --trace` timelines carry
        # call trees), but only *enabled* — and only feeding a PathAnalyzer
        # — when path-analysis diagnosis or the --trace default asks for it.
        # Disabled, it costs one attribute check per request.
        self.span_collector = SpanCollector(
            self.kernel,
            enabled=True if diagnosis == "path-analysis" else None,
        )
        self.path_analyzer = None
        if diagnosis == "path-analysis" or spans_enabled_by_default():
            self.path_analyzer = PathAnalyzer(kernel=self.kernel)
            self.span_collector.add_sink(self.path_analyzer.record)
        self.system.server.span_collector = self.span_collector
        # The comparison detector's shadow stays untraced: mirrored probes
        # are not real user requests and would dilute the path statistics.

        self.shadow = None
        comparison = None
        if with_comparison_detector:
            self.shadow = build_ebid_system(
                kernel=self.kernel,
                seed=seed,
                session_store=session_store,
                dataset=self.dataset,
                name="shadow",
            )
            comparison = ComparisonDetector(self.shadow)

        self.recovery_manager = None
        if with_recovery_manager:
            # Hand-tuned thresholds (§4): high enough that the bounded
            # burst of login prompts after a session-destroying recovery
            # decays below threshold within the grace period, low enough
            # that genuine faults are caught within seconds at 500 clients.
            tuned = dict(score_threshold=6.0, post_recovery_grace=90.0)
            tuned.update(rm_kwargs or {})
            self.recovery_manager = RecoveryManager(
                self.kernel,
                self.system.coordinator,
                URL_PATH_MAP if url_path_map is None else url_path_map,
                node_controller=self.node,
                policy=recovery_policy,
                diagnosis=diagnosis,
                path_analyzer=self.path_analyzer,
                **tuned,
            )
            self.recovery_manager.start()
            if self.shadow is not None:
                # The shadow legitimately diverges once the faulty instance
                # starts failing; resync it after each recovery so the
                # comparison detector's false-positive rate stays bounded
                # (the paper's "tweaks for timing nondeterminism").
                self.recovery_manager.listeners.append(
                    lambda _action: self.resync_shadow()
                )

        reporter = self.recovery_manager.report if self.recovery_manager else None
        self.population = ClientPopulation(
            self.kernel,
            self.system.server,
            self.dataset,
            n_clients=n_clients,
            rng_registry=self.system.rng,
            profile=profile or WorkloadProfile(),
            reporter=reporter,
            comparison=comparison,
        )
        self.metrics = self.population.metrics

    # ------------------------------------------------------------------
    def start(self, warmup=0.0):
        """Spawn the clients; optionally run a warm-up period."""
        self.population.start()
        if warmup:
            self.kernel.run(until=self.kernel.now + warmup)

    def run_for(self, seconds):
        self.kernel.run(until=self.kernel.now + seconds)

    def resync_shadow(self):
        """Re-baseline the known-good instance after a recovery.

        The shadow diverges legitimately while the main instance is
        failing (its commits succeed where the main's did not); once the
        main recovers, the shadow's database is reset to the main's and
        the shadow's rendered-fragment cache is flushed so it does not
        keep serving prices computed from pre-resync data.
        """
        if self.shadow is None:
            return
        for name, table in self.system.database.tables.items():
            self.shadow.database.tables[name].replace_all(table.rows)
        # Volatile component state derived from the database (key-block
        # cursors, caches) must be rebuilt against the synced data, or the
        # shadow's IdentityManager would hand out keys that now collide.
        for container in self.shadow.server.containers.values():
            container.initialize()
            self.shadow.server.naming.bind(container.name, container.name)

    def failures_in_last(self, seconds):
        """Failed requests recorded in the trailing window."""
        now = self.kernel.now
        _good, bad = self.metrics.requests_in_window(now - seconds, now)
        return bad

