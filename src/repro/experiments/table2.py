"""Table 2: worst-case recovery level per injected fault type.

Each scenario injects one fault into a loaded single-node system watched by
the client-side detectors, the comparison-based detector (used "for all
experiments in this table", per the paper's caption), and the recovery
manager running the recursive policy.  The runner records which recovery
level finally cured the failure symptoms (*resuscitation*) and whether the
database needed manual repair afterwards (*the paper's ≈*), determined by
the invariant audit of :mod:`repro.ebid.audit`.

Divergences from the paper, both documented in EXPERIMENTS.md:

* "corrupt FastS data — wrong": our WAR-reinit validation sweep catches the
  swapped session identities before any wrong data reaches the database, so
  resuscitation needs no manual repair (paper: ≈);
* the recursive policy may spend one or two extra EJB µRBs on mis-diagnosed
  targets before hitting the right one — the paper's point exactly: those
  mistakes cost milliseconds.
"""

from dataclasses import dataclass

from repro.appserver.memory import HeapModel
from repro.ebid.audit import audit_database, manual_repair
from repro.ebid.schema import TABLES
from repro.experiments.common import ExperimentResult, SingleNodeRig
from repro.faults.corruption import CorruptionMode
from repro.parallel import TrialSpec, run_campaign

MB = 1024 * 1024


@dataclass
class Scenario:
    """One Table 2 row."""

    label: str
    paper_level: str  # the paper's worst-case reboot level column
    paper_repair: bool  # the paper's ≈ marker
    inject: callable  # (rig) -> None
    session_store: str = "fasts"
    small_heap: bool = False
    needs_sessions: bool = False
    max_duration: float = 900.0
    #: Do not declare stability before this much time has passed — for
    #: faults (like slow leaks) whose first manifestation takes a while.
    min_runtime: float = 0.0
    #: Whether the known-good instance is rebaselined from the main one
    #: after each recovery.  Off for the corrupt-database scenario: there
    #: the main instance's data *is* the fault, and resyncing the reference
    #: from it would launder the corruption out of the detector's sight.
    resync_shadow: bool = True


def _scenarios():
    C = CorruptionMode
    return [
        Scenario(
            "Deadlock", "EJB", False,
            lambda rig: rig.injector.inject_deadlock("SearchItemsByCategory"),
        ),
        Scenario(
            "Infinite loop", "EJB", False,
            lambda rig: rig.injector.inject_infinite_loop("ViewItem"),
        ),
        Scenario(
            "Application memory leak", "EJB", False,
            # Slow enough that re-exhaustion (the leak is a code bug and
            # outlives the µRB) takes minutes: the µRB demonstrably
            # resuscitates the service each time it fills up.
            lambda rig: rig.injector.inject_memory_leak("ViewItem", 150 * 1024),
            small_heap=True,
            min_runtime=240.0,
        ),
        Scenario(
            "Transient exception", "EJB", False,
            lambda rig: rig.injector.inject_transient_exception("BrowseCategories"),
        ),
        Scenario(
            "Corrupt primary keys: null", "EJB", False,
            lambda rig: rig.injector.corrupt_primary_keys(C.NULL),
        ),
        Scenario(
            "Corrupt primary keys: invalid", "EJB", False,
            lambda rig: rig.injector.corrupt_primary_keys(C.INVALID),
        ),
        Scenario(
            "Corrupt primary keys: wrong", "EJB", True,
            lambda rig: rig.injector.corrupt_primary_keys(C.WRONG),
        ),
        Scenario(
            "Corrupt JNDI entry: null", "EJB", False,
            lambda rig: rig.injector.corrupt_jndi("ViewItem", C.NULL),
        ),
        Scenario(
            "Corrupt JNDI entry: invalid", "EJB", False,
            lambda rig: rig.injector.corrupt_jndi("ViewItem", C.INVALID),
        ),
        Scenario(
            "Corrupt JNDI entry: wrong", "EJB", False,
            lambda rig: rig.injector.corrupt_jndi("ViewItem", C.WRONG),
        ),
        Scenario(
            "Corrupt tx method map: null", "EJB", False,
            lambda rig: rig.injector.corrupt_tx_method_map(
                "Item", "record_bid", C.NULL
            ),
        ),
        Scenario(
            "Corrupt tx method map: invalid", "EJB", False,
            lambda rig: rig.injector.corrupt_tx_method_map(
                "Item", "record_bid", C.INVALID
            ),
        ),
        Scenario(
            "Corrupt tx method map: wrong", "EJB", True,
            lambda rig: rig.injector.corrupt_tx_method_map(
                "Item", "record_bid", C.WRONG
            ),
        ),
        Scenario(
            "Corrupt session bean attrs: null", "unnecessary", False,
            lambda rig: rig.injector.corrupt_session_bean_attribute(C.NULL),
        ),
        Scenario(
            "Corrupt session bean attrs: invalid", "unnecessary", False,
            lambda rig: rig.injector.corrupt_session_bean_attribute(C.INVALID),
        ),
        Scenario(
            "Corrupt session bean attrs: wrong", "EJB+WAR", True,
            lambda rig: rig.injector.corrupt_session_bean_attribute(C.WRONG),
        ),
        Scenario(
            "Corrupt data inside FastS: null", "WAR", False,
            lambda rig: rig.injector.corrupt_session_store(C.NULL),
            needs_sessions=True,
        ),
        Scenario(
            "Corrupt data inside FastS: invalid", "WAR", False,
            lambda rig: rig.injector.corrupt_session_store(C.INVALID),
            needs_sessions=True,
        ),
        Scenario(
            "Corrupt data inside FastS: wrong", "WAR (paper: WAR ≈)", False,
            lambda rig: rig.injector.corrupt_session_store(C.WRONG),
            needs_sessions=True,
        ),
        Scenario(
            "Corrupt data inside SSM", "none (checksum discard)", False,
            # A handful of flipped session objects: SSM's checksums catch
            # each on read and discard it; the affected users see one login
            # prompt each, well below any recovery threshold.
            lambda rig: rig.injector.corrupt_session_store(
                C.INVALID,
                session_ids=rig.system.session_store.session_ids()[:5],
            ),
            session_store="ssm",
            needs_sessions=True,
        ),
        Scenario(
            "Corrupt MySQL data", "manual repair", True,
            lambda rig: (
                rig.injector.corrupt_database("items", C.INVALID),
                _corrupt_many_items(rig, 300),
            ),
            max_duration=1500.0,
            resync_shadow=False,
        ),
        Scenario(
            "Memory leak outside application (intra-JVM)", "JVM", False,
            lambda rig: rig.lowlevel.leak_intra_jvm(
                int(rig.system.server.heap.capacity * 0.95)
            ),
            small_heap=True,
        ),
        Scenario(
            "Memory leak outside application (extra-JVM)", "OS", False,
            lambda rig: rig.lowlevel.leak_extra_jvm(rig.node, 3 * 1024 * MB),
            max_duration=1500.0,
        ),
        Scenario(
            "Bit flips in process memory", "JVM", True,
            lambda rig: (
                rig.lowlevel.flip_bits_in_process_memory(),
                _corrupt_many_items(rig, 5),
            ),
            max_duration=1200.0,
        ),
        Scenario(
            "Bit flips in process registers", "JVM", True,
            lambda rig: rig.lowlevel.flip_bits_in_registers(),
            max_duration=1200.0,
        ),
        Scenario(
            "Bad system call return values", "JVM", False,
            lambda rig: rig.lowlevel.inject_bad_syscall_returns(),
            max_duration=1200.0,
        ),
    ]


def _corrupt_many_items(rig, count):
    """A botched bulk UPDATE: many item rows get wrong prices."""
    database = rig.system.database
    pks = sorted(database.tables["items"].rows)[: count]
    for pk in pks:
        original = database.tables["items"].rows[pk]["max_bid"]
        if isinstance(original, int):
            database._corrupt_row("items", pk, "max_bid", original + 100000)
    return pks


LEVEL_LABELS = {
    "ejb": "EJB",
    "war": "WAR",
    "application": "application",
    "jvm": "JVM",
    "os": "OS",
}


def run_scenario(scenario, seed=0, n_clients=150):
    """Inject one fault and let the system recover; classify the outcome."""
    heap = HeapModel(capacity=48 * MB, baseline=6 * MB) if scenario.small_heap else None
    rig = SingleNodeRig(
        seed=seed,
        n_clients=n_clients,
        session_store=scenario.session_store,
        with_comparison_detector=True,
        heap=heap,
        rm_kwargs={"max_ejb_attempts": 3},
    )
    if not scenario.resync_shadow:
        rig.recovery_manager.listeners.clear()
    rig.start(warmup=60.0 if scenario.needs_sessions else 30.0)
    scenario.inject(rig)

    # Run until failures (effectively) cease for two consecutive windows.
    # "Recovery is deemed successful when end users do not experience any
    # more failures" (§5.2); the tolerance of 2 per window (<0.3% of the
    # traffic) absorbs self-healing stragglers — e.g. the one login prompt
    # a long-thinking client hits minutes after a session-destroying
    # recovery.
    tolerance = 2
    stable = 0
    elapsed = 0.0
    window = 30.0
    while elapsed < scenario.max_duration and (
        stable < 2 or elapsed < scenario.min_runtime
    ):
        rig.run_for(window)
        elapsed += window
        stable = stable + 1 if rig.failures_in_last(window) <= tolerance else 0

    rm = rig.recovery_manager
    actions = list(rm.actions)
    resuscitated = stable >= 2

    repaired_rows = 0
    violations = audit_database(rig.system.database)
    needed_repair = bool(violations)
    if needed_repair:
        reference = {
            table: rig.shadow.database.snapshot(table) for table in TABLES
        }
        repaired_rows = manual_repair(rig.system.database, reference)
        still_bad = audit_database(rig.system.database)
        if not resuscitated:
            # e.g. the corrupt-MySQL row: no reboot helps; the operator
            # repairs the data, bounces the web tier (flushing fragments
            # rendered from the bad data), and rebaselines the monitoring
            # reference, after which the service recovers on its own
            # (allowing the usual straggler logins after the reboots).
            rig.kernel.run_until_triggered(
                rig.kernel.process(rig.system.coordinator.microreboot_war())
            )
            rig.resync_shadow()
            stable = 0
            settle = 0.0
            while settle < 300.0 and stable < 2:
                rig.run_for(window)
                settle += window
                stable = stable + 1 if rig.failures_in_last(window) <= tolerance else 0
            resuscitated = stable >= 2 and not still_bad

    if actions:
        final_level = actions[-1].level
        cured_by = LEVEL_LABELS.get(final_level, final_level)
        if final_level == "war" and "ejb" in (a.level for a in actions):
            cured_by = "EJB+WAR"
        if final_level == "human" and needed_repair:
            # No reboot level cured it; the operator repaired the data.
            cured_by = "manual repair"
        if needed_repair:
            cured_by += " ≈"
    elif needed_repair:
        cured_by = "manual repair"
    else:
        cured_by = "none needed"

    return {
        "label": scenario.label,
        "resuscitated": resuscitated,
        "cured_by": cured_by,
        "levels_used": [a.level for a in actions],
        "needed_repair": needed_repair,
        "violations": violations[:3],
        "repaired_rows": repaired_rows,
        "failed_requests": rig.metrics.failed_requests,
    }


def run_scenario_index(index, seed=0, n_clients=150):
    """Spawn-safe trial entrypoint: run the ``index``-th Table 2 scenario.

    Scenario objects hold lambdas and do not pickle, so parallel workers
    re-derive the scenario list and select by position.
    """
    return run_scenario(_scenarios()[index], seed=seed, n_clients=n_clients)


def run(seed=0, n_clients=150, only=None, full=False, jobs=1):
    """Run every Table 2 scenario (or a named subset via ``only``).

    Each scenario is one independent trial of a campaign: ``jobs>1`` fans
    the 26 rows out across worker processes, with identical output.
    """
    if full:
        n_clients = 300
    result = ExperimentResult(
        name="Recovery from injected faults: worst-case scenarios",
        paper_reference="Table 2",
        headers=(
            "Injected fault", "paper level", "measured outcome",
            "resuscitated", "repair (≈)",
        ),
    )
    selected = [
        (index, scenario)
        for index, scenario in enumerate(_scenarios())
        if only is None or scenario.label in only
    ]
    specs = [
        TrialSpec(
            task="repro.experiments.table2:run_scenario_index",
            kwargs={"index": index, "n_clients": n_clients},
            tag=scenario.label,
            seed=seed,
        )
        for index, scenario in selected
    ]
    outcomes = [trial.value for trial in run_campaign(specs, jobs=jobs)]
    for (_index, scenario), outcome in zip(selected, outcomes):
        paper = scenario.paper_level + (" ≈" if scenario.paper_repair else "")
        result.rows.append(
            (
                scenario.label,
                paper,
                outcome["cured_by"],
                "yes" if outcome["resuscitated"] else "NO",
                "yes" if outcome["needed_repair"] else "-",
            )
        )
    return result, outcomes


if __name__ == "__main__":
    import sys

    only = set(sys.argv[1:]) or None
    print(run(only=only)[0].render())
