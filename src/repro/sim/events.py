"""Events: the unit of synchronization between simulated processes.

This module is the simulator's hottest code: every request, timeout, and
process wake-up in a million-request campaign allocates and triggers these
objects.  Three deliberate micro-optimizations keep it fast:

* every class declares ``__slots__`` (no per-instance ``__dict__``, faster
  attribute access and allocation);
* :class:`Timeout` — the dominant plain-delay case — initializes its
  fields and enqueues itself directly onto the kernel's heap, skipping the
  generic ``Event.__init__`` + ``Kernel._schedule`` double dispatch (and
  the redundant negative-delay re-check);
* :meth:`Event.succeed` / :meth:`Event.fail` push onto the heap directly,
  since a zero delay can never fail the schedule-into-the-past check.
"""

from heapq import heappush

from repro.sim.errors import SimulationError

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, scheduling its callbacks to run at the current simulation
    time (in FIFO order relative to other events triggered at the same
    instant).  A process waits for an event simply by yielding it.

    Attributes:
        kernel: the :class:`~repro.sim.kernel.Kernel` this event belongs to.
        callbacks: list of callables invoked with the event when it is
            processed; ``None`` once the event has been processed.
        defused: set to True when a failed event's exception has been
            delivered to (and therefore handled by) a waiting process.
            Failed events that are never defused are collected by the kernel
            in ``kernel.unhandled_failures`` to aid debugging.
    """

    __slots__ = ("kernel", "callbacks", "defused", "abandoned", "_value", "_ok")

    def __init__(self, kernel):
        self.kernel = kernel
        self.callbacks = []
        self.defused = False
        #: Set when the (sole) process waiting on this event was interrupted
        #: away from it; resources use this to skip dead waiters.
        self.abandoned = False
        self._value = _PENDING
        self._ok = None

    @property
    def triggered(self):
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded, False if it failed, None if pending."""
        return self._ok

    @property
    def value(self):
        """The event's value (or exception, for failed events)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``.

        Returns the event so construction and triggering can be chained.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        kernel = self.kernel
        heappush(kernel._queue, (kernel._now, next(kernel._sequence), self))
        return self

    def fail(self, exception):
        """Trigger the event with an exception to be thrown into waiters."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        kernel = self.kernel
        heappush(kernel._queue, (kernel._now, next(kernel._sequence), self))
        return self

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else f"failed({self._value!r})"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, kernel, delay, value=None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Fast path: a Timeout is born triggered, so skip Event.__init__ and
        # the kernel's generic _schedule and enqueue directly.
        self.kernel = kernel
        self.callbacks = []
        self.defused = False
        self.abandoned = False
        self._ok = True
        self._value = value
        self.delay = delay
        heappush(kernel._queue, (kernel._now + delay, next(kernel._sequence), self))


class _Condition(Event):
    """Base for events composed of several sub-events."""

    __slots__ = ("events", "_completed")

    def __init__(self, kernel, events):
        super().__init__(kernel)
        self.events = list(events)
        self._completed = 0
        if not self.events:
            self.succeed(self._snapshot())
            return
        for event in self.events:
            if event.kernel is not kernel:
                raise SimulationError("cannot mix events from different kernels")
            if event.callbacks is None:
                # Already processed: account for it immediately.
                self._observe(event)
            else:
                event.callbacks.append(self._observe)

    def _snapshot(self):
        """Mapping of processed sub-events to their values, in yield order.

        Uses ``processed`` rather than ``triggered`` because a Timeout has a
        value from construction but has not *happened* until the kernel
        processes it.
        """
        return {e: e._value for e in self.events if e.callbacks is None and e._ok}

    def _observe(self, event):
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._completed += 1
        if self._check():
            self.succeed(self._snapshot())

    def _check(self):
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as any sub-event triggers (or fails on first failure)."""

    __slots__ = ()

    def _check(self):
        return self._completed >= 1


class AllOf(_Condition):
    """Triggers once every sub-event has triggered."""

    __slots__ = ()

    def _check(self):
        return self._completed >= len(self.events)
