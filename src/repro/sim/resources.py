"""Shared resources: FIFO queues, locks, and semaphores.

These model the contention points in the simulated platform: thread pools,
database row locks, and inter-process mailboxes.  Locks track their owner so
that the microreboot machinery can forcibly release resources held by killed
shepherd threads — and so that the §7 "leaked external resource" limitation
can be reproduced by *not* doing so.
"""

from collections import deque

from repro.sim.errors import SimulationError
from repro.sim.events import Event


class Queue:
    """Unbounded FIFO queue of items, usable as a process mailbox."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Add ``item``; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered or getter.abandoned:
                continue  # the waiting process was interrupted; skip it
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self):
        """Return an event that triggers with the next item."""
        event = Event(self.kernel)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel(self, event):
        """Withdraw a pending :meth:`get` (used by interrupted waiters)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def drain(self):
        """Remove and return all queued items."""
        items = list(self._items)
        self._items.clear()
        return items


class Semaphore:
    """Counting semaphore with FIFO handoff."""

    def __init__(self, kernel, capacity):
        if capacity < 1:
            raise SimulationError(f"semaphore capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self._in_use = 0
        self._waiters = deque()

    @property
    def available(self):
        return self.capacity - self._in_use

    def acquire(self):
        """Return an event that triggers when a slot is held."""
        event = Event(self.kernel)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self):
        """Release one slot, handing it to the oldest live waiter."""
        if self._in_use <= 0:
            raise SimulationError("release() of a semaphore with no holders")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered or waiter.abandoned:
                continue  # waiter was interrupted; its slot request lapsed
            waiter.succeed()
            return
        self._in_use -= 1

    def cancel(self, event):
        """Withdraw a pending :meth:`acquire`."""
        try:
            self._waiters.remove(event)
        except ValueError:
            pass


class Lock:
    """Mutual-exclusion lock with owner tracking.

    ``owner`` is an arbitrary hashable supplied at acquire time (the
    reproduction passes the shepherd-thread process).  Owner tracking lets
    the platform release everything held by a killed thread — and lets tests
    reproduce the paper's §7 scenario where a resource acquired *behind the
    platform's back* stays locked after a microreboot.
    """

    def __init__(self, kernel, name=None):
        self.kernel = kernel
        self.name = name
        self.owner = None
        self._waiters = deque()  # (event, owner) pairs

    @property
    def locked(self):
        return self.owner is not None

    def acquire(self, owner):
        """Return an event that triggers when ``owner`` holds the lock."""
        if owner is None:
            raise SimulationError("Lock.acquire requires a non-None owner")
        event = Event(self.kernel)
        if self.owner is None:
            self.owner = owner
            event.succeed()
        else:
            self._waiters.append((event, owner))
        return event

    def release(self, owner):
        """Release the lock; it must currently be held by ``owner``."""
        if self.owner != owner:
            raise SimulationError(
                f"lock {self.name!r} released by {owner!r} but held by {self.owner!r}"
            )
        self._hand_off()

    def force_release_owner(self, owner):
        """Release the lock if held by ``owner``; drop ``owner``'s waits.

        Returns True if the lock was actually released.  This is the cleanup
        path the platform runs for resources it *knows about* when a shepherd
        thread is killed by a microreboot.
        """
        self._waiters = deque((e, o) for e, o in self._waiters if o != owner)
        if self.owner == owner:
            self._hand_off()
            return True
        return False

    def waiting_owners(self):
        """Owners currently queued for the lock (for deadlock detection)."""
        return [o for _e, o in self._waiters]

    def _hand_off(self):
        while self._waiters:
            event, owner = self._waiters.popleft()
            if event.triggered or event.abandoned:
                continue
            self.owner = owner
            event.succeed()
            return
        self.owner = None
