"""Discrete-event simulation kernel.

This package is the substrate for the whole reproduction: the application
server, state stores, clients, fault injectors, and recovery managers are all
simulated processes advancing a shared virtual clock.  Processes are plain
Python generators that ``yield`` :class:`Event` objects; the kernel resumes
them when those events trigger.  Processes can be *interrupted*, which is how
a microreboot kills the shepherd threads executing inside a component.

The design follows the well-understood SimPy model but is implemented from
scratch so the reproduction has no dependencies beyond the standard library.
"""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.resources import Lock, Queue, Semaphore
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Kernel",
    "Lock",
    "Process",
    "Queue",
    "RngRegistry",
    "Semaphore",
    "SimulationError",
    "Timeout",
]
