"""Generator-based simulated processes."""

import inspect

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import _PENDING, Event


class Process(Event):
    """A simulated thread of control, driven by a Python generator.

    The generator yields :class:`Event` objects; the process sleeps until the
    yielded event triggers and then resumes with the event's value (or with
    the event's exception thrown in at the yield point).  A process is itself
    an event: it triggers with the generator's return value when the
    generator finishes, or fails with the escaping exception if the generator
    raises.

    Processes may be interrupted with :meth:`interrupt`, which throws
    :class:`~repro.sim.errors.Interrupt` into the generator at its current
    yield point.  This is the mechanism the microreboot machinery uses to
    kill shepherd threads executing inside a recycled component.
    """

    __slots__ = ("_generator", "name", "_waiting_on")

    def __init__(self, kernel, generator, name=None):
        if not inspect.isgenerator(generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(kernel)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on = None
        # Kick the process off via an immediately-scheduled event so that it
        # starts running in kernel event order, not synchronously.
        start = Event(kernel)
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is a no-op (it is already dead, as
        with POSIX signals to reaped processes).  The interrupt is delivered
        through the normal event queue so ordering relative to other events
        at the same instant is deterministic.
        """
        if self.triggered:
            return
        trigger = Event(self.kernel)
        trigger.callbacks.append(self._resume)
        trigger.defused = True  # delivery to the generator is the handling
        trigger.fail(Interrupt(cause))

    def _resume(self, trigger):
        """Advance the generator with the triggered event ``trigger``."""
        if self._value is not _PENDING:  # i.e. self.triggered, sans property
            # The process already finished (e.g. an interrupt raced with the
            # event it was waiting for); drop the stale wakeup.
            return
        if (
            self._waiting_on is not None
            and trigger is not self._waiting_on
            and self._waiting_on.callbacks is not None
        ):
            # Interrupted while waiting: stop listening to the old event so a
            # later trigger does not resume us at the wrong yield point, and
            # mark the event abandoned so resource queues skip it.
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on.abandoned = True
        self._waiting_on = None

        event = trigger
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event.defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.defused = False
                self.fail(exc)
                return

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
                try:
                    self._generator.throw(exc)
                except BaseException as err:  # noqa: BLE001 - report the real error
                    self.fail(err)
                    return
                raise exc  # pragma: no cover - generator swallowed the error

            if target.callbacks is None:
                # Already processed: resume immediately with its value.
                event = target
                continue
            target.callbacks.append(self._resume)
            self._waiting_on = target
            return

    def __repr__(self):
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"
