"""Deterministic, named random-number streams.

Every stochastic subsystem (each emulated client, the fault injector, service
time sampling, ...) draws from its own named stream derived from a single
root seed.  Adding clients or reordering subsystem start-up therefore does
not perturb the random draws of unrelated subsystems, which keeps experiment
configurations comparable across runs.
"""

import hashlib
import random


def derive_seed(root_seed, name):
    """Derive a 64-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, root_seed=0):
        self.root_seed = root_seed
        self._streams = {}

    def stream(self, name):
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def exponential(self, name, mean, maximum=None):
        """One draw from an exponential distribution, optionally capped.

        The client emulator uses this for think times (mean 7 s, max 70 s,
        as in the TPC-W benchmark the paper follows).
        """
        value = self.stream(name).expovariate(1.0 / mean)
        if maximum is not None:
            value = min(value, maximum)
        return value
