"""The simulation kernel: virtual clock and event queue."""

import heapq
from itertools import count

from repro.sim.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.telemetry.trace import TraceBus

#: Sentinel return for :meth:`Kernel.peek` when the queue is empty.
INFINITY = float("inf")


class Kernel:
    """Discrete-event simulation kernel.

    Time is a float; the reproduction uses **seconds** throughout (paper
    tables quote milliseconds, converted at the edges).  The kernel is
    deterministic: events triggered at the same instant are processed in the
    order they were scheduled.

    Typical usage::

        kernel = Kernel()

        def hello():
            yield kernel.timeout(1.5)
            print("world at", kernel.now)

        kernel.process(hello())
        kernel.run(until=10.0)
    """

    #: How many unhandled failed events are retained verbatim; beyond this
    #: only ``unhandled_failure_count`` grows, so multi-hour simulated
    #: campaigns cannot leak memory through a busy failure path.
    UNHANDLED_RETENTION = 100

    def __init__(self):
        self._now = 0.0
        self._queue = []
        self._sequence = count()
        #: Failed events whose exception was never delivered to any process.
        #: Only the first ``UNHANDLED_RETENTION`` are kept (debugging wants
        #: the earliest failures); ``unhandled_failure_count`` counts all.
        self.unhandled_failures = []
        self.unhandled_failure_count = 0
        #: Total events processed by this kernel (steps taken).
        self.events_processed = 0
        #: Structured event tracing for everything running on this kernel.
        #: Disabled unless telemetry's default says otherwise; instrumented
        #: components publish unconditionally and the bus no-ops.
        self.trace = TraceBus(self)

    @property
    def now(self):
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Event construction helpers
    # ------------------------------------------------------------------
    def event(self):
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Spawn a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events):
        """Event triggering when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events):
        """Event triggering when all of ``events`` have."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event, delay):
        """Enqueue ``event`` to be processed ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), event))

    def _record_unhandled(self, event):
        """Remember a failed event nobody handled (bounded retention)."""
        self.unhandled_failure_count += 1
        if len(self.unhandled_failures) < self.UNHANDLED_RETENTION:
            self.unhandled_failures.append(event)

    def peek(self):
        """Time of the next scheduled event, or ``INFINITY`` if none."""
        return self._queue[0][0] if self._queue else INFINITY

    def step(self):
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event.defused:
            self._record_unhandled(event)

    def run(self, until=None):
        """Run until the queue drains or the clock reaches ``until`` seconds.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return even if the queue drained earlier, so back-to-back
        ``run(until=...)`` calls observe a monotone clock.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"run(until={until}) but the clock is already at {self._now}"
            )
        # Inlined step() body: this loop is the single hottest path in the
        # whole reproduction, so it avoids one method call, one emptiness
        # re-check, and one counter store per event.  Scheduling never
        # inserts into the past (enforced in _schedule/succeed/fail), and a
        # binary heap pops in nondecreasing order, so the corruption check
        # that step() performs cannot fire here and is elided.
        #
        # Same-timestamp events drain in one inner batch: the clock and
        # (for the bounded loop) the horizon are checked once per distinct
        # timestamp instead of once per event.  Simulated systems cluster
        # events heavily — every think-tick wakes whole cohorts, every
        # response chain triggers at one instant — and the inner pop is
        # the same heap pop in the same (time, seq) order, so results
        # stay byte-identical with the per-event loop.
        queue = self._queue
        pop = heapq.heappop
        record = self._record_unhandled
        steps = 0
        if until is None:
            while queue:
                when, _seq, event = pop(queue)
                self._now = when
                while True:
                    steps += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event.defused:
                        record(event)
                    if queue and queue[0][0] == when:
                        _t, _seq, event = pop(queue)
                    else:
                        break
        else:
            while queue and queue[0][0] <= until:
                when, _seq, event = pop(queue)
                self._now = when
                while True:
                    steps += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event.defused:
                        record(event)
                    if queue and queue[0][0] == when:
                        _t, _seq, event = pop(queue)
                    else:
                        break
        self.events_processed += steps
        if until is not None:
            self._now = until

    def run_until_triggered(self, event, limit=None):
        """Run until ``event`` triggers; raises if the queue drains first.

        ``limit`` optionally bounds the simulated time spent waiting; an
        event scheduled exactly at ``t == limit`` still triggers (the
        boundary is inclusive).
        """
        while not event.triggered:
            if not self._queue:
                raise SimulationError(f"queue drained before {event!r} triggered")
            if limit is not None and self._queue[0][0] > limit:
                raise SimulationError(f"{event!r} did not trigger before t={limit}")
            self.step()
        if event._ok is False:
            event.defused = True
            raise event._value
        return event._value
