"""Exception types used by the simulation kernel."""


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel itself.

    Examples: triggering an event twice, running a kernel backwards in time,
    or yielding a non-event from a process.
    """


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The microreboot machinery interrupts the shepherd threads executing
    inside a component that is being recycled; those threads observe the
    interrupt as this exception at their current ``yield`` point.

    Attributes:
        cause: arbitrary value supplied by the interrupter describing why
            the process was interrupted (for a microreboot, the component
            name being recycled).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self):
        return f"Interrupt(cause={self.cause!r})"
