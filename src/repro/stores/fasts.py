"""FastS: the in-JVM session state repository (§3.3).

FastS lives inside the server's embedded web tier, "isolated behind
compiler-enforced barriers": fast to access, survives microreboots of any
component (it is not part of any component), but its contents are lost when
the JVM process exits.  Reads return defensive copies and writes replace the
stored object atomically — the API contract that lets the store take
responsibility for its data.
"""

from repro.stores.sessions import SessionCorruptionError


class FastS:
    """In-memory HttpSession repository bound to one JVM."""

    def __init__(self, name="FastS"):
        self.name = name
        self._sessions = {}
        self.reads = 0
        self.writes = 0

    #: Survival semantics, consulted by experiments and docs.
    survives_microreboot = True
    survives_jvm_restart = False

    def __len__(self):
        return len(self._sessions)

    # ------------------------------------------------------------------
    # Store API (atomic read/write of HttpSession objects)
    # ------------------------------------------------------------------
    def read(self, session_id):
        """The stored session (a copy), or None if absent.

        Unlike SSM, FastS has no checksums: a corrupted object is returned
        as-is and fails later, inside the application — which is why
        FastS-data corruption needs a WAR-level recovery (Table 2) rather
        than being absorbed by the store.
        """
        self.reads += 1
        data = self._sessions.get(session_id)
        return data.copy() if data is not None else None

    def write(self, session_id, data):
        """Atomically replace the stored session object."""
        self.writes += 1
        self._sessions[session_id] = data.copy()

    def delete(self, session_id):
        self._sessions.pop(session_id, None)

    def session_ids(self):
        return list(self._sessions)

    # ------------------------------------------------------------------
    # Lifecycle notifications
    # ------------------------------------------------------------------
    def notify_jvm_exit(self, server):
        """The hosting JVM died: everything here is gone."""
        self._sessions.clear()

    def sweep_invalid(self):
        """Validate every stored session, discarding corrupt ones.

        The WAR runs this as part of its (re)initialization — recovering
        from corrupted FastS data is what makes the Table 2 "corrupt data
        inside FastS" rows WAR-level microreboots.
        Returns the ids discarded.
        """
        discarded = []
        for session_id, data in list(self._sessions.items()):
            try:
                data.validate()
            except SessionCorruptionError:
                del self._sessions[session_id]
                discarded.append(session_id)
        return discarded

    # ------------------------------------------------------------------
    # Fault-injection surface
    # ------------------------------------------------------------------
    def _raw(self, session_id):
        """The live stored object (not a copy), for corruption by tests
        and the fault injector."""
        return self._sessions.get(session_id)
