"""Transactional in-memory database (the MySQL analogue).

Properties the paper relies on (§3.3):

* **Crash safety.**  Committed data survives a database crash; transactions
  in flight at the crash are rolled back during recovery from the
  write-ahead log.  "MySQL is crash-safe and recovers fast for our
  datasets."
* **Transactional rollback.**  When an EJB is microrebooted mid-
  transaction, the container aborts the transaction and the database rolls
  it back.
* **Sessions and locks.**  Connections are grouped into database sessions;
  row locks belong to sessions and are released when the session ends — or
  leak until the session times out, which is exactly the §7 limitation
  scenario where a component acquires a connection behind the platform's
  back.
* **Manual repair.**  Corrupted table contents (Table 2's bottom rows) are
  fixed by :meth:`Database.repair_table`, the stand-in for a DBA's manual
  reconstruction.

Equality ``select`` queries are served from lazily-built secondary hash
indexes, maintained by every mutation path (including undo and the
fault-injection surface), so the simulated service can sustain paper-scale
datasets (1.5 M bids) without the simulator itself becoming the bottleneck.
"""

from itertools import count

from repro.sim.resources import Lock


class DatabaseError(Exception):
    """Base class for database failures."""


class DatabaseDownError(DatabaseError):
    """The database process is crashed or still recovering."""


class DuplicateKeyError(DatabaseError):
    """INSERT with a primary key that already exists."""


class SchemaError(DatabaseError):
    """Type or constraint violation (e.g. a non-integer primary key)."""


class _Table:
    """One table: rows keyed by an integer primary key, plus hash indexes."""

    def __init__(self, name, primary_key="id"):
        self.name = name
        self.primary_key = primary_key
        self.rows = {}
        self.indexes = {}  # column -> {value -> set(pk)}

    def validate_pk(self, pk):
        if not isinstance(pk, int) or isinstance(pk, bool):
            raise SchemaError(
                f"{self.name}.{self.primary_key} must be an integer, got {pk!r}"
            )

    # -- index maintenance ----------------------------------------------
    def ensure_index(self, column):
        index = self.indexes.get(column)
        if index is None:
            index = {}
            for pk, row in self.rows.items():
                index.setdefault(self._key(row.get(column)), set()).add(pk)
            self.indexes[column] = index
        return index

    @staticmethod
    def _key(value):
        # Index keys must be hashable even for corrupted values.
        try:
            hash(value)
        except TypeError:
            return repr(value)
        return value

    def index_add(self, pk, row):
        for column, index in self.indexes.items():
            index.setdefault(self._key(row.get(column)), set()).add(pk)

    def index_remove(self, pk, row):
        for column, index in self.indexes.items():
            bucket = index.get(self._key(row.get(column)))
            if bucket is not None:
                bucket.discard(pk)
                if not bucket:
                    del index[self._key(row.get(column))]

    # -- mutation primitives (index-safe; undo closures use these) -------
    def put_row(self, pk, row):
        old = self.rows.get(pk)
        if old is not None:
            self.index_remove(pk, old)
        self.rows[pk] = row
        self.index_add(pk, row)

    def pop_row(self, pk):
        row = self.rows.pop(pk, None)
        if row is not None:
            self.index_remove(pk, row)
        return row

    def set_column(self, pk, column, value):
        row = self.rows[pk]
        self.index_remove(pk, row)
        row[column] = value
        self.index_add(pk, row)

    def replace_all(self, rows):
        self.rows = {pk: dict(row) for pk, row in rows.items()}
        for column in list(self.indexes):
            del self.indexes[column]


class DbSession:
    """A client session: the unit of lock ownership and timeout cleanup."""

    _ids = count(1)

    def __init__(self, database, owner):
        self.session_id = next(DbSession._ids)
        self.database = database
        self.owner = owner
        self.open = True
        self.locks = []  # Lock objects held by this session

    def lock_row(self, table, pk):
        """Return an event granting this session the row lock."""
        if not self.open:
            raise DatabaseError(f"session {self.session_id} is closed")
        lock = self.database._row_lock(table, pk)
        if lock not in self.locks:
            self.locks.append(lock)
        return lock.acquire(self)

    def close(self):
        """End the session, releasing every lock it holds."""
        if not self.open:
            return
        self.open = False
        for lock in self.locks:
            lock.force_release_owner(self)
        self.locks = []
        self.database._sessions.pop(self.session_id, None)


class Database:
    """Shared persistent store with per-transaction undo logging."""

    def __init__(self, kernel, recovery_time=2.0, session_idle_timeout=120.0):
        self.kernel = kernel
        self.recovery_time = recovery_time
        self.session_idle_timeout = session_idle_timeout
        self.tables = {}
        self.running = True
        #: tx_id -> list of (global sequence number, undo callable).  The
        #: sequence numbers let crash recovery undo *interleaved* in-flight
        #: transactions in reverse global order (LSN-style), which is the
        #: only order that is correct when they touched the same rows.
        self._undo = {}
        self._undo_seq = 0
        self._locks = {}  # (table, pk) -> Lock
        self._sessions = {}
        self.commit_count = 0
        self.rollback_count = 0

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def create_table(self, name, primary_key="id"):
        if name in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        self.tables[name] = _Table(name, primary_key)

    def _table(self, name):
        self._assert_up()
        table = self.tables.get(name)
        if table is None:
            raise SchemaError(f"no such table {name!r}")
        return table

    def _assert_up(self):
        if not self.running:
            raise DatabaseDownError("database is not running")

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, table_name, pk):
        """One row by primary key (a copy), or None."""
        row = self._table(table_name).rows.get(pk)
        return dict(row) if row is not None else None

    def select(self, table_name, **equals):
        """All rows matching the column=value filters (copies).

        Single-column equality filters are served from a hash index (built
        on first use); multi-column filters narrow via the first column's
        index and scan the rest.
        """
        table = self._table(table_name)
        if not equals:
            return [dict(row) for row in table.rows.values()]
        columns = sorted(equals)
        index = table.ensure_index(columns[0])
        pks = index.get(table._key(equals[columns[0]]), ())
        out = []
        for pk in pks:
            row = table.rows[pk]
            if all(row.get(col) == equals[col] for col in columns[1:]):
                out.append(dict(row))
        return out

    def count(self, table_name):
        return len(self._table(table_name).rows)

    def max_pk(self, table_name):
        """Largest primary key in the table (0 if empty)."""
        table = self._table(table_name)
        numeric = [pk for pk in table.rows if isinstance(pk, int)]
        return max(numeric, default=0)

    # ------------------------------------------------------------------
    # Writes (undo-logged when a transaction id is supplied)
    # ------------------------------------------------------------------
    def insert(self, table_name, row, tx_id=None):
        table = self._table(table_name)
        pk = row.get(table.primary_key)
        table.validate_pk(pk)
        if pk in table.rows:
            raise DuplicateKeyError(f"{table_name}.{table.primary_key}={pk}")
        table.put_row(pk, dict(row))
        self._log_undo(tx_id, lambda: table.pop_row(pk))

    def update(self, table_name, pk, fields, tx_id=None):
        table = self._table(table_name)
        row = table.rows.get(pk)
        if row is None:
            raise DatabaseError(f"{table_name}: no row with pk {pk!r}")
        before = dict(row)
        updated = dict(row)
        updated.update(fields)
        table.put_row(pk, updated)
        self._log_undo(tx_id, lambda: table.put_row(pk, before))

    def delete(self, table_name, pk, tx_id=None):
        table = self._table(table_name)
        if pk not in table.rows:
            raise DatabaseError(f"{table_name}: no row with pk {pk!r}")
        row = table.pop_row(pk)
        self._log_undo(tx_id, lambda: table.put_row(pk, row))

    def _log_undo(self, tx_id, action):
        if tx_id is None:
            return  # auto-commit: durable immediately, not rollback-able
        self._undo_seq += 1
        self._undo.setdefault(tx_id, []).append((self._undo_seq, action))

    # ------------------------------------------------------------------
    # Transaction resource protocol
    # ------------------------------------------------------------------
    def commit_transaction(self, tx_id):
        self._assert_up()
        self._undo.pop(tx_id, None)
        self.commit_count += 1

    def rollback_transaction(self, tx_id):
        # Rollback must work even "during" a server-side crash cleanup;
        # only a crashed database cannot roll back (it will on recovery).
        if not self.running:
            return
        for _seq, action in reversed(self._undo.pop(tx_id, [])):
            action()
        self.rollback_count += 1

    @property
    def in_flight_transactions(self):
        return len(self._undo)

    # ------------------------------------------------------------------
    # Sessions and row locks (§7 limitation support)
    # ------------------------------------------------------------------
    def open_session(self, owner):
        """Open a client session; idle cleanup after the session timeout."""
        self._assert_up()
        session = DbSession(self, owner)
        self._sessions[session.session_id] = session
        self.kernel.process(
            self._session_reaper(session), name=f"db-session-{session.session_id}"
        )
        return session

    def _session_reaper(self, session):
        """Close the session when its idle timeout elapses (TCP keepalive)."""
        yield self.kernel.timeout(self.session_idle_timeout)
        session.close()

    def close_sessions_owned_by(self, owners):
        """Immediately close sessions of the given owners.

        Models the OS terminating TCP connections when the JVM process is
        killed: "the resulting termination of the underlying TCP connection
        ... would cause the immediate termination of the DB session and the
        release of the lock" (§7).
        """
        owners = set(owners)
        for session in list(self._sessions.values()):
            if session.owner in owners:
                session.close()

    def _row_lock(self, table, pk):
        key = (table, pk)
        lock = self._locks.get(key)
        if lock is None:
            lock = Lock(self.kernel, name=f"{table}:{pk}")
            self._locks[key] = lock
        return lock

    def row_lock_holder(self, table, pk):
        lock = self._locks.get((table, pk))
        return lock.owner if lock else None

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self):
        """Fail-stop the database process.  Committed rows are on 'disk'
        (they survive); in-flight transactions roll back during recovery."""
        self.running = False
        for session in list(self._sessions.values()):
            session.close()

    def recover(self):
        """Generator: WAL replay.  Charges the recovery time, rolls back
        every transaction that was in flight at the crash."""
        if self.running:
            raise DatabaseError("recover() on a running database")
        yield self.kernel.timeout(self.recovery_time)
        in_flight = len(self._undo)
        entries = [
            entry for actions in self._undo.values() for entry in actions
        ]
        self._undo.clear()
        for _seq, action in sorted(entries, key=lambda e: -e[0]):
            action()
        self.rollback_count += in_flight
        self.running = True

    # ------------------------------------------------------------------
    # Audit / repair (manual-operator surface)
    # ------------------------------------------------------------------
    def snapshot(self, table_name):
        """Deep copy of a table's rows, for integrity comparison."""
        table = self._table(table_name)
        return {pk: dict(row) for pk, row in table.rows.items()}

    def diff_table(self, table_name, reference_rows):
        """Primary keys whose rows differ from a reference snapshot."""
        current = self._table(table_name).rows
        differing = []
        for pk in set(current) | set(reference_rows):
            if current.get(pk) != reference_rows.get(pk):
                differing.append(pk)
        return sorted(differing, key=repr)

    def repair_table(self, table_name, reference_rows):
        """Manual repair: reset the table to a reference snapshot.

        Returns the number of rows changed.  This is the operator action
        behind the ``≈`` entries of Table 2.
        """
        table = self._table(table_name)
        changed = len(self.diff_table(table_name, reference_rows))
        table.replace_all(reference_rows)
        return changed

    def _corrupt_row(self, table_name, pk, column, value):
        """Fault-injection surface: silently alter stored data."""
        table = self.tables[table_name]
        if pk not in table.rows:
            raise DatabaseError(f"cannot corrupt missing row {pk!r}")
        table.set_column(pk, column, value)
