"""Session objects shared by the session state stores."""

import hashlib


class SessionCorruptionError(Exception):
    """Raised when a session object fails structural validation on access."""

    def __init__(self, session_id, reason):
        super().__init__(f"session {session_id!r} corrupted: {reason}")
        self.session_id = session_id
        self.reason = reason


class SessionData:
    """One HttpSession: the per-user conversational state (§3.3).

    eBid stores the logged-in userID and the items the user has selected
    for bidding/buying/selling.  The object knows how to checksum itself
    (SSM verifies the checksum on every read) and how to validate its own
    structure (the WAR's post-µRB sweep discards sessions that fail).
    """

    def __init__(self, session_id, user_id):
        self.session_id = session_id
        self.user_id = user_id
        self.attributes = {}
        self.created_at = None
        self.checksum = None

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def compute_checksum(self):
        """Content hash over identity and attributes."""
        material = repr((self.session_id, self.user_id, sorted(
            (k, repr(v)) for k, v in (self.attributes or {}).items()
        )))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def seal(self):
        """Record the current checksum (done by SSM on write)."""
        self.checksum = self.compute_checksum()
        return self

    def checksum_ok(self):
        return self.checksum == self.compute_checksum()

    def validate(self):
        """Structural validation; raises :class:`SessionCorruptionError`.

        Checks the invariants every legitimate eBid session satisfies:
        the attribute map exists, the user id is a positive integer, and
        the user id embedded in the attributes (written at login) matches
        the object's identity.  *Null* and *invalid* corruptions fail the
        first two checks; *wrong* corruptions (swapped identities) fail
        the third.
        """
        if not isinstance(self.attributes, dict):
            raise SessionCorruptionError(self.session_id, "attributes are null")
        # bool is an int subclass, so a "wrong"-type corruption that swaps
        # the user id for True would otherwise slip past this check.
        if (
            isinstance(self.user_id, bool)
            or not isinstance(self.user_id, int)
            or self.user_id <= 0
        ):
            raise SessionCorruptionError(
                self.session_id, f"invalid user id {self.user_id!r}"
            )
        bound_user = self.attributes.get("user_id", self.user_id)
        if isinstance(bound_user, bool) or bound_user != self.user_id:
            raise SessionCorruptionError(
                self.session_id,
                f"identity mismatch: object says {self.user_id}, "
                f"attributes say {bound_user}",
            )

    def copy(self):
        clone = SessionData(self.session_id, self.user_id)
        clone.attributes = dict(self.attributes) if isinstance(self.attributes, dict) else self.attributes
        clone.created_at = self.created_at
        clone.checksum = self.checksum
        return clone

    def __repr__(self):
        return f"<SessionData {self.session_id!r} user={self.user_id!r}>"
