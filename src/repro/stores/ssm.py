"""SSM: the external, clustered session state store (§3.3, [26]).

SSM runs on separate machines, "isolated by physical barriers": access is
slower (marshalling plus a network round trip — charged by the caller using
the timing model), but the state survives microreboots, JVM restarts, and
node reboots.  The storage model is lease-based, so orphaned session state
is garbage-collected automatically; objects are checksummed at write and
verified at read, so corruption is "detected via checksum; bad object
automatically discarded" (Table 2) with no reboot required.
"""

from repro.stores.leases import LeaseTable


class SSM:
    """Lease-based, checksummed session store outside the JVM."""

    #: Session-state lease: "can be discarded when the user logs out or the
    #: session times out".  30 minutes is the conventional web default.
    DEFAULT_LEASE_TTL = 1800.0

    def __init__(self, kernel, lease_ttl=DEFAULT_LEASE_TTL, name="SSM"):
        self.kernel = kernel
        self.name = name
        self._sessions = {}
        self.leases = LeaseTable(kernel, lease_ttl)
        self.reads = 0
        self.writes = 0
        self.checksum_failures = 0
        #: True while the store is unreachable (chaos brick crash).  The
        #: stored state itself survives — SSM replicates session data
        #: across bricks [26] — but reads miss and writes are dropped
        #: until the brick restarts.
        self.crashed = False
        self.missed_reads = 0
        self.dropped_writes = 0

    survives_microreboot = True
    survives_jvm_restart = True

    def __len__(self):
        return len(self._sessions)

    # ------------------------------------------------------------------
    # Store API
    # ------------------------------------------------------------------
    def read(self, session_id):
        """The stored session (a copy) or None.

        Expired leases and checksum mismatches both come back as None; the
        bad/expired object is discarded, never handed to the application.
        """
        self.reads += 1
        if self.crashed:
            self.missed_reads += 1
            return None
        self._gc()
        data = self._sessions.get(session_id)
        if data is None:
            return None
        if not self.leases.is_live(session_id):
            self._discard(session_id)
            return None
        if not data.checksum_ok():
            self.checksum_failures += 1
            self._discard(session_id)
            return None
        self.leases.renew(session_id)
        return data.copy()

    def write(self, session_id, data):
        """Atomically store a sealed copy and (re)grant its lease."""
        self.writes += 1
        if self.crashed:
            self.dropped_writes += 1
            return
        self._sessions[session_id] = data.copy().seal()
        self.leases.grant(session_id)

    def delete(self, session_id):
        self._discard(session_id)

    def session_ids(self):
        return list(self._sessions)

    def _discard(self, session_id):
        self._sessions.pop(session_id, None)
        self.leases.release(session_id)

    def _gc(self):
        """Collect sessions whose leases lapsed (orphaned state)."""
        for session_id in self.leases.collect_expired():
            self._sessions.pop(session_id, None)

    # ------------------------------------------------------------------
    # Brick crash / restart (chaos fault-injection surface)
    # ------------------------------------------------------------------
    def crash(self):
        """The brick quorum becomes unreachable: reads miss, writes drop.

        Session *state* survives (it is replicated across bricks); only
        availability is lost.  Servlets see sessions as absent and answer
        login-required, which is exactly the correlated, cluster-wide
        symptom a recovery-storm limiter has to cope with.
        """
        self.crashed = True
        self.kernel.trace.publish("ssm.crash", store=self.name)

    def wipe(self):
        """Drop every stored session and its lease (no availability change).

        The crash-only resync path for a brick rejoining a replicated
        group: state it kept across the crash is stale by the writes it
        missed, so the group wipes the rejoiner and lets write-all-live
        replication backfill it from current copies.
        """
        for session_id in list(self._sessions):
            self._discard(session_id)

    def restart(self):
        """The brick rejoins: reads and writes flow again."""
        self.crashed = False
        self.kernel.trace.publish(
            "ssm.restart",
            store=self.name,
            missed_reads=self.missed_reads,
            dropped_writes=self.dropped_writes,
        )

    # ------------------------------------------------------------------
    # Lifecycle notifications
    # ------------------------------------------------------------------
    def notify_jvm_exit(self, server):
        """SSM lives outside the JVM: a JVM exit loses nothing."""

    # ------------------------------------------------------------------
    # Fault-injection surface
    # ------------------------------------------------------------------
    def _raw(self, session_id):
        """The live stored object, for bit-flip injection by tests."""
        return self._sessions.get(session_id)
