"""Dedicated state stores (§2, "State segregation").

Microreboots are safe only when all important state lives *outside* the
application, behind strongly-enforced high-level APIs.  eBid keeps its three
kinds of state in the three stores here:

* long-term persistent data → :class:`~repro.stores.database.Database`
  (the MySQL analogue: transactional, write-ahead-logged, crash-safe);
* session state → :class:`~repro.stores.fasts.FastS` (in-JVM, fast,
  survives µRBs but not JVM restarts) or :class:`~repro.stores.ssm.SSM`
  (external, lease-based, checksummed, survives JVM restarts too);
* static presentation data → :class:`~repro.stores.filesystem
  .StaticContentStore` (read-only filesystem).
"""

from repro.stores.database import (
    Database,
    DatabaseDownError,
    DatabaseError,
    DuplicateKeyError,
    SchemaError,
)
from repro.stores.fasts import FastS
from repro.stores.filesystem import StaticContentStore
from repro.stores.leases import LeaseTable
from repro.stores.sessions import SessionCorruptionError, SessionData
from repro.stores.ssm import SSM

__all__ = [
    "Database",
    "DatabaseDownError",
    "DatabaseError",
    "DuplicateKeyError",
    "FastS",
    "LeaseTable",
    "SSM",
    "SchemaError",
    "SessionCorruptionError",
    "SessionData",
    "StaticContentStore",
]
