"""Lease bookkeeping (§2, "Leases").

"Resources in a frequently-microrebooting system should be leased, to
improve the reliability of cleaning up after µRBs."  SSM's session storage
model is lease-based: orphaned session state is garbage-collected
automatically when its lease expires.
"""


class LeaseTable:
    """Expiry times per key, driven by the simulation clock."""

    def __init__(self, kernel, default_ttl):
        if default_ttl <= 0:
            raise ValueError(f"lease TTL must be positive, got {default_ttl}")
        self.kernel = kernel
        self.default_ttl = default_ttl
        self._expiry = {}
        self.expired_count = 0

    def __len__(self):
        return len(self._expiry)

    def grant(self, key, ttl=None):
        """Grant (or re-grant) a lease on ``key``."""
        self._expiry[key] = self.kernel.now + (ttl or self.default_ttl)

    def renew(self, key, ttl=None):
        """Extend an existing lease; returns False if it already lapsed."""
        if key not in self._expiry:
            return False
        self.grant(key, ttl)
        return True

    def release(self, key):
        """Drop the lease explicitly (e.g. user logged out)."""
        self._expiry.pop(key, None)

    def is_live(self, key):
        return key in self._expiry and self._expiry[key] > self.kernel.now

    def collect_expired(self):
        """Remove and return keys whose leases have lapsed."""
        now = self.kernel.now
        expired = [key for key, when in self._expiry.items() if when <= now]
        for key in expired:
            del self._expiry[key]
        self.expired_count += len(expired)
        return expired
