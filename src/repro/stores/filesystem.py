"""Static presentation content store (the Ext3FS analogue).

eBid keeps static presentation data — GIFs, HTML, JSPs — on a filesystem,
optionally mounted read-only (§3.3).  Nothing here is mutable application
state, so it needs no recovery machinery; the store exists so that the 12%
static-content slice of the workload (Table 1) exercises a distinct path.
"""


class StaticContentStore:
    """Read-only path → content mapping."""

    def __init__(self, read_only=True):
        self._files = {}
        self.read_only = False  # writable while being populated
        self.reads = 0
        self._sealed_read_only = read_only

    def publish(self, path, content):
        """Add a static file (deploy-time only when read-only)."""
        if self.read_only:
            raise PermissionError(f"filesystem is mounted read-only: {path}")
        self._files[path] = content

    def seal(self):
        """Finish population; remount read-only if configured."""
        self.read_only = self._sealed_read_only

    def read(self, path):
        """File content; raises FileNotFoundError for unknown paths."""
        self.reads += 1
        if path not in self._files:
            raise FileNotFoundError(path)
        return self._files[path]

    def exists(self, path):
        return path in self._files

    def paths(self):
        return list(self._files)
