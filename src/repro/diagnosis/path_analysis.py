"""Pinpoint-style anomaly scoring over observed request paths.

Each completed request contributes one observation: the set of components
its shepherd thread actually entered (from the span layer) and whether the
client-side detectors judged it failed.  For every component the analyzer
maintains the 2×2 contingency table

    =============  ==================  ======================
                   path contains C     path does not contain C
    =============  ==================  ======================
    failed         a                   b
    successful     c                   d
    =============  ==================  ======================

and scores C by the chi-square statistic of that table, *signed*: a
component is only implicated when its presence is positively associated
with failure (``a·d > b·c``), so components that appear mostly on healthy
paths score zero no matter how large the statistic.  This is the
dependency-analysis variant of Pinpoint (Chen et al., DSN 2002), which the
microreboot authors used as the diagnosis engine feeding µRB-based
recovery in their follow-on work.

Old observations decay two ways: a sliding sim-time window (stale paths
from before the last fault stop diluting the statistics) and a bounded
deque (memory stays O(max_paths) over million-request runs).
"""

from collections import deque


def chi_square_2x2(a, b, c, d):
    """Chi-square statistic of a 2×2 contingency table (no continuity
    correction — sample sizes here are small and gating is explicit)."""
    n = a + b + c + d
    denominator = (a + b) * (c + d) * (a + c) * (b + d)
    if n == 0 or denominator == 0:
        return 0.0
    return n * (a * d - b * c) ** 2 / denominator


class PathAnalyzer:
    """Aggregates request paths into a live dependency graph + anomaly
    ranking.

    Register :meth:`record` as a sink on a
    :class:`~repro.telemetry.spans.SpanCollector`; ask :meth:`rank` for the
    current most-suspicious components.  ``ready()`` gates consumers (the
    recovery manager falls back to its static map until enough paths, and
    enough *failed* paths, have been observed for the statistic to mean
    anything).
    """

    def __init__(self, kernel=None, window=180.0, max_paths=4096,
                 min_paths=20, min_failed=4):
        self.kernel = kernel
        #: Sliding sim-time window (None = keep everything the deque holds).
        self.window = window
        self.min_paths = min_paths
        self.min_failed = min_failed
        #: (finished_at, components frozenset, ok, edges, failed_in)
        self._paths = deque(maxlen=max_paths)
        self.recorded = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, path):
        """SpanCollector sink: absorb one completed RequestPath."""
        self.record_path(
            path.finished_at, path.components, path.ok,
            edges=path.edges, failed_in=path.failed_in,
        )

    def record_path(self, t, components, ok, edges=(), failed_in=()):
        """Primitive form (also used to replay JSONL timelines offline)."""
        self._paths.append(
            (t, frozenset(components), bool(ok), tuple(edges),
             tuple(failed_in))
        )
        self.recorded += 1

    def clear(self):
        self._paths.clear()

    def forget(self, components):
        """Drop observations whose path touched any of ``components``.

        The parallel recovery scheduler calls this when one dependency
        group finishes recovering: evidence through the recycled
        components is stale, but paths through independent groups keep
        their statistical weight (a full :meth:`clear` would blind the
        analyzer to every other concurrent incident).
        """
        targets = frozenset(components)
        if not targets:
            return
        kept = [p for p in self._paths if not (p[1] & targets)]
        self._paths.clear()
        self._paths.extend(kept)

    # ------------------------------------------------------------------
    # The observation window
    # ------------------------------------------------------------------
    def _window_paths(self):
        """Observations inside the decay window, pruning stale ones."""
        if self.kernel is not None and self.window is not None:
            horizon = self.kernel.now - self.window
            while self._paths and self._paths[0][0] < horizon:
                self._paths.popleft()
        return list(self._paths)

    def sample(self):
        """(total paths, failed paths) currently inside the window."""
        paths = self._window_paths()
        failed = sum(1 for p in paths if not p[2])
        return len(paths), failed

    def ready(self):
        """Enough observed data for the statistic to beat the static map?"""
        total, failed = self.sample()
        return total >= self.min_paths and failed >= self.min_failed

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def rank(self):
        """Components most associated with failure, best suspect first.

        Returns ``[(component, chi_square_score), ...]`` for components
        with a *positive* association only.  Ties (identical statistics,
        common when one component's failures are a superset of another's)
        break toward the component more often observed as the deepest
        error site, then lexically for determinism.
        """
        paths = self._window_paths()
        failed = [p for p in paths if not p[2]]
        succeeded = [p for p in paths if p[2]]
        n_failed, n_ok = len(failed), len(succeeded)
        if not n_failed:
            return []

        components = set()
        for _t, members, _ok, _edges, _sites in paths:
            components |= members
        error_sites = {}
        for _t, _members, _ok, _edges, sites in failed:
            for name in sites:
                error_sites[name] = error_sites.get(name, 0) + 1

        scored = []
        for name in components:
            a = sum(1 for p in failed if name in p[1])
            c = sum(1 for p in succeeded if name in p[1])
            b, d = n_failed - a, n_ok - c
            if a * d <= b * c:
                continue  # not positively associated with failure
            scored.append((name, chi_square_2x2(a, b, c, d)))
        scored.sort(
            key=lambda item: (-item[1], -error_sites.get(item[0], 0), item[0])
        )
        return scored

    def dependency_graph(self):
        """Observed component call graph: {parent: {child: call count}}."""
        graph = {}
        for _t, _members, _ok, edges, _sites in self._window_paths():
            for parent, child in edges:
                children = graph.setdefault(parent, {})
                children[child] = children.get(child, 0) + 1
        return graph

    def explain(self, limit=5):
        """Audit payload: sample sizes plus the top of the ranking."""
        total, failed = self.sample()
        return {
            "paths": total,
            "failed": failed,
            "ready": self.ready(),
            "ranking": [
                (name, round(score, 2))
                for name, score in self.rank()[:limit]
            ],
        }

    def __repr__(self):
        total, failed = self.sample()
        return f"<PathAnalyzer {total} paths ({failed} failed)>"
