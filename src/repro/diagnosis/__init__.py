"""Statistical fault localization from observed request paths.

The paper's recovery manager diagnoses from a *static* URL-prefix →
call-path map and admits the result is "simplistic ... often yields false
positives" (§4).  This package upgrades diagnosis from assumed topology to
measured topology: the span layer (:mod:`repro.telemetry.spans`) records
which components each request actually entered, and the
:class:`PathAnalyzer` localizes faults Pinpoint-style, by statistically
contrasting the component membership of failed vs. successful paths.
"""

from repro.diagnosis.path_analysis import PathAnalyzer, chi_square_2x2
from repro.diagnosis.report import summarize_paths

__all__ = ["PathAnalyzer", "chi_square_2x2", "summarize_paths"]
