"""Renderer behind ``repro paths``: observed call trees, dependency graph,
anomaly ranking, and the recovery-decision audit, from a JSONL timeline.

Works on the flat record dicts of :func:`repro.telemetry.export
.read_timeline`; only timelines captured with the span layer enabled carry
``span``/``path.end`` events (``repro run --trace`` enables both).
"""

from repro.diagnosis.path_analysis import PathAnalyzer
from repro.telemetry.export import describe_record

#: Event kinds rendered in the recovery-decision audit section.
AUDIT_KINDS = ("rm.diagnosis", "rm.report", "rm.decision", "rm.action.end")


def _trace_key(record):
    return (record.get("bus"), record.get("trace"))


def _span_trees(span_records):
    """(bus, trace) → that trace's span records, in start order."""
    traces = {}
    for record in span_records:
        traces.setdefault(_trace_key(record), []).append(record)
    for spans in traces.values():
        spans.sort(key=lambda r: r.get("span", 0))
    return traces


def _tree_signature(spans):
    """Tuple of (depth, component) per span — the call-tree shape."""
    depths = {}
    signature = []
    for span in spans:
        parent = span.get("parent")
        depth = 0 if parent is None else depths.get(parent, 0) + 1
        depths[span.get("span")] = depth
        signature.append((depth, span.get("component", "?")))
    return tuple(signature)


def _render_tree(signature, indent="      "):
    return [f"{indent}{'  ' * depth}{component}"
            for depth, component in signature]


def _call_tree_section(trees, path_records, limit):
    lines = ["observed call trees (by URL):"]
    if not path_records:
        lines.append("  (no path.end events — was the span layer enabled?)")
        return lines

    by_url = {}
    for record in path_records:
        url = record.get("url", "?")
        stats = by_url.setdefault(url, {"ok": 0, "failed": 0, "shapes": {}})
        stats["ok" if record.get("ok") else "failed"] += 1
        spans = trees.get(_trace_key(record))
        if spans:
            signature = _tree_signature(spans)
            stats["shapes"][signature] = stats["shapes"].get(signature, 0) + 1

    for url, stats in sorted(by_url.items())[:limit]:
        total = stats["ok"] + stats["failed"]
        lines.append(f"  {url} — {total} path(s), {stats['failed']} failed")
        if stats["shapes"]:
            signature, _count = max(
                stats["shapes"].items(), key=lambda kv: (kv[1], kv[0])
            )
            lines.extend(_render_tree(signature))
            others = len(stats["shapes"]) - 1
            if others:
                lines.append(f"      (+{others} other observed shape(s))")
    if len(by_url) > limit:
        lines.append(f"  ... and {len(by_url) - limit} more URL(s)")
    return lines


def _dependency_graph(trees):
    """Observed parent→child call counts across every trace."""
    graph = {}
    for spans in trees.values():
        names = {s.get("span"): s.get("component", "?") for s in spans}
        for span in spans:
            parent = span.get("parent")
            if parent is None or parent not in names:
                continue
            children = graph.setdefault(names[parent], {})
            child = span.get("component", "?")
            children[child] = children.get(child, 0) + 1
    return graph


def _dependency_section(graph, limit):
    lines = ["observed dependency graph (component -> component, calls):"]
    edges = sorted(
        ((parent, child, count)
         for parent, children in graph.items()
         for child, count in children.items()),
        key=lambda edge: (-edge[2], edge[0], edge[1]),
    )
    if not edges:
        lines.append("  (no observed edges)")
    for parent, child, count in edges[:limit]:
        lines.append(f"  {parent} -> {child}  x{count}")
    if len(edges) > limit:
        lines.append(f"  ... and {len(edges) - limit} more edge(s)")
    return lines


def _ranking_section(analyzer):
    total, failed = analyzer.sample()
    lines = [
        "anomaly ranking (chi-square over failed vs successful paths, "
        f"{total} paths / {failed} failed):"
    ]
    ranking = analyzer.rank()
    if not ranking:
        reason = "nothing anomalous" if failed else "no failures observed"
        lines.append(f"  (empty — {reason})")
    for position, (component, score) in enumerate(ranking, start=1):
        lines.append(f"  {position:>3}. {component:<24} score={score:.2f}")
    return lines


def _audit_section(records):
    audit = [r for r in records if r.get("kind") in AUDIT_KINDS]
    lines = [f"recovery decision audit ({len(audit)} events):"]
    if not audit:
        lines.append("  (no recovery-manager events in this timeline)")
    for record in sorted(audit, key=lambda r: (r["t"], r.get("seq", 0))):
        bus = record.get("bus", "")
        lines.append(
            f"  [{bus}] t={record['t']:9.3f}  {record['kind']:<14} "
            f"{describe_record(record)}"
        )
    return lines


def summarize_paths(records, limit=20):
    """Human-readable path/diagnosis report for one JSONL timeline."""
    spans = [r for r in records if r.get("kind") == "span"]
    paths = [r for r in records if r.get("kind") == "path.end"]
    trees = _span_trees(spans)

    analyzer = PathAnalyzer(kernel=None, window=None,
                            min_paths=1, min_failed=1)
    for record in paths:
        analyzer.record_path(
            record["t"],
            record.get("components") or (),
            record.get("ok", False),
            failed_in=record.get("failed_in") or (),
        )

    lines = [
        f"{len(records)} events: {len(spans)} spans across "
        f"{len(paths)} completed paths"
    ]
    lines.append("")
    lines.extend(_call_tree_section(trees, paths, limit))
    lines.append("")
    lines.extend(_dependency_section(_dependency_graph(trees), limit))
    lines.append("")
    lines.extend(_ranking_section(analyzer))
    lines.append("")
    lines.extend(_audit_section(records))
    return "\n".join(lines)
