"""Command-line interface: regenerate any of the paper's tables/figures.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run figure1 --quick --seed 3
    python -m repro run table2 --jobs 4
    python -m repro run all --out-dir results/
    python -m repro run figure1 --quick --trace figure1.jsonl
    python -m repro trace figure1.jsonl
    python -m repro paths figure1.jsonl
    python -m repro incidents figure1.jsonl --json incidents.jsonl
    python -m repro slo figure1.jsonl --window 30 --availability 0.999
    python -m repro health prediction.jsonl
    python -m repro alerts prediction.jsonl

Each experiment prints its rendered table (and ASCII figures, where the
paper has a figure) to stdout; ``--out-dir`` additionally writes one text
file per experiment.  ``--trace`` enables the telemetry layer (including
the span layer) for the run and writes every kernel's event timeline to
one JSONL file.  The ``trace`` subcommand summarizes it (recovery
timeline, failover windows, slowest requests); the ``paths`` subcommand
renders the causal view (observed call trees, dependency graph, anomaly
ranking, recovery-decision audit); ``incidents`` stitches the timeline
into per-incident MTTR decompositions and ``slo`` judges rolling
availability/latency windows against a policy.  ``health`` and
``alerts`` replay the timeline through the predictive stack — online
MTTF/hazard estimators, blended component health scores, and the
declarative alert rules — rendering scores (sickest first) and
fired/resolved alerts with lead times versus the stitched incidents.
"""

import argparse
import inspect
import json
import sys
import time
from contextlib import nullcontext
from pathlib import Path

from repro.diagnosis.report import summarize_paths
from repro.ebid.descriptors import URL_PATH_MAP
from repro.observability import (
    ClusterIncidentCorrelator,
    SloPolicy,
    health_from_timeline,
    incidents_from_timeline,
    registry_from_cluster,
    registry_from_health,
    registry_from_observability,
    render_prometheus,
    shard_of_incident,
    shard_windows_from_records,
    shards_from_timeline,
    summarize_alerts,
    summarize_health,
    summarize_incidents,
    summarize_shards,
    summarize_slo,
    timeline_shards,
    windows_from_records,
    write_incidents,
)
from repro.telemetry import (
    TimelineError,
    capture_to_jsonl,
    load_timeline,
    summarize_timeline,
)

from repro.experiments import (
    availability,
    chaos,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    health_prediction,
    megascale,
    path_diagnosis,
    storm,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)

EXPERIMENTS = {
    "table1": (table1, "Client workload mix"),
    "table2": (table2, "Fault → worst-case recovery level (26 scenarios)"),
    "table3": (table3, "Recovery times under load"),
    "table4": (table4, "Requests > 8 s during failover at doubled load"),
    "table5": (table5, "Fault-free throughput and latency"),
    "table6": (table6, "Masking µRBs with HTTP/1.1 Retry-After"),
    "figure1": (figure1, "Taw: process restart vs microreboot"),
    "figure2": (figure2, "Functional disruption by group"),
    "figure3": (figure3, "Failover under normal load, 2-8 nodes"),
    "figure4": (figure4, "Response time during failover at doubled load"),
    "figure5": (figure5, "Relaxing failure detection"),
    "figure6": (figure6, "Microrejuvenation"),
    "availability": (availability, "Six-nines recovery allowances"),
    "pathdiag": (path_diagnosis, "Static-map vs path-analysis diagnosis"),
    "chaos": (chaos, "Correlated-fault chaos: seed vs hardened pipeline"),
    "prediction": (health_prediction,
                   "Leak-heavy chaos: reactive vs proactive rejuvenation"),
    "megascale": (megascale,
                  "~1M sessions: cohort workload on a sharded 128-node "
                  "cluster, fault at one shard"),
    "storm": (storm,
              "K-shard fault storm at 1M sessions: static capacity vs "
              "elastic resharding with live session migration"),
}


def _print_experiments():
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_module, description) in EXPERIMENTS.items():
        print(f"  {name.ljust(width)}  {description}")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Microreboot: A Technique for Cheap Recovery' "
            "(Candea et al., OSDI 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", nargs="?", default=None,
                     help="experiment name (see 'repro run --list') or 'all'")
    run.add_argument("--list", action="store_true", dest="list_scenarios",
                     help="list the registered scenarios and exit")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--full", action="store_true",
                     help="paper-scale parameters (slow)")
    run.add_argument("--quick", action="store_true",
                     help="smallest parameters (fast smoke run)")
    run.add_argument("--jobs", type=int, default=1,
                     help="fan independent trials across N worker processes "
                          "(0 = all cores); output is identical to --jobs 1")
    run.add_argument("--out-dir", type=Path, default=None,
                     help="also write rendered output files here")
    run.add_argument("--trace", type=Path, default=None,
                     help="enable tracing and write a JSONL timeline here")

    trace = sub.add_parser(
        "trace", help="summarize a JSONL trace timeline written by run --trace"
    )
    trace.add_argument("file", type=Path)
    trace.add_argument("--slowest", type=int, default=5,
                       help="how many slowest requests to show")

    paths = sub.add_parser(
        "paths",
        help="render observed call trees, dependency graph and anomaly "
             "ranking from a JSONL timeline",
    )
    paths.add_argument("file", type=Path)
    paths.add_argument("--limit", type=int, default=20,
                       help="how many URLs/edges to show per section")

    incidents = sub.add_parser(
        "incidents",
        help="stitch a JSONL timeline into incidents with per-phase MTTR "
             "decomposition (detection/diagnosis/recovery/residual); the "
             "waterfall marks incidents whose recovery windows overlap "
             "(|| = concurrent recovery under the parallel scheduler)",
    )
    incidents.add_argument("file", type=Path)
    incidents.add_argument("--shard", default=None,
                           help="only incidents attributed to this shard "
                                "(megascale/storm timelines)")
    incidents.add_argument("--json", type=Path, default=None,
                           help="also write incidents as JSONL here")
    incidents.add_argument("--prom", type=Path, default=None,
                           help="also write Prometheus text exposition here")

    slo = sub.add_parser(
        "slo",
        help="judge rolling SLO windows (availability, Gaw, p50/p99, "
             "error-budget burn) over a JSONL timeline",
    )
    slo.add_argument("file", type=Path)
    slo.add_argument("--window", type=float, default=30.0,
                     help="window width in simulated seconds")
    slo.add_argument("--availability", type=float, default=0.999,
                     help="per-window availability target")
    slo.add_argument("--latency", type=float, default=8.0,
                     help="per-window p99 ceiling in seconds")
    slo.add_argument("--shard", default=None,
                     help="judge one shard's windows from the cluster "
                          "plane's shard.window events (window width is "
                          "fixed at capture time)")
    slo.add_argument("--prom", type=Path, default=None,
                     help="also write Prometheus text exposition here")

    shards = sub.add_parser(
        "shards",
        help="render the cluster observability plane's per-shard rollups "
             "from a megascale/storm timeline: availability, probe "
             "p50/p99, failovers, migration flow, capacity signals, and "
             "the storm meta-incident waterfall with migration marks",
    )
    shards.add_argument("file", type=Path)
    shards.add_argument("--shard", default=None,
                        help="limit the table and signals to one shard")
    shards.add_argument("--json", type=Path, default=None,
                        help="also write the rollup view as JSON here")
    shards.add_argument("--prom", type=Path, default=None,
                        help="also write Prometheus text exposition here "
                             "(shard=\"...\" labelled families)")

    health = sub.add_parser(
        "health",
        help="replay a JSONL timeline through the predictive stack "
             "(MTTF/hazard estimators + health registry) and render "
             "per-component health scores, sickest first",
    )
    health.add_argument("file", type=Path)
    health.add_argument("--prom", type=Path, default=None,
                        help="also write Prometheus text exposition here")

    alerts = sub.add_parser(
        "alerts",
        help="replay a JSONL timeline through the alert rules and render "
             "fired/resolved alerts plus lead times versus the stitched "
             "incidents",
    )
    alerts.add_argument("file", type=Path)
    return parser


def _load_timeline(path):
    """Read a JSONL timeline for a CLI subcommand.

    Missing, unreadable, corrupt, or empty files are reported as one-line
    errors on stderr (exit code 2), never as tracebacks.  The actual
    loading and error classification live in
    :func:`repro.telemetry.export.load_timeline`, shared by every
    timeline-consuming subcommand.
    """
    try:
        return load_timeline(path)
    except TimelineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def run_experiment(name, seed=0, full=False, quick=False, jobs=1):
    """Run one experiment by name; returns its ExperimentResult."""
    try:
        module, _description = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment: {name!r} (see 'repro run --list')"
        ) from None
    kwargs = {"seed": seed}
    accepted = inspect.signature(module.run).parameters
    if "full" in accepted:
        kwargs["full"] = full
    if "quick" in accepted:
        kwargs["quick"] = quick
    if "jobs" in accepted and jobs != 1:
        kwargs["jobs"] = jobs
    if "seed" not in accepted:
        del kwargs["seed"]
    outcome = module.run(**kwargs)
    return outcome[0] if isinstance(outcome, tuple) else outcome


def main(argv=None):
    args = build_parser().parse_args(argv)

    if args.command == "list":
        _print_experiments()
        return 0

    if args.command == "trace":
        records = _load_timeline(args.file)
        if records is None:
            return 2
        print(summarize_timeline(records, slowest=args.slowest))
        return 0

    if args.command == "paths":
        records = _load_timeline(args.file)
        if records is None:
            return 2
        print(summarize_paths(records, limit=args.limit))
        return 0

    if args.command == "incidents":
        records = _load_timeline(args.file)
        if records is None:
            return 2
        incidents = incidents_from_timeline(records, url_path_map=URL_PATH_MAP)
        if args.shard is not None:
            incidents = [
                i for i in incidents
                if shard_of_incident(i) == args.shard
            ]
        print(summarize_incidents(incidents))
        if args.json is not None:
            written = write_incidents(args.json, incidents)
            print(f"[{written} incident(s) written to {args.json}]")
        if args.prom is not None:
            windows = windows_from_records(records)
            registry = registry_from_observability(incidents, windows)
            args.prom.write_text(
                render_prometheus(registry), encoding="utf-8"
            )
            print(f"[Prometheus exposition written to {args.prom}]")
        return 0

    if args.command == "health":
        records = _load_timeline(args.file)
        if records is None:
            return 2
        rows, _alerts, _incidents = health_from_timeline(
            records, url_path_map=URL_PATH_MAP
        )
        print(summarize_health(rows))
        if args.prom is not None:
            registry = registry_from_health(rows)
            args.prom.write_text(
                render_prometheus(registry), encoding="utf-8"
            )
            print(f"[Prometheus exposition written to {args.prom}]")
        return 0

    if args.command == "alerts":
        records = _load_timeline(args.file)
        if records is None:
            return 2
        _rows, alerts, incidents = health_from_timeline(
            records, url_path_map=URL_PATH_MAP
        )
        print(summarize_alerts(alerts, incidents=incidents))
        return 0

    if args.command == "slo":
        records = _load_timeline(args.file)
        if records is None:
            return 2
        policy = SloPolicy(
            window=args.window,
            availability_target=args.availability,
            latency_target=args.latency,
        )
        if args.shard is not None:
            windows = shard_windows_from_records(
                records, args.shard, policy=policy
            )
            if not windows:
                seen = timeline_shards(records)
                hint = (
                    f" (shards in timeline: {', '.join(seen)})"
                    if seen else ""
                )
                print(
                    f"error: no shard SLO windows for {args.shard!r}{hint}",
                    file=sys.stderr,
                )
                return 2
        else:
            windows = windows_from_records(records, policy=policy)
        print(summarize_slo(windows, policy=policy))
        if args.prom is not None:
            incidents = incidents_from_timeline(
                records, url_path_map=URL_PATH_MAP
            )
            registry = registry_from_observability(incidents, windows)
            args.prom.write_text(
                render_prometheus(registry), encoding="utf-8"
            )
            print(f"[Prometheus exposition written to {args.prom}]")
        return 0

    if args.command == "shards":
        records = _load_timeline(args.file)
        if records is None:
            return 2
        view = shards_from_timeline(records)
        incidents = incidents_from_timeline(records, url_path_map=URL_PATH_MAP)
        correlator = ClusterIncidentCorrelator()
        metas = correlator.correlate(
            incidents, migrations=view["migrations"], storm=view["storm"]
        )
        meta_dicts = [m.to_dict() for m in metas]
        print(
            summarize_shards(
                view, meta_incidents=meta_dicts, shard=args.shard
            )
        )
        if args.json is not None:
            payload = dict(view)
            payload["meta_incidents"] = meta_dicts
            args.json.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"[shard rollup view written to {args.json}]")
        if args.prom is not None:
            registry = registry_from_cluster(
                view["shards"], signals=view["capacity_signals"]
            )
            args.prom.write_text(
                render_prometheus(registry), encoding="utf-8"
            )
            print(f"[Prometheus exposition written to {args.prom}]")
        return 0

    if args.command == "run" and args.list_scenarios:
        _print_experiments()
        return 0

    if args.experiment is None:
        print(
            "error: missing experiment name (see 'repro run --list')",
            file=sys.stderr,
        )
        return 2

    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        print(
            "error: unknown experiment: "
            f"{args.experiment} (see 'repro run --list')",
            file=sys.stderr,
        )
        return 2

    jobs = args.jobs
    if args.trace is not None and jobs != 1:
        # Worker processes have their own trace buses; their timelines
        # cannot reach this process's capture file.  Keep traced runs
        # in-process so the JSONL timeline stays complete.
        print("[--trace forces --jobs 1 so the timeline captures every event]")
        jobs = 1

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    capture = (
        capture_to_jsonl(args.trace) if args.trace is not None else nullcontext()
    )
    with capture:
        for name in names:
            started = time.monotonic()
            result = run_experiment(
                name, seed=args.seed, full=args.full, quick=args.quick,
                jobs=jobs,
            )
            elapsed = time.monotonic() - started
            print(result.render())
            print(f"[{name} regenerated in {elapsed:.1f}s wall time]")
            print()
            if args.out_dir is not None:
                args.out_dir.mkdir(parents=True, exist_ok=True)
                (args.out_dir / f"{name}.txt").write_text(
                    result.render() + "\n", encoding="utf-8"
                )
    if args.trace is not None:
        print(f"[trace timeline written to {args.trace}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
