"""eBid's stateless session beans — the 17 operation components of Table 3.

"Stateless session EJBs are used to perform higher level operations on
entity EJBs: each end user operation is implemented by a stateless session
EJB interacting with several entity EJBs" (§3.3).  Session-state handling is
deliberately *not* here: it lives in the WAR against the session store,
because extricating session state from application logic is the crash-only
conversion's key step (§8).
"""

from repro.appserver.component import StatelessSessionBean


class AuthenticateBean(StatelessSessionBean):
    def login(self, ctx, user_id, password):
        yield from ctx.consume(0.001)
        ok = yield from ctx.call("User", "check_credentials", user_id, password)
        return ok


class BrowseCategoriesBean(StatelessSessionBean):
    """Entry point for all browsing — the most-called EJB in the workload."""

    def categories(self, ctx):
        yield from ctx.consume(0.0008)
        rows = yield from ctx.call("Category", "all_categories")
        return rows


class BrowseRegionsBean(StatelessSessionBean):
    def regions(self, ctx):
        yield from ctx.consume(0.0008)
        rows = yield from ctx.call("Region", "all_regions")
        return rows


class SearchItemsByCategoryBean(StatelessSessionBean):
    def search(self, ctx, category_id):
        yield from ctx.consume(0.004)  # search is CPU-heavier
        rows = yield from ctx.call("Item", "items_by_category", category_id)
        return rows


class SearchItemsByRegionBean(StatelessSessionBean):
    def search(self, ctx, region_id):
        yield from ctx.consume(0.004)
        rows = yield from ctx.call("Item", "items_by_region", region_id)
        return rows


class ViewItemBean(StatelessSessionBean):
    """Item detail pages, including past (closed) auctions.

    ``price_factor`` scales the displayed price; it exists to be a target
    for the "corrupt stateless session EJB attributes" injection: a *wrong*
    value yields valid-looking but incorrect dollar amounts (the paper's
    canonical surreptitious-corruption example), which the WAR may cache.
    """

    def __init__(self):
        super().__init__()
        self.price_factor = 1

    def view(self, ctx, item_id):
        yield from ctx.consume(0.001)
        item = yield from ctx.call("Item", "get_item", item_id)
        if item is None:
            old = yield from ctx.call("OldItem", "get_old_item", item_id)
            if old is None:
                raise self.app_error(f"no such item {item_id}")
            return {
                "item_id": old["id"],
                "name": old["name"],
                "price": old["final_price"] * self.price_factor,
                "closed": True,
            }
        return {
            "item_id": item["id"],
            "name": item["name"],
            "price": item["max_bid"] * self.price_factor,
            "nb_of_bids": item["nb_of_bids"],
            "buy_now_price": item["buy_now_price"] * self.price_factor,
            "closed": False,
        }

    def list_past_auctions(self, ctx):
        yield from ctx.consume(0.001)
        rows = yield from ctx.call("OldItem", "recent_old_items")
        return rows


class ViewUserInfoBean(StatelessSessionBean):
    def info(self, ctx, user_id):
        yield from ctx.consume(0.001)
        user = yield from ctx.call("User", "get_user", user_id)
        feedback = yield from ctx.call("UserFeedback", "feedback_for_user", user_id)
        return {
            "user_id": user["id"],
            "nickname": user["nickname"],
            "rating": user["rating"],
            "feedback_count": len(feedback),
        }


class ViewBidHistoryBean(StatelessSessionBean):
    def history(self, ctx, item_id):
        yield from ctx.consume(0.001)
        bids = yield from ctx.call("Bid", "bids_for_item", item_id)
        bidders = []
        for bid in bids[:3]:  # resolve the top bidders' nicknames
            user = yield from ctx.call("User", "get_user", bid["user_id"])
            bidders.append(user["nickname"])
        return {"item_id": item_id, "bids": bids, "top_bidders": bidders}


class AboutMeBean(StatelessSessionBean):
    """The customized information summary screen (§3.3)."""

    def summary(self, ctx, user_id):
        yield from ctx.consume(0.002)
        user = yield from ctx.call("User", "get_user", user_id)
        bids = yield from ctx.call("Bid", "bids_by_user", user_id)
        buys = yield from ctx.call("BuyNow", "buys_by_user", user_id)
        selling = yield from ctx.call("Item", "items_by_seller", user_id)
        feedback = yield from ctx.call("UserFeedback", "feedback_for_user", user_id)
        return {
            "user_id": user["id"],
            "nickname": user["nickname"],
            "rating": user["rating"],
            "bid_count": len(bids),
            "buy_count": len(buys),
            "selling_count": len(selling),
            "feedback_count": len(feedback),
        }


class MakeBidBean(StatelessSessionBean):
    def prepare(self, ctx, item_id):
        yield from ctx.consume(0.001)
        item = yield from ctx.call("Item", "get_item", item_id)
        if item is None:
            raise self.app_error(f"cannot bid on missing item {item_id}")
        return {
            "item_id": item["id"],
            "current_bid": item["max_bid"],
            "nb_of_bids": item["nb_of_bids"],
        }


class CommitBidBean(StatelessSessionBean):
    """The commit point of the place-bid action ("place bid on item X",
    §3.3's example of a session bean spanning User, Item, and Bid).

    ``min_increment`` is an instance attribute targeted by fault
    injection: a *wrong* (zero) value silently accepts bids that a healthy
    instance rejects, committing incorrect dollar amounts to the database.
    """

    def __init__(self):
        super().__init__()
        self.min_increment = 1

    def commit(self, ctx, user_id, item_id, amount):
        yield from ctx.consume(0.002)
        item = yield from ctx.call("Item", "get_item", item_id)
        if item is None:
            raise self.app_error(f"no such item {item_id}")
        if amount < item["max_bid"] + self.min_increment:
            return {"accepted": False, "item_id": item_id, "amount": amount}
        bid_id = yield from ctx.call("IdentityManager", "next_id", "bids")
        yield from ctx.call("Bid", "create_bid", bid_id, user_id, item_id, amount)
        yield from ctx.call("Item", "record_bid", item_id, amount)
        return {"accepted": True, "bid_id": bid_id, "item_id": item_id,
                "amount": amount}


class DoBuyNowBean(StatelessSessionBean):
    def prepare(self, ctx, item_id):
        yield from ctx.consume(0.001)
        item = yield from ctx.call("Item", "get_item", item_id)
        if item is None:
            raise self.app_error(f"cannot buy missing item {item_id}")
        return {
            "item_id": item["id"],
            "buy_now_price": item["buy_now_price"],
            "quantity": item["quantity"],
        }


class CommitBuyNowBean(StatelessSessionBean):
    def commit(self, ctx, user_id, item_id):
        yield from ctx.consume(0.002)
        item = yield from ctx.call("Item", "get_item", item_id)
        if item is None or item["quantity"] < 1:
            # Sold out is a business outcome, not a failure.
            return {"sold_out": True, "item_id": item_id, "buy_id": None}
        buy_id = yield from ctx.call("IdentityManager", "next_id", "buys")
        yield from ctx.call("BuyNow", "create_buy", buy_id, user_id, item_id)
        yield from ctx.call("Item", "consume_quantity", item_id)
        return {"buy_id": buy_id, "item_id": item_id}


class RegisterNewItemBean(StatelessSessionBean):
    def register(self, ctx, seller_id, name, category_id, region_id,
                 initial_price):
        yield from ctx.consume(0.002)
        item_id = yield from ctx.call("IdentityManager", "next_id", "items")
        item = yield from ctx.call(
            "Item", "create_item", item_id, name, seller_id, category_id,
            region_id, initial_price,
        )
        return {"item_id": item["id"], "name": item["name"]}


class RegisterNewUserBean(StatelessSessionBean):
    def register(self, ctx, nickname, password, region_id):
        yield from ctx.consume(0.002)
        user_id = yield from ctx.call("IdentityManager", "next_id", "users")
        user = yield from ctx.call(
            "User", "create_user", user_id, nickname, password, region_id
        )
        return {"user_id": user["id"], "nickname": user["nickname"]}


class LeaveUserFeedbackBean(StatelessSessionBean):
    def prepare(self, ctx, to_user_id):
        yield from ctx.consume(0.001)
        user = yield from ctx.call("User", "get_user", to_user_id)
        return {"to_user_id": user["id"], "nickname": user["nickname"]}


class CommitUserFeedbackBean(StatelessSessionBean):
    def commit(self, ctx, from_user_id, to_user_id, rating, comment):
        yield from ctx.consume(0.002)
        feedback_id = yield from ctx.call("IdentityManager", "next_id", "feedback")
        yield from ctx.call(
            "UserFeedback", "create_feedback", feedback_id, from_user_id,
            to_user_id, rating, comment,
        )
        yield from ctx.call("User", "apply_rating", to_user_id, rating)
        return {"feedback_id": feedback_id, "to_user_id": to_user_id}
