"""eBid's database schema and dataset generator.

The paper's dataset is 132 K items, 1.5 M bids, and 10 K users.  The default
here preserves those ratios (≈13 items and ≈150 bids per user) at 1/100
scale so experiments are fast; ``DatasetConfig(scale=100)`` reproduces the
paper's sizes when you want them.
"""

from dataclasses import dataclass

#: All persistent tables, in creation order.
TABLES = (
    "users",
    "items",
    "categories",
    "regions",
    "bids",
    "buys",
    "old_items",
    "feedback",
    "id_sequences",
)

#: Tables IdentityManager issues primary keys for.
KEYED_TABLES = ("users", "items", "bids", "buys", "old_items", "feedback")

CATEGORY_NAMES = (
    "Antiques", "Books", "Business", "Clothing", "Computers", "Electronics",
    "Garden", "Jewelry", "Movies", "Music", "Photography", "Sports",
    "Stamps", "Tickets", "Toys", "Travel", "Art", "Coins", "Crafts", "Dolls",
)

REGION_NAMES = (
    "AZ-Phoenix", "CA-Los-Angeles", "CA-San-Francisco", "CO-Denver",
    "FL-Miami", "GA-Atlanta", "IL-Chicago", "MA-Boston", "NY-New-York",
    "WA-Seattle",
)


@dataclass
class DatasetConfig:
    """Sizing knobs for the generated dataset.

    ``scale=1`` is the default laptop-friendly dataset; ``scale=100``
    matches the paper's 10 K users / 132 K items / 1.5 M bids.
    """

    users: int = 100
    items: int = 1320
    bids: int = 15000
    buys: int = 120
    old_items: int = 130
    feedback: int = 200
    categories: int = len(CATEGORY_NAMES)
    regions: int = len(REGION_NAMES)

    @classmethod
    def scaled(cls, scale):
        return cls(
            users=100 * scale,
            items=1320 * scale,
            bids=15000 * scale,
            buys=120 * scale,
            old_items=130 * scale,
            feedback=200 * scale,
        )

    @classmethod
    def tiny(cls):
        """A minimal dataset for fast unit tests."""
        return cls(users=10, items=40, bids=120, buys=5, old_items=8, feedback=10)


def create_schema(database):
    """Create every eBid table."""
    for table in TABLES:
        database.create_table(table)


def populate_dataset(database, rng, config=None):
    """Fill the schema with a deterministic synthetic dataset.

    ``rng`` is a :class:`random.Random`; the same seed yields the same
    dataset, which the comparison-based failure detector (§4) relies on to
    keep the known-good shadow instance in lockstep.
    """
    config = config or DatasetConfig()
    if config.categories > len(CATEGORY_NAMES) or config.regions > len(REGION_NAMES):
        raise ValueError("dataset config exceeds the available name pools")

    for i in range(config.regions):
        database.insert("regions", {"id": i + 1, "name": REGION_NAMES[i]})
    for i in range(config.categories):
        database.insert("categories", {"id": i + 1, "name": CATEGORY_NAMES[i]})

    for i in range(config.users):
        user_id = i + 1
        database.insert(
            "users",
            {
                "id": user_id,
                "nickname": f"user{user_id}",
                "password": f"pw{user_id}",
                "rating": rng.randint(0, 50),
                "balance": 0,
                "region_id": rng.randint(1, config.regions),
            },
        )

    for i in range(config.items):
        item_id = i + 1
        initial = rng.randint(1, 500)
        database.insert(
            "items",
            {
                "id": item_id,
                "name": f"item{item_id}",
                "seller_id": rng.randint(1, config.users),
                "category_id": rng.randint(1, config.categories),
                "region_id": rng.randint(1, config.regions),
                "initial_price": initial,
                "max_bid": initial,
                "nb_of_bids": 0,
                "quantity": rng.randint(1, 5),
                "buy_now_price": initial * 2,
            },
        )

    for i in range(config.bids):
        bid_id = i + 1
        item_id = rng.randint(1, config.items)
        item = database.read("items", item_id)
        amount = item["max_bid"] + rng.randint(1, 10)
        database.insert(
            "bids",
            {
                "id": bid_id,
                "user_id": rng.randint(1, config.users),
                "item_id": item_id,
                "amount": amount,
                "quantity": 1,
            },
        )
        database.update(
            "items",
            item_id,
            {"max_bid": amount, "nb_of_bids": item["nb_of_bids"] + 1},
        )

    for i in range(config.buys):
        database.insert(
            "buys",
            {
                "id": i + 1,
                "buyer_id": rng.randint(1, config.users),
                "item_id": rng.randint(1, config.items),
                "quantity": 1,
            },
        )

    for i in range(config.old_items):
        database.insert(
            "old_items",
            {
                "id": i + 1,
                "name": f"olditem{i + 1}",
                "seller_id": rng.randint(1, config.users),
                "final_price": rng.randint(1, 1000),
            },
        )

    for i in range(config.feedback):
        database.insert(
            "feedback",
            {
                "id": i + 1,
                "from_user_id": rng.randint(1, config.users),
                "to_user_id": rng.randint(1, config.users),
                "rating": rng.choice((-1, 0, 1)),
                "comment": f"comment{i + 1}",
            },
        )

    # Seed the shared id_sequences table (IdentityManager claims key blocks
    # from it, so multiple cluster nodes never hand out colliding keys).
    for i, table in enumerate(KEYED_TABLES):
        database.insert(
            "id_sequences",
            {
                "id": i + 1,
                "relation": table,
                "next_value": database.max_pk(table) + 1,
            },
        )
