"""eBid: the crash-only auction application (§3.3).

A from-scratch reproduction of the paper's conversion of RUBiS: user
accounts, bidding, buy-now purchases, selling, search, summary screens, and
feedback, built from 9 entity beans and 17 stateless session beans plus a
WAR, with all important state segregated into the database, a session store
(FastS or SSM), and a read-only static filesystem.
"""

from repro.ebid.app import EbidSystem, build_ebid_system
from repro.ebid.descriptors import (
    ENTITY_GROUP,
    FUNCTIONAL_GROUPS,
    OPERATIONS,
    URL_PATH_MAP,
    ebid_descriptors,
    operation_info,
)
from repro.ebid.schema import DatasetConfig, create_schema, populate_dataset

__all__ = [
    "DatasetConfig",
    "EbidSystem",
    "ENTITY_GROUP",
    "FUNCTIONAL_GROUPS",
    "OPERATIONS",
    "URL_PATH_MAP",
    "build_ebid_system",
    "create_schema",
    "ebid_descriptors",
    "operation_info",
    "populate_dataset",
]
