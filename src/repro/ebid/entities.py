"""eBid's nine entity beans (§3.3).

"Persistent state in eBid ... is maintained in a MySQL database through 9
entity EJBs: IDManager, User, Item, Bid, Buy, Category, OldItem, Region, and
UserFeedback."  (Table 3 names the Buy entity ``BuyNow`` and IDManager
``IdentityManager``; we follow Table 3.)  Each bean uses container-managed
persistence via the :class:`~repro.appserver.component.EntityBean` helpers.
"""

from repro.appserver.component import EntityBean
from repro.ebid.schema import KEYED_TABLES


class IdentityManagerBean(EntityBean):
    """Generates application-specific primary keys (§5.1).

    Keys are allocated high-low style: the bean claims a block from the
    shared ``id_sequences`` table and hands out values from memory, so
    multiple cluster nodes never collide.  The in-memory block cursors are
    *volatile metadata*: discarded and re-claimed on every (re)start —
    which is exactly why a microreboot cures corrupted key-generation
    state.  Deployed with ``pool_size=1`` so each node has one counter
    authority.
    """

    #: Keys claimed per round trip to the sequence table.
    BLOCK_SIZE = 500

    def on_start(self):
        #: table -> [next value, end of claimed block); blocks are claimed
        #: lazily so reinitialization stays cheap.
        self._next = {table: None for table in KEYED_TABLES}

    def next_id(self, ctx, table):
        """Generator: allocate the next primary key for ``table``."""
        yield from ctx.consume(0.0002)
        block = self._next[table]  # raises if corrupted to None/garbage
        if block is None or block[0] >= block[1]:
            block = yield from self._claim_block(ctx, table)
        value = block[0]
        block[0] = value + 1
        return value

    def _claim_block(self, ctx, table):
        """Generator: reserve the next key block from the shared table.

        The sequence update deliberately auto-commits outside any caller
        transaction (sequence allocations must never roll back, or two
        transactions could be handed the same block).
        """
        yield from ctx.io_delay(self.server.timing.db_access_time)
        database = self._db()
        rows = database.select("id_sequences", relation=table)
        if not rows:
            raise self.app_error(f"no sequence row for table {table!r}")
        row = rows[0]
        start = row["next_value"]
        database.update(
            "id_sequences", row["id"], {"next_value": start + self.BLOCK_SIZE}
        )
        block = [start, start + self.BLOCK_SIZE]
        self._next[table] = block
        return block


class UserBean(EntityBean):
    def get_user(self, ctx, user_id):
        row = yield from self.ejb_load(ctx, user_id)
        if row is None:
            raise self.app_error(f"no such user {user_id}")
        return row

    def check_credentials(self, ctx, user_id, password):
        row = yield from self.ejb_load(ctx, user_id)
        return row is not None and row["password"] == password

    def create_user(self, ctx, user_id, nickname, password, region_id):
        row = yield from self.ejb_create(
            ctx,
            {
                "id": user_id,
                "nickname": nickname,
                "password": password,
                "rating": 0,
                "balance": 0,
                "region_id": region_id,
            },
        )
        return row

    def apply_rating(self, ctx, user_id, delta):
        row = yield from self.ejb_load(ctx, user_id)
        if row is None:
            raise self.app_error(f"no such user {user_id}")
        yield from self.ejb_store(ctx, user_id, rating=row["rating"] + delta)


class ItemBean(EntityBean):
    def get_item(self, ctx, item_id):
        row = yield from self.ejb_load(ctx, item_id)
        return row

    def items_by_category(self, ctx, category_id, limit=20):
        rows = yield from self.ejb_find(ctx, category_id=category_id)
        return rows[:limit]

    def items_by_region(self, ctx, region_id, limit=20):
        rows = yield from self.ejb_find(ctx, region_id=region_id)
        return rows[:limit]

    def items_by_seller(self, ctx, seller_id, limit=20):
        rows = yield from self.ejb_find(ctx, seller_id=seller_id)
        return rows[:limit]

    def create_item(self, ctx, item_id, name, seller_id, category_id,
                    region_id, initial_price):
        row = yield from self.ejb_create(
            ctx,
            {
                "id": item_id,
                "name": name,
                "seller_id": seller_id,
                "category_id": category_id,
                "region_id": region_id,
                "initial_price": initial_price,
                "max_bid": initial_price,
                "nb_of_bids": 0,
                "quantity": 1,
                "buy_now_price": initial_price * 2,
            },
        )
        return row

    def record_bid(self, ctx, item_id, amount):
        row = yield from self.ejb_load(ctx, item_id)
        if row is None:
            raise self.app_error(f"no such item {item_id}")
        yield from self.ejb_store(
            ctx,
            item_id,
            max_bid=max(row["max_bid"], amount),
            nb_of_bids=row["nb_of_bids"] + 1,
        )

    def consume_quantity(self, ctx, item_id, quantity=1):
        row = yield from self.ejb_load(ctx, item_id)
        if row is None:
            raise self.app_error(f"no such item {item_id}")
        if row["quantity"] < quantity:
            raise self.app_error(f"item {item_id} is sold out")
        yield from self.ejb_store(ctx, item_id, quantity=row["quantity"] - quantity)


class BidBean(EntityBean):
    def create_bid(self, ctx, bid_id, user_id, item_id, amount):
        row = yield from self.ejb_create(
            ctx,
            {
                "id": bid_id,
                "user_id": user_id,
                "item_id": item_id,
                "amount": amount,
                "quantity": 1,
            },
        )
        return row

    def bids_for_item(self, ctx, item_id, limit=25):
        rows = yield from self.ejb_find(ctx, item_id=item_id)
        rows.sort(key=lambda r: -r["amount"])
        return rows[:limit]

    def bids_by_user(self, ctx, user_id, limit=25):
        rows = yield from self.ejb_find(ctx, user_id=user_id)
        return rows[:limit]


class BuyNowBean(EntityBean):
    """The Buy entity (Table 3's ``BuyNow*``)."""

    def create_buy(self, ctx, buy_id, buyer_id, item_id, quantity=1):
        row = yield from self.ejb_create(
            ctx,
            {"id": buy_id, "buyer_id": buyer_id, "item_id": item_id,
             "quantity": quantity},
        )
        return row

    def buys_by_user(self, ctx, user_id, limit=25):
        rows = yield from self.ejb_find(ctx, buyer_id=user_id)
        return rows[:limit]


class CategoryBean(EntityBean):
    def all_categories(self, ctx):
        rows = yield from self.ejb_find(ctx)
        rows.sort(key=lambda r: r["id"])
        return rows


class RegionBean(EntityBean):
    def all_regions(self, ctx):
        rows = yield from self.ejb_find(ctx)
        rows.sort(key=lambda r: r["id"])
        return rows


class OldItemBean(EntityBean):
    def recent_old_items(self, ctx, limit=20):
        rows = yield from self.ejb_find(ctx)
        rows.sort(key=lambda r: -r["id"])
        return rows[:limit]

    def get_old_item(self, ctx, item_id):
        row = yield from self.ejb_load(ctx, item_id)
        return row


class UserFeedbackBean(EntityBean):
    def create_feedback(self, ctx, feedback_id, from_user_id, to_user_id,
                        rating, comment):
        row = yield from self.ejb_create(
            ctx,
            {
                "id": feedback_id,
                "from_user_id": from_user_id,
                "to_user_id": to_user_id,
                "rating": rating,
                "comment": comment,
            },
        )
        return row

    def feedback_for_user(self, ctx, user_id, limit=25):
        rows = yield from self.ejb_find(ctx, to_user_id=user_id)
        return rows[:limit]
