"""Database integrity audit for eBid.

Reboot-based recovery *resuscitates* the system; whether the database is
100% correct is a separate question (§5.1 distinguishes resuscitation from
recovery, marking with ``≈`` the faults whose repair needs manual database
work).  This auditor checks the invariants every healthy eBid database
satisfies; violations after resuscitation correspond to the paper's ``≈``.

The checks are *internal* — they compare the database against its own
declared consistency rules, not against a shadow copy — so they stay
meaningful even after the known-good instance has legitimately diverged.
"""

from repro.ebid.schema import KEYED_TABLES


def audit_database(database):
    """Return a list of human-readable invariant violations (empty = clean)."""
    violations = []
    violations.extend(_check_primary_keys(database))
    violations.extend(_check_sequence_ranges(database))
    violations.extend(_check_item_aggregates(database))
    violations.extend(_check_bid_monotonicity(database))
    violations.extend(_check_field_types(database))
    return violations


def _check_primary_keys(database):
    for table in KEYED_TABLES:
        for pk in database.tables[table].rows:
            if not isinstance(pk, int) or pk <= 0:
                yield f"{table}: non-positive or non-integer primary key {pk!r}"


def _check_sequence_ranges(database):
    """Every allocated key must lie below its sequence's high-water mark."""
    limits = {
        row["relation"]: row["next_value"]
        for row in database.tables["id_sequences"].rows.values()
    }
    for table in KEYED_TABLES:
        limit = limits.get(table)
        if limit is None:
            yield f"id_sequences: no row for table {table}"
            continue
        for pk in database.tables[table].rows:
            if isinstance(pk, int) and pk >= limit:
                yield (
                    f"{table}: id {pk} is beyond the sequence high-water "
                    f"mark {limit} (key was never legitimately allocated)"
                )


def _check_item_aggregates(database):
    """items.max_bid and items.nb_of_bids must match the bids table."""
    bids_by_item = {}
    for bid in database.tables["bids"].rows.values():
        bids_by_item.setdefault(bid["item_id"], []).append(bid)
    for pk, item in database.tables["items"].rows.items():
        bids = bids_by_item.get(pk, [])
        amounts = [b["amount"] for b in bids if isinstance(b["amount"], int)]
        expected_max = max([item.get("initial_price", 0), *amounts]) if amounts else item.get("initial_price", 0)
        if item.get("max_bid") != expected_max:
            yield (
                f"items:{pk}: max_bid {item.get('max_bid')!r} inconsistent "
                f"with bids (expected {expected_max})"
            )
        if item.get("nb_of_bids") != len(bids):
            yield (
                f"items:{pk}: nb_of_bids {item.get('nb_of_bids')!r} but "
                f"{len(bids)} bid rows exist"
            )


def _check_bid_monotonicity(database):
    """No two bids on the same item may carry the same amount.

    A healthy CommitBid only accepts strictly increasing amounts, so equal
    amounts indicate a corrupted minimum-increment check.
    """
    seen = {}
    for pk, bid in sorted(database.tables["bids"].rows.items(), key=lambda kv: repr(kv[0])):
        key = (bid["item_id"], bid["amount"])
        if key in seen:
            yield (
                f"bids:{pk}: duplicate amount {bid['amount']} on item "
                f"{bid['item_id']} (also bid {seen[key]})"
            )
        else:
            seen[key] = pk


def _check_field_types(database):
    for pk, item in database.tables["items"].rows.items():
        if not isinstance(item.get("name"), str):
            yield f"items:{pk}: name is {item.get('name')!r}"
        if not isinstance(item.get("max_bid"), int):
            yield f"items:{pk}: max_bid is {item.get('max_bid')!r}"


def manual_repair(database, reference_snapshots):
    """The operator's manual repair (the work behind Table 2's ``≈``).

    Invariant-driven: drop rows whose keys were never legitimately
    allocated, restore type-corrupted fields from a known-good snapshot,
    drop duplicate-amount bids, then recompute the item aggregates from
    the (now clean) bids table.  Rows created legitimately after the
    snapshot are preserved.  Returns the number of rows touched.
    """
    touched = 0

    # 1. Drop rows outside their sequence's allocated range / bad keys.
    limits = {
        row["relation"]: row["next_value"]
        for row in database.tables["id_sequences"].rows.values()
    }
    for table_name in KEYED_TABLES:
        table = database.tables[table_name]
        limit = limits.get(table_name, float("inf"))
        doomed = [
            pk for pk in table.rows
            if not isinstance(pk, int) or pk <= 0 or pk >= limit
        ]
        for pk in doomed:
            table.pop_row(pk)
            touched += 1

    # 2. Restore type-corrupted item fields from the snapshot.
    reference_items = reference_snapshots.get("items", {})
    items_table = database.tables["items"]
    for pk, item in list(items_table.rows.items()):
        for column, expected_type in (("name", str), ("max_bid", int)):
            if not isinstance(item.get(column), expected_type):
                if pk in reference_items:
                    items_table.set_column(pk, column, reference_items[pk][column])
                    touched += 1

    # 3. Drop duplicate-amount bids (keep the earliest).
    seen = set()
    bids_table = database.tables["bids"]
    for pk in sorted(k for k in bids_table.rows if isinstance(k, int)):
        key = (bids_table.rows[pk]["item_id"], bids_table.rows[pk]["amount"])
        if key in seen:
            bids_table.pop_row(pk)
            touched += 1
        else:
            seen.add(key)

    # 4. Recompute item aggregates from the bids table.
    bids_by_item = {}
    for bid in bids_table.rows.values():
        bids_by_item.setdefault(bid["item_id"], []).append(bid["amount"])
    for pk, item in list(items_table.rows.items()):
        amounts = bids_by_item.get(pk, [])
        expected_max = max([item.get("initial_price", 0), *amounts])
        expected_count = len(amounts)
        if item.get("max_bid") != expected_max or item.get("nb_of_bids") != expected_count:
            items_table.set_column(pk, "max_bid", expected_max)
            items_table.set_column(pk, "nb_of_bids", expected_count)
            touched += 1

    return touched
