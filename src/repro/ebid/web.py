"""eBid's web component (the WAR): servlets, session handling, caching.

The servlets drive the session beans and render responses.  All session
state handling happens here, against the pluggable session store (FastS or
SSM) — extricated from the application logic, as §8 prescribes.  Users are
identified by HTTP cookies; they log in once per session (§5.4).

A small rendered-fragment cache holds item detail pages.  It is WAR-local
state: discarded by a WAR microreboot, which is why a wrong value computed
by a faulty bean can outlive that bean's own µRB (Table 2).
"""

from collections import OrderedDict

from repro.appserver.component import WebComponent
from repro.appserver.http import HttpResponse, HttpStatus, error_response

#: Static presentation files and the operations they serve.
STATIC_PAGES = {
    "HomePage": "/static/home.html",
    "Browse": "/static/browse.html",
    "Help": "/static/help.html",
    "LoginForm": "/static/login-form.html",
    "RegisterUserForm": "/static/register-form.html",
    "SellItemForm": "/static/sell-form.html",
}

FRAGMENT_CACHE_CAPACITY = 256


class EbidWar(WebComponent):
    """Servlet container content for eBid."""

    def on_start(self):
        self.fragment_cache = OrderedDict()
        for operation in (
            "HomePage", "Browse", "Help", "LoginForm", "RegisterUserForm",
            "SellItemForm",
            "Authenticate", "Logout", "RegisterNewUser",
            "BrowseCategories", "BrowseRegions",
            "SearchItemsByCategory", "SearchItemsByRegion",
            "ViewItem", "ViewPastAuctions", "ViewUserInfo", "ViewBidHistory",
            "AboutMe", "MakeBid", "CommitBid", "DoBuyNow", "CommitBuyNow",
            "RegisterNewItem", "LeaveUserFeedback", "CommitUserFeedback",
        ):
            handler = getattr(self, f"op_{operation}".lower(), None) or getattr(
                self, f"op_{operation}"
            )
            self.register_servlet(f"/ebid/{operation}", handler)

    # ------------------------------------------------------------------
    # Session helpers (the only place session state is touched)
    # ------------------------------------------------------------------
    def _store(self):
        return self.server.session_store

    def _store_delay(self, ctx):
        access_time = getattr(self._store(), "access_time", 0.0005)
        yield from ctx.io_delay(access_time)

    def _load_session(self, ctx, request):
        """Generator: the caller's session, or None if not logged in."""
        if request.cookie is None:
            return None
        yield from self._store_delay(ctx)
        data = self._store().read(request.cookie)
        if data is None:
            return None
        data.validate()  # corrupted session objects fail here
        return data

    def _save_session(self, ctx, data):
        yield from self._store_delay(ctx)
        self._store().write(data.session_id, data)

    def _login_required(self):
        """A 200 page asking the user to log in.

        When the user *believes* they are logged in (their session was lost
        or corrupted), the client-side detector flags this as an
        application-specific failure (§4).
        """
        return HttpResponse(
            status=HttpStatus.OK,
            body="<html>Please log in to continue</html>",
            payload={"login_required": True},
        )

    # ------------------------------------------------------------------
    # Cache and static helpers
    # ------------------------------------------------------------------
    def cache_put(self, key, value):
        self.fragment_cache[key] = value
        if len(self.fragment_cache) > FRAGMENT_CACHE_CAPACITY:
            self.fragment_cache.popitem(last=False)

    def _static(self, ctx, operation):
        yield from ctx.io_delay(self.server.timing.static_content_time)
        content = self.server.static_store.read(STATIC_PAGES[operation])
        return HttpResponse(HttpStatus.OK, body=content, payload={"static": operation})

    # ------------------------------------------------------------------
    # Static operations
    # ------------------------------------------------------------------
    def op_homepage(self, ctx, request):
        response = yield from self._static(ctx, "HomePage")
        return response

    def op_browse(self, ctx, request):
        response = yield from self._static(ctx, "Browse")
        return response

    def op_help(self, ctx, request):
        response = yield from self._static(ctx, "Help")
        return response

    def op_loginform(self, ctx, request):
        response = yield from self._static(ctx, "LoginForm")
        return response

    def op_registeruserform(self, ctx, request):
        response = yield from self._static(ctx, "RegisterUserForm")
        return response

    def op_sellitemform(self, ctx, request):
        response = yield from self._static(ctx, "SellItemForm")
        return response

    # ------------------------------------------------------------------
    # Session lifecycle operations
    # ------------------------------------------------------------------
    def op_authenticate(self, ctx, request):
        yield from ctx.consume(0.0015)
        user_id = request.params["user_id"]
        password = request.params["password"]
        ok = yield from ctx.call("Authenticate", "login", user_id, password)
        if not ok:
            return error_response(
                HttpStatus.INTERNAL_SERVER_ERROR, "login failed for valid account"
            )
        from repro.stores.sessions import SessionData

        self.server.session_serial += 1
        cookie = f"sess-{user_id}-{self.server.name}-{self.server.session_serial}"
        session = SessionData(cookie, user_id)
        session.attributes = {"user_id": user_id}
        session.created_at = self.server.kernel.now
        yield from self._save_session(ctx, session)
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>welcome user {user_id}</html>",
            payload={"cookie": cookie, "user_id": user_id},
        )

    def op_logout(self, ctx, request):
        yield from ctx.consume(0.0008)
        session = yield from self._load_session(ctx, request)
        if session is None:
            return self._login_required()
        yield from self._store_delay(ctx)
        self._store().delete(session.session_id)
        return HttpResponse(
            HttpStatus.OK,
            body="<html>goodbye</html>",
            payload={"logged_out": session.user_id},
        )

    def op_registernewuser(self, ctx, request):
        yield from ctx.consume(0.0015)
        result = yield from ctx.call(
            "RegisterNewUser", "register",
            request.params["nickname"], request.params["password"],
            request.params["region_id"],
        )
        from repro.stores.sessions import SessionData

        self.server.session_serial += 1
        cookie = (
            f"sess-{result['user_id']}-{self.server.name}"
            f"-{self.server.session_serial}"
        )
        session = SessionData(cookie, result["user_id"])
        session.attributes = {"user_id": result["user_id"]}
        yield from self._save_session(ctx, session)
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>registered {result['nickname']}</html>",
            payload={"cookie": cookie, "user_id": result["user_id"]},
        )

    # ------------------------------------------------------------------
    # Browse / view operations (read-only database access)
    # ------------------------------------------------------------------
    def op_browsecategories(self, ctx, request):
        yield from ctx.consume(0.001)
        rows = yield from ctx.call("BrowseCategories", "categories")
        names = [row["name"] for row in rows]
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>categories: {', '.join(names)}</html>",
            payload={"categories": names},
        )

    def op_browseregions(self, ctx, request):
        yield from ctx.consume(0.001)
        rows = yield from ctx.call("BrowseRegions", "regions")
        names = [row["name"] for row in rows]
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>regions: {', '.join(names)}</html>",
            payload={"regions": names},
        )

    def op_viewitem(self, ctx, request):
        yield from ctx.consume(0.001)
        item_id = request.params["item_id"]
        cached = self.cache_get(("item", item_id))
        if cached is not None:
            return HttpResponse(HttpStatus.OK, body=cached["body"],
                                payload=dict(cached["payload"]))
        detail = yield from ctx.call("ViewItem", "view", item_id)
        body = (
            f"<html>item {detail['item_id']}: {detail['name']} "
            f"at ${detail['price']}</html>"
        )
        payload = {"item_id": detail["item_id"], "price": detail["price"]}
        self.cache_put(("item", item_id), {"body": body, "payload": payload})
        return HttpResponse(HttpStatus.OK, body=body, payload=dict(payload))

    def op_viewpastauctions(self, ctx, request):
        yield from ctx.consume(0.001)
        rows = yield from ctx.call("ViewItem", "list_past_auctions")
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>{len(rows)} past auctions</html>",
            payload={"old_item_ids": [row["id"] for row in rows]},
        )

    def op_viewuserinfo(self, ctx, request):
        yield from ctx.consume(0.001)
        info = yield from ctx.call("ViewUserInfo", "info", request.params["user_id"])
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>{info['nickname']} rating {info['rating']}</html>",
            payload=info,
        )

    def op_viewbidhistory(self, ctx, request):
        yield from ctx.consume(0.001)
        history = yield from ctx.call(
            "ViewBidHistory", "history", request.params["item_id"]
        )
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>{len(history['bids'])} bids</html>",
            payload={
                "item_id": history["item_id"],
                "bid_ids": [bid["id"] for bid in history["bids"]],
                "top_bidders": history["top_bidders"],
            },
        )

    def op_aboutme(self, ctx, request):
        yield from ctx.consume(0.0015)
        session = yield from self._load_session(ctx, request)
        if session is None:
            return self._login_required()
        summary = yield from ctx.call("AboutMe", "summary", session.user_id)
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>about {summary['nickname']}</html>",
            payload=summary,
        )

    # ------------------------------------------------------------------
    # Search operations
    # ------------------------------------------------------------------
    def op_searchitemsbycategory(self, ctx, request):
        yield from ctx.consume(0.001)
        rows = yield from ctx.call(
            "SearchItemsByCategory", "search", request.params["category_id"]
        )
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>{len(rows)} items found</html>",
            payload={"item_ids": [row["id"] for row in rows]},
        )

    def op_searchitemsbyregion(self, ctx, request):
        yield from ctx.consume(0.001)
        rows = yield from ctx.call(
            "SearchItemsByRegion", "search", request.params["region_id"]
        )
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>{len(rows)} items found</html>",
            payload={"item_ids": [row["id"] for row in rows]},
        )

    # ------------------------------------------------------------------
    # Bid / buy / sell / feedback operations
    # ------------------------------------------------------------------
    def op_makebid(self, ctx, request):
        yield from ctx.consume(0.001)
        session = yield from self._load_session(ctx, request)
        if session is None:
            return self._login_required()
        detail = yield from ctx.call("MakeBid", "prepare", request.params["item_id"])
        session.attributes["bid_item"] = detail["item_id"]
        yield from self._save_session(ctx, session)
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>bid page for item {detail['item_id']}</html>",
            payload=detail,
        )

    def op_commitbid(self, ctx, request):
        yield from ctx.consume(0.001)
        session = yield from self._load_session(ctx, request)
        if session is None:
            return self._login_required()
        item_id = session.attributes.get("bid_item")
        if item_id is None:
            return error_response(
                HttpStatus.INTERNAL_SERVER_ERROR,
                "no item selected for bid (session state missing)",
            )
        result = yield from ctx.call(
            "CommitBid", "commit", session.user_id, item_id,
            request.params["amount"],
        )
        if not result["accepted"]:
            return HttpResponse(
                HttpStatus.OK,
                body="<html>bid rejected: amount below minimum</html>",
                payload=result,
            )
        # Cache coherence: the item's detail page shows its price, which
        # this commit just changed.
        self.fragment_cache.pop(("item", item_id), None)
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>bid {result['bid_id']} placed at ${result['amount']}</html>",
            payload=result,
        )

    def op_dobuynow(self, ctx, request):
        yield from ctx.consume(0.001)
        session = yield from self._load_session(ctx, request)
        if session is None:
            return self._login_required()
        detail = yield from ctx.call("DoBuyNow", "prepare", request.params["item_id"])
        session.attributes["buy_item"] = detail["item_id"]
        yield from self._save_session(ctx, session)
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>buy-now page for item {detail['item_id']}</html>",
            payload=detail,
        )

    def op_commitbuynow(self, ctx, request):
        yield from ctx.consume(0.001)
        session = yield from self._load_session(ctx, request)
        if session is None:
            return self._login_required()
        item_id = session.attributes.get("buy_item")
        if item_id is None:
            return error_response(
                HttpStatus.INTERNAL_SERVER_ERROR,
                "no item selected for buy-now (session state missing)",
            )
        result = yield from ctx.call(
            "CommitBuyNow", "commit", session.user_id, item_id
        )
        if result.get("sold_out"):
            return HttpResponse(
                HttpStatus.OK,
                body="<html>sorry, this item is sold out</html>",
                payload=result,
            )
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>purchase {result['buy_id']} complete</html>",
            payload=result,
        )

    def op_registernewitem(self, ctx, request):
        yield from ctx.consume(0.001)
        session = yield from self._load_session(ctx, request)
        if session is None:
            return self._login_required()
        result = yield from ctx.call(
            "RegisterNewItem", "register", session.user_id,
            request.params["name"], request.params["category_id"],
            request.params["region_id"], request.params["initial_price"],
        )
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>item {result['item_id']} listed</html>",
            payload=result,
        )

    def op_leaveuserfeedback(self, ctx, request):
        yield from ctx.consume(0.001)
        session = yield from self._load_session(ctx, request)
        if session is None:
            return self._login_required()
        detail = yield from ctx.call(
            "LeaveUserFeedback", "prepare", request.params["to_user_id"]
        )
        session.attributes["feedback_target"] = detail["to_user_id"]
        yield from self._save_session(ctx, session)
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>feedback page for {detail['nickname']}</html>",
            payload=detail,
        )

    def op_commituserfeedback(self, ctx, request):
        yield from ctx.consume(0.001)
        session = yield from self._load_session(ctx, request)
        if session is None:
            return self._login_required()
        to_user_id = session.attributes.get("feedback_target")
        if to_user_id is None:
            return error_response(
                HttpStatus.INTERNAL_SERVER_ERROR,
                "no feedback target selected (session state missing)",
            )
        result = yield from ctx.call(
            "CommitUserFeedback", "commit", session.user_id, to_user_id,
            request.params["rating"], request.params["comment"],
        )
        return HttpResponse(
            HttpStatus.OK,
            body=f"<html>feedback {result['feedback_id']} recorded</html>",
            payload=result,
        )
