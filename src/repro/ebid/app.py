"""Assembly of a complete eBid system on one application server.

This wires together everything a single middle-tier node needs: the
application server, the database (possibly shared with other nodes of a
cluster), the session store (node-local FastS or shared SSM), the static
content store, and the microreboot coordinator.
"""

from dataclasses import dataclass

from repro.appserver.server import ApplicationServer
from repro.appserver.timing import TimingModel
from repro.core.microreboot import MicrorebootCoordinator
from repro.core.retry import RetryPolicy
from repro.ebid.descriptors import URL_PATH_MAP, ebid_descriptors
from repro.ebid.schema import DatasetConfig, create_schema, populate_dataset
from repro.ebid.web import STATIC_PAGES
from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry
from repro.stores.database import Database
from repro.stores.fasts import FastS
from repro.stores.filesystem import StaticContentStore
from repro.stores.ssm import SSM


@dataclass
class EbidSystem:
    """One assembled node plus its (possibly shared) stores."""

    kernel: Kernel
    rng: RngRegistry
    server: ApplicationServer
    database: Database
    session_store: object
    static_store: StaticContentStore
    coordinator: MicrorebootCoordinator
    dataset: DatasetConfig

    @property
    def url_path_map(self):
        return URL_PATH_MAP


def build_static_store():
    """The read-only presentation tier content."""
    store = StaticContentStore(read_only=True)
    for operation, path in STATIC_PAGES.items():
        store.publish(path, f"<html>static page: {operation}</html>")
    store.seal()
    return store


def build_database(kernel, rng, dataset=None, timing=None):
    """A populated eBid database on its own simulated host."""
    timing = timing or TimingModel()
    dataset = dataset or DatasetConfig()
    database = Database(kernel, recovery_time=timing.db_recovery_time)
    create_schema(database)
    populate_dataset(database, rng.stream("dataset"), dataset)
    return database


def build_ebid_system(
    kernel=None,
    seed=0,
    session_store="fasts",
    dataset=None,
    timing=None,
    retry_policy=None,
    cold_boot=False,
    name=None,
    shared_database=None,
    shared_ssm=None,
):
    """Build and boot one eBid node.

    Args:
        session_store: ``"fasts"`` (in-JVM) or ``"ssm"`` (external).
        shared_database / shared_ssm: pass existing stores when assembling
            a multi-node cluster so all nodes see the same state.
        cold_boot: charge the full 19 s JVM start instead of booting warm
            at t=0.
    """
    kernel = kernel or Kernel()
    rng = RngRegistry(seed)
    timing = timing or TimingModel()
    dataset = dataset or DatasetConfig()
    retry_policy = retry_policy or RetryPolicy.disabled()

    if shared_database is not None:
        database = shared_database
    else:
        database = build_database(kernel, rng, dataset, timing)

    server = ApplicationServer(
        kernel, rng.stream(f"server-{name or 'node'}"), timing=timing, name=name
    )
    server.database = database
    server.static_store = build_static_store()
    server.retry_enabled = retry_policy.enabled

    if session_store == "fasts":
        store = FastS(name=f"FastS@{server.name}")
        store.access_time = timing.fasts_access_time
    elif session_store == "ssm":
        # NB: "or" would silently build a private store whenever the shared
        # one is empty (SSM defines __len__); the identity check matters.
        store = shared_ssm if shared_ssm is not None else SSM(kernel)
        store.access_time = timing.ssm_access_time
    else:
        raise ValueError(f"unknown session store kind {session_store!r}")
    server.session_store = store

    server.deploy("ebid", ebid_descriptors())
    boot = kernel.process(server.boot(cold=cold_boot))
    kernel.run_until_triggered(boot)

    coordinator = MicrorebootCoordinator(server, "ebid", retry_policy=retry_policy)
    return EbidSystem(
        kernel=kernel,
        rng=rng,
        server=server,
        database=database,
        session_store=store,
        static_store=server.static_store,
        coordinator=coordinator,
        dataset=dataset,
    )
