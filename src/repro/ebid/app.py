"""Assembly of a complete eBid system on one application server.

This wires together everything a single middle-tier node needs: the
application server, the database (possibly shared with other nodes of a
cluster), the session store (node-local FastS or shared SSM), the static
content store, and the microreboot coordinator.
"""

import random
from dataclasses import astuple, dataclass

from repro.appserver.server import ApplicationServer
from repro.appserver.timing import TimingModel
from repro.core.microreboot import MicrorebootCoordinator
from repro.core.retry import RetryPolicy
from repro.ebid.descriptors import URL_PATH_MAP, ebid_descriptors
from repro.ebid.schema import DatasetConfig, create_schema, populate_dataset
from repro.ebid.web import STATIC_PAGES
from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry, derive_seed
from repro.stores.database import Database
from repro.stores.fasts import FastS
from repro.stores.filesystem import StaticContentStore
from repro.stores.ssm import SSM


@dataclass
class EbidSystem:
    """One assembled node plus its (possibly shared) stores."""

    kernel: Kernel
    rng: RngRegistry
    server: ApplicationServer
    database: Database
    session_store: object
    static_store: StaticContentStore
    coordinator: MicrorebootCoordinator
    dataset: DatasetConfig

    @property
    def url_path_map(self):
        return URL_PATH_MAP


def build_static_store():
    """The read-only presentation tier content."""
    store = StaticContentStore(read_only=True)
    for operation, path in STATIC_PAGES.items():
        store.publish(path, f"<html>static page: {operation}</html>")
    store.seal()
    return store


# ----------------------------------------------------------------------
# Dataset snapshot cache
#
# Campaign trials are independent simulations that usually share one root
# seed (e.g. all 26 Table 2 rows), so every trial regenerates the exact
# same synthetic dataset — at paper scale that generation dominates trial
# wall-clock.  The dataset is a pure function of (dataset-stream seed,
# DatasetConfig), so the first build in a process captures a snapshot —
# the table rows plus the stream's post-populate state — and later builds
# with the same key restore it instead of regenerating.  Restoring the
# stream state makes a cache hit byte-identical to a fresh populate for
# any code that keeps drawing from the ``"dataset"`` stream afterwards.
#
# The cache is plain picklable data, so a campaign parent can ship it to
# ``spawn`` workers via the pool initializer (see repro.parallel.worker)
# and workers never pay the build even for their first trial.
# ----------------------------------------------------------------------

#: (dataset stream seed, astuple(config)) -> {"rows": ..., "rng_state": ...}
_dataset_snapshots = {}
#: Bound on retained snapshots; at paper scale one snapshot is ~1.65 M rows.
DATASET_SNAPSHOT_LIMIT = 4


def export_dataset_snapshots():
    """This process's dataset snapshots, picklable for worker initargs."""
    return dict(_dataset_snapshots)


def install_dataset_snapshots(snapshots):
    """Replace the process cache (pool initializer in spawned workers)."""
    _dataset_snapshots.clear()
    _dataset_snapshots.update(snapshots or {})


def dataset_snapshots_cached():
    """How many dataset snapshots this process currently holds."""
    return len(_dataset_snapshots)


def _snapshot_tables(database):
    return {
        name: {pk: dict(row) for pk, row in table.rows.items()}
        for name, table in database.tables.items()
    }


def build_database(kernel, rng, dataset=None, timing=None):
    """A populated eBid database on its own simulated host.

    Population is memoized process-wide: the same (seed, config) pair
    restores a snapshot instead of regenerating row by row.  The snapshot
    path only engages when the registry's ``"dataset"`` stream is still in
    its initial state (the normal case — a fresh registry per system), so
    a caller that already drew from the stream gets an honest regenerate.
    """
    timing = timing or TimingModel()
    dataset = dataset or DatasetConfig()
    database = Database(kernel, recovery_time=timing.db_recovery_time)
    create_schema(database)

    stream = rng.stream("dataset")
    stream_seed = derive_seed(rng.root_seed, "dataset")
    fresh = stream.getstate() == random.Random(stream_seed).getstate()
    key = (stream_seed, astuple(dataset))

    snapshot = _dataset_snapshots.get(key) if fresh else None
    if snapshot is not None:
        for name, table in database.tables.items():
            table.replace_all(snapshot["rows"].get(name, {}))
        stream.setstate(snapshot["rng_state"])
        return database

    populate_dataset(database, stream, dataset)
    if fresh:
        if len(_dataset_snapshots) >= DATASET_SNAPSHOT_LIMIT:
            _dataset_snapshots.pop(next(iter(_dataset_snapshots)))
        _dataset_snapshots[key] = {
            "rows": _snapshot_tables(database),
            "rng_state": stream.getstate(),
        }
    return database


def build_ebid_system(
    kernel=None,
    seed=0,
    session_store="fasts",
    dataset=None,
    timing=None,
    retry_policy=None,
    cold_boot=False,
    name=None,
    shared_database=None,
    shared_ssm=None,
):
    """Build and boot one eBid node.

    Args:
        session_store: ``"fasts"`` (in-JVM) or ``"ssm"`` (external).
        shared_database / shared_ssm: pass existing stores when assembling
            a multi-node cluster so all nodes see the same state.
        cold_boot: charge the full 19 s JVM start instead of booting warm
            at t=0.
    """
    kernel = kernel or Kernel()
    rng = RngRegistry(seed)
    timing = timing or TimingModel()
    dataset = dataset or DatasetConfig()
    retry_policy = retry_policy or RetryPolicy.disabled()

    if shared_database is not None:
        database = shared_database
    else:
        database = build_database(kernel, rng, dataset, timing)

    server = ApplicationServer(
        kernel, rng.stream(f"server-{name or 'node'}"), timing=timing, name=name
    )
    server.database = database
    server.static_store = build_static_store()
    server.retry_enabled = retry_policy.enabled

    if session_store == "fasts":
        store = FastS(name=f"FastS@{server.name}")
        store.access_time = timing.fasts_access_time
    elif session_store == "ssm":
        # NB: "or" would silently build a private store whenever the shared
        # one is empty (SSM defines __len__); the identity check matters.
        store = shared_ssm if shared_ssm is not None else SSM(kernel)
        store.access_time = timing.ssm_access_time
    else:
        raise ValueError(f"unknown session store kind {session_store!r}")
    server.session_store = store

    server.deploy("ebid", ebid_descriptors())
    boot = kernel.process(server.boot(cold=cold_boot))
    kernel.run_until_triggered(boot)

    coordinator = MicrorebootCoordinator(server, "ebid", retry_policy=retry_policy)
    return EbidSystem(
        kernel=kernel,
        rng=rng,
        server=server,
        database=database,
        session_store=store,
        static_store=server.static_store,
        coordinator=coordinator,
        dataset=dataset,
    )
