"""eBid deployment descriptors, URL call paths, and operation metadata.

Per-component crash/reinit times are the paper's Table 3 values (msec there,
seconds here).  The EntityGroup — Category, Region, User, Item, Bid — is
expressed through ``group_references`` chains; its members' times sum to the
paper's group figures (crash 36 ms, reinit 789 ms).
"""

import enum

from repro.appserver.descriptors import ComponentKind, DeploymentDescriptor, TxAttribute
from repro.ebid import entities, operations
from repro.ebid.web import EbidWar

#: The recovery group of §5.2: "eBid has one such recovery group,
#: EntityGroup, containing 5 entity EJBs".
ENTITY_GROUP = frozenset({"Category", "Region", "User", "Item", "Bid"})


def ebid_descriptors():
    """All 23 deployable components (22 of Table 3 plus the WAR is the
    23rd row; EntityGroup members are deployed individually)."""
    entity = ComponentKind.ENTITY
    session = ComponentKind.STATELESS_SESSION

    return [
        # --- EntityGroup members (group crash 36 ms, group reinit 789 ms)
        DeploymentDescriptor(
            name="Category", kind=entity, factory=entities.CategoryBean,
            table="categories", group_references=("Region",),
            crash_time=0.007, reinit_time=0.120,
        ),
        DeploymentDescriptor(
            name="Region", kind=entity, factory=entities.RegionBean,
            table="regions", group_references=("User",),
            crash_time=0.007, reinit_time=0.120,
        ),
        DeploymentDescriptor(
            name="User", kind=entity, factory=entities.UserBean,
            table="users", group_references=("Item",),
            crash_time=0.008, reinit_time=0.180,
            tx_methods={"create_user": TxAttribute.SUPPORTS,
                        "apply_rating": TxAttribute.SUPPORTS},
        ),
        DeploymentDescriptor(
            name="Item", kind=entity, factory=entities.ItemBean,
            table="items", group_references=("Bid",),
            crash_time=0.008, reinit_time=0.200,
            tx_methods={"create_item": TxAttribute.SUPPORTS,
                        # record_bid mutates the bid aggregates and must run
                        # inside the caller's transaction; Required joins it
                        # (and is the fault-injection target whose *wrong*
                        # corruption yields Table 2's partial-commit ≈).
                        "record_bid": TxAttribute.REQUIRED,
                        "consume_quantity": TxAttribute.SUPPORTS},
        ),
        DeploymentDescriptor(
            name="Bid", kind=entity, factory=entities.BidBean,
            table="bids",
            crash_time=0.006, reinit_time=0.169,
            tx_methods={"create_bid": TxAttribute.SUPPORTS},
        ),
        # --- Entity beans outside the group (Table 3 ``*`` rows)
        DeploymentDescriptor(
            name="BuyNow", kind=entity, factory=entities.BuyNowBean,
            table="buys", crash_time=0.009, reinit_time=0.462,
            tx_methods={"create_buy": TxAttribute.SUPPORTS},
        ),
        DeploymentDescriptor(
            name="IdentityManager", kind=entity,
            factory=entities.IdentityManagerBean,
            table="id_sequences", pool_size=1,
            crash_time=0.010, reinit_time=0.451,
        ),
        DeploymentDescriptor(
            name="OldItem", kind=entity, factory=entities.OldItemBean,
            table="old_items", crash_time=0.010, reinit_time=0.519,
        ),
        DeploymentDescriptor(
            name="UserFeedback", kind=entity, factory=entities.UserFeedbackBean,
            table="feedback", crash_time=0.011, reinit_time=0.472,
            tx_methods={"create_feedback": TxAttribute.SUPPORTS},
        ),
        # --- Stateless session beans (Table 3)
        DeploymentDescriptor(
            name="AboutMe", kind=session, factory=operations.AboutMeBean,
            references=("User", "Bid", "BuyNow", "Item", "UserFeedback"),
            crash_time=0.009, reinit_time=0.542,
        ),
        DeploymentDescriptor(
            name="Authenticate", kind=session, factory=operations.AuthenticateBean,
            references=("User",), crash_time=0.012, reinit_time=0.479,
        ),
        DeploymentDescriptor(
            name="BrowseCategories", kind=session,
            factory=operations.BrowseCategoriesBean,
            references=("Category",), crash_time=0.011, reinit_time=0.400,
        ),
        DeploymentDescriptor(
            name="BrowseRegions", kind=session,
            factory=operations.BrowseRegionsBean,
            references=("Region",), crash_time=0.015, reinit_time=0.401,
        ),
        DeploymentDescriptor(
            name="CommitBid", kind=session, factory=operations.CommitBidBean,
            references=("IdentityManager", "Item", "Bid"),
            crash_time=0.008, reinit_time=0.525,
            tx_methods={"commit": TxAttribute.REQUIRED},
        ),
        DeploymentDescriptor(
            name="CommitBuyNow", kind=session, factory=operations.CommitBuyNowBean,
            references=("IdentityManager", "BuyNow", "Item"),
            crash_time=0.009, reinit_time=0.462,
            tx_methods={"commit": TxAttribute.REQUIRED},
        ),
        DeploymentDescriptor(
            name="CommitUserFeedback", kind=session,
            factory=operations.CommitUserFeedbackBean,
            references=("IdentityManager", "UserFeedback", "User"),
            crash_time=0.009, reinit_time=0.522,
            tx_methods={"commit": TxAttribute.REQUIRED},
        ),
        DeploymentDescriptor(
            name="DoBuyNow", kind=session, factory=operations.DoBuyNowBean,
            references=("Item",), crash_time=0.010, reinit_time=0.417,
        ),
        DeploymentDescriptor(
            name="LeaveUserFeedback", kind=session,
            factory=operations.LeaveUserFeedbackBean,
            references=("User",), crash_time=0.010, reinit_time=0.474,
        ),
        DeploymentDescriptor(
            name="MakeBid", kind=session, factory=operations.MakeBidBean,
            references=("Item",), crash_time=0.009, reinit_time=0.505,
        ),
        DeploymentDescriptor(
            name="RegisterNewItem", kind=session,
            factory=operations.RegisterNewItemBean,
            references=("IdentityManager", "Item"),
            crash_time=0.013, reinit_time=0.434,
            tx_methods={"register": TxAttribute.REQUIRED},
        ),
        DeploymentDescriptor(
            name="RegisterNewUser", kind=session,
            factory=operations.RegisterNewUserBean,
            references=("IdentityManager", "User"),
            crash_time=0.013, reinit_time=0.588,
            tx_methods={"register": TxAttribute.REQUIRED},
        ),
        DeploymentDescriptor(
            name="SearchItemsByCategory", kind=session,
            factory=operations.SearchItemsByCategoryBean,
            references=("Item",), crash_time=0.014, reinit_time=0.428,
        ),
        DeploymentDescriptor(
            name="SearchItemsByRegion", kind=session,
            factory=operations.SearchItemsByRegionBean,
            references=("Item",), crash_time=0.008, reinit_time=0.564,
        ),
        DeploymentDescriptor(
            name="ViewBidHistory", kind=session,
            factory=operations.ViewBidHistoryBean,
            references=("Bid", "User"), crash_time=0.011, reinit_time=0.496,
        ),
        DeploymentDescriptor(
            name="ViewUserInfo", kind=session, factory=operations.ViewUserInfoBean,
            references=("User", "UserFeedback"),
            crash_time=0.010, reinit_time=0.405,
        ),
        DeploymentDescriptor(
            name="ViewItem", kind=session, factory=operations.ViewItemBean,
            references=("Item", "OldItem"),
            crash_time=0.010, reinit_time=0.436,
        ),
        # --- The web component
        DeploymentDescriptor(
            name="EbidWAR", kind=ComponentKind.WEB, factory=EbidWar,
            pool_size=1, crash_time=0.071, reinit_time=0.957,
        ),
    ]


#: URL prefix → servlet/EJB call path, "derived using static analysis" (§4).
#: The recovery manager scores these components when the URL fails.
URL_PATH_MAP = {
    "/ebid/HomePage": ("EbidWAR",),
    "/ebid/Browse": ("EbidWAR",),
    "/ebid/Help": ("EbidWAR",),
    "/ebid/LoginForm": ("EbidWAR",),
    "/ebid/RegisterUserForm": ("EbidWAR",),
    "/ebid/SellItemForm": ("EbidWAR",),
    "/ebid/Authenticate": ("EbidWAR", "Authenticate", "User"),
    "/ebid/Logout": ("EbidWAR",),
    "/ebid/RegisterNewUser": ("EbidWAR", "RegisterNewUser", "IdentityManager", "User"),
    "/ebid/BrowseCategories": ("EbidWAR", "BrowseCategories", "Category"),
    "/ebid/BrowseRegions": ("EbidWAR", "BrowseRegions", "Region"),
    "/ebid/SearchItemsByCategory": ("EbidWAR", "SearchItemsByCategory", "Item"),
    "/ebid/SearchItemsByRegion": ("EbidWAR", "SearchItemsByRegion", "Item"),
    "/ebid/ViewItem": ("EbidWAR", "ViewItem", "Item", "OldItem"),
    "/ebid/ViewPastAuctions": ("EbidWAR", "ViewItem", "OldItem"),
    "/ebid/ViewUserInfo": ("EbidWAR", "ViewUserInfo", "User", "UserFeedback"),
    "/ebid/ViewBidHistory": ("EbidWAR", "ViewBidHistory", "Bid", "User"),
    "/ebid/AboutMe": (
        "EbidWAR", "AboutMe", "User", "Bid", "BuyNow", "Item", "UserFeedback",
    ),
    "/ebid/MakeBid": ("EbidWAR", "MakeBid", "Item"),
    "/ebid/CommitBid": ("EbidWAR", "CommitBid", "IdentityManager", "Item", "Bid"),
    "/ebid/DoBuyNow": ("EbidWAR", "DoBuyNow", "Item"),
    "/ebid/CommitBuyNow": (
        "EbidWAR", "CommitBuyNow", "IdentityManager", "BuyNow", "Item",
    ),
    "/ebid/RegisterNewItem": ("EbidWAR", "RegisterNewItem", "IdentityManager", "Item"),
    "/ebid/LeaveUserFeedback": ("EbidWAR", "LeaveUserFeedback", "User"),
    "/ebid/CommitUserFeedback": (
        "EbidWAR", "CommitUserFeedback", "IdentityManager", "UserFeedback", "User",
    ),
}


class OperationCategory(enum.Enum):
    """Table 1's workload categories."""

    READ_ONLY_DB = "read-only DB access"
    SESSION_LIFECYCLE = "session state init/delete"
    STATIC = "static HTML content"
    SEARCH = "search"
    SESSION_UPDATE = "session state update"
    DB_UPDATE = "database update"


#: The 25 end-user operations (the states of the §4 Markov chain):
#: name -> (category, idempotent, functional group for Figure 2).
OPERATIONS = {
    "HomePage": (OperationCategory.STATIC, True, "Browse/View"),
    "Browse": (OperationCategory.STATIC, True, "Browse/View"),
    "Help": (OperationCategory.STATIC, True, "Browse/View"),
    "LoginForm": (OperationCategory.STATIC, True, "User Account"),
    "RegisterUserForm": (OperationCategory.STATIC, True, "User Account"),
    "Authenticate": (OperationCategory.SESSION_LIFECYCLE, True, "User Account"),
    "Logout": (OperationCategory.SESSION_LIFECYCLE, True, "User Account"),
    "RegisterNewUser": (OperationCategory.SESSION_LIFECYCLE, False, "User Account"),
    "BrowseCategories": (OperationCategory.READ_ONLY_DB, True, "Browse/View"),
    "BrowseRegions": (OperationCategory.READ_ONLY_DB, True, "Browse/View"),
    "ViewItem": (OperationCategory.READ_ONLY_DB, True, "Browse/View"),
    "ViewPastAuctions": (OperationCategory.READ_ONLY_DB, True, "Browse/View"),
    "ViewUserInfo": (OperationCategory.READ_ONLY_DB, True, "Browse/View"),
    "ViewBidHistory": (OperationCategory.READ_ONLY_DB, True, "Browse/View"),
    "AboutMe": (OperationCategory.READ_ONLY_DB, True, "User Account"),
    "SearchItemsByCategory": (OperationCategory.SEARCH, True, "Search"),
    "SearchItemsByRegion": (OperationCategory.SEARCH, True, "Search"),
    "MakeBid": (OperationCategory.SESSION_UPDATE, True, "Bid/Buy/Sell"),
    "DoBuyNow": (OperationCategory.SESSION_UPDATE, True, "Bid/Buy/Sell"),
    "LeaveUserFeedback": (OperationCategory.SESSION_UPDATE, True, "User Account"),
    "CommitBid": (OperationCategory.DB_UPDATE, False, "Bid/Buy/Sell"),
    "CommitBuyNow": (OperationCategory.DB_UPDATE, False, "Bid/Buy/Sell"),
    "RegisterNewItem": (OperationCategory.DB_UPDATE, False, "Bid/Buy/Sell"),
    "CommitUserFeedback": (OperationCategory.DB_UPDATE, False, "User Account"),
    "SellItemForm": (OperationCategory.STATIC, True, "Bid/Buy/Sell"),
}

#: Figure 2's four functional groups.
FUNCTIONAL_GROUPS = ("Bid/Buy/Sell", "Browse/View", "Search", "User Account")


def operation_info(name):
    """(category, idempotent, functional_group) for an operation name."""
    return OPERATIONS[name]


def operation_url(name):
    return f"/ebid/{name}"
