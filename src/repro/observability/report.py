"""Human-readable rendering behind ``repro incidents``/``slo``/``health``/
``alerts``.

Pure text formatting over already-stitched data: a per-incident table with
a phase waterfall (detection/diagnosis/recovery/residual drawn to scale),
the rolling SLO window series with its violations called out, the
per-component health scoreboard, and the alert log with its lead-time
summary.  All renderers are deterministic — same data in, same bytes out —
so CLI output can be asserted verbatim in tests.
"""

from repro.observability.alerts import alert_lead_times, median
from repro.observability.cluster import shard_of_incident
from repro.observability.incidents import (
    aggregate_incidents,
    max_concurrent_actions,
)
from repro.observability.slo import aggregate_slo

#: Phase → single-letter glyph used in the waterfall bars.
_PHASE_GLYPHS = (
    ("detection", "d"),
    ("diagnosis", "D"),
    ("recovery", "R"),
    ("residual", "r"),
)


def _table(headers, rows):
    """The repo's standard fixed-width table (ExperimentResult's layout)."""
    if not rows:
        return [
            "  ".join(str(h) for h in headers),
            "(none)",
        ]
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows))
        for i, h in enumerate(headers)
    ]
    header = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines = [header, "-" * len(header)]
    lines.extend(
        "  ".join(str(v).ljust(w) for v, w in zip(row, widths))
        for row in rows
    )
    return lines


def _fmt_s(value, digits=1):
    return f"{value:.{digits}f}"


def _waterfall(incident, width=44):
    """One scaled bar: phases drawn left to right across the span."""
    span = incident.span
    phases = incident.phases()
    if span <= 0:
        return "|" + "".ljust(width) + "|"
    cells = []
    for phase, glyph in _PHASE_GLYPHS:
        n = int(round(phases[phase] / span * width))
        cells.append(glyph * n)
    bar = "".join(cells)[:width]
    return "|" + bar.ljust(width) + "|"


def _recovery_interval(incident):
    """(first decision, last action end), or None without actions."""
    if not incident.actions:
        return None
    return (
        min(a["decided_at"] for a in incident.actions),
        max(a["finished_at"] for a in incident.actions),
    )


def _overlapping_ids(incidents):
    """Ids of incidents whose recovery windows overlap another's.

    Overlap is strict (half-open intervals), so back-to-back serial
    recoveries never get flagged — only genuinely concurrent ones, the
    signature of the parallel recovery scheduler.
    """
    intervals = [
        (incident.id, interval)
        for incident in incidents
        if (interval := _recovery_interval(incident)) is not None
    ]
    flagged = set()
    for i, (id_a, (start_a, end_a)) in enumerate(intervals):
        for id_b, (start_b, end_b) in intervals[i + 1:]:
            if start_a < end_b and start_b < end_a:
                flagged.add(id_a)
                flagged.add(id_b)
    return flagged


def summarize_incidents(incidents, waterfall_width=44):
    """Per-incident table + phase waterfall + aggregate line; one string."""
    lines = [f"{len(incidents)} incident(s)"]
    if not incidents:
        return "\n".join(lines)

    # The shard column only appears when at least one incident attributes
    # to a shard, so flat single-node timelines keep their historical
    # rendering byte for byte.
    shards = [shard_of_incident(incident) for incident in incidents]
    with_shards = any(shards)
    rows = []
    for incident, shard in zip(incidents, shards):
        phases = incident.phases()
        row = [
            incident.id,
            incident.key,
            incident.server or "-",
        ]
        if with_shards:
            row.append(shard or "-")
        row.extend(
            (
                incident.trigger,
                _fmt_s(incident.opened_at),
                _fmt_s(incident.span),
                _fmt_s(phases["detection"]),
                _fmt_s(phases["diagnosis"]),
                _fmt_s(phases["recovery"]),
                _fmt_s(phases["residual"]),
                incident.reports,
                len(incident.actions),
                incident.closed_by or "open",
            )
        )
        rows.append(tuple(row))
    headers = ["id", "key", "server"]
    if with_shards:
        headers.append("shard")
    headers.extend(
        (
            "trigger", "opened", "span", "detect", "diagnose", "recover",
            "residual", "reports", "actions", "closed by",
        )
    )
    lines.append("")
    lines.extend(_table(tuple(headers), rows))

    lines.append("")
    lines.append(
        "phase waterfall (d=detection D=diagnosis R=recovery r=residual):"
    )
    overlapping = _overlapping_ids(incidents)
    for incident in incidents:
        ladder = "->".join(a["level"] for a in incident.actions) or "-"
        mark = " ||" if incident.id in overlapping else ""
        lines.append(
            f"  #{incident.id:<3} t={incident.opened_at:8.1f}s "
            f"{_waterfall(incident, waterfall_width)} "
            f"{incident.span:7.1f}s  {ladder}{mark}"
        )
    peak = max_concurrent_actions(incidents)
    if peak > 1:
        lines.append(
            f"  || = recovery overlaps another incident's "
            f"(peak {peak} concurrent recovery actions)"
        )

    summary = aggregate_incidents(incidents)
    lines.append("")
    lines.append(
        "closed by: "
        + ", ".join(f"{k}={v}" for k, v in summary["closed_by"].items())
    )
    means = summary["mean_phases"]
    lines.append(
        f"mean span {summary['mean_span']}s = "
        + " + ".join(f"{means[p]}s {p}" for p, _g in _PHASE_GLYPHS)
    )
    lines.append(
        f"attributed: {summary['actions_attributed']} recovery action(s), "
        f"{summary['reports_attributed']} report(s) "
        f"(+{summary['suppressed_reports']} quarantine-suppressed)"
    )
    return "\n".join(lines)


def summarize_slo(windows, policy=None):
    """Window series table + violations + aggregate line; one string."""
    lines = []
    if policy is not None:
        lines.append(
            f"policy: window={policy.window:g}s "
            f"availability>={policy.availability_target:g} "
            f"p99<={policy.latency_target:g}s "
            f"(error budget {policy.error_budget:.4%}/window)"
        )
    lines.append(f"{len(windows)} window(s)")
    if not windows:
        return "\n".join(lines)

    rows = []
    for window in windows:
        availability = window.availability
        burn = window.burn
        rows.append(
            (
                f"{window.start:g}-{window.end:g}",
                window.good,
                window.bad,
                f"{availability:.4f}" if availability is not None else "-",
                f"{window.gaw:.1f}",
                f"{window.p50:.2f}" if window.p50 is not None else "-",
                f"{window.p99:.2f}" if window.p99 is not None else "-",
                ("inf" if burn == float("inf") else f"{burn:.1f}"),
                "VIOLATED" if window.violated else "",
            )
        )
    lines.append("")
    lines.extend(
        _table(
            (
                "window", "good", "bad", "avail", "gaw/s", "p50", "p99",
                "burn", "",
            ),
            rows,
        )
    )

    violations = [w for w in windows if w.violated]
    lines.append("")
    if violations:
        lines.append(f"{len(violations)} violation(s):")
        for window in violations:
            lines.append(
                f"  t={window.start:g}-{window.end:g}s: "
                + "; ".join(window.reasons)
            )
    else:
        lines.append("no violations")

    summary = aggregate_slo(windows)
    lines.append(
        f"min availability {summary['min_availability']}, "
        f"mean gaw {summary['mean_gaw']}/s, "
        f"max burn {summary['max_burn']}"
    )
    return "\n".join(lines)


def _score_bar(score, width=20):
    filled = int(round(score / 100.0 * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def summarize_health(rows):
    """Per-component health scoreboard (sickest first); one string.

    ``rows`` is :meth:`ComponentHealthRegistry.snapshot` output: plain
    dicts with score + normalized penalty signals, one per component.
    """
    lines = [f"{len(rows)} component(s)"]
    if not rows:
        return "\n".join(lines)
    ordered = sorted(
        rows, key=lambda r: (r["score"], str(r["server"]), r["component"])
    )
    table_rows = []
    for row in ordered:
        mttf = row.get("mttf")
        table_rows.append(
            (
                row["server"] or "-",
                row["component"],
                f"{row['score']:.1f}",
                _score_bar(row["score"]),
                f"{row['hazard']:.2f}",
                f"{row['burn']:.2f}",
                f"{row['flap']:.2f}",
                f"{row['heap']:.2f}",
                f"{mttf:.1f}s" if mttf is not None else "-",
            )
        )
    lines.append("")
    lines.extend(
        _table(
            (
                "server", "component", "score", "health", "hazard", "burn",
                "flap", "heap", "mttf",
            ),
            table_rows,
        )
    )
    sick = [r for r in ordered if r["score"] < 50.0]
    lines.append("")
    if sick:
        lines.append(
            f"{len(sick)} component(s) below 50: "
            + ", ".join(
                f"{r['component']}@{r['server'] or '-'}" for r in sick
            )
        )
    else:
        lines.append("no component below 50")
    return "\n".join(lines)


#: Meta-incident phase → glyph for the cluster waterfall bars.
_META_GLYPHS = (
    ("detect", "d"),
    ("decide", "D"),
    ("migrate", "M"),
    ("drain", "r"),
)


def _slo_violations(row):
    """SLO violation count from a live (nested) or replayed (flat) row."""
    slo = row.get("slo")
    if isinstance(slo, dict):
        return slo.get("violations")
    return row.get("slo_violations")


def _meta_waterfall(meta, width=44):
    """One scaled cluster-MTTR bar with ``*`` marks at migration starts."""
    span = meta.get("span") or 0.0
    phases = meta.get("phases") or {}
    if span <= 0:
        return "|" + "".ljust(width) + "|"
    cells = []
    for phase, glyph in _META_GLYPHS:
        n = int(round(phases.get(phase, 0.0) / span * width))
        cells.append(glyph * n)
    bar = list("".join(cells)[:width].ljust(width))
    opened = meta.get("opened_at", 0.0)
    for migration in meta.get("migrations", ()):
        position = int((migration["at"] - opened) / span * width)
        if 0 <= position < width:
            bar[position] = "*"
    return "|" + "".join(bar) + "|"


def summarize_shards(view, meta_incidents=None, shard=None):
    """Per-shard rollup table + storm waterfall + capacity signals.

    ``view`` is the cluster plane's rollup view — a live outcome's
    ``cluster`` section or :func:`~repro.observability.cluster.
    shards_from_timeline` output: ``{"shards": [rows], "capacity_signals":
    [...], "migrations": [...], "storm": {...}}``.  ``meta_incidents`` are
    :meth:`MetaIncident.to_dict` dicts; ``shard`` filters the table.
    """
    rows = view.get("shards") or view.get("rollup") or []
    if shard is not None:
        rows = [r for r in rows if r.get("shard") == shard]
    lines = [f"{len(rows)} shard(s)"]
    good = sum(r.get("good") or 0 for r in rows)
    bad = sum(r.get("bad") or 0 for r in rows)
    if good + bad:
        lines[0] += f", cluster availability {good / (good + bad):.6f}"
    if not rows:
        return "\n".join(lines)

    storm = view.get("storm")
    if storm and storm.get("shards"):
        lines.append(
            f"storm at t={storm.get('at'):g}s struck "
            f"{len(storm['shards'])} shard(s): "
            + ", ".join(storm["shards"])
        )

    table_rows = []
    for row in rows:
        availability = row.get("availability")
        violations = _slo_violations(row)
        flags = []
        if row.get("pressured"):
            flags.append("PRESSURE")
        if row.get("storm_events"):
            flags.append("storm")
        table_rows.append(
            (
                row["shard"],
                row.get("sessions", "-"),
                f"{availability:.6f}" if availability is not None else "-",
                row.get("gaw_per_second", "-"),
                (
                    f"{row['probe_p50']:.3f}"
                    if row.get("probe_p50") is not None else "-"
                ),
                (
                    f"{row['probe_p99']:.3f}"
                    if row.get("probe_p99") is not None else "-"
                ),
                f"{row.get('probes', 0)}({row.get('probe_failures', 0)})",
                row.get("failovers", 0),
                row.get("migrated_in", 0),
                row.get("migrated_out", 0),
                f"{row.get('capacity_score', 1.0):.2f}",
                violations if violations is not None else "-",
                " ".join(flags),
            )
        )
    lines.append("")
    lines.extend(
        _table(
            (
                "shard", "sessions", "avail", "gaw/s", "p50", "p99",
                "probes(f)", "failover", "in", "out", "capacity",
                "slo viol", "",
            ),
            table_rows,
        )
    )

    if meta_incidents:
        lines.append("")
        lines.append(
            f"{len(meta_incidents)} meta-incident(s) "
            "(d=detect D=decide M=migrate r=drain, *=migration start):"
        )
        for meta in meta_incidents:
            lines.append(
                f"  #{meta['id']:<3} t={meta['opened_at']:8.1f}s "
                f"{_meta_waterfall(meta)} {meta['span']:7.1f}s  "
                f"{len(meta['shards'])} shard(s) {meta['mode']}"
            )
            lines.append(
                "       shards: " + ", ".join(meta["shards"])
            )
            if meta.get("absorbed"):
                lines.append(
                    "       (struck but incident-silent: "
                    + ", ".join(meta["absorbed"]) + ")"
                )
            for migration in meta.get("migrations", ()):
                lines.append(
                    f"       ~> {migration['source']} -> "
                    f"{migration['target']}: {migration['sessions']} "
                    f"session(s) @ t={migration['at']:g}s "
                    f"({migration.get('window', 0.0):g}s window)"
                )
            for replacement in meta.get("replacements", ()):
                lines.append(
                    f"       => replaced {replacement['replaced']} with "
                    f"{replacement['with']} @ t={replacement['at']:g}s "
                    f"(fail rate {replacement.get('fail_rate')})"
                )

    signals = view.get("capacity_signals") or []
    if shard is not None:
        signals = [s for s in signals if s.get("shard") == shard]
    lines.append("")
    if signals:
        lines.append(f"{len(signals)} capacity signal(s):")
        for signal in signals:
            lines.append(
                f"  t={signal['t']:8.1f}s {signal['shard']} "
                f"{signal['signal'].upper():8} "
                f"ewma={signal.get('ewma')} "
                f"headroom={signal.get('headroom')}"
            )
    else:
        lines.append("no capacity signals")
    return "\n".join(lines)


def summarize_alerts(alerts, incidents=None):
    """Alert log table + (when incidents are given) lead-time summary."""
    lines = [f"{len(alerts)} alert(s)"]
    if alerts:
        rows = []
        for alert in alerts:
            rows.append(
                (
                    _fmt_s(alert.fired_at),
                    alert.rule,
                    alert.severity,
                    alert.server or "-",
                    alert.component or "-",
                    (
                        f"{alert.value:.2f}"
                        if alert.value is not None else "-"
                    ),
                    (
                        _fmt_s(alert.resolved_at)
                        if alert.resolved_at is not None else "active"
                    ),
                )
            )
        lines.append("")
        lines.extend(
            _table(
                (
                    "fired", "rule", "severity", "server", "component",
                    "value", "resolved",
                ),
                rows,
            )
        )
    if incidents is not None:
        leads = alert_lead_times(alerts, incidents)
        lines.append("")
        if leads:
            lines.append(
                f"lead time: {len(leads)}/{len(incidents)} incident(s) "
                f"preceded by an alert, median {median(leads):.1f}s "
                f"(min {leads[0]:.1f}s, max {leads[-1]:.1f}s)"
            )
        else:
            lines.append(
                f"lead time: 0/{len(incidents)} incident(s) preceded by "
                "an alert"
            )
    return "\n".join(lines)
