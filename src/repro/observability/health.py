"""Component health scoring: many weak signals → one bounded number.

The estimators (:mod:`repro.observability.estimators`) answer "how often
does this component fail?"; the SLO engine answers "is the service inside
its error budget?"; the recovery manager's hardening state answers "is
this component flapping?"; and the heap model answers "is this node
leaking towards an alarm?".  Each signal alone is noisy — the
:class:`ComponentHealthRegistry` combines them into a single bounded
**0–100 health score** per ``(server, component)``, the quantity alert
rules threshold on and operators skim:

``score = 100 − hazard·30 − burn·25 − flap·20 − heap·25``

with every penalty term normalized into ``[0, 1]``:

* **hazard** — the component's instantaneous failure intensity from its
  :class:`~repro.observability.estimators.FailureRateEstimator`, scaled so
  one expected failure per :data:`HAZARD_FULL_SCALE` seconds saturates;
* **burn** — the cluster's SLO error-budget burn rate from live
  ``slo.violated`` publishes (a cluster-wide signal: every component on a
  burning cluster is suspect), decaying once windows stop violating;
* **flap** — quarantine/backoff pressure from ``rm.quarantine.begin`` /
  ``rm.backoff.set``: a quarantined component scores the full penalty
  while parked, repeated backoffs ramp it, and it decays linearly over
  :data:`FLAP_DECAY` quiet seconds;
* **heap** — the *server-wide* memory trend from ``heap.sample`` events:
  a least-squares slope over a capped ring predicts time-to-alarm, and
  the penalty ramps up as that prediction falls inside
  :data:`HEAP_HORIZON` (components can't be attributed from the sample
  itself — every component on a leaking node gets the penalty, and the
  proactive policy picks the actual leaker at action time).

Warm signals only subtract: a component with no evidence of trouble
scores 100, and the score can never leave ``[0, 100]``.

The registry is a passive TraceBus subscriber — it never schedules
kernel events.  When an :class:`~repro.observability.alerts.AlertEngine`
is attached, each intake event pokes ``engine.evaluate(now, self)``, so
alerting piggybacks on event arrival instead of polling: zero run
perturbation, which is what lets a "shadow" arm measure alert lead time
on a byte-identical schedule.
"""

from collections import deque

from repro.observability.estimators import Ewma

#: Penalty weights (sum 100 — each term's ceiling on the score).
WEIGHTS = {"hazard": 30.0, "burn": 25.0, "flap": 20.0, "heap": 25.0}

#: A hazard of one expected failure per this many seconds saturates the
#: hazard penalty (chaos-campaign flap trains sit well inside it).
HAZARD_FULL_SCALE = 60.0

#: Error-budget burn rate that saturates the burn penalty (burning the
#: budget 10× faster than sustainable is a five-alarm fire).
BURN_FULL_SCALE = 10.0

#: Seconds of quiet over which flap evidence decays back to zero.
FLAP_DECAY = 180.0

#: Backoff repeats that saturate the flap penalty (matches the hardened
#: policy's flap_threshold).
FLAP_FULL_SCALE = 3

#: Predicted seconds-to-heap-alarm below which the heap penalty ramps in
#: (full at 0 — i.e. the alarm is *now*).
HEAP_HORIZON = 150.0

#: Seconds of quiet over which the burn penalty decays once windows stop
#: violating (one SLO window plus slack).
BURN_DECAY = 90.0

#: heap.sample observations kept per server for the trend fit.
HEAP_RING = 32

#: An available-memory jump of this fraction of capacity between samples
#: means memory was *reclaimed* (µRB, restart): the old trend is obsolete.
HEAP_RESET_FRACTION = 0.05

#: Bus kinds the registry feeds on.
HEALTH_KINDS = (
    "heap.sample",
    "rm.quarantine.begin",
    "rm.quarantine.end",
    "rm.backoff.set",
    "slo.violated",
)


class HeapTrendTracker:
    """Least-squares memory trend for one server's ``heap.sample`` stream.

    Keeps the last :data:`HEAP_RING` ``(t, available)`` samples; the
    fitted slope (bytes/second, negative while leaking) extrapolates to a
    predicted time-to-alarm — the moment ``available`` crosses
    ``alarm_fraction × capacity`` free.
    """

    def __init__(self, alarm_fraction=0.10, ring=HEAP_RING):
        self.alarm_fraction = alarm_fraction
        self.samples = deque(maxlen=ring)
        self.capacity = None

    def observe(self, t, available, capacity=None):
        if capacity is not None:
            self.capacity = capacity
        if (
            self.samples
            and self.capacity
            and available - self.samples[-1][1]
            > HEAP_RESET_FRACTION * self.capacity
        ):
            # Memory came *back* (a µRB or restart reclaimed it): the
            # downhill trend that predicted exhaustion is history, and
            # keeping it in the fit would poison the next prediction.
            self.samples.clear()
        self.samples.append((t, available))

    @property
    def available(self):
        return self.samples[-1][1] if self.samples else None

    def utilization(self):
        """Fraction of the heap in use at the last sample (None unknown)."""
        if not self.samples or not self.capacity:
            return None
        return 1.0 - self.samples[-1][1] / self.capacity

    def slope(self):
        """Fitted d(available)/dt in bytes/sec; None until 2+ samples."""
        if len(self.samples) < 2:
            return None
        n = len(self.samples)
        mean_t = sum(t for t, _a in self.samples) / n
        mean_a = sum(a for _t, a in self.samples) / n
        var = sum((t - mean_t) ** 2 for t, _a in self.samples)
        if var == 0:
            return None
        cov = sum(
            (t - mean_t) * (a - mean_a) for t, a in self.samples
        )
        return cov / var

    def time_to_alarm(self, now):
        """Predicted seconds until free heap hits the alarm floor.

        None while the trend is unknown, flat, or recovering (slope ≥ 0);
        0 when the last sample is already at/below the floor.
        """
        if not self.samples or self.capacity is None:
            return None
        floor = self.alarm_fraction * self.capacity
        available = self.samples[-1][1]
        if available <= floor:
            return 0.0
        slope = self.slope()
        if slope is None or slope >= 0:
            return None
        # Extrapolate from the last sample, not `now`, so a stale trend
        # predicts from the evidence it actually has.
        last_t = self.samples[-1][0]
        eta = last_t + (floor - available) / slope
        return max(0.0, eta - now)


class ComponentHealthRegistry:
    """Bounded 0–100 health per (server, component) from live signals.

    Construct with a live ``kernel``/``bus`` (plus the
    :class:`~repro.observability.estimators.EstimatorHub` supplying
    hazards) or with neither and push recorded timeline records through
    :meth:`feed_record` for offline replay.  Components become known the
    first time any signal names them, or eagerly via :meth:`register`.
    """

    def __init__(self, kernel=None, bus=None, hub=None, alert_engine=None,
                 weights=None, heap_alarm_fraction=0.10):
        self.hub = hub
        self.alert_engine = alert_engine
        self.weights = dict(weights or WEIGHTS)
        self.heap_alarm_fraction = heap_alarm_fraction
        self._keys = set()  # (server, component)
        self._heap = {}  # server -> HeapTrendTracker
        #: (server, component) -> {"repeats", "last_at", "quarantined_until"}
        self._flap = {}
        self._burn = Ewma()
        self._burn_at = None
        self.now = 0.0
        self.events_seen = 0
        self._last_eval = None
        self.bus = bus if bus is not None else (
            kernel.trace if kernel is not None else None
        )
        self._token = None
        if self.bus is not None:
            self._token = self.bus.subscribe(self._on_event,
                                             kinds=HEALTH_KINDS)

    def detach(self):
        if self.bus is not None and self._token is not None:
            self.bus.unsubscribe(self._token)
            self._token = None

    def register(self, server, components):
        """Pre-seed the component universe (healthy = visible at 100)."""
        for component in components:
            self._keys.add((server, component))

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def _on_event(self, event):
        self.feed(event.t, event.kind, event.fields)

    def feed_record(self, record):
        """Ingest one flattened JSONL timeline record (offline replay)."""
        fields = {
            key: value for key, value in record.items()
            if key not in ("t", "seq", "kind", "bus")
        }
        self.feed(record["t"], record["kind"], fields)

    def feed(self, t, kind, fields):
        self.now = max(self.now, t)
        self.events_seen += 1
        if kind == "heap.sample":
            tracker = self._heap_tracker(fields.get("server"))
            tracker.observe(
                t, fields.get("available", 0), fields.get("capacity")
            )
        elif kind == "rm.quarantine.begin":
            state = self._flap_state(
                fields.get("server"), fields.get("component")
            )
            state["quarantined_until"] = fields.get("until", float("inf"))
            state["last_at"] = t
        elif kind == "rm.quarantine.end":
            state = self._flap_state(
                fields.get("server"), fields.get("component")
            )
            state["quarantined_until"] = t
            state["last_at"] = t
        elif kind == "rm.backoff.set":
            # Backoff keys are component names at the EJB grain and
            # "node"/level strings for coarse rungs; only the component-
            # keyed ones are per-component flap evidence.
            target = fields.get("target")
            if target and target not in ("node", "war", "application",
                                         "jvm", "os"):
                state = self._flap_state(fields.get("server"), target)
                state["repeats"] = fields.get("repeats", 1)
                state["last_at"] = t
        elif kind == "slo.violated":
            burn = fields.get("burn")
            # An infinite burn arrives as None; saturate the scale.
            self._burn.observe(
                BURN_FULL_SCALE if burn is None else min(
                    float(burn), BURN_FULL_SCALE
                )
            )
            self._burn_at = t
        if self.alert_engine is not None:
            # Throttled to once per simulated second: a full rule sweep
            # on every bus event is O(rules × keys) and a dense report
            # storm would re-evaluate identical signals hundreds of
            # times.  Sub-second resolution buys nothing — every default
            # rule holds its condition for >= 5 s before firing — and
            # the throttle is simulated-time based, so replaying the
            # same timeline still evaluates at the same instants.
            if self._last_eval is None or self.now - self._last_eval >= 1.0:
                self._last_eval = self.now
                self.alert_engine.evaluate(self.now, self)

    def _heap_tracker(self, server):
        tracker = self._heap.get(server)
        if tracker is None:
            tracker = self._heap[server] = HeapTrendTracker(
                alarm_fraction=self.heap_alarm_fraction
            )
        return tracker

    def _flap_state(self, server, component):
        key = (server, component)
        self._keys.add(key)
        state = self._flap.get(key)
        if state is None:
            state = self._flap[key] = {
                "repeats": 0, "last_at": None, "quarantined_until": None,
            }
        return state

    # ------------------------------------------------------------------
    # Signals (each normalized into [0, 1])
    # ------------------------------------------------------------------
    def hazard_signal(self, server, component, now):
        if self.hub is None:
            return 0.0
        hazard = self.hub.hazard(component, server=server, now=now)
        if hazard is None:
            return 0.0
        return min(1.0, hazard * HAZARD_FULL_SCALE)

    def burn_signal(self, now):
        if self._burn.value is None:
            return 0.0
        level = min(1.0, self._burn.value / BURN_FULL_SCALE)
        quiet = max(0.0, now - (self._burn_at or 0.0))
        return level * max(0.0, 1.0 - quiet / BURN_DECAY)

    def flap_signal(self, server, component, now):
        state = self._flap.get((server, component))
        if state is None:
            return 0.0
        until = state["quarantined_until"]
        if until is not None and until > now:
            return 1.0
        if state["last_at"] is None:
            return 0.0
        level = min(1.0, state["repeats"] / FLAP_FULL_SCALE)
        quiet = max(0.0, now - state["last_at"])
        return level * max(0.0, 1.0 - quiet / FLAP_DECAY)

    def heap_signal(self, server, now):
        tracker = self._heap.get(server)
        if tracker is None:
            return 0.0
        tta = tracker.time_to_alarm(now)
        if tta is None:
            return 0.0
        return max(0.0, 1.0 - tta / HEAP_HORIZON)

    def heap_time_to_alarm(self, server, now=None):
        """Predicted seconds to the server's heap alarm (None = no trend)."""
        tracker = self._heap.get(server)
        if tracker is None:
            return None
        return tracker.time_to_alarm(self.now if now is None else now)

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------
    def health(self, component, server=None, now=None):
        """The component's score plus its penalty breakdown."""
        now = self.now if now is None else now
        signals = {
            "hazard": self.hazard_signal(server, component, now),
            "burn": self.burn_signal(now),
            "flap": self.flap_signal(server, component, now),
            "heap": self.heap_signal(server, now),
        }
        penalty = sum(
            self.weights[name] * value for name, value in signals.items()
        )
        score = min(100.0, max(0.0, 100.0 - penalty))
        return {"score": score, "signals": signals}

    def score(self, component, server=None, now=None):
        return self.health(component, server=server, now=now)["score"]

    def keys(self):
        """Every (server, component) known, sorted deterministically."""
        seen = set(self._keys)
        if self.hub is not None:
            # Only incident-attributed keys: report-rate keys may carry
            # server=None (client-side reports) and would duplicate every
            # registered component as a phantom "-" row.
            seen.update(self.hub.failure_keys())
        return sorted(seen, key=lambda k: (str(k[0]), str(k[1])))

    def servers(self):
        seen = set(self._heap)
        seen.update(server for server, _c in self.keys())
        return sorted(seen, key=str)

    def snapshot(self, now=None):
        """Deterministic per-component health table (plain data)."""
        now = self.now if now is None else now
        rows = []
        for server, component in self.keys():
            health = self.health(component, server=server, now=now)
            rows.append(
                {
                    "server": server,
                    "component": component,
                    "score": round(health["score"], 3),
                    **{
                        name: round(value, 6)
                        for name, value in health["signals"].items()
                    },
                    "mttf": (
                        self.hub.mttf(component, server=server)
                        if self.hub is not None else None
                    ),
                }
            )
        return rows
