"""Cluster observability plane: shard rollups, storm correlation, capacity.

The megascale/storm stack (1M sessions, 128 sharded nodes) outgrew the flat
run-scoped incident/SLO layer: a K-shard fault storm is *one* operational
event, not K unrelated incidents, and the autoscaling work needs per-shard
load/latency signals with hysteresis-friendly semantics.  Three pieces:

* :class:`ShardMetricsAggregator` — folds cohort batch outcomes, probe
  results, LB failover counters, and storm/reshard events into bounded
  per-shard rollups (availability, Gaw, probe p50/p99 via mergeable
  :class:`~repro.telemetry.metrics.Histogram` sketches, failover rate,
  population, migration flow) plus a deterministic cluster-level
  reduction.  It also runs the **capacity signal engine**: a per-shard
  load score smoothed by a sustained-pressure EWMA with hysteresis bands,
  publishing sticky ``capacity.pressure`` / ``capacity.relief`` events —
  the interface scale-out/in policies will consume.
* :class:`ClusterIncidentCorrelator` — stitches concurrent shard-attributed
  incidents into :class:`MetaIncident` records (storm detection: K shards
  degrading within a correlation window; wave detection via onset
  ordering), attributes elasticity actions (shard replacements, migration
  windows), and decomposes cluster MTTR into consecutive
  detect/decide/migrate/drain phases that sum exactly to the meta-incident
  span — the same clamped-segment contract as
  :meth:`~repro.observability.incidents.Incident.phases`.
* Offline helpers — the aggregator publishes ``shard.rollup`` /
  ``shard.window`` summary events at collect time, so recorded timelines
  can rebuild the whole view (``repro shards``, ``repro slo --shard``)
  without replaying the workload.

Everything here is **passive**: the plane subscribes and samples but never
schedules kernel work, so arm outcomes are byte-identical with the plane
on or off, and all state lives in plain deterministic containers (same
seed ⇒ same rollup, jobs=1 ≡ jobs=N).
"""

import re

from repro.observability.slo import SloPolicy, SloWindow, compute_windows
from repro.telemetry.metrics import Histogram
from repro.telemetry.trace import RESERVED_KEYS

#: Anything named ``shardNNN`` or ``shardNNN-<resource>`` belongs to that
#: shard; flat single-node names (``node1``) deliberately never match, so
#: pre-cluster timelines keep their shard-free rendering.
_SHARD_NAME_RE = re.compile(r"^(shard\d+)(?:-|$)")

#: Bus kinds the aggregator folds into per-shard rollups.
SHARD_ROLLUP_KINDS = (
    "cohort.failures",
    "cohort.migrate",
    "cohort.migrate.arrived",
    "lb.failover.begin",
    "lb.link.fault",
    "ssm.crash",
    "storm.begin",
    "storm.event",
    "storm.end",
    "reshard.migrate",
    "reshard.policy",
)

#: Seconds of recent user-visible failures feeding the capacity stress term.
SIGNAL_WINDOW = 20.0
#: Fraction of a shard's population failing inside SIGNAL_WINDOW that
#: saturates the user-stress term.
STRESS_SATURATION = 0.05


def shard_of_name(name):
    """The shard a cluster resource name belongs to, or None.

    Matches node (``shard003-n1``), brick (``shard003-ssm-b2``) and bare
    shard names; anything else — including flat single-node servers —
    attributes to no shard.
    """
    if not name:
        return None
    match = _SHARD_NAME_RE.match(str(name))
    return match.group(1) if match else None


def shard_of_incident(incident, shard_of_node=None):
    """Attribute an incident to a shard via its server, then its key.

    ``shard_of_node`` is the authoritative cluster map when available
    (it remembers departed nodes); the name pattern is the offline
    fallback.  Infra incidents keyed ``link:shard003-n1`` attribute
    through the key suffix.
    """
    server = getattr(incident, "server", None)
    if shard_of_node and server in shard_of_node:
        return shard_of_node[server]
    shard = shard_of_name(server)
    if shard:
        return shard
    key = getattr(incident, "key", None) or ""
    if ":" in key:
        return shard_of_name(key.split(":", 1)[1])
    return None


class _ShardRollup:
    """Mutable per-shard accumulator behind the aggregator."""

    __slots__ = (
        "shard", "good", "bad", "sessions", "probes", "probe_failures",
        "probe_latency", "failovers", "link_faults", "brick_crashes",
        "storm_events", "storm_kinds", "migrated_in", "migrated_out",
        "series",
    )

    def __init__(self, shard):
        self.shard = shard
        self.good = 0
        self.bad = 0
        self.sessions = 0
        self.probes = 0
        self.probe_failures = 0
        self.probe_latency = Histogram(f"probe.latency.{shard}")
        self.failovers = 0
        self.link_faults = 0
        self.brick_crashes = 0
        self.storm_events = 0
        self.storm_kinds = set()
        self.migrated_in = 0
        self.migrated_out = 0
        self.series = []  # [window_start, good, bad] folded buckets


class ShardMetricsAggregator:
    """Passive per-shard rollup + capacity signal engine.

    Three intake channels, all observer-side:

    * a TraceBus subscription over :data:`SHARD_ROLLUP_KINDS`;
    * :meth:`observe_probe`, called by the probe model per probe (the
      probe EWMAs keep no history, so p50/p99 need live observation);
    * :meth:`collect`, an end-of-run read-only pull of the cohort
      engine's per-shard good/bad series and populations.

    Capacity signals are evaluated at most once per simulated second per
    shard (piggybacked on the per-second probes, mirroring the health
    registry's alert throttle): ``score = relative_load × (1 + 2·probe
    stress + 2·user stress)`` sits at 1.0 for a healthy, evenly loaded
    shard, and the sustained-pressure EWMA must clear ``pressure_high``
    to fire ``capacity.pressure`` and fall back through ``pressure_low``
    to fire ``capacity.relief`` — the hysteresis band keeps the ring from
    flapping.
    """

    def __init__(self, bus=None, cluster=None, policy=None,
                 pressure_high=1.6, pressure_low=1.15, pressure_alpha=0.35,
                 probe_alpha=0.3):
        if pressure_low >= pressure_high:
            raise ValueError("hysteresis bands must satisfy low < high")
        self.policy = policy or SloPolicy()
        self.pressure_high = pressure_high
        self.pressure_low = pressure_low
        self.pressure_alpha = pressure_alpha
        self.probe_alpha = probe_alpha
        self.capacity_signals = []
        self.migrations = []  # reshard.migrate windows, for attribution
        self.replacement_checks = 0  # reshard.policy sightings
        self.storm = None
        self.duration = None
        self._bus = bus
        self._cluster = cluster
        self._engine = None
        self._mean_sessions = None
        self._rollups = {}
        self._probe_stress = {}
        self._recent_bad = {}  # shard -> [[second, count], ...] trimmed
        self._recent_bad_sum = {}
        self._ewma = {}
        self._peak = {}
        self._pressured = {}
        self._last_eval = {}
        self._collected = False
        if bus is not None:
            bus.subscribe(self._on_event, kinds=SHARD_ROLLUP_KINDS)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_engine(self, engine):
        """Attach the cohort engine for load context and the final pull."""
        self._engine = engine
        shards = max(1, len(engine.shard_sessions) or 1)
        total = sum(engine.shard_sessions.values())
        self._mean_sessions = max(1.0, total / shards)

    def _rollup(self, shard):
        rollup = self._rollups.get(shard)
        if rollup is None:
            rollup = self._rollups[shard] = _ShardRollup(shard)
        return rollup

    def _shard_of_node(self, node):
        if self._cluster is not None:
            shard = self._cluster.shard_of_node.get(node)
            if shard:
                return shard
        return shard_of_name(node)

    # ------------------------------------------------------------------
    # Intake: bus events
    # ------------------------------------------------------------------
    def _on_event(self, event):
        kind = event.kind
        fields = event.fields
        if kind == "cohort.failures":
            shard = fields.get("shard")
            if shard:
                self._note_bad(shard, event.t, fields.get("count", 0))
        elif kind == "cohort.migrate":
            source, target = fields.get("source"), fields.get("target")
            sessions = fields.get("sessions", 0)
            if source:
                self._rollup(source).migrated_out += sessions
        elif kind == "cohort.migrate.arrived":
            target = fields.get("target")
            if target:
                self._rollup(target).migrated_in += fields.get("sessions", 0)
        elif kind == "lb.failover.begin":
            shard = self._shard_of_node(fields.get("node"))
            if shard:
                self._rollup(shard).failovers += 1
        elif kind == "lb.link.fault":
            shard = self._shard_of_node(fields.get("node"))
            if shard:
                self._rollup(shard).link_faults += 1
        elif kind == "ssm.crash":
            shard = shard_of_name(fields.get("store"))
            if shard:
                self._rollup(shard).brick_crashes += 1
        elif kind == "storm.begin":
            self.storm = {
                "at": round(event.t, 6),
                "shards": list(fields.get("shards", ())),
                "events": fields.get("events"),
                "horizon": fields.get("horizon"),
            }
        elif kind == "storm.event":
            shard = fields.get("shard")
            if shard:
                rollup = self._rollup(shard)
                rollup.storm_events += 1
                rollup.storm_kinds.add(fields.get("kind"))
        elif kind == "storm.end":
            if self.storm is not None:
                self.storm["ended_at"] = round(event.t, 6)
        elif kind == "reshard.migrate":
            self.migrations.append(
                {
                    "at": round(event.t, 6),
                    "source": fields.get("source"),
                    "target": fields.get("target"),
                    "sessions": fields.get("sessions", 0),
                    "window": fields.get("window", 0.0),
                }
            )
        elif kind == "reshard.policy":
            self.replacement_checks += 1

    def _note_bad(self, shard, t, count):
        second = int(t)
        recent = self._recent_bad.setdefault(shard, [])
        if recent and recent[-1][0] == second:
            recent[-1][1] += count
        else:
            recent.append([second, count])
        self._recent_bad_sum[shard] = (
            self._recent_bad_sum.get(shard, 0) + count
        )
        self._trim_recent(shard, t)

    def _trim_recent(self, shard, now):
        recent = self._recent_bad.get(shard)
        if not recent:
            return
        horizon = now - SIGNAL_WINDOW
        total = self._recent_bad_sum.get(shard, 0)
        while recent and recent[0][0] < horizon:
            total -= recent.pop(0)[1]
        self._recent_bad_sum[shard] = total

    # ------------------------------------------------------------------
    # Intake: probes
    # ------------------------------------------------------------------
    def observe_probe(self, t, shard, op, ok, latency):
        """Record one synthetic probe outcome (called by the probe model)."""
        rollup = self._rollup(shard)
        rollup.probes += 1
        if not ok:
            rollup.probe_failures += 1
        rollup.probe_latency.observe(latency)
        stress = self._probe_stress.get(shard, 0.0)
        self._probe_stress[shard] = stress + self.probe_alpha * (
            (0.0 if ok else 1.0) - stress
        )
        last = self._last_eval.get(shard)
        if last is None or t - last >= 1.0:
            self._last_eval[shard] = t
            self._evaluate_capacity(shard, t)

    # ------------------------------------------------------------------
    # Capacity signal engine
    # ------------------------------------------------------------------
    def _evaluate_capacity(self, shard, t):
        sessions = 0
        relative_load = 1.0
        if self._engine is not None:
            sessions = self._engine.shard_sessions.get(shard, 0)
            relative_load = sessions / self._mean_sessions
        self._trim_recent(shard, t)
        recent_bad = self._recent_bad_sum.get(shard, 0)
        user_stress = min(
            1.0, recent_bad / max(1.0, STRESS_SATURATION * sessions)
        )
        probe_stress = self._probe_stress.get(shard, 0.0)
        score = relative_load * (1.0 + 2.0 * probe_stress + 2.0 * user_stress)
        previous = self._ewma.get(shard, 1.0)
        ewma = previous + self.pressure_alpha * (score - previous)
        self._ewma[shard] = ewma
        if ewma > self._peak.get(shard, 0.0):
            self._peak[shard] = ewma
        pressured = self._pressured.get(shard, False)
        if not pressured and ewma >= self.pressure_high:
            self._pressured[shard] = True
            self._signal("pressure", shard, t, score, ewma)
        elif pressured and ewma <= self.pressure_low:
            self._pressured[shard] = False
            self._signal("relief", shard, t, score, ewma)

    def headroom(self, shard):
        """Remaining capacity before the pressure band, in [0, 1]."""
        ewma = self._ewma.get(shard, 1.0)
        return max(0.0, 1.0 - ewma / self.pressure_high)

    def _signal(self, name, shard, t, score, ewma):
        record = {
            "t": round(t, 6),
            "shard": shard,
            "signal": name,
            "score": round(score, 6),
            "ewma": round(ewma, 6),
            "headroom": round(max(0.0, 1.0 - ewma / self.pressure_high), 6),
        }
        self.capacity_signals.append(record)
        if self._bus is not None:
            self._bus.publish(
                f"capacity.{name}", shard=shard,
                score=record["score"], ewma=record["ewma"],
                headroom=record["headroom"],
            )

    # ------------------------------------------------------------------
    # Collection + reduction
    # ------------------------------------------------------------------
    def collect(self, engine=None, duration=None):
        """End-of-run pull: fold the cohort series, judge per-shard SLO
        windows, and publish the ``shard.*`` summary events.

        Read-only against the engine; safe to call after the kernel has
        drained.  Idempotent per run (the rig calls it once).
        """
        engine = engine if engine is not None else self._engine
        self.duration = duration
        shard_slo = {}
        if engine is not None:
            width = self.policy.window
            shards = sorted(
                set(engine.shard_good_series) | set(engine.shard_bad_series)
            )
            for shard in shards:
                good_series = engine.shard_good_series.get(shard, {})
                bad_series = engine.shard_bad_series.get(shard, {})
                rollup = self._rollup(shard)
                rollup.good = sum(good_series.values())
                rollup.bad = sum(bad_series.values())
                rollup.sessions = engine.shard_sessions.get(shard, 0)
                buckets = {}
                for second, n in good_series.items():
                    start = int(second // width) * width
                    entry = buckets.setdefault(start, [0, 0])
                    entry[0] += n
                for second, n in bad_series.items():
                    start = int(second // width) * width
                    entry = buckets.setdefault(start, [0, 0])
                    entry[1] += n
                rollup.series = [
                    [start, good, bad]
                    for start, (good, bad) in sorted(buckets.items())
                ]
                if duration is not None:
                    windows = compute_windows(
                        good_series, bad_series, [], duration,
                        policy=self.policy,
                    )
                    violations = [w for w in windows if w.violated]
                    availabilities = [
                        w.availability for w in windows
                        if w.availability is not None
                    ]
                    shard_slo[shard] = {
                        "windows": len(windows),
                        "violations": len(violations),
                        "min_availability": (
                            round(min(availabilities), 6)
                            if availabilities else None
                        ),
                    }
                    self._publish_windows(shard, windows)
        self._slo = shard_slo
        self._collected = True
        self._publish_rollups()

    def _publish_windows(self, shard, windows):
        if self._bus is None:
            return
        for window in windows:
            self._bus.publish(
                "shard.window", shard=shard,
                start=round(window.start, 6), end=round(window.end, 6),
                good=window.good, bad=window.bad,
                violated=window.violated,
            )
            if window.violated:
                self._bus.publish(
                    "slo.shard.violated", shard=shard,
                    start=round(window.start, 6), end=round(window.end, 6),
                    availability=(
                        round(window.availability, 6)
                        if window.availability is not None else None
                    ),
                    reasons=list(window.reasons),
                )

    def _publish_rollups(self):
        if self._bus is None:
            return
        for row in self.rows():
            fields = {k: v for k, v in row.items() if k != "series"}
            slo = fields.pop("slo", None) or {}
            self._bus.publish(
                "shard.rollup",
                slo_windows=slo.get("windows"),
                slo_violations=slo.get("violations"),
                slo_min_availability=slo.get("min_availability"),
                **fields,
            )

    def rows(self):
        """Per-shard rollup rows, shard-sorted, plain data."""
        out = []
        duration = self.duration
        for shard in sorted(self._rollups):
            rollup = self._rollups[shard]
            total = rollup.good + rollup.bad
            quantiles = rollup.probe_latency.percentiles()
            row = {
                "shard": shard,
                "sessions": rollup.sessions,
                "good": rollup.good,
                "bad": rollup.bad,
                "availability": (
                    round(rollup.good / total, 6) if total else None
                ),
                "gaw_per_second": (
                    round(rollup.good / duration, 3)
                    if duration else None
                ),
                "probes": rollup.probes,
                "probe_failures": rollup.probe_failures,
                "probe_p50": (
                    round(quantiles["p50"], 6)
                    if quantiles["p50"] is not None else None
                ),
                "probe_p99": (
                    round(quantiles["p99"], 6)
                    if quantiles["p99"] is not None else None
                ),
                "failovers": rollup.failovers,
                "link_faults": rollup.link_faults,
                "brick_crashes": rollup.brick_crashes,
                "storm_events": rollup.storm_events,
                "storm_kinds": sorted(
                    k for k in rollup.storm_kinds if k
                ),
                "migrated_in": rollup.migrated_in,
                "migrated_out": rollup.migrated_out,
                "capacity_score": round(self._ewma.get(shard, 1.0), 6),
                "peak_score": round(self._peak.get(shard, 1.0), 6),
                "pressured": self._pressured.get(shard, False),
                "headroom": round(self.headroom(shard), 6),
                "slo": getattr(self, "_slo", {}).get(shard),
                "series": [list(b) for b in rollup.series],
            }
            out.append(row)
        return out

    def cluster_summary(self):
        """Deterministic cluster-level reduction over the shard rollups.

        Probe latency quantiles come from merging the per-shard sketches
        in sorted shard order — bucket addition is exact, so the merged
        p50/p99 equal a single cluster-wide sketch's.
        """
        merged = Histogram("probe.latency.cluster")
        good = bad = probes = probe_failures = failovers = 0
        sessions = 0
        for shard in sorted(self._rollups):
            rollup = self._rollups[shard]
            good += rollup.good
            bad += rollup.bad
            sessions += rollup.sessions
            probes += rollup.probes
            probe_failures += rollup.probe_failures
            failovers += rollup.failovers
            merged.merge(rollup.probe_latency)
        total = good + bad
        quantiles = merged.percentiles()
        slo = getattr(self, "_slo", {})
        return {
            "shards": len(self._rollups),
            "sessions": sessions,
            "good": good,
            "bad": bad,
            "availability": round(good / total, 6) if total else None,
            "probes": probes,
            "probe_failures": probe_failures,
            "probe_p50": (
                round(quantiles["p50"], 6)
                if quantiles["p50"] is not None else None
            ),
            "probe_p99": (
                round(quantiles["p99"], 6)
                if quantiles["p99"] is not None else None
            ),
            "failovers": failovers,
            "pressured_shards": sorted(
                s for s, p in self._pressured.items() if p
            ),
            "pressure_events": len(self.capacity_signals),
            "migrations": len(self.migrations),
            "sessions_migrated": sum(
                m["sessions"] for m in self.migrations
            ),
            "slo_violations": sum(
                (v or {}).get("violations", 0) for v in slo.values()
            ),
        }


class MetaIncident:
    """K shards degrading together: one cluster-level operational event."""

    def __init__(self, mid, members, window):
        # members: [(incident, shard)] sorted by onset.
        self.id = mid
        self.incidents = [incident for incident, _ in members]
        self._members = members
        self.window = window
        self.shards = sorted({shard for _, shard in members})
        onsets = {}
        for incident, shard in members:
            t = incident.opened_at
            if shard not in onsets or t < onsets[shard]:
                onsets[shard] = t
        self.onsets = onsets
        self.opened_at = min(i.opened_at for i in self.incidents)
        self.replacements = []
        self.migrations = []
        self.absorbed = []

    @property
    def onset_order(self):
        return sorted(self.onsets, key=lambda s: (self.onsets[s], s))

    @property
    def onset_spread(self):
        values = list(self.onsets.values())
        return max(values) - min(values)

    def mode(self, simultaneous_threshold=5.0):
        """``simultaneous`` vs ``wave`` via onset ordering spread."""
        return (
            "simultaneous" if self.onset_spread <= simultaneous_threshold
            else "wave"
        )

    def absorb(self, shards):
        """Fold in struck-but-silent shards from the storm schedule.

        A brick-crash or slowdown shard can degrade without ever opening
        a tracked incident (the replica absorbs the crash; the slowdown
        only stretches latency).  The ``storm.begin`` event is the
        evidence those shards were part of the same operational event, so
        they join :attr:`shards` (and are listed as ``absorbed``) — but
        they keep no observed onset, so the simultaneous/wave
        classification and the MTTR phases stay grounded in incident
        evidence.
        """
        silent = [s for s in shards if s not in self.onsets]
        self.absorbed = sorted(set(self.absorbed) | set(silent))
        self.shards = sorted(set(self.shards) | set(shards))

    @property
    def end(self):
        ends = [i.end for i in self.incidents]
        ends.extend(m["at"] + m.get("window", 0.0) for m in self.migrations)
        ends.extend(r["at"] for r in self.replacements)
        return max(ends)

    @property
    def span(self):
        return max(0.0, self.end - self.opened_at)

    def phases(self):
        """Cluster MTTR as consecutive detect/decide/migrate/drain segments.

        Same clamping contract as :meth:`Incident.phases`: each boundary
        is clamped into ``[previous, end]`` so the four values always sum
        exactly to :attr:`span` no matter how evidence is ordered.

        * **detect** — onset to the first failure report anywhere in the
          meta-incident;
        * **decide** — to the first recovery decision or replacement;
        * **migrate** — to the last migration-window end / recovery
          finish (the repair-in-flight phase);
        * **drain** — the tail until the last member incident closes.
        """
        end = self.end
        t0 = self.opened_at
        reports = [
            i.first_report_at for i in self.incidents
            if i.first_report_at is not None
        ]
        t1 = min(reports) if reports else t0
        t1 = min(max(t1, t0), end)
        decisions = [
            a["decided_at"] for i in self.incidents for a in i.actions
        ]
        decisions.extend(r["at"] for r in self.replacements)
        t2 = min(decisions) if decisions else t1
        t2 = min(max(t2, t1), end)
        repairs = [
            a["finished_at"] for i in self.incidents for a in i.actions
        ]
        repairs.extend(m["at"] + m.get("window", 0.0) for m in self.migrations)
        t3 = max(repairs) if repairs else t2
        t3 = min(max(t3, t2), end)
        return {
            "detect": t1 - t0,
            "decide": t2 - t1,
            "migrate": t3 - t2,
            "drain": end - t3,
        }

    def to_dict(self):
        return {
            "id": self.id,
            "shards": list(self.shards),
            "incidents": [i.id for i in self.incidents],
            "opened_at": round(self.opened_at, 6),
            "end": round(self.end, 6),
            "span": round(self.span, 6),
            "mode": self.mode(),
            "onsets": {s: round(t, 6) for s, t in self.onsets.items()},
            "onset_order": self.onset_order,
            "phases": {k: round(v, 6) for k, v in self.phases().items()},
            "absorbed": list(self.absorbed),
            "reports": sum(i.reports for i in self.incidents),
            "recovered": sum(1 for i in self.incidents if i.recovered),
            "replacements": [dict(r) for r in self.replacements],
            "migrations": [dict(m) for m in self.migrations],
        }


class ClusterIncidentCorrelator:
    """Stitch shard-attributed incidents into meta-incidents.

    Greedy onset clustering: incidents sorted by open time join the
    current cluster while they open within ``window`` seconds of the
    cluster's running end, so pulse chains bridge without bounding the
    storm's total length; clusters touching at least ``k_min`` distinct
    shards become :class:`MetaIncident` records.
    """

    def __init__(self, window=60.0, k_min=2):
        self.window = window
        self.k_min = k_min
        self.meta_incidents = []
        self.unclustered = 0

    def correlate(self, incidents, replacements=(), migrations=(),
                  shard_of_node=None, storm=None):
        attributed = []
        for incident in incidents:
            shard = shard_of_incident(incident, shard_of_node)
            if shard:
                attributed.append((incident, shard))
        attributed.sort(key=lambda pair: (pair[0].opened_at, pair[0].id))
        clusters = []
        current, current_end = [], None
        for incident, shard in attributed:
            if current and incident.opened_at <= current_end + self.window:
                current.append((incident, shard))
                current_end = max(current_end, incident.end)
            else:
                if current:
                    clusters.append(current)
                current = [(incident, shard)]
                current_end = incident.end
        if current:
            clusters.append(current)

        metas, leftovers = [], 0
        for cluster in clusters:
            shards = {shard for _, shard in cluster}
            if len(shards) >= self.k_min:
                meta = MetaIncident(len(metas) + 1, cluster, self.window)
                self._attribute(meta, replacements, migrations)
                metas.append(meta)
            else:
                leftovers += len(cluster)
        if storm and storm.get("shards"):
            onset = storm.get("at", 0.0)
            ended = storm.get("ended_at", onset)
            for meta in metas:
                if (
                    meta.opened_at <= ended + self.window
                    and meta.end >= onset - self.window
                ):
                    meta.absorb(storm["shards"])
                    break  # one storm, one meta-incident
        self.meta_incidents = metas
        self.unclustered = leftovers
        return metas

    def _attribute(self, meta, replacements, migrations):
        """Elasticity actions inside the meta-incident's (padded) span."""
        lo = meta.opened_at - 1.0
        hi = max(i.end for i in meta.incidents) + self.window
        shards = set(meta.shards)
        for record in replacements:
            if lo <= record["at"] <= hi and record.get("replaced") in shards:
                meta.replacements.append(dict(record))
        for record in migrations:
            involved = (
                record.get("source") in shards
                or record.get("target") in shards
            )
            if lo <= record["at"] <= hi and involved:
                meta.migrations.append(dict(record))
        meta.replacements.sort(key=lambda r: r["at"])
        meta.migrations.sort(key=lambda m: m["at"])


# ----------------------------------------------------------------------
# Offline (timeline) surfaces
# ----------------------------------------------------------------------
def shards_from_timeline(records):
    """Rebuild the per-shard rollup view from recorded JSONL events.

    ``shard.rollup`` events carry the summary rows (latest per shard
    wins, matching a rerun), ``shard.window`` events rebuild the bounded
    series, and ``capacity.* `` / ``reshard.migrate`` / ``storm.begin``
    events restore the signal stream and storm context.
    """
    rows = {}
    windows = {}
    signals = []
    migrations = []
    storm = None
    for record in records:
        kind = record.get("kind")
        if kind == "shard.rollup":
            row = {
                k: v for k, v in record.items() if k not in RESERVED_KEYS
            }
            shard = row.get("shard")
            if shard:
                rows[shard] = row
        elif kind == "shard.window":
            shard = record.get("shard")
            if shard:
                windows.setdefault(shard, []).append(
                    [
                        record.get("start"), record.get("end"),
                        record.get("good", 0), record.get("bad", 0),
                        bool(record.get("violated")),
                    ]
                )
        elif kind in ("capacity.pressure", "capacity.relief"):
            signals.append(
                {
                    "t": record.get("t"),
                    "shard": record.get("shard"),
                    "signal": kind.split(".", 1)[1],
                    "score": record.get("score"),
                    "ewma": record.get("ewma"),
                    "headroom": record.get("headroom"),
                }
            )
        elif kind == "reshard.migrate":
            migrations.append(
                {
                    "at": record.get("t"),
                    "source": record.get("source"),
                    "target": record.get("target"),
                    "sessions": record.get("sessions", 0),
                    "window": record.get("window", 0.0),
                }
            )
        elif kind == "storm.begin":
            storm = {
                "at": record.get("t"),
                "shards": list(record.get("shards", ())),
                "events": record.get("events"),
                "horizon": record.get("horizon"),
            }
    for shard, row in rows.items():
        row["windows"] = sorted(windows.get(shard, []))
    return {
        "shards": [rows[s] for s in sorted(rows)],
        "capacity_signals": signals,
        "migrations": migrations,
        "storm": storm,
    }


def shard_windows_from_records(records, shard, policy=None):
    """SLO windows for one shard, rebuilt from ``shard.window`` events.

    Megascale/storm timelines carry no per-request ``request.end``
    events (the cohort engine accounts in batches), so the per-shard SLO
    view replays the judged windows the plane exported instead.
    """
    policy = policy or SloPolicy()
    windows = []
    for record in records:
        if record.get("kind") != "shard.window":
            continue
        if record.get("shard") != shard:
            continue
        window = SloWindow(
            start=record.get("start", 0.0),
            end=record.get("end", 0.0),
            good=record.get("good", 0),
            bad=record.get("bad", 0),
            availability_target=policy.availability_target,
        )
        availability = window.availability
        if window.total >= policy.min_requests and availability is not None \
                and availability < policy.availability_target:
            window.reasons.append(
                f"availability {availability:.4f} < "
                f"{policy.availability_target:.4f}"
            )
        window.violated = bool(window.reasons)
        windows.append(window)
    windows.sort(key=lambda w: w.start)
    return windows


def timeline_shards(records):
    """Sorted shard names seen anywhere in a timeline (for --shard help)."""
    shards = set()
    for record in records:
        shard = record.get("shard")
        if shard:
            shards.add(shard)
        for key in ("source", "target", "server", "node"):
            shard = shard_of_name(record.get(key))
            if shard:
                shards.add(shard)
    return sorted(shards)
