"""Streaming per-component MTTF / failure-rate / hazard estimation.

The ROADMAP's "proactive rejuvenation from online MTTF estimation" item
(and depman, the SNIPPETS.md §2 exemplar) wants countermeasures fired
*before* failure.  That needs forward-looking signals, and this module
grows them from the incident stream the observability layer already
stitches:

* an **MTTF estimate** per component — the mean time between that
  component's incidents, tracked two ways at once: a window-``N`` moving
  average (depman's ``moving_avg_N``) and an EWMA that weighs recent
  intervals more;
* a **failure rate** — simply ``1 / MTTF``;
* a **hazard** — the instantaneous failure intensity *right now*.  The
  estimator updates an EWMA of instantaneous rates (``1 / interval``) at
  every failure, then decays it while the component stays quiet: once the
  time since the last failure exceeds the component's own MTTF, the
  evidence that it is still sick ages out proportionally.  A flapping
  component therefore carries a high hazard between its pulses, while one
  that has been quiet for several expected lifetimes converges back
  towards zero.

Failures are *observed* events, never ground truth: the hub is fed by
:class:`~repro.observability.incidents.IncidentTracker` closures (one
failure per component per incident, stamped at the incident's open time)
and by detector/RM failure reports on the TraceBus (a per-component
report-rate EWMA — denser, noisier, earlier than incidents).  It never
reads injected-fault events, so the estimates measure what a production
operator could measure.

Warm-up is explicit: every estimate answers ``None`` (the documented
warm-up sentinel) until it has the samples it needs — an MTTF needs two
failures (one interval), a hazard needs one.  Callers must treat ``None``
as "no opinion yet", never as zero.

Everything here is passive and deterministic: no kernel events are
scheduled, state is a pure function of the fed event stream, and
:meth:`EstimatorHub.state` exposes it for the same-seed ⇒ same-state
contract the tests gate on.
"""

from collections import deque

from repro.observability.incidents import path_for_url

#: The documented warm-up sentinel: estimates are ``None`` until enough
#: samples exist, and callers must treat that as "no opinion yet".
WARMUP = None

#: Window size for the moving-average MTTF (depman's ``moving_avg_N``).
DEFAULT_WINDOW = 8

#: EWMA smoothing factor: one new interval moves the estimate 30% of the
#: way to the observed value — responsive without being twitchy.
DEFAULT_ALPHA = 0.3


class MovingAverage:
    """Moving average over the last ``window`` observations, O(1) update."""

    def __init__(self, window=DEFAULT_WINDOW):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        self._values = deque(maxlen=window)
        self._sum = 0.0

    @property
    def window(self):
        return self._values.maxlen

    @property
    def count(self):
        return len(self._values)

    @property
    def value(self):
        """The average, or :data:`WARMUP` before the first observation."""
        if not self._values:
            return WARMUP
        return self._sum / len(self._values)

    def observe(self, value):
        if len(self._values) == self._values.maxlen:
            self._sum -= self._values[0]
        self._values.append(value)
        self._sum += value
        return self.value


class Ewma:
    """Exponentially-weighted moving average; ``None`` until fed."""

    def __init__(self, alpha=DEFAULT_ALPHA):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self.value = WARMUP
        self.count = 0

    def observe(self, value):
        if self.value is None:
            self.value = float(value)
        else:
            self.value += self.alpha * (value - self.value)
        self.count += 1
        return self.value


class FailureRateEstimator:
    """Streaming MTTF / failure rate / hazard for one component.

    Feed it failure timestamps in nondecreasing order via
    :meth:`record_failure`; query at any time.  All estimates are
    :data:`WARMUP` until enough evidence exists.
    """

    def __init__(self, window=DEFAULT_WINDOW, alpha=DEFAULT_ALPHA):
        self.failures = 0
        self.first_failure_at = None
        self.last_failure_at = None
        self._mttf_ma = MovingAverage(window)
        self._mttf_ewma = Ewma(alpha)
        self._rate_ewma = Ewma(alpha)

    def record_failure(self, t):
        """One observed failure at simulated time ``t``."""
        if self.last_failure_at is not None:
            interval = max(0.0, t - self.last_failure_at)
            if interval > 0:
                self._mttf_ma.observe(interval)
                self._mttf_ewma.observe(interval)
                self._rate_ewma.observe(1.0 / interval)
        else:
            self.first_failure_at = t
        self.failures += 1
        if self.last_failure_at is None or t > self.last_failure_at:
            self.last_failure_at = t

    # ------------------------------------------------------------------
    @property
    def intervals(self):
        """How many inter-failure intervals have been observed."""
        return max(0, self.failures - 1)

    def mttf(self):
        """Moving-average mean time to failure (:data:`WARMUP` until the
        second failure provides the first interval)."""
        return self._mttf_ma.value

    def mttf_ewma(self):
        """EWMA mean time to failure; same warm-up contract as :meth:`mttf`."""
        return self._mttf_ewma.value

    def failure_rate(self):
        """Failures per second, ``1 / mttf`` (:data:`WARMUP` while warming)."""
        mttf = self._mttf_ma.value
        if mttf is None or mttf <= 0:
            return WARMUP
        return 1.0 / mttf

    def hazard(self, now):
        """Instantaneous failure intensity at ``now`` (per second).

        The EWMA of instantaneous rates, decayed once the component has
        stayed quiet longer than its own expected inter-failure time:
        ``h = rate * min(1, mttf / elapsed)``.  :data:`WARMUP` until one
        interval exists; never negative.
        """
        rate = self._rate_ewma.value
        if rate is None:
            return WARMUP
        mttf = self._mttf_ewma.value or 0.0
        elapsed = max(0.0, now - self.last_failure_at)
        if mttf > 0 and elapsed > mttf:
            rate *= mttf / elapsed
        return rate

    def state(self):
        """Plain-data snapshot (determinism tests compare these)."""
        return {
            "failures": self.failures,
            "first_failure_at": self.first_failure_at,
            "last_failure_at": self.last_failure_at,
            "mttf": self.mttf(),
            "mttf_ewma": self.mttf_ewma(),
            "failure_rate": self.failure_rate(),
            "rate_ewma": self._rate_ewma.value,
        }


#: Bus kinds the hub listens to.  Reports are failure *evidence* (dense,
#: early); incident closures (via the tracker's close listeners) are the
#: failure *unit* MTTF is measured over.
REPORT_KINDS = ("detector.report", "rm.report")


class EstimatorHub:
    """Per-component estimator registry fed live from the incident stream.

    Two feeds, both observational:

    * **incident closures** — wire via ``tracker.close_listeners.append(
      hub.on_incident_closed)`` (or pass ``tracker=`` and the hub wires
      itself).  Each closure records one failure per involved component,
      stamped at the incident's *open* time, into that component's
      :class:`FailureRateEstimator`;
    * **failure reports** — the hub subscribes to ``detector.report`` /
      ``rm.report`` on the bus and keeps a per-component report-rate EWMA
      (reports per second), mapping URLs to components through the same
      longest-prefix map the RM diagnoses with.

    Components are keyed ``(server, component)`` with ``server=None`` when
    the event stream does not attribute one, so a cluster's same-named
    components on different nodes estimate independently.
    """

    def __init__(self, kernel=None, bus=None, tracker=None,
                 url_path_map=None, window=DEFAULT_WINDOW,
                 alpha=DEFAULT_ALPHA):
        self.url_path_map = dict(url_path_map or {})
        self.window = window
        self.alpha = alpha
        self.estimators = {}  # (server, component) -> FailureRateEstimator
        self._report_rate = {}  # (server, component) -> Ewma of report rate
        self._last_report_at = {}
        self.reports_seen = 0
        self.incidents_seen = 0
        self.bus = bus if bus is not None else (
            kernel.trace if kernel is not None else None
        )
        self._token = None
        if self.bus is not None:
            self._token = self.bus.subscribe(self._on_event,
                                             kinds=REPORT_KINDS)
        self.tracker = tracker
        if tracker is not None:
            tracker.close_listeners.append(self.on_incident_closed)

    def detach(self):
        """Stop listening (collected estimator state remains readable)."""
        if self.bus is not None and self._token is not None:
            self.bus.unsubscribe(self._token)
            self._token = None
        if self.tracker is not None:
            try:
                self.tracker.close_listeners.remove(self.on_incident_closed)
            except ValueError:
                pass
            self.tracker = None

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def _estimator(self, key):
        estimator = self.estimators.get(key)
        if estimator is None:
            estimator = FailureRateEstimator(self.window, self.alpha)
            self.estimators[key] = estimator
        return estimator

    def on_incident_closed(self, incident):
        """IncidentTracker close listener: one failure per component."""
        self.incidents_seen += 1
        components = incident.components or {incident.key}
        for component in components:
            self._estimator((incident.server, component)).record_failure(
                incident.opened_at
            )

    def _on_event(self, event):
        self.feed_report(event.t, event.fields.get("url", ""),
                         server=event.fields.get("server"))

    def feed_report(self, t, url, server=None):
        """One failure report: bump the report-rate EWMA of its components."""
        self.reports_seen += 1
        for component in path_for_url(url, self.url_path_map):
            key = (server, component)
            last = self._last_report_at.get(key)
            if last is not None and t > last:
                rate = self._report_rate.get(key)
                if rate is None:
                    rate = self._report_rate[key] = Ewma(self.alpha)
                rate.observe(1.0 / (t - last))
            self._last_report_at[key] = t

    # ------------------------------------------------------------------
    # Queries (all honor the WARMUP sentinel)
    # ------------------------------------------------------------------
    def keys(self):
        """Every (server, component) key seen so far, sorted."""
        seen = set(self.estimators) | set(self._last_report_at)
        return sorted(seen, key=lambda k: (str(k[0]), k[1]))

    def failure_keys(self):
        """Keys with incident-attributed failures (excludes report-rate
        keys, which are unattributed when the report stream carries no
        server — e.g. client-side ``detector.report``)."""
        return sorted(self.estimators, key=lambda k: (str(k[0]), k[1]))

    def mttf(self, component, server=None):
        estimator = self.estimators.get((server, component))
        return estimator.mttf() if estimator is not None else WARMUP

    def failure_rate(self, component, server=None):
        estimator = self.estimators.get((server, component))
        return estimator.failure_rate() if estimator is not None else WARMUP

    def hazard(self, component, server=None, now=0.0):
        estimator = self.estimators.get((server, component))
        return estimator.hazard(now) if estimator is not None else WARMUP

    def report_rate(self, component, server=None):
        """Failure reports per second touching ``component`` (EWMA)."""
        rate = self._report_rate.get((server, component))
        return rate.value if rate is not None else WARMUP

    def state(self):
        """Deterministic plain-data snapshot of every estimator."""
        return {
            f"{server or '-'}/{component}": {
                **self.estimators[(server, component)].state(),
            }
            for server, component in sorted(
                self.estimators, key=lambda k: (str(k[0]), k[1])
            )
        }
